#!wish -f
# A four-function calculator in pure Tcl — the kind of application the
# paper's Section 5 promises can be written "entirely in Tcl".

entry .display -width 16 -relief sunken
pack append . .display {top fillx}

set accum ""
proc key {k} {
    global accum
    if {$k == "C"} {
        set accum ""
    } elseif {$k == "="} {
        if {[catch {expr $accum} value]} {set value error}
        set accum $value
    } else {
        set accum $accum$k
    }
    .display delete 0 end
    .display insert 0 $accum
}

set rows {{7 8 9 /} {4 5 6 *} {1 2 3 -} {C 0 = +}}
set r 0
foreach row $rows {
    frame .row$r
    pack append . .row$r {top fillx}
    set c 0
    foreach k $row {
        button .row$r.b$c -text $k -width 3 -command [list key $k]
        pack append .row$r .row$r.b$c {left expand fillx}
        set c [expr $c+1]
    }
    set r [expr $r+1]
}
