#!/bin/sh
# Offline CI: format check, lints, release build, and the full test
# suite. Everything here works without network access — the heavy
# crates.io-dependent benches/property tests live in the
# workspace-excluded crates/heavy and are not part of this gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lints"
fi

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> ci OK"
