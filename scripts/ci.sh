#!/bin/sh
# Offline CI: format check, lints, release build, the full test suite,
# and the deterministic request-budget gate. Everything here works
# without network access — the heavy crates.io-dependent benches and
# property tests live in the workspace-excluded crates/heavy and run in
# their own scheduled job. `--locked` keeps every invocation on the
# committed Cargo.lock.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets --offline --locked -- -D warnings
else
    echo "==> clippy not installed; skipping lints"
fi

echo "==> cargo build --release"
cargo build --release --workspace --offline --locked

echo "==> cargo test -q"
cargo test -q --workspace --offline --locked

echo "==> bench --check-budgets"
cargo run -p tk-bench --release --offline --locked --bin bench -- --check-budgets

echo "==> ci OK"
