#!/bin/sh
# Offline CI: format check, lints, release build, the full test suite,
# and the deterministic request-budget gate. Everything here works
# without network access — the heavy crates.io-dependent benches and
# property tests live in the workspace-excluded crates/heavy and run in
# their own scheduled job. `--locked` keeps every invocation on the
# committed Cargo.lock.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets --offline --locked -- -D warnings
else
    echo "==> clippy not installed; skipping lints"
fi

echo "==> cargo build --release"
cargo build --release --workspace --offline --locked

echo "==> cargo test -q"
cargo test -q --workspace --offline --locked

# The golden-frame suite must be deterministic run to run, not just
# within a process: render twice, in two separate invocations.
echo "==> golden frames (twice, for determinism)"
cargo test -q --offline --locked --test golden_frames
cargo test -q --offline --locked --test golden_frames

echo "==> bench --check-budgets"
cargo run -p tk-bench --release --offline --locked --bin bench -- --check-budgets

# Transport-equivalence gate: the framed wire transport must be
# invisible. The full run above already exercised the wire side — the
# threaded byte transport is the default unless RTK_NO_WIRE says
# otherwise. Here the differential suite replays both chaos corpora and
# a seeded random-script sweep wire-on vs wire-off, asserting
# byte-identical results, error messages, request streams, fault
# firings, and final screens; then the whole tier-1 suite runs a second
# time on the in-process oracle transport, so both sides of the
# differential stay green. See docs/PROTOCOL.md.
echo "==> wire-equivalence gate (both transports, both corpora)"
cargo test -q --offline --locked --test wire_equivalence
echo "==> full suite on the oracle transport (RTK_NO_WIRE=1)"
RTK_NO_WIRE=1 cargo test -q --workspace --offline --locked

# The wire budgets must hold on the oracle run too: the wire_send
# workload forces the framed transport regardless of RTK_NO_WIRE, so
# its frame/byte counters are pinned in both CI transport runs.
echo "==> bench --check-budgets (oracle transport)"
RTK_NO_WIRE=1 cargo run -p tk-bench --release --offline --locked --bin bench -- --check-budgets

# Compile-equivalence gate: the Tcl program cache must be invisible.
# Replay both chaos corpora and a seeded random-script sweep with the
# compiler on vs off (what RTK_NO_COMPILE=1 selects), asserting
# byte-identical results, error messages, and request streams; then run
# the interpreter's own suite with the compiler disabled outright, so
# the direct-eval oracle path stays green too. See docs/TCL.md.
echo "==> compile-equivalence gate (both modes, both corpora)"
cargo test -q --offline --locked --test compile_equivalence
RTK_NO_COMPILE=1 cargo test -q -p tcl --offline --locked

# Trace-integrity gate: replay both chaos corpora with the causal span
# tracer recording, asserting every run's span tree stays well formed
# (no orphaned parents, nothing left open at quiescence) even while
# faults drop, duplicate, reorder, and kill traffic. See
# docs/OBSERVABILITY.md.
echo "==> trace-integrity replay (both chaos corpora)"
cargo test -q --offline --locked --test trace_integrity

# Span export smoke: the traced workload suite must produce a valid
# Chrome trace-event file (the same invocation CI uploads as an
# artifact for Perfetto).
echo "==> bench --trace"
cargo run -p tk-bench --release --offline --locked --bin bench -- --trace target/trace.json

# Bounded chaos gate: replay the checked-in fault corpus, then a fixed
# batch of fresh seed pairs. Any panic fails CI and prints the
# (script_seed, fault_seed) pair plus a shrunk reproducer to check in.
echo "==> chaos gate (corpus + 200 fresh seeds)"
cargo run -p tk-bench --release --offline --locked --bin chaos -- \
    --corpus tests/chaos_corpus.txt --seeds 200

# Send-storm gate: N apps exchanging seeded nested/concurrent sends
# under fault plans, checked against the exactly-once-or-clean-error
# invariant (docs/SEND.md). The corpus carries its own per-entry app
# counts (3-, 8-, and 16-app storms); the fresh pairs run at the
# classic three apps, then a smaller fleet-sized sweep at 16.
echo "==> send-storm gate (corpus + 120 fresh seeds, 3 apps)"
cargo run -p tk-bench --release --offline --locked --bin chaos -- \
    --storm --corpus tests/chaos_storm_corpus.txt --seeds 120
echo "==> fleet-storm sweep (40 fresh seeds, 16 apps)"
cargo run -p tk-bench --release --offline --locked --bin chaos -- \
    --storm --apps 16 --seeds 40

# Byte-chaos gate: seed-deterministic byte-layer faults (corrupted
# bytes, truncated frames, injected garbage, split writes, stalled
# dispatch) applied inside the wire transport, checked differentially
# against a fault-free wire run: identical outcomes or clean-death
# evidence (checksum/watchdog counters), with an intact span tree and
# a clean Server::audit() resource reckoning either way (docs/FAULTS.md,
# "Byte-chaos mode"). Corpus replay first, then fresh pairs.
echo "==> byte-chaos gate (corpus + 150 fresh seeds)"
cargo run -p tk-bench --release --offline --locked --bin chaos -- \
    --bytes --corpus tests/chaos_bytes_corpus.txt --seeds 150

# Fleet gate: 64 applications in a send ring under the threaded wire
# transport, with a quota-throttled hot client and a deterministic
# faulted tail round. The p50/p95/p99 send-latency percentiles,
# backpressure stalls, and clean-error counts are pinned in
# BUDGETS.json's `fleet` section. The harness already runs the
# deterministic fleet twice per invocation and diffs the reports; the
# gate invokes it twice so the percentiles must also reproduce across
# processes.
echo "==> fleet gate (bench --fleet 64 --check-budgets, twice)"
cargo run -p tk-bench --release --offline --locked --bin bench -- --fleet 64 --check-budgets
cargo run -p tk-bench --release --offline --locked --bin bench -- --fleet 64 --check-budgets

echo "==> ci OK"
