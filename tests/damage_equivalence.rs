//! Damage narrowing must be invisible on screen: damage mode changes the
//! clip extents each repaint draws under, never which pixels end up in
//! the framebuffer once the app goes quiescent. These tests run seeded
//! random mutation scripts twice — damage on vs `TkApp::set_damage(false)`
//! (what `RTK_NO_DAMAGE=1` selects at startup) — and diff the
//! framebuffers pixel by pixel at every quiescence point.

use tk::{TkApp, TkEnv};
use xsim::{FaultAction, FaultPlan, Surface, XorShift};

/// How many seeded mutation scripts the equivalence sweep runs.
const SCRIPT_SEEDS: u64 = 200;
/// Mutation steps per script (updates are interleaved on top).
const OPS_PER_SCRIPT: usize = 24;

/// One step of a generated mutation script.
#[derive(Debug, Clone)]
enum Op {
    /// Evaluate a Tcl command (errors are legitimate outcomes).
    Tcl(String),
    /// Move the pointer and click button 1.
    Click(i32, i32),
    /// Drain idle tasks — a quiescence point where the screens must agree.
    Update,
}

/// The fixed interface every script mutates: one widget of each of the
/// damage-narrowing classes, plus a button and scale for the generic
/// full-redraw path.
fn build_ui(app: &TkApp) {
    for script in [
        "entry .e -width 18",
        "listbox .l -geometry 14x5",
        "checkbutton .c -text Check -variable flag",
        "button .b -text Push -command {set hits 1}",
        "canvas .v -geometry 90x60",
        "scale .k -from 0 -to 50 -length 80",
        "scrollbar .s",
        "pack append . .e {top} .l {top} .c {top} .b {top} .v {top} .k {top} .s {right filly}",
    ] {
        let _ = app.eval(script);
    }
    for i in 0..12 {
        let _ = app.eval(&format!(".l insert end {{line {i}}}"));
    }
    let _ = app.eval(".e insert 0 seed");
    app.update();
}

/// Generates the seed's mutation script. Every damage path a widget
/// implements is reachable: entry tail/end edits, cursor and selection
/// moves, listbox edits/scrolls/selections (the CopyArea blit path),
/// canvas item create/move/itemconfigure/delete, indicator blinks,
/// scrollbar trough updates, plus clicks and full reconfigures.
fn generate_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = XorShift::new(seed);
    let mut ops = Vec::new();
    for step in 0..n {
        let op = match rng.below(20) {
            0 => Op::Tcl(format!(
                ".e insert end {}",
                (b'a' + rng.below(26) as u8) as char
            )),
            1 => Op::Tcl(format!(
                ".e insert {} {}",
                rng.below(8),
                (b'A' + rng.below(26) as u8) as char
            )),
            2 => Op::Tcl(format!(".e delete {}", rng.below(8))),
            3 => Op::Tcl(format!(".e icursor {}", rng.below(10))),
            4 => Op::Tcl(format!(".e select from {}", rng.below(6))),
            5 => Op::Tcl(format!(".e select to {}", rng.below(10))),
            6 => Op::Tcl(".e select clear".into()),
            7 => Op::Tcl(format!(".l insert {} {{new {step}}}", rng.below(10))),
            8 => Op::Tcl(format!(".l delete {}", rng.below(12))),
            9 => Op::Tcl(format!(".l view {}", rng.below(10))),
            10 => Op::Tcl(format!(".l select from {}", rng.below(10))),
            11 => Op::Tcl(format!(".l select to {}", rng.below(10))),
            12 => Op::Tcl(format!("set flag {}", rng.below(2))),
            13 => Op::Tcl(format!(".b configure -text {{push {}}}", rng.below(5))),
            14 => {
                let x = rng.below(70) as i32;
                let y = rng.below(40) as i32;
                Op::Tcl(format!(
                    ".v create rectangle {x} {y} {} {} -fill red",
                    x + 4 + rng.below(16) as i32,
                    y + 4 + rng.below(12) as i32
                ))
            }
            15 => Op::Tcl(format!(
                ".v create text {} {} -text i{step}",
                5 + rng.below(60),
                10 + rng.below(40)
            )),
            16 => Op::Tcl(format!(
                ".v move all {} {}",
                rng.below(7) as i32 - 3,
                rng.below(7) as i32 - 3
            )),
            17 => {
                if rng.below(4) == 0 {
                    Op::Tcl(".v delete all".into())
                } else {
                    Op::Tcl(".v itemconfigure all -fill blue".into())
                }
            }
            18 => Op::Tcl(format!(".k set {}", rng.below(51))),
            _ => Op::Click(rng.below(160) as i32, rng.below(180) as i32),
        };
        ops.push(op);
        if rng.below(3) == 0 {
            ops.push(Op::Update);
        }
    }
    ops.push(Op::Update);
    ops
}

/// Runs a script in one damage mode. Returns a framebuffer hash at every
/// quiescence point, the final screen, its ASCII dump, and the client's
/// protocol stats.
fn run_script(seed: u64, damage: bool) -> (Vec<u64>, Surface, String, xsim::ClientStats) {
    let env = TkEnv::new();
    let app = env.app("equiv");
    app.set_damage(damage);
    app.conn().reset_obs();
    build_ui(&app);

    let mut hashes = Vec::new();
    for op in generate_ops(seed, OPS_PER_SCRIPT) {
        match op {
            Op::Tcl(script) => {
                let _ = app.eval(&script);
            }
            Op::Click(x, y) => {
                env.display().move_pointer(x, y);
                env.display().click(1);
            }
            Op::Update => {
                app.update();
                hashes.push(hash_surface(&env.display().screenshot()));
            }
        }
    }
    app.update();
    let dump = env.display().ascii_dump();
    (hashes, env.display().screenshot(), dump, app.conn().stats())
}

/// FNV-1a over the packed framebuffer words, row-major.
fn hash_surface(s: &Surface) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in s.raw_pixels() {
        h = (h ^ p as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn assert_same_pixels(seed: u64, on: &Surface, off: &Surface) {
    assert_eq!((on.width(), on.height()), (off.width(), off.height()));
    let (a, b) = (on.raw_pixels(), off.raw_pixels());
    if a == b {
        return;
    }
    let diffs = a.iter().zip(b).filter(|(x, y)| x != y).count();
    let first = a.iter().zip(b).position(|(x, y)| x != y).map(|i| {
        let (x, y) = (i as u32 % on.width(), i as u32 / on.width());
        (
            x,
            y,
            on.pixel(x as i32, y as i32),
            off.pixel(x as i32, y as i32),
        )
    });
    panic!(
        "seed {seed}: damage-on and damage-off framebuffers differ at \
         {diffs} pixels, first at {first:?}"
    );
}

/// The tentpole equivalence sweep: 200 seeded mutation scripts, each run
/// damage-on and damage-off, byte-identical at every quiescence point.
#[test]
fn damage_mode_is_pixel_identical_across_200_seeds() {
    let mut narrowed = 0u64;
    for seed in 1..=SCRIPT_SEEDS {
        let (on_hashes, on_screen, on_dump, on_stats) = run_script(seed, true);
        let (off_hashes, off_screen, off_dump, off_stats) = run_script(seed, false);
        assert_eq!(
            on_hashes, off_hashes,
            "seed {seed}: framebuffers diverged at a quiescence point"
        );
        assert_same_pixels(seed, &on_screen, &off_screen);
        assert_eq!(on_dump, off_dump, "seed {seed}: ascii dumps differ");
        // The modes must send the *same* request stream — damage only
        // narrows clip extents, so only pixels_drawn may differ.
        assert_eq!(
            on_stats.requests, off_stats.requests,
            "seed {seed}: request streams diverged between damage modes"
        );
        assert_eq!(on_stats.flushes, off_stats.flushes, "seed {seed}");
        if on_stats.pixels_drawn < off_stats.pixels_drawn {
            narrowed += 1;
        }
        assert!(
            on_stats.pixels_drawn <= off_stats.pixels_drawn,
            "seed {seed}: damage mode drew MORE pixels ({} vs {})",
            on_stats.pixels_drawn,
            off_stats.pixels_drawn
        );
    }
    // The sweep is only meaningful if damage actually narrowed repaints
    // in the vast majority of scripts.
    assert!(
        narrowed > SCRIPT_SEEDS * 9 / 10,
        "damage narrowed only {narrowed}/{SCRIPT_SEEDS} scripts"
    );
}

/// Is every fault in `plan` safe for on-vs-off comparison? Dropped or
/// duplicated *drawing* requests legitimately break equivalence: a full
/// repaint repairs a dropped fill on the next quiescence, while a
/// narrowed repaint may never touch those pixels again. Errors, delays,
/// reorders and kills key on sequence numbers, which the identical
/// request streams keep aligned.
fn plan_safe_for_damage_comparison(plan: &FaultPlan) -> bool {
    plan.specs().iter().all(|s| {
        !matches!(
            s.action,
            FaultAction::DropRequest | FaultAction::DuplicateRequest
        )
    })
}

/// Fault seeds of the checked-in chaos corpus (second column of
/// tests/chaos_corpus.txt).
fn corpus_fault_seeds() -> Vec<u64> {
    include_str!("chaos_corpus.txt")
        .lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            let mut it = line.split_whitespace();
            let _script = it.next()?;
            it.next()?.parse().ok()
        })
        .collect()
}

/// Runs a mutation script under a fault plan in one damage mode.
fn run_script_with_plan(seed: u64, damage: bool, plan: &FaultPlan) -> (Surface, u64) {
    let env = TkEnv::new();
    let app = env.app("equiv");
    app.set_damage(damage);
    app.conn().reset_obs();
    env.display()
        .with_server(|s| s.install_fault_plan(plan.clone()));
    build_ui(&app);
    for op in generate_ops(seed, OPS_PER_SCRIPT) {
        match op {
            Op::Tcl(script) => {
                let _ = app.eval(&script);
            }
            Op::Click(x, y) => {
                env.display().move_pointer(x, y);
                env.display().click(1);
            }
            Op::Update => app.update(),
        }
    }
    app.update();
    let faults = app
        .conn()
        .with_obs(|o| o.faults_injected)
        .unwrap_or_else(|| {
            env.display()
                .with_server(|s| s.fault_plan().map_or(0, |p| p.fired_log().len() as u64))
        });
    (env.display().screenshot(), faults)
}

/// Damage equivalence must survive the chaos corpus: for every corpus
/// plan whose faults are comparison-safe, the damage-on and damage-off
/// runs inject the same faults and render the same pixels.
#[test]
fn damage_mode_is_pixel_identical_under_fault_corpus() {
    let seeds = corpus_fault_seeds();
    assert!(!seeds.is_empty(), "corpus file is empty");
    let mut compared = 0;
    let mut total_faults = 0;
    for seed in seeds {
        let plan = tk_bench::chaos::generate_plan(seed);
        if !plan_safe_for_damage_comparison(&plan) {
            // Drop/duplicate faults are covered by the batched-vs-
            // unbatched corpus test with damage left on (the default).
            continue;
        }
        let (on, on_faults) = run_script_with_plan(seed, true, &plan);
        let (off, off_faults) = run_script_with_plan(seed, false, &plan);
        assert_eq!(
            on_faults,
            off_faults,
            "fault seed {seed}: different faults fired under damage\n{}",
            plan.describe()
        );
        assert_same_pixels(seed, &on, &off);
        compared += 1;
        total_faults += on_faults;
    }
    assert!(compared > 0, "corpus has no comparison-safe plan");
    assert!(total_faults > 0, "no comparison-safe plan fired a fault");
}

/// A targeted narrowing check (guards against damage silently going
/// full-window): one appended keystroke in a wide entry must repaint a
/// small fraction of the pixels the full-redraw mode repaints.
#[test]
fn end_edit_keystroke_repaints_a_sliver() {
    let pixels_for = |damage: bool| {
        let env = TkEnv::new();
        let app = env.app("equiv");
        app.set_damage(damage);
        let _ = app.eval("entry .e -width 40");
        let _ = app.eval("pack append . .e {top}");
        let _ = app.eval(".e insert 0 hello");
        app.update();
        app.conn().reset_obs();
        let _ = app.eval(".e insert end x");
        app.update();
        (app.conn().stats().pixels_drawn, env.display().screenshot())
    };
    let (on_px, on_screen) = pixels_for(true);
    let (off_px, off_screen) = pixels_for(false);
    assert_same_pixels(0, &on_screen, &off_screen);
    assert!(on_px > 0, "damage repaint drew nothing");
    assert!(
        on_px * 10 <= off_px,
        "end-edit keystroke should repaint <10% of the entry: {on_px} vs {off_px}"
    );
}
