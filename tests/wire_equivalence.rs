//! The wire transport must be invisible: with the framed byte transport
//! on (the default) and off (`RTK_NO_WIRE=1` / `Display::set_wire`),
//! every script must produce byte-identical results, error messages,
//! `errorInfo` traces, X request streams, fault firings, and screens.
//! The in-process path is the semantics oracle; these tests replay the
//! checked-in chaos corpora under their fault plans plus a seeded random
//! sweep over both transports and diff everything observable.
//!
//! `Display::set_wire(false)` selects at runtime exactly what
//! `RTK_NO_WIRE=1` selects at startup, so the sweep covers the env var's
//! code path without env-mutation races.

use tk::{TkApp, TkEnv};
use tk_bench::chaos::{
    generate_ops, generate_plan, generate_storm_ops, generate_storm_plan, Op, SCRIPT_OPS,
    STORM_APPS, STORM_OPS,
};
use xsim::XorShift;

/// Corpus lines are `script_seed fault_seed [apps]`; the optional third
/// column is the storm's app count (the two-app corpus carries none and
/// the default applies).
fn parse_entries(text: &str) -> Vec<(u64, u64, usize)> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut it = line.split_whitespace();
            Some((
                it.next().unwrap().parse().expect("script seed"),
                it.next().unwrap().parse().expect("fault seed"),
                it.next()
                    .map(|n| n.parse().expect("app count"))
                    .unwrap_or(STORM_APPS),
            ))
        })
        .collect()
}

/// Everything one replay produces that the other transport must
/// reproduce byte for byte.
#[derive(Debug, PartialEq)]
struct Replay {
    /// Per-Tcl-op outcome: the result string, or the full exception
    /// (code, message, trace).
    tcl: Vec<Result<String, tcl::Exception>>,
    /// Final `errorInfo` per app — the stack trace of the last error.
    error_info: Vec<Option<String>>,
    /// Per-app protocol stream: (requests, flushes, round_trips).
    protocol: Vec<(u64, u64, u64)>,
    /// Faults fired on each connection. Fault schedules key on sequence
    /// numbers, which both transports assign at issue time — so the
    /// same requests must trip the same faults over the wire.
    faults: Vec<u64>,
    /// Final screen contents.
    dump: String,
}

/// Replays an op list against apps `names` over one transport, under an
/// optional fault plan.
fn replay(ops: &[Op], names: &[&str], wire: bool, plan: Option<&xsim::FaultPlan>) -> Replay {
    let env = TkEnv::new();
    env.display().set_wire(wire);
    let apps: Vec<TkApp> = names.iter().map(|n| env.app(n)).collect();
    env.dispatch_all();
    if let Some(plan) = plan {
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));
    }
    let mut tcl = Vec::new();
    for op in ops {
        match op {
            Op::Tcl(i, s) => tcl.push(apps[*i].eval(s)),
            Op::Click(x, y) => {
                env.display().move_pointer(*x, *y);
                env.display().click(1);
                env.dispatch_all();
            }
            Op::Key(c) => {
                env.display().type_char(*c);
                env.dispatch_all();
            }
            Op::Advance(ms) => env.advance(*ms),
        }
    }
    env.dispatch_all();
    // The wire path must actually be exercised when requested: frame
    // counters only move on the byte transport.
    for app in &apps {
        let frames = app.conn().with_obs(|o| o.wire.frames_encoded).unwrap_or(0);
        if wire {
            assert!(frames > 0, "wire replay encoded no frames");
        } else {
            assert_eq!(frames, 0, "oracle replay touched the wire codec");
        }
    }
    Replay {
        tcl,
        error_info: apps
            .iter()
            .map(|a| a.interp().get_var_at(0, "errorInfo", None).ok())
            .collect(),
        protocol: apps
            .iter()
            .map(|a| {
                let s = a.conn().stats();
                (s.requests, s.flushes, s.round_trips)
            })
            .collect(),
        faults: apps
            .iter()
            .map(|a| a.conn().with_obs(|o| o.faults_injected).unwrap_or(0))
            .collect(),
        dump: env.display().ascii_dump(),
    }
}

fn assert_equivalent(label: &str, wire: &Replay, oracle: &Replay, ops: &[Op]) {
    for (i, (w, o)) in wire.tcl.iter().zip(&oracle.tcl).enumerate() {
        assert_eq!(
            w,
            o,
            "{label}: wire and in-process transports disagree on Tcl op {i} \
             ({:?})",
            ops.iter()
                .filter(|op| matches!(op, Op::Tcl(..)))
                .nth(i)
                .map(|op| op.to_string())
        );
    }
    assert_eq!(
        wire.error_info, oracle.error_info,
        "{label}: errorInfo diverged between transports"
    );
    assert_eq!(
        wire.protocol, oracle.protocol,
        "{label}: request streams diverged between transports"
    );
    assert_eq!(
        wire.faults, oracle.faults,
        "{label}: different faults fired between transports"
    );
    assert_eq!(wire.dump, oracle.dump, "{label}: screens diverged");
}

/// Every chaos-corpus pair — random Tcl/Tk scripts across two apps under
/// the corpus fault plans — must replay identically over the framed wire
/// and the in-process oracle: same results, same error strings, same
/// request streams, same faults, same final screen.
#[test]
fn chaos_corpus_is_identical_across_transports() {
    let pairs = parse_entries(include_str!("chaos_corpus.txt"));
    assert!(!pairs.is_empty(), "corpus file is empty");
    for (script_seed, fault_seed, _) in pairs {
        let ops = generate_ops(script_seed, SCRIPT_OPS);
        let plan = generate_plan(fault_seed);
        let names = ["chaos0", "chaos1"];
        let wire = replay(&ops, &names, true, Some(&plan));
        let oracle = replay(&ops, &names, false, Some(&plan));
        assert_equivalent(
            &format!("chaos pair ({script_seed}, {fault_seed})"),
            &wire,
            &oracle,
            &ops,
        );
    }
}

/// The storm corpus — three apps exchanging nested/concurrent sends
/// under faults — must also be transport-blind. `send` round-trips
/// through the display for every cross-app eval, so this covers deep
/// request pipelines over the wire.
#[test]
fn storm_corpus_is_identical_across_transports() {
    let entries = parse_entries(include_str!("chaos_storm_corpus.txt"));
    assert!(!entries.is_empty(), "storm corpus file is empty");
    for (script_seed, fault_seed, napps) in entries {
        let names: Vec<String> = (0..napps).map(|i| format!("storm{i}")).collect();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        let ops = generate_storm_ops(script_seed, STORM_OPS, napps);
        let plan = generate_storm_plan(fault_seed, napps);
        let wire = replay(&ops, &names, true, Some(&plan));
        let oracle = replay(&ops, &names, false, Some(&plan));
        assert_equivalent(
            &format!("storm entry ({script_seed}, {fault_seed}, {napps} apps)"),
            &wire,
            &oracle,
            &ops,
        );
    }
}

/// A seeded random sweep beyond the checked-in corpora: fresh script
/// seeds, half of them under fresh fault plans, replayed over both
/// transports. Catches divergence the curated corpora happen to miss.
#[test]
fn random_scripts_agree_across_transports() {
    const CASES: usize = 60;
    let mut rng = XorShift::new(0x517e);
    let names = ["sweep0", "sweep1"];
    for case in 0..CASES {
        let script_seed = rng.next_u64();
        let ops = generate_ops(script_seed, SCRIPT_OPS);
        let plan = if case % 2 == 0 {
            Some(generate_plan(rng.next_u64()))
        } else {
            None
        };
        let wire = replay(&ops, &names, true, plan.as_ref());
        let oracle = replay(&ops, &names, false, plan.as_ref());
        assert_equivalent(
            &format!("sweep case {case} (seed {script_seed})"),
            &wire,
            &oracle,
            &ops,
        );
    }
}
