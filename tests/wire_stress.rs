//! Threaded-server stress: the framed wire transport's reason to exist
//! is that each `TkApp` can own a thread while one server thread owns
//! the semantics. These tests run several apps on their own OS threads
//! against one shared wire server, exchanging `send`s and redraws, and
//! assert the three properties that matter: no deadlock, per-client
//! event ordering, and clean teardown when one client's connection is
//! killed mid-flush.
//!
//! The mesh itself lives in `tk_bench::fleet::run_wire_mesh` — the same
//! parameterized harness `bench --fleet N` drives at fleet sizes — so
//! this file only picks the sizes and owns the kill scenario. A
//! watchdog aborts the process if a test wedges: a deadlock must fail
//! CI loudly, not hang it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use tk::TkEnv;
use tk_bench::fleet::{run_wire_mesh, watchdog, MeshConfig};
use xsim::{Display, FaultPlan};

const APPS: usize = 4;
const ROUNDS: u64 = 6;
/// Virtual-time send deadline: generous, because the target runs on
/// another OS thread and "slow" must not be misread as "dead".
const SEND_TIMEOUT_MS: u64 = 120_000;

/// N apps, one per thread, all sending to all the others every round
/// while repainting their own UI (`fanout = APPS - 1` makes the shared
/// ring harness all-to-all). Ordering and completion are asserted inside
/// the harness; this test adds only the post-mesh display check.
#[test]
fn threaded_apps_exchange_sends_without_deadlock_and_in_order() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("send mesh", 240, done.clone());

    let env = TkEnv::new();
    let cfg = MeshConfig {
        apps: APPS,
        rounds: ROUNDS,
        fanout: APPS - 1,
        send_timeout_ms: SEND_TIMEOUT_MS,
        prefix: "worker",
    };
    match run_wire_mesh(&env, &cfg) {
        Some(report) => {
            assert_eq!(report.sends, (APPS * (APPS - 1)) as u64 * ROUNDS);
            // The shared display outlives the worker threads: the main
            // thread can still observe the final screen through the same
            // server.
            assert!(!env.display().ascii_dump().is_empty());
        }
        None => {
            // RTK_NO_WIRE=1 forces the in-process oracle, which is
            // single-threaded by design — nothing to stress.
            eprintln!("skipping: wire transport disabled via RTK_NO_WIRE");
        }
    }
    done.store(true, Ordering::SeqCst);
}

/// One of the threaded clients schedules a kill against its own
/// connection, sequence-keyed a few requests ahead, so the connection
/// dies *during a flush* while its thread is mid-conversation. The
/// victim must observe its own death cleanly (errors, then app
/// destruction — no panic, no hang), the survivors must keep talking to
/// each other, and their sends to the dead app must fail with a
/// diagnosis rather than wedge.
#[test]
fn killing_a_client_mid_flush_tears_down_cleanly() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("mid-flush kill", 240, done.clone());

    let env = TkEnv::new();
    let display = env.display();
    if !display.wire() {
        done.store(true, Ordering::SeqCst);
        eprintln!("skipping: wire transport disabled via RTK_NO_WIRE");
        return;
    }
    let handle = display.wire_handle().expect("wire transport has a handle");

    let registered = Arc::new(Barrier::new(APPS));
    let killed = Arc::new(Barrier::new(APPS));
    // Registration rewrites a shared registry shard (read-modify-write),
    // which real Tk serializes with XGrabServer; app startup takes this
    // lock so announcements don't clobber each other.
    let startup = Arc::new(Mutex::new(()));
    let mut workers = Vec::new();
    for i in 0..APPS {
        let handle = handle.clone();
        let registered = registered.clone();
        let killed = killed.clone();
        let startup = startup.clone();
        workers.push(thread::spawn(move || {
            let env = TkEnv::with_display(Display::from_wire(&handle));
            let app = {
                let _g = startup.lock().unwrap();
                env.app(&format!("victim{i}"))
            };
            app.eval("label .l -text boot").unwrap();
            app.eval("pack append . .l {top}").unwrap();
            env.dispatch_all();
            registered.wait();

            if i == 0 {
                // The victim: schedule a kill on this connection a few
                // requests ahead, then keep drawing. The fatal request
                // is buffered with the others and the connection dies
                // when the batch flushes.
                let client = app.conn().client_id();
                let seq = app.conn().sequence();
                env.display().with_server(|s| {
                    s.install_fault_plan(FaultPlan::default().kill_at(client.0, seq + 4))
                });
                for round in 0..20 {
                    if app.destroyed() {
                        break;
                    }
                    let _ = app.eval(&format!(".l configure -text r{round}"));
                    env.dispatch_all();
                }
                assert!(
                    app.destroyed(),
                    "victim survived a kill scheduled on its own sequence numbers"
                );
                assert!(!app.conn().alive(), "connection still alive after kill");
                killed.wait();
                return;
            }

            // Survivors: wait until the victim is dead, then prove the
            // display still works — sends between live apps succeed,
            // sends to the corpse fail fast with a diagnosis.
            killed.wait();
            let peer = if i == APPS - 1 { 1 } else { i + 1 };
            let r = app.eval(&format!(
                "send -timeout {SEND_TIMEOUT_MS} victim{peer} {{expr {i} * 10}}"
            ));
            assert_eq!(r.unwrap(), format!("{}", i * 10));
            let dead = app.eval("send -timeout 2000 victim0 {expr 1}").unwrap_err();
            assert!(
                dead.msg.contains("victim0"),
                "unexpected death diagnosis: {}",
                dead.msg
            );
            app.eval(&format!(".l configure -text survivor{i}"))
                .unwrap();
            env.dispatch_all();
        }));
    }
    for (i, w) in workers.into_iter().enumerate() {
        w.join().unwrap_or_else(|_| panic!("victim{i} panicked"));
    }

    // Teardown left the server consistent: the main thread can connect
    // a fresh app and repaint the world.
    let post = env.app("postmortem");
    post.eval("label .l -text after").unwrap();
    post.eval("pack append . .l {top}").unwrap();
    env.dispatch_all();
    assert!(env.display().ascii_dump().contains("after"));
    done.store(true, Ordering::SeqCst);
}
