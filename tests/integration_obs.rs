//! End-to-end tests of the observability core: the `obs` command surface
//! must agree with the protocol-level accounting, and `obs reset` must
//! make workloads exactly reproducible.

use tk::TkEnv;

/// Parses a flat Tcl name/value list (`obs counters` output) into pairs.
fn parse_counters(list: &str) -> Vec<(String, u64)> {
    let words: Vec<String> = tcl::parse_list(list).expect("valid list");
    words
        .chunks(2)
        .map(|c| (c[0].clone(), c[1].parse().expect("numeric counter")))
        .collect()
}

fn counter(pairs: &[(String, u64)], name: &str) -> u64 {
    pairs
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn fifty_buttons(app: &tk::TkApp) {
    for i in 0..50 {
        app.eval(&format!("button .b{i} -text \"Button {i}\""))
            .unwrap();
        app.eval(&format!("pack append . .b{i} {{top fillx}}"))
            .unwrap();
    }
    app.update();
    for i in 0..50 {
        app.eval(&format!("destroy .b{i}")).unwrap();
    }
    app.update();
}

#[test]
fn obs_counters_agree_with_connection_stats() {
    let env = TkEnv::new();
    let app = env.app("fifty");
    fifty_buttons(&app);

    let stats = app.conn().stats();
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert_eq!(counter(&pairs, "protocol.requests"), stats.requests);
    assert_eq!(counter(&pairs, "protocol.round_trips"), stats.round_trips);
    assert_eq!(counter(&pairs, "protocol.flushes"), stats.flushes);
    assert_eq!(
        counter(&pairs, "protocol.batched_requests"),
        stats.batched_requests
    );
    assert_eq!(counter(&pairs, "protocol.max_batch"), stats.max_batch);

    // Batching really happened: far fewer flushes than requests, and the
    // batch high-water mark covers more than one request.
    assert!(stats.flushes > 0, "workload never flushed");
    assert!(
        stats.flushes * 10 < stats.requests,
        "batching ineffective: {} flushes for {} requests",
        stats.flushes,
        stats.requests
    );
    assert!(stats.max_batch > 1, "no request ever shared a flush");

    // The per-kind breakdown sums to the total request count.
    let by_kind: u64 = pairs
        .iter()
        .filter(|(n, _)| n.starts_with("req."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(by_kind, stats.requests);

    // 50 buttons existed: at least 50 CreateWindow requests and some
    // cache activity.
    assert!(counter(&pairs, "req.CreateWindow") >= 50);
    assert!(counter(&pairs, "cache.color.misses") > 0);
    assert!(counter(&pairs, "idle.relayouts") > 0);
}

#[test]
fn reset_makes_workload_counts_reproducible() {
    let env = TkEnv::new();
    let app = env.app("fifty");
    // Warm every cache so both measured runs hit the same cache state.
    // That includes the Tcl program cache, and the measurement scripts
    // themselves: reading the counters evals "obs counters", which would
    // otherwise show up as a compile in the first epoch only.
    fifty_buttons(&app);
    app.eval("obs counters").unwrap();

    app.eval("obs reset").unwrap();
    fifty_buttons(&app);
    let first = parse_counters(&app.eval("obs counters").unwrap());

    app.eval("obs reset").unwrap();
    fifty_buttons(&app);
    let second = parse_counters(&app.eval("obs counters").unwrap());

    // Counters must reproduce exactly; histograms carry wall-clock noise
    // so they are excluded from `obs counters` by design. This includes
    // the flush/batch counters: `obs reset` flushes the output buffer
    // first, so each epoch starts from an empty buffer and batch
    // boundaries land in the same places.
    assert_eq!(first, second);
    assert!(counter(&first, "protocol.requests") > 0);
    assert!(counter(&first, "protocol.flushes") > 0);
}

#[test]
fn reset_zeroes_flush_and_batch_counters() {
    let env = TkEnv::new();
    let app = env.app("fifty");
    fifty_buttons(&app);
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert!(counter(&pairs, "protocol.flushes") > 0);
    assert!(counter(&pairs, "protocol.batched_requests") > 0);

    app.eval("obs reset").unwrap();
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    for name in [
        "protocol.requests",
        "protocol.round_trips",
        "protocol.flushes",
        "protocol.batched_requests",
        "protocol.max_batch",
        "protocol.max_pending_replies",
    ] {
        assert_eq!(counter(&pairs, name), 0, "{name} survived reset");
    }
}

#[test]
fn obs_reset_zeroes_tcl_counters_but_keeps_the_program_cache_warm() {
    let env = TkEnv::new();
    let app = env.app("fifty");
    app.interp().set_compile(true);
    for _ in 0..3 {
        app.eval("set warmth 1").unwrap();
    }
    // Warm the measurement script too, so reading the counters below is a
    // cache hit rather than a compile.
    app.eval("obs counters").unwrap();
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert!(counter(&pairs, "tcl.compiles") > 0);
    assert!(counter(&pairs, "tcl.compile_cache_hits") > 0);

    app.eval("obs reset").unwrap();
    // The counters restart from zero...
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert_eq!(counter(&pairs, "tcl.compiles"), 0);
    assert_eq!(counter(&pairs, "tcl.compile_cache_misses"), 0);
    // ...but the program cache survives the reset: replaying the warmed
    // script is a cache hit, not a fresh compile.
    app.eval("set warmth 1").unwrap();
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert_eq!(counter(&pairs, "tcl.compiles"), 0);
    assert!(counter(&pairs, "tcl.compile_cache_hits") >= 2);
}

#[test]
fn dump_json_is_valid_and_complete() {
    let env = TkEnv::new();
    let app = env.app("fifty");
    fifty_buttons(&app);
    let j = app.eval("obs dump -format json").unwrap();
    assert!(rtk_obs::json::is_valid(&j), "{j}");
    for key in [
        "\"app\"",
        "\"protocol\"",
        "\"by_kind\"",
        "\"round_trip_ns\"",
        "\"cache\"",
        "\"hits\"",
        "\"misses\"",
        "\"toolkit\"",
        "\"counters\"",
        "\"histograms\"",
        "\"tcl\"",
        "\"compile_enabled\"",
    ] {
        assert!(j.contains(key), "dump missing {key}: {j}");
    }
}

#[test]
fn trace_captures_the_workload_when_enabled() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("obs trace on").unwrap();
    app.eval("frame .f; frame .g").unwrap();
    let trace = app.eval("obs trace 100").unwrap();
    let create_lines = trace.lines().filter(|l| l.contains("CreateWindow")).count();
    assert_eq!(create_lines, 2, "{trace}");
    // The dump reflects the enabled trace.
    let j = app.eval("obs dump -format json").unwrap();
    assert!(j.contains("\"trace_enabled\":true"), "{j}");
}

/// `obs reset` is a span-epoch boundary: the recorded spans are cleared,
/// the epoch advances, and spans begun after the reset land in the new
/// epoch with no dangling references to the cleared ones.
#[test]
fn obs_reset_epoch_scopes_the_span_store() {
    let env = TkEnv::new();
    let app = env.app("spans");
    fifty_buttons(&app);
    assert!(!app.tracer().is_empty(), "workload recorded no spans");
    let epoch_before = app.tracer().epoch();

    app.eval("obs reset").unwrap();
    assert!(
        app.tracer().is_empty(),
        "obs reset left spans from the previous epoch"
    );
    assert_eq!(app.tracer().epoch(), epoch_before + 1);
    assert_eq!(app.tracer().open_count(), 0);

    // Work after the reset records into the new epoch, well formed.
    fifty_buttons(&app);
    let spans = app.tracer().snapshot();
    assert!(!spans.is_empty());
    assert!(spans.iter().all(|s| s.epoch == epoch_before + 1));
    app.tracer()
        .check_integrity()
        .expect("post-reset span tree");

    // The textual surface agrees: `obs spans` renders the new epoch only.
    let tree = app.eval("obs spans tree").unwrap();
    assert!(tree.contains("update"), "{tree}");
}

/// The wire-transport counters and the audit counters are epoch-scoped
/// like everything else: `obs reset` zeroes them, and a clean post-run
/// audit after the reset still reports no violations.
#[test]
fn obs_reset_zeroes_wire_and_audit_counters() {
    let display = xsim::Display::new();
    display.set_wire(true);
    let env = TkEnv::with_display(display);
    let app = env.app("wirereset");
    fifty_buttons(&app);

    // The workload crossed the framed transport and a first audit ran.
    let audit = app.eval("obs audit").unwrap();
    assert_eq!(audit, "", "clean run must audit clean: {audit}");
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert!(counter(&pairs, "wire.frames_encoded") > 0, "{pairs:?}");
    assert!(counter(&pairs, "wire.flushes") > 0, "{pairs:?}");
    assert_eq!(counter(&pairs, "wire.checksum_errors"), 0, "{pairs:?}");
    assert_eq!(counter(&pairs, "wire.watchdog_fires"), 0, "{pairs:?}");
    assert_eq!(counter(&pairs, "audit.runs"), 1, "{pairs:?}");
    assert_eq!(counter(&pairs, "audit.violations"), 0, "{pairs:?}");

    // Reset is an epoch boundary for the wire and audit families too.
    app.eval("obs reset").unwrap();
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    for name in [
        "wire.frames_encoded",
        "wire.bytes_encoded",
        "wire.frames_decoded",
        "wire.flushes",
        "wire.checksum_errors",
        "wire.watchdog_fires",
        "audit.runs",
        "audit.violations",
    ] {
        assert_eq!(counter(&pairs, name), 0, "{name} survived obs reset");
    }

    // And the post-reset world still audits clean end to end.
    assert_eq!(app.eval("obs audit").unwrap(), "");
    let pairs = parse_counters(&app.eval("obs counters").unwrap());
    assert_eq!(counter(&pairs, "audit.runs"), 1, "{pairs:?}");
}
