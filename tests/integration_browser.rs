//! End-to-end reproduction of Figure 9: the 21-line directory browser
//! script, exercised through the full stack — Tcl interpreter, Tk
//! intrinsics, widgets, packer, selection, bindings, and the simulated
//! X server — with the user driven through synthesized input events.

use std::cell::RefCell;
use std::rc::Rc;

use tk::TkEnv;

const BROWSE_SCRIPT: &str = r#"
scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}
proc browse {dir file} {
    if {[string compare $dir "."] != 0} {set file $dir/$file}
    if [file $file isdirectory] {
        set cmd [list exec sh -c "browse $file &"]
        eval $cmd
    } else {
        if [file $file isfile] {exec mx $file} else {
            print "$file isn't a directory or regular file\n"
        }
    }
}
if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
    .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}
"#;

struct FakeExec {
    listing: Vec<String>,
    launched: Rc<RefCell<Vec<String>>>,
}

impl tcl::Executor for FakeExec {
    fn run(&self, _i: &tcl::Interp, argv: &[String]) -> Result<String, String> {
        match argv[0].as_str() {
            "ls" => Ok(self.listing.join("\n")),
            "mx" | "sh" => {
                self.launched.borrow_mut().push(argv.join(" "));
                Ok(String::new())
            }
            other => Err(format!("couldn't execute \"{other}\"")),
        }
    }
}

struct Browser {
    env: TkEnv,
    app: tk::TkApp,
    launched: Rc<RefCell<Vec<String>>>,
    dir: std::path::PathBuf,
}

fn setup(tag: &str) -> Browser {
    let dir = std::env::temp_dir().join(format!("rtk_browser_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("subdir")).unwrap();
    for f in ["alpha.txt", "beta.c", "gamma.h"] {
        std::fs::write(dir.join(f), "x").unwrap();
    }
    let env = TkEnv::new();
    let app = env.app("browse");
    let launched = Rc::new(RefCell::new(Vec::new()));
    let mut listing: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    listing.sort();
    app.interp().set_executor(Rc::new(FakeExec {
        listing,
        launched: launched.clone(),
    }));
    let dirs = dir.display().to_string();
    app.interp()
        .set_var_at(0, "argv", None, &tcl::format_list(&[dirs]))
        .unwrap();
    app.interp().set_var_at(0, "argc", None, "1").unwrap();
    app.eval(BROWSE_SCRIPT).expect("script runs");
    app.update();
    Browser {
        env,
        app,
        launched,
        dir,
    }
}

/// Clicks on the listbox line holding item `index`.
fn click_item(b: &Browser, index: i32) {
    let list = b.app.window(".list").unwrap();
    b.env
        .display()
        .move_pointer(list.x.get() + 20, list.y.get() + 4 + index * 13 + 6);
    b.env.display().click(1);
    b.env.dispatch_all();
}

#[test]
fn script_populates_listbox() {
    let b = setup("populate");
    assert_eq!(b.app.eval(".list size").unwrap(), "4");
    assert_eq!(b.app.eval(".list get 0").unwrap(), "alpha.txt");
    assert_eq!(b.app.eval(".list get end").unwrap(), "subdir");
}

#[test]
fn layout_matches_figure10() {
    let b = setup("layout");
    // Scrollbar on the right at full height, listbox filling the rest.
    let main = b.app.window(".").unwrap();
    let scroll = b.app.window(".scroll").unwrap();
    let list = b.app.window(".list").unwrap();
    assert_eq!(
        scroll.x.get() + scroll.width.get() as i32,
        main.width.get() as i32
    );
    assert_eq!(scroll.height.get(), main.height.get());
    assert_eq!(list.height.get(), main.height.get());
    // The dump shows all four entries.
    let dump = b.env.display().ascii_dump();
    for item in ["alpha.txt", "beta.c", "gamma.h", "subdir"] {
        assert!(dump.contains(item), "missing {item} in\n{dump}");
    }
}

#[test]
fn space_browses_selected_file_with_mx() {
    let b = setup("mx");
    click_item(&b, 1); // beta.c
    assert_eq!(b.app.eval("selection get").unwrap(), "beta.c");
    b.env.display().press_key("space");
    b.env.dispatch_all();
    let launched = b.launched.borrow().join("; ");
    assert_eq!(
        launched,
        format!("mx {}/beta.c", b.dir.display()),
        "space on a file must run the editor"
    );
}

#[test]
fn space_browses_directory_with_subshell() {
    let b = setup("sh");
    click_item(&b, 3); // subdir
    b.env.display().press_key("space");
    b.env.dispatch_all();
    let launched = b.launched.borrow().join("; ");
    assert!(
        launched.contains("sh -c") && launched.contains("subdir"),
        "space on a directory must spawn a sub-browser: {launched}"
    );
}

#[test]
fn missing_file_prints_diagnostic() {
    let b = setup("missing");
    let buf = b.app.interp().capture_output();
    // Browse something that is neither file nor directory.
    b.app.eval("browse /definitely no-such-entry").unwrap();
    assert!(
        buf.borrow().contains("isn't a directory or regular file"),
        "{}",
        buf.borrow()
    );
}

#[test]
fn control_q_destroys_application() {
    let b = setup("quit");
    assert!(!b.app.destroyed());
    b.env.display().set_modifiers(xsim::event::state::CONTROL);
    b.env.display().type_char('q');
    b.env.display().set_modifiers(0);
    b.env.dispatch_all();
    assert!(b.app.destroyed());
}

#[test]
fn scrollbar_scrolls_long_listing() {
    let dir = std::env::temp_dir().join("rtk_browser_it_long");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for i in 0..40 {
        std::fs::write(dir.join(format!("file{i:02}.txt")), "x").unwrap();
    }
    let env = TkEnv::new();
    let app = env.app("browse");
    let launched = Rc::new(RefCell::new(Vec::new()));
    let mut listing: Vec<String> = (0..40).map(|i| format!("file{i:02}.txt")).collect();
    listing.sort();
    app.interp()
        .set_executor(Rc::new(FakeExec { listing, launched }));
    let dirs = dir.display().to_string();
    app.interp()
        .set_var_at(0, "argv", None, &tcl::format_list(&[dirs]))
        .unwrap();
    app.interp().set_var_at(0, "argc", None, "1").unwrap();
    app.eval(BROWSE_SCRIPT).unwrap();
    app.update();

    // Click the scrollbar's down-arrow three times.
    let scroll = app.window(".scroll").unwrap();
    for _ in 0..3 {
        env.display().move_pointer(
            scroll.x.get() + scroll.width.get() as i32 / 2,
            scroll.y.get() + scroll.height.get() as i32 - 3,
        );
        env.display().click(1);
        env.dispatch_all();
    }
    let state = app.eval(".scroll get").unwrap();
    let first: i64 = state.split_whitespace().nth(2).unwrap().parse().unwrap();
    assert_eq!(first, 3, "three arrow clicks scroll three units: {state}");
    // The top visible item changed accordingly.
    assert_eq!(app.eval(".list nearest 1").unwrap(), "3");
}
