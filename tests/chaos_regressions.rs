//! Chaos-fuzz regression tests.
//!
//! Every `(script_seed, fault_seed)` pair in `tests/chaos_corpus.txt`
//! replays a seeded random Tcl/Tk script against a seeded fault plan via
//! `tk_bench::chaos`. The corpus covers the whole fault taxonomy (all
//! nine kinds in `xsim::fault::FAULT_KIND_NAMES`), and any pair the
//! fuzzer finds to panic is added here — minimized and named — once the
//! underlying bug is fixed. Running a pair must never panic: faults are
//! expected to surface as Tcl errors, `tkerror` reports, or clean
//! connection teardown.

use tk_bench::chaos::{
    generate_ops, generate_plan, run_case, run_ops, run_storm_case, SCRIPT_OPS, STORM_APPS,
};
use xsim::fault::{FAULT_KIND_COUNT, FAULT_KIND_NAMES};

/// Parses corpus lines of the form `script_seed fault_seed [apps]` —
/// the third column is the storm's app count and defaults to the
/// classic three-app storm when absent.
fn parse_entries(text: &str) -> Vec<(u64, u64, usize)> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut it = line.split_whitespace();
            Some((
                it.next().unwrap().parse().expect("script seed"),
                it.next().unwrap().parse().expect("fault seed"),
                it.next()
                    .map(|n| n.parse().expect("app count"))
                    .unwrap_or(STORM_APPS),
            ))
        })
        .collect()
}

fn corpus() -> Vec<(u64, u64)> {
    parse_entries(include_str!("chaos_corpus.txt"))
        .into_iter()
        .map(|(s, f, _)| (s, f))
        .collect()
}

fn storm_corpus() -> Vec<(u64, u64, usize)> {
    parse_entries(include_str!("chaos_storm_corpus.txt"))
}

fn fault_kind_index(name: &str) -> usize {
    FAULT_KIND_NAMES
        .iter()
        .position(|n| *n == name)
        .expect("known fault kind")
}

#[test]
fn every_corpus_pair_replays_without_panicking() {
    for (script_seed, fault_seed) in corpus() {
        let r = run_case(script_seed, fault_seed);
        assert!(
            r.is_ok(),
            "corpus pair ({script_seed}, {fault_seed}) panicked: {}",
            r.unwrap_err()
        );
    }
}

#[test]
fn the_corpus_exercises_every_fault_kind() {
    let mut totals = [0u64; FAULT_KIND_COUNT];
    for (script_seed, fault_seed) in corpus() {
        let stats = run_case(script_seed, fault_seed).expect("corpus pair must not panic");
        for (slot, n) in totals.iter_mut().zip(stats.fault_counts) {
            *slot += n;
        }
    }
    for (i, name) in FAULT_KIND_NAMES.iter().enumerate() {
        // Byte-layer kinds only fire in `--bytes` mode; the bytes corpus
        // covers them (`the_bytes_corpus_exercises_every_byte_fault_kind`).
        if name.starts_with("byte.") {
            continue;
        }
        assert!(
            totals[i] > 0,
            "corpus no longer exercises fault kind {name}; add a pair that does"
        );
    }
}

#[test]
fn every_storm_corpus_entry_holds_the_exactly_once_invariant() {
    for (script_seed, fault_seed, napps) in storm_corpus() {
        let r = run_storm_case(script_seed, fault_seed, napps);
        assert!(
            r.is_ok(),
            "storm entry ({script_seed}, {fault_seed}, {napps} apps) failed: {}",
            r.unwrap_err()
        );
    }
}

#[test]
fn the_storm_corpus_exercises_every_fault_kind() {
    let mut totals = [0u64; FAULT_KIND_COUNT];
    for (script_seed, fault_seed, napps) in storm_corpus() {
        let stats = run_storm_case(script_seed, fault_seed, napps).expect("storm entry must hold");
        for (slot, n) in totals.iter_mut().zip(stats.fault_counts) {
            *slot += n;
        }
    }
    for (i, name) in FAULT_KIND_NAMES.iter().enumerate() {
        // Byte-layer kinds are the bytes corpus's job, not the storm's.
        if name.starts_with("byte.") {
            continue;
        }
        assert!(
            totals[i] > 0,
            "storm corpus no longer exercises fault kind {name}; add a pair that does"
        );
    }
}

#[test]
fn storm_replay_is_deterministic() {
    let (script_seed, fault_seed, napps) = storm_corpus()[0];
    let a = run_storm_case(script_seed, fault_seed, napps).expect("invariant holds");
    let b = run_storm_case(script_seed, fault_seed, napps).expect("invariant holds");
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.tcl_errors, b.tcl_errors);
    assert_eq!(a.fault_counts, b.fault_counts);
    assert_eq!(a.send_timeouts, b.send_timeouts);
    assert_eq!(a.send_retries, b.send_retries);
    assert_eq!(a.send_dedup_drops, b.send_dedup_drops);
}

/// At-most-once delivery under a fault-duplicated request: storm pair
/// 0's plan fires exactly one fault kind — `duplicate` — on the send
/// `ChangeProperty`, and the receiver's dedup window must drop the copy
/// (the storm invariant separately proves the script evaluated once).
#[test]
fn a_duplicated_send_request_evaluates_exactly_once() {
    let (script_seed, fault_seed, napps) = storm_corpus()[0];
    let stats = run_storm_case(script_seed, fault_seed, napps).expect("invariant holds");
    assert!(
        stats.fault_counts[fault_kind_index("duplicate")] >= 1,
        "plan no longer fires a duplicate fault"
    );
    assert!(
        stats.send_dedup_drops >= 1,
        "receiver dedup window no longer drops the duplicated request"
    );
}

/// The same property holds in the generic two-app fuzz: corpus pair 142
/// duplicates send traffic and the receiver drops the copy.
#[test]
fn two_app_dedup_pair_replays_with_a_drop() {
    let stats = run_case(142, 14671272994938756755).expect("no panic");
    assert!(stats.fault_counts[fault_kind_index("duplicate")] >= 1);
    assert!(stats.send_dedup_drops >= 1);
}

#[test]
fn replay_is_deterministic() {
    let (script_seed, fault_seed) = corpus()[0];
    let a = run_case(script_seed, fault_seed).expect("no panic");
    let b = run_case(script_seed, fault_seed).expect("no panic");
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.tcl_errors, b.tcl_errors);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.fault_counts, b.fault_counts);
}

/// A connection kill mid-script must tear the application down without
/// taking the sibling app (or the process) with it. Seeds 3 and 137 were
/// chosen because their plans kill a connection while the script is still
/// issuing commands (137 kills both).
#[test]
fn connection_kills_mid_script_stay_contained() {
    for (script_seed, fault_seed) in [(3, 15733602095581869388), (137, 5227058181464348512)] {
        let stats = run_case(script_seed, fault_seed).expect("kill case must not panic");
        assert!(stats.faults_injected >= 1);
    }
}

/// Shrinking a (synthetically) failing run is itself deterministic: the
/// minimized reproducer from the same inputs is identical across runs.
/// (Shrink only runs on failures, and no current seed pair fails, so the
/// failure here is a predicate marker rather than a real panic.)
#[test]
fn shrinking_the_same_failure_twice_gives_the_same_reproducer() {
    use tk_bench::chaos::{shrink_with, Op};
    let marker = Op::Tcl(1, "__marker__".into());
    let mut ops = generate_ops(7, SCRIPT_OPS);
    ops.insert(20, marker.clone());
    let plan = generate_plan(11);
    let fails = |ops: &[Op], _: &xsim::FaultPlan| ops.contains(&marker);
    let (ops_a, plan_a) = shrink_with(&ops, &plan, fails);
    let (ops_b, plan_b) = shrink_with(&ops, &plan, fails);
    assert_eq!(ops_a, ops_b);
    assert_eq!(plan_a.describe(), plan_b.describe());
    assert_eq!(ops_a, vec![marker]);
}

/// The explicit-ops entry point used by the shrinker behaves like
/// `run_case` when handed the same generated inputs.
#[test]
fn run_ops_matches_run_case() {
    let (script_seed, fault_seed) = (57, 3790534636700595380);
    let from_case = run_case(script_seed, fault_seed).expect("no panic");
    let from_ops = run_ops(
        &generate_ops(script_seed, SCRIPT_OPS),
        &generate_plan(fault_seed),
    )
    .expect("no panic");
    assert_eq!(from_case.faults_injected, from_ops.faults_injected);
    assert_eq!(from_case.tcl_errors, from_ops.tcl_errors);
}

fn bytes_corpus() -> Vec<(u64, u64)> {
    parse_entries(include_str!("chaos_bytes_corpus.txt"))
        .into_iter()
        .map(|(s, f, _)| (s, f))
        .collect()
}

/// Every byte-chaos corpus pair holds the full differential invariant:
/// the faulted wire run matches a fault-free wire run or diverges only
/// with clean-death evidence, with an intact span tree and a clean
/// post-run resource audit either way.
#[test]
fn every_bytes_corpus_pair_holds_the_differential_invariant() {
    use tk_bench::chaos::run_bytes_case;
    for (script_seed, fault_seed) in bytes_corpus() {
        let r = run_bytes_case(script_seed, fault_seed);
        assert!(
            r.is_ok(),
            "bytes pair ({script_seed}, {fault_seed}) failed: {}",
            r.unwrap_err()
        );
    }
}

/// The byte corpus keeps all five byte-fault kinds alive: losing one
/// means the corpus no longer witnesses that the transport survives it.
#[test]
fn the_bytes_corpus_exercises_every_byte_fault_kind() {
    use tk_bench::chaos::run_bytes_case;
    let mut totals = [0u64; FAULT_KIND_COUNT];
    for (script_seed, fault_seed) in bytes_corpus() {
        let stats = run_bytes_case(script_seed, fault_seed).expect("bytes pair must hold");
        for (slot, n) in totals.iter_mut().zip(stats.fault_counts) {
            *slot += n;
        }
    }
    for name in [
        "byte.corrupt",
        "byte.truncate",
        "byte.garbage",
        "byte.split",
        "byte.stall",
    ] {
        assert!(
            totals[fault_kind_index(name)] > 0,
            "bytes corpus no longer exercises {name}; add a pair that does"
        );
    }
}
