//! Golden-frame regression suite: every widget class renders into the
//! simulated framebuffer, and the result is diffed against a checked-in
//! golden image in `tests/golden/`. A golden file stores the frame as
//! run-length-encoded rows (`N@RRGGBB`, with a `K*` prefix collapsing K
//! identical rows) plus an FNV hash of the raw framebuffer.
//!
//! To bless a new rendering after an intentional change:
//!
//! ```text
//! RTK_BLESS=1 cargo test --test golden_frames
//! ```
//!
//! Every case renders its interface twice in fresh environments and
//! requires the two frames to match bit for bit before the golden is
//! consulted — a flaky renderer fails here, not in review.

use std::fmt::Write as _;
use std::path::PathBuf;

use tk::{TkApp, TkEnv};
use xsim::Surface;

/// One golden case: a name (also the file stem) and the script that
/// builds the interface.
struct Case {
    name: &'static str,
    scripts: &'static [&'static str],
}

/// Every widget class the toolkit registers, plus a packed composite
/// and a relief/anchor matrix.
const CASES: &[Case] = &[
    Case {
        name: "label",
        scripts: &["label .l -text {Golden label}", "pack append . .l {top}"],
    },
    Case {
        name: "button",
        scripts: &[
            "button .b -text {Press me} -command {}",
            "pack append . .b {top}",
        ],
    },
    Case {
        name: "checkbutton",
        scripts: &[
            "checkbutton .c -text {Option on} -variable v",
            "pack append . .c {top}",
            "set v 1",
        ],
    },
    Case {
        name: "radiobutton",
        scripts: &[
            "radiobutton .r1 -text Tea -variable drink -value tea",
            "radiobutton .r2 -text Coffee -variable drink -value coffee",
            "pack append . .r1 {top} .r2 {top}",
            "set drink coffee",
        ],
    },
    Case {
        name: "entry",
        scripts: &[
            "entry .e -width 16",
            "pack append . .e {top}",
            ".e insert 0 {golden text}",
            ".e select from 2",
            ".e select to 7",
            ".e icursor 7",
        ],
    },
    Case {
        name: "listbox",
        scripts: &[
            "listbox .l -geometry 12x5",
            "pack append . .l {top}",
            ".l insert end alpha beta gamma delta epsilon zeta eta",
            ".l view 1",
            ".l select from 2",
            ".l select to 3",
        ],
    },
    Case {
        name: "scrollbar",
        scripts: &[
            "scrollbar .v",
            "scrollbar .h -orient horizontal",
            "pack append . .v {right filly} .h {bottom fillx}",
            ".v set 100 10 20 29",
            ".h set 50 25 0 24",
        ],
    },
    Case {
        name: "scale",
        scripts: &[
            "scale .k -from 0 -to 100 -length 120 -label Volume",
            "pack append . .k {top}",
            ".k set 40",
        ],
    },
    Case {
        name: "canvas",
        scripts: &[
            "canvas .v -geometry 120x80",
            "pack append . .v {top}",
            ".v create rectangle 10 10 50 40 -fill red",
            ".v create oval 60 15 110 55 -fill blue",
            ".v create line 5 70 115 60 -width 2",
            ".v create text 20 65 -text golden",
        ],
    },
    Case {
        name: "message",
        scripts: &[
            "message .m -text {A message widget wraps its text onto multiple lines}",
            "pack append . .m {top}",
        ],
    },
    Case {
        name: "frame",
        scripts: &[
            "frame .f -geometry 90x40 -borderwidth 4 -relief ridge -background SteelBlue",
            "pack append . .f {top}",
        ],
    },
    Case {
        name: "menu",
        scripts: &[
            "menubutton .mb -text File -menu .mb.m",
            "menu .mb.m",
            ".mb.m add command -label Open -command {}",
            ".mb.m add command -label Save -command {}",
            ".mb.m add separator",
            ".mb.m add checkbutton -label Backup -variable bak",
            "pack append . .mb {top}",
            "update",
            ".mb.m post 40 60",
        ],
    },
    Case {
        name: "composite",
        scripts: &[
            "button .go -text Go -command {}",
            "label .status -text Ready",
            "entry .input -width 12",
            "listbox .files -geometry 10x3",
            "frame .pad -geometry 20x20 -background gray50",
            "scrollbar .bar",
            "pack append . .go {top fillx} .status {top} .input {top} \
             .bar {right filly} .files {left} .pad {bottom}",
            ".input insert 0 hello",
            ".files insert end one two three four",
        ],
    },
    Case {
        name: "relief_matrix",
        scripts: &[
            "label .a -text west -width 14 -anchor w -relief raised -borderwidth 2",
            "label .b -text center -width 14 -anchor center -relief sunken -borderwidth 2",
            "label .c -text east -width 14 -anchor e -relief groove -borderwidth 3",
            "pack append . .a {top} .b {top} .c {top}",
        ],
    },
];

/// Renders a case in a fresh environment and returns the framebuffer.
fn render(case: &Case) -> Surface {
    let env = TkEnv::new();
    let app: TkApp = env.app("golden");
    for script in case.scripts {
        if *script == "update" {
            app.update();
        } else {
            app.eval(script)
                .unwrap_or_else(|e| panic!("case {}: {script}: {e:?}", case.name));
        }
    }
    app.update();
    env.display().screenshot()
}

/// FNV-1a over the packed framebuffer words.
fn hash_surface(s: &Surface) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in s.raw_pixels() {
        h = (h ^ p as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Encodes one row as `N@RRGGBB` runs.
fn encode_row(row: &[u32]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < row.len() {
        let p = row[i];
        let mut n = 1;
        while i + n < row.len() && row[i + n] == p {
            n += 1;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        let _ = write!(out, "{n}@{p:06X}");
        i += n;
    }
    out
}

/// Encodes the whole frame: a header, then one line per distinct row
/// with a `K*` repeat prefix.
fn encode(s: &Surface) -> String {
    let w = s.width() as usize;
    let rows: Vec<String> = s.raw_pixels().chunks(w).map(encode_row).collect();
    let mut out = format!(
        "# rtk golden frame; bless with RTK_BLESS=1 cargo test --test golden_frames\n\
         size {}x{}\nhash {:016x}\n",
        s.width(),
        s.height(),
        hash_surface(s)
    );
    let mut i = 0;
    while i < rows.len() {
        let mut k = 1;
        while i + k < rows.len() && rows[i + k] == rows[i] {
            k += 1;
        }
        let _ = writeln!(out, "{k}* {}", rows[i]);
        i += k;
    }
    out
}

/// Decodes a golden file back to `(width, height, pixels)`.
fn decode(name: &str, text: &str) -> (u32, u32, Vec<u32>) {
    let mut width = 0u32;
    let mut height = 0u32;
    let mut pixels = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("hash ") {
            continue;
        }
        if let Some(dims) = line.strip_prefix("size ") {
            let (w, h) = dims.split_once('x').expect("bad size line");
            width = w.parse().expect("bad width");
            height = h.parse().expect("bad height");
            continue;
        }
        let (rep, runs) = line.split_once("* ").unwrap_or_else(|| {
            panic!("golden {name}: malformed line {line:?}");
        });
        let rep: usize = rep.parse().expect("bad repeat count");
        let mut row = Vec::with_capacity(width as usize);
        for run in runs.split_whitespace() {
            let (n, hex) = run.split_once('@').expect("bad run");
            let n: usize = n.parse().expect("bad run length");
            let p = u32::from_str_radix(hex, 16).expect("bad run color");
            row.extend(std::iter::repeat(p).take(n));
        }
        assert_eq!(
            row.len(),
            width as usize,
            "golden {name}: row length mismatch"
        );
        for _ in 0..rep {
            pixels.extend_from_slice(&row);
        }
    }
    assert_eq!(
        pixels.len(),
        (width * height) as usize,
        "golden {name}: truncated frame"
    );
    (width, height, pixels)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Diffs the rendered frame against the decoded golden, reporting the
/// first differing pixel with coordinates and both colors.
fn assert_matches_golden(name: &str, got: &Surface, golden: &(u32, u32, Vec<u32>)) {
    let (gw, gh, ref gpx) = *golden;
    assert_eq!(
        (got.width(), got.height()),
        (gw, gh),
        "case {name}: frame size changed"
    );
    let raw = got.raw_pixels();
    if raw == &gpx[..] {
        return;
    }
    let diffs = raw.iter().zip(gpx).filter(|(a, b)| a != b).count();
    let i = raw.iter().zip(gpx).position(|(a, b)| a != b).unwrap();
    let (x, y) = (i as u32 % gw, i as u32 / gw);
    panic!(
        "case {name}: frame differs from golden at {diffs} pixels.\n\
         first diff at ({x}, {y}): rendered #{:06X}, golden #{:06X}\n\
         If the new rendering is intentional, re-bless with:\n\
         RTK_BLESS=1 cargo test --test golden_frames",
        raw[i], gpx[i]
    );
}

fn run_case(case: &Case) {
    // Two fresh renders must agree before the golden is even consulted.
    let first = render(case);
    let second = render(case);
    assert_eq!(
        first.raw_pixels(),
        second.raw_pixels(),
        "case {}: rendering is not deterministic",
        case.name
    );

    let path = golden_dir().join(format!("{}.golden", case.name));
    if std::env::var("RTK_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, encode(&first)).expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "case {}: no golden at {}; generate it with RTK_BLESS=1 cargo test --test golden_frames",
            case.name,
            path.display()
        )
    });
    // The stored hash must agree with the stored rows (file integrity),
    // and the rendered frame must agree with both.
    let decoded = decode(case.name, &text);
    let stored_hash = text
        .lines()
        .find_map(|l| l.strip_prefix("hash "))
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .unwrap_or_else(|| panic!("case {}: golden has no hash line", case.name));
    let mut rehash: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in &decoded.2 {
        rehash = (rehash ^ p as u64).wrapping_mul(0x1000_0000_01b3);
    }
    assert_eq!(
        rehash, stored_hash,
        "case {}: golden file is internally inconsistent (hand-edited?)",
        case.name
    );
    assert_matches_golden(case.name, &first, &decoded);
}

macro_rules! golden_tests {
    ($($test:ident => $case:expr;)*) => {
        $(
            #[test]
            fn $test() {
                run_case(&CASES[$case]);
            }
        )*
    };
}

golden_tests! {
    golden_label => 0;
    golden_button => 1;
    golden_checkbutton => 2;
    golden_radiobutton => 3;
    golden_entry => 4;
    golden_listbox => 5;
    golden_scrollbar => 6;
    golden_scale => 7;
    golden_canvas => 8;
    golden_message => 9;
    golden_frame => 10;
    golden_menu => 11;
    golden_composite => 12;
    golden_relief_matrix => 13;
}

/// The macro above must cover every case exactly once.
#[test]
fn every_case_has_a_test() {
    assert_eq!(CASES.len(), 14);
    let mut names: Vec<&str> = CASES.iter().map(|c| c.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), CASES.len(), "duplicate case names");
}

/// The RLE codec must round-trip a frame exactly.
#[test]
fn golden_codec_round_trips() {
    let frame = render(&CASES[12]);
    let (w, h, px) = decode("round_trip", &encode(&frame));
    assert_eq!((w, h), (frame.width(), frame.height()));
    assert_eq!(&px[..], frame.raw_pixels());
}
