//! Event-semantics integration tests: crossing events through nested
//! windows, triple-clicks, expose-on-raise, and propagation rules.

use tk::TkEnv;

#[test]
fn enter_leave_through_nested_frames() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("set log {}").unwrap();
    app.eval("frame .outer").unwrap();
    app.eval("pack append . .outer {top}").unwrap();
    // Padding makes the outer frame larger than its packed child (the
    // packer's geometry propagation always sizes the master to fit, as in
    // 1991 Tk, so an explicit -geometry would be overridden here).
    app.eval("frame .outer.inner -geometry 50x50").unwrap();
    app.eval("pack append .outer .outer.inner {top padx 75 pady 75}")
        .unwrap();
    app.update();
    app.eval("bind .outer <Enter> {lappend log outer-in}")
        .unwrap();
    app.eval("bind .outer <Leave> {lappend log outer-out}")
        .unwrap();
    app.eval("bind .outer.inner <Enter> {lappend log inner-in}")
        .unwrap();
    app.eval("bind .outer.inner <Leave> {lappend log inner-out}")
        .unwrap();
    let outer = app.window(".outer").unwrap();
    assert_eq!(outer.width.get(), 200, "padding sizes the master");
    let d = env.display();
    d.move_pointer(500, 500); // outside everything
    env.dispatch_all();
    app.eval("set log {}").unwrap();
    d.move_pointer(10, 10); // into .outer's padding, not .inner
    env.dispatch_all();
    d.move_pointer(100, 100); // into .inner
    env.dispatch_all();
    d.move_pointer(500, 500); // out of both
    env.dispatch_all();
    let log = app.eval("set log").unwrap();
    assert!(log.contains("outer-in"), "{log}");
    assert!(log.contains("inner-in"), "{log}");
    assert!(log.contains("inner-out"), "{log}");
}

#[test]
fn triple_click_binding() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .f -geometry 80x80; pack append . .f {top}")
        .unwrap();
    app.eval("set singles 0; set triples 0").unwrap();
    app.eval("bind .f <Button-1> {incr singles}").unwrap();
    app.eval("bind .f <Triple-Button-1> {incr triples}")
        .unwrap();
    app.update();
    env.display().move_pointer(40, 40);
    for _ in 0..3 {
        env.display().click(1);
        env.dispatch_all();
    }
    // The third press matches the more specific triple binding; the first
    // two fell back to the single binding.
    assert_eq!(app.eval("set triples").unwrap(), "1");
    assert_eq!(app.eval("set singles").unwrap(), "2");
}

#[test]
fn raise_causes_expose_redraw() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("button .b -text Hidden").unwrap();
    app.eval("pack append . .b {top}").unwrap();
    app.update();
    let rec = app.window(".b").unwrap();
    // Simulate occlusion damage: raise generates Expose, which must
    // schedule a redraw that repaints the label.
    env.display().with_server(|s| {
        s.clear_area(rec.xid, 0, 0, 0, 0);
    });
    app.conn().raise_window(rec.xid);
    app.update();
    let dump = env.display().ascii_dump();
    assert!(dump.contains("Hidden"), "{dump}");
}

#[test]
fn key_events_follow_focus_not_pointer() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .a -geometry 50x50; frame .b -geometry 50x50")
        .unwrap();
    app.eval("pack append . .a {top} .b {top}").unwrap();
    app.eval("set hits {}").unwrap();
    app.eval("bind .a x {lappend hits a}").unwrap();
    app.eval("bind .b x {lappend hits b}").unwrap();
    app.update();
    // Pointer over .a, focus on .b: keys go to .b.
    let a = app.window(".a").unwrap();
    env.display().move_pointer(a.x.get() + 10, a.y.get() + 10);
    app.eval("focus .b").unwrap();
    env.display().type_char('x');
    env.dispatch_all();
    assert_eq!(app.eval("set hits").unwrap(), "b");
    // With no focus, keys follow the pointer.
    app.eval("focus none").unwrap();
    env.display().type_char('x');
    env.dispatch_all();
    assert_eq!(app.eval("set hits").unwrap(), "b a");
}

#[test]
fn button_events_belong_to_the_window_they_occur_in() {
    // 1991 Tk semantics: a binding on a parent does NOT fire for clicks
    // inside a child window (bindtags inheritance came years later).
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .f; pack append . .f {top}").unwrap();
    app.eval("label .f.l -text target").unwrap();
    app.eval("pack append .f .f.l {top padx 30 pady 30}")
        .unwrap();
    app.eval("set frame-clicks 0; set label-clicks 0").unwrap();
    app.eval("bind .f <Button-1> {incr frame-clicks}").unwrap();
    app.eval("bind .f.l <Button-1> {incr label-clicks}")
        .unwrap();
    app.update();
    let f = app.window(".f").unwrap();
    let l = app.window(".f.l").unwrap();
    // Click inside the label: only the label binding fires.
    env.display()
        .move_pointer(f.x.get() + l.x.get() + 5, f.y.get() + l.y.get() + 5);
    env.display().click(1);
    env.dispatch_all();
    assert_eq!(app.eval("set label-clicks").unwrap(), "1");
    assert_eq!(app.eval("set frame-clicks").unwrap(), "0");
    // Click in the frame's padding: the frame binding fires.
    env.display().move_pointer(f.x.get() + 5, f.y.get() + 5);
    env.display().click(1);
    env.dispatch_all();
    assert_eq!(app.eval("set frame-clicks").unwrap(), "1");
}

#[test]
fn configure_binding_reports_new_size() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .f -geometry 50x50; pack append . .f {top expand fill}")
        .unwrap();
    app.update();
    app.eval("bind .f <Configure> {set size %wx%h}").unwrap();
    app.eval("wm geometry . 300x220").unwrap();
    app.update();
    assert_eq!(app.eval("set size").unwrap(), "300x220");
    let _ = env;
}
