//! Trace integrity under faults.
//!
//! The causal span tracer records across every chaos replay (it is always
//! on), and faults — dropped requests, error replies, duplicated and
//! reordered traffic, killed connections — must never corrupt the span
//! tree: no span may reference a missing parent, and no span may still be
//! open once the run is quiescent. `tk_bench::chaos` enforces this inside
//! every run (a violation is a `Failure` like a panic or a broken send
//! invariant); this suite replays both checked-in corpora with explicit
//! shape assertions on top, so a tracer regression fails here by name
//! rather than as a generic chaos failure.

use tk_bench::chaos::{run_case, run_storm_case, STORM_APPS};

/// Corpus lines are `script_seed fault_seed [apps]`; the third column is
/// the storm's app count (the two-app corpus ignores it).
fn parse_entries(text: &str) -> Vec<(u64, u64, usize)> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut it = line.split_whitespace();
            Some((
                it.next().unwrap().parse().expect("script seed"),
                it.next().unwrap().parse().expect("fault seed"),
                it.next()
                    .map(|n| n.parse().expect("app count"))
                    .unwrap_or(STORM_APPS),
            ))
        })
        .collect()
}

#[test]
fn every_corpus_pair_yields_a_well_formed_span_tree() {
    for (script_seed, fault_seed, _) in parse_entries(include_str!("chaos_corpus.txt")) {
        let stats = run_case(script_seed, fault_seed)
            .unwrap_or_else(|e| panic!("pair ({script_seed}, {fault_seed}): {e}"));
        assert!(
            stats.spans_recorded > 0,
            "pair ({script_seed}, {fault_seed}) recorded no spans"
        );
        assert_eq!(
            stats.span_shape.orphans, 0,
            "pair ({script_seed}, {fault_seed}) produced orphaned spans"
        );
        assert_eq!(
            stats.span_shape.open, 0,
            "pair ({script_seed}, {fault_seed}) left spans open at quiescence"
        );
    }
}

#[test]
fn every_storm_pair_yields_a_well_formed_span_tree() {
    for (script_seed, fault_seed, napps) in parse_entries(include_str!("chaos_storm_corpus.txt")) {
        let stats = run_storm_case(script_seed, fault_seed, napps)
            .unwrap_or_else(|e| panic!("storm pair ({script_seed}, {fault_seed}): {e}"));
        assert!(
            stats.spans_recorded > 0,
            "storm pair ({script_seed}, {fault_seed}) recorded no spans"
        );
        assert_eq!(
            stats.span_shape.orphans, 0,
            "storm pair ({script_seed}, {fault_seed}) produced orphaned spans"
        );
        assert_eq!(
            stats.span_shape.open, 0,
            "storm pair ({script_seed}, {fault_seed}) left spans open at quiescence"
        );
    }
}

/// The recorded shape — not just its well-formedness — is deterministic
/// for a faulted replay: same seeds, same span tree.
#[test]
fn faulted_replay_span_shapes_are_deterministic() {
    let (script_seed, fault_seed, _) = parse_entries(include_str!("chaos_corpus.txt"))[0];
    let a = run_case(script_seed, fault_seed).expect("no panic");
    let b = run_case(script_seed, fault_seed).expect("no panic");
    assert_eq!(a.spans_recorded, b.spans_recorded);
    assert_eq!(a.span_shape, b.span_shape);
}

/// Faulted sends still correlate: every storm replay records `send` spans
/// on senders and `send.eval` spans on receivers, and a faulted run can
/// legitimately have fewer evals than sends — but never more.
#[test]
fn storm_send_spans_dominate_their_evals() {
    let (script_seed, fault_seed, napps) = parse_entries(include_str!("chaos_storm_corpus.txt"))[0];
    let stats = run_storm_case(script_seed, fault_seed, napps).expect("invariant holds");
    let sends = stats.span_shape.by_kind.get("send").copied().unwrap_or(0);
    let evals = stats
        .span_shape
        .by_kind
        .get("send.eval")
        .copied()
        .unwrap_or(0);
    assert!(sends > 0, "storm run recorded no send spans");
    assert!(
        evals <= sends,
        "more send.eval spans ({evals}) than send spans ({sends})"
    );
}
