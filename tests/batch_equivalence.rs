//! Batching must be invisible on screen: the output buffer reorders
//! *when* requests reach the server, never *what* they do. These tests
//! run the same workload with batching on and with the transport forced
//! back to one-flush-per-request (`Connection::set_batching(false)`,
//! what `RTK_NO_BATCH=1` selects at startup) and diff the framebuffers
//! pixel by pixel.

use tk::TkEnv;
use xsim::Surface;

/// Builds a little interface, pokes it with the pointer, and returns the
/// final framebuffer plus the client's protocol stats.
fn run_workload(batching: bool) -> (Surface, xsim::ClientStats) {
    let env = TkEnv::new();
    let app = env.app("equiv");
    // App creation (the send handshake) ran with the default transport;
    // switch modes and zero the stats so they cover only the workload.
    app.conn().set_batching(batching);
    app.conn().reset_obs();

    app.eval("button .go -text Go -command {set pressed 1}")
        .unwrap();
    app.eval("label .msg -text {hello, world}").unwrap();
    app.eval("frame .box -geometry 60x24 -borderwidth 2")
        .unwrap();
    app.eval("pack append . .go {top fillx} .msg {top} .box {bottom}")
        .unwrap();
    app.update();

    // Interact: press the button (enter + click), then change state so
    // redraws happen through the same batched path.
    let rec = app.window(".go").unwrap();
    env.display().move_pointer(rec.x.get() + 3, rec.y.get() + 3);
    env.display().click(1);
    app.update();
    assert_eq!(app.eval("set pressed").unwrap(), "1");

    app.eval(".msg configure -text {after the click}").unwrap();
    app.eval(".go configure -text Done").unwrap();
    app.update();

    (env.display().screenshot(), app.conn().stats())
}

fn assert_same_pixels(a: &Surface, b: &Surface) {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    let mut diffs = 0;
    let mut first = None;
    for y in 0..a.height() as i32 {
        for x in 0..a.width() as i32 {
            if a.pixel(x, y) != b.pixel(x, y) {
                diffs += 1;
                first.get_or_insert((x, y));
            }
        }
    }
    assert_eq!(
        diffs, 0,
        "framebuffers differ at {diffs} pixels, first at {first:?}"
    );
}

#[test]
fn batching_does_not_change_the_framebuffer() {
    let (batched_screen, batched_stats) = run_workload(true);
    let (unbatched_screen, unbatched_stats) = run_workload(false);

    // Both transports performed the same requests...
    assert_eq!(batched_stats.requests, unbatched_stats.requests);
    assert_eq!(batched_stats.round_trips, unbatched_stats.round_trips);

    // ...but only one of them batched.
    assert!(batched_stats.batched_requests > 0);
    assert!(batched_stats.max_batch > 1);
    assert_eq!(unbatched_stats.batched_requests, 0);
    assert!(unbatched_stats.max_batch <= 1);
    assert!(unbatched_stats.flushes > batched_stats.flushes);

    // And the screen cannot tell the difference.
    assert_same_pixels(&batched_screen, &unbatched_screen);
}

/// The fault-tolerant twin of [`run_workload`]: same UI, same pokes, but
/// every eval is allowed to fail (fault plans make errors and even
/// connection death legitimate outcomes). Returns the final framebuffer
/// and how many faults the plan actually injected.
fn run_workload_with_plan(batching: bool, plan: &xsim::FaultPlan) -> (Surface, u64) {
    let env = TkEnv::new();
    let app = env.app("equiv");
    app.conn().set_batching(batching);
    app.conn().reset_obs();
    env.display()
        .with_server(|s| s.install_fault_plan(plan.clone()));

    for script in [
        "button .go -text Go -command {set pressed 1}",
        "label .msg -text {hello, world}",
        "frame .box -geometry 60x24 -borderwidth 2",
        "pack append . .go {top fillx} .msg {top} .box {bottom}",
    ] {
        let _ = app.eval(script);
    }
    app.update();

    if let Some(rec) = app.window(".go") {
        env.display().move_pointer(rec.x.get() + 3, rec.y.get() + 3);
        env.display().click(1);
        app.update();
    }
    let _ = app.eval(".msg configure -text {after the click}");
    let _ = app.eval(".go configure -text Done");
    app.update();

    let faults = app
        .conn()
        .with_obs(|o| o.faults_injected)
        .unwrap_or_else(|| {
            // The plan killed the connection; read the post-mortem counter
            // straight from the server.
            env.display()
                .with_server(|s| s.fault_plan().map_or(0, |p| p.fired_log().len() as u64))
        });
    (env.display().screenshot(), faults)
}

/// Fault seeds of the checked-in chaos corpus (second column of
/// tests/chaos_corpus.txt).
fn corpus_fault_seeds() -> Vec<u64> {
    include_str!("chaos_corpus.txt")
        .lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            let mut it = line.split_whitespace();
            let _script = it.next()?;
            it.next()?.parse().ok()
        })
        .collect()
}

/// Faults key on request sequence numbers, which batching does not
/// change — so even under an active fault plan, the batched and
/// unbatched transports must inject the *same* faults and render the
/// *same* pixels. Runs every plan in the checked-in chaos corpus.
#[test]
fn fault_plans_hit_batched_and_unbatched_runs_identically() {
    let seeds = corpus_fault_seeds();
    assert!(!seeds.is_empty(), "corpus file is empty");
    let mut total_faults = 0;
    for seed in seeds {
        let plan = tk_bench::chaos::generate_plan(seed);
        let (batched, batched_faults) = run_workload_with_plan(true, &plan);
        let (unbatched, unbatched_faults) = run_workload_with_plan(false, &plan);
        assert_eq!(
            batched_faults,
            unbatched_faults,
            "fault seed {seed}: different faults fired under batching\n{}",
            plan.describe()
        );
        assert_same_pixels(&batched, &unbatched);
        total_faults += batched_faults;
    }
    // The corpus is only a meaningful equivalence check if some of its
    // plans actually fire against this workload.
    assert!(total_faults > 0, "no corpus plan fired a single fault");
}

#[test]
fn ascii_dump_is_also_identical() {
    // The ASCII dump covers text placement, which the pixel diff only
    // sees via the (coarse) block font — check it separately.
    let dump_for = |batching: bool| {
        let env = TkEnv::new();
        let app = env.app("equiv");
        app.conn().set_batching(batching);
        app.eval("label .l -text {batching test}").unwrap();
        app.eval("pack append . .l {top}").unwrap();
        app.update();
        env.display().ascii_dump()
    };
    assert_eq!(dump_for(true), dump_for(false));
}
