//! Failure-injection tests: the toolkit must degrade with Tcl errors, not
//! panics, when applications die, windows vanish mid-operation, handlers
//! fail, or scripts go wrong at event time.

use tk::TkEnv;

#[test]
fn send_to_departed_application_errors_cleanly() {
    let env = TkEnv::new();
    let a = env.app("alpha");
    {
        let b = env.app("beta");
        assert_eq!(a.eval("send beta {expr 1+1}").unwrap(), "2");
        b.destroy_window(".").unwrap();
        drop(b);
    }
    // `destroy .` withdraws beta from the registry (and destroys its
    // comm window), so the sender gets an immediate clean error — either
    // the post-withdrawal "no registered interpreter" or, if it races
    // the withdrawal, the dead-comm-window "died" path.
    let e = a.eval("send beta {expr 1+1}").unwrap_err();
    assert!(
        e.msg.contains("died") || e.msg.contains("no registered"),
        "{}",
        e.msg
    );
    // And the sender still works.
    assert_eq!(a.eval("expr 2+2").unwrap(), "4");
}

/// The harder variant: app B does not exit cleanly — its connection is
/// killed server-side mid-registry, so nothing withdraws its entry. App
/// A's next send must detect the dead comm window, error cleanly (no
/// hang, no 10k-spin stall), and prune the stale entry so `winfo
/// interps` stops advertising the corpse.
#[test]
fn send_to_killed_application_errors_cleanly_and_prunes_the_registry() {
    use xsim::FaultPlan;
    let env = TkEnv::new();
    let a = env.app("alpha");
    let b = env.app("beta");
    assert_eq!(a.eval("send beta {expr 1+1}").unwrap(), "2");
    // Kill beta's connection at its next request: `wm title` buffers a
    // one-way whose flush trips the fault.
    let seq = b.conn().sequence();
    env.display()
        .with_server(|s| s.install_fault_plan(FaultPlan::default().kill_at(2, seq + 1)));
    let _ = b.eval("wm title . doomed");
    env.dispatch_all();
    let e = a.eval("send beta {expr 1+1}").unwrap_err();
    assert!(
        e.msg.contains("died") || e.msg.contains("no registered"),
        "{}",
        e.msg
    );
    // The stale entry is gone: beta is no longer advertised.
    let interps = a.eval("winfo interps").unwrap();
    assert!(!interps.contains("beta"), "stale registry entry: {interps}");
    // And alpha is unharmed.
    assert_eq!(a.eval("expr 2+2").unwrap(), "4");
}

#[test]
fn widget_command_on_destroyed_window_errors() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("button .b -text x").unwrap();
    app.eval("destroy .b").unwrap();
    let e = app.eval(".b invoke").unwrap_err();
    assert!(e.msg.contains("invalid command name"), "{}", e.msg);
}

#[test]
fn binding_errors_report_and_do_not_stop_dispatch() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("set errors {}; proc tkerror {m} {global errors; lappend errors $m}")
        .unwrap();
    app.eval("frame .f -geometry 60x60; pack append . .f {top}")
        .unwrap();
    app.update();
    app.eval("bind .f a {error first-bad}").unwrap();
    app.eval("bind .f b {set ok 1}").unwrap();
    app.eval("focus .f").unwrap();
    env.display().type_char('a');
    env.display().type_char('b');
    env.dispatch_all();
    assert_eq!(app.eval("set errors").unwrap(), "first-bad");
    assert_eq!(app.eval("set ok").unwrap(), "1");
}

#[test]
fn after_script_errors_are_background_errors() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("proc tkerror {m} {global caught; set caught $m}")
        .unwrap();
    app.eval("after 10 {error timer-bang}").unwrap();
    app.eval("after 10 {set survived 1}").unwrap();
    env.advance(20);
    assert_eq!(app.eval("set caught").unwrap(), "timer-bang");
    assert_eq!(app.eval("set survived").unwrap(), "1");
}

#[test]
fn selection_owner_destruction_releases_selection() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("listbox .l -geometry 10x4; pack append . .l {top}")
        .unwrap();
    app.eval(".l insert end a b c").unwrap();
    app.update();
    app.eval(".l select from 1").unwrap();
    assert_eq!(app.eval("selection get").unwrap(), "b");
    app.eval("destroy .l").unwrap();
    env.dispatch_all();
    assert!(app.eval("selection get").is_err());
}

#[test]
fn recursive_widget_destruction_from_callback() {
    // A button whose command destroys the button itself (and its parent)
    // while the invocation is still on the stack.
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .f; pack append . .f {top}").unwrap();
    app.eval("button .f.b -text boom -command {destroy .f}")
        .unwrap();
    app.eval("pack append .f .f.b {top}").unwrap();
    app.update();
    let rec = app.window(".f.b").unwrap();
    let fx = app.window(".f").unwrap().x.get();
    let fy = app.window(".f").unwrap().y.get();
    env.display().move_pointer(
        fx + rec.x.get() + rec.width.get() as i32 / 2,
        fy + rec.y.get() + rec.height.get() as i32 / 2,
    );
    env.display().click(1);
    env.dispatch_all();
    app.update();
    assert_eq!(app.eval("winfo exists .f").unwrap(), "0");
    assert_eq!(app.eval("winfo exists .f.b").unwrap(), "0");
}

#[test]
fn infinite_idle_rescheduling_is_bounded() {
    // An idle script that re-schedules itself must not hang `update`.
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("set n 0").unwrap();
    app.eval("proc again {} {global n; incr n; after idle again}")
        .unwrap();
    app.eval("after idle again").unwrap();
    app.update(); // must terminate
    let n: i64 = app.eval("set n").unwrap().parse().unwrap();
    assert!(n > 0);
}

#[test]
fn malformed_pack_options_leave_state_consistent() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .a -geometry 10x10").unwrap();
    assert!(app.eval("pack append . .a {sideways}").is_err());
    assert!(app.eval("pack append . .nonexistent {top}").is_err());
    // The packer still works afterwards.
    app.eval("pack append . .a {top}").unwrap();
    app.update();
    assert!(app.window(".a").unwrap().mapped.get());
}

#[test]
fn canvas_with_unknown_color_skips_item_not_crashes() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("canvas .c -geometry 50x50; pack append . .c {top}")
        .unwrap();
    // Item creation doesn't validate the color (it may be configured
    // later); redraw must simply skip unpaintable items.
    app.eval(".c create rectangle 1 1 20 20 -fill NotAColor")
        .unwrap();
    app.update(); // no panic
    app.eval(".c itemconfigure all -fill red").unwrap();
    app.update();
}

#[test]
fn destroyed_app_commands_error_not_crash() {
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("destroy .").unwrap();
    assert!(app.destroyed());
    // Widget creation now fails cleanly: the main window is gone.
    let e = app.eval("button .b -text x").unwrap_err();
    assert!(e.msg.contains("bad window path name"), "{}", e.msg);
}

#[test]
fn deeply_nested_widget_tree_works() {
    let env = TkEnv::new();
    let app = env.app("t");
    let mut path = String::new();
    for i in 0..12 {
        let parent = if path.is_empty() {
            ".".to_string()
        } else {
            path.clone()
        };
        path = if parent == "." {
            format!(".f{i}")
        } else {
            format!("{parent}.f{i}")
        };
        app.eval(&format!("frame {path} -geometry 20x20")).unwrap();
        app.eval(&format!("pack append {parent} {path} {{top}}"))
            .unwrap();
    }
    app.update();
    assert_eq!(app.eval(&format!("winfo class {path}")).unwrap(), "Frame");
    // Destroying the top kills the whole chain.
    app.eval("destroy .f0").unwrap();
    assert_eq!(app.eval("winfo exists .f0.f1.f2").unwrap(), "0");
}

#[test]
fn interp_errors_inside_send_do_not_poison_transport() {
    let env = TkEnv::new();
    let a = env.app("a");
    let _b = env.app("b");
    for _ in 0..5 {
        assert!(a.eval("send b {nosuchcommand}").is_err());
        assert_eq!(a.eval("send b {expr 1}").unwrap(), "1");
    }
}

#[test]
fn option_db_bad_priority_is_error() {
    let env = TkEnv::new();
    let app = env.app("t");
    assert!(app.eval("option add *x y notapriority").is_err());
    app.eval("option add *x y interactive").unwrap();
}
