//! Integration tests that drive the `wish` binary itself, the way Figure 9
//! scripts would: feed it a script file or stdin, observe stdout and the
//! exit status.

use std::io::Write;
use std::process::{Command, Stdio};

/// Path to the freshly built wish binary (Cargo puts integration tests and
/// binaries in the same target directory).
fn wish_path() -> std::path::PathBuf {
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // the test binary's hash directory
    p.pop(); // deps/
    p.push("wish");
    p
}

fn run_script(script: &str, args: &[&str]) -> (String, i32) {
    let dir = std::env::temp_dir().join(format!("rtk_wish_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(format!("script_{:p}.tcl", script.as_ptr()));
    std::fs::write(&file, script).unwrap();
    let out = Command::new(wish_path())
        .arg("-f")
        .arg(&file)
        .args(args)
        .output()
        .expect("wish runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn script_builds_interface_and_dumps_screen() {
    let (out, status) = run_script(
        "button .b -text {From Script} -command {}\n\
         pack append . .b {top}\n\
         update\n\
         puts [screendump]\n\
         exit 0\n",
        &[],
    );
    assert_eq!(status, 0);
    assert!(out.contains("From Script"), "{out}");
    assert!(out.contains('+'), "{out}");
}

#[test]
fn script_arguments_arrive_in_argv() {
    let (out, status) = run_script(
        "puts \"argc=$argc argv=$argv\"\nexit 0\n",
        &["alpha", "beta"],
    );
    assert_eq!(status, 0);
    assert!(out.contains("argc=2"), "{out}");
    assert!(out.contains("alpha beta"), "{out}");
}

#[test]
fn exit_status_propagates() {
    let (_, status) = run_script("exit 3\n", &[]);
    assert_eq!(status, 3);
}

#[test]
fn failing_script_reports_error_and_nonzero_exit() {
    let out = Command::new(wish_path())
        .arg("-f")
        .arg("/definitely/not/a/file.tcl")
        .output()
        .unwrap();
    assert_ne!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("couldn't read"), "{err}");
}

#[test]
fn interactive_mode_evaluates_lines() {
    let mut child = Command::new(wish_path())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("wish starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"expr {6 * 7}\nset x {\nmulti line\n}\nllength $x\nexit 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("42"), "{stdout}");
    // The multi-line brace continuation evaluated as one command.
    assert!(stdout.contains('2'), "{stdout}");
}

#[test]
fn input_driver_commands_click_buttons() {
    let (out, status) = run_script(
        "set hits 0\n\
         button .b -text Target -command {incr hits}\n\
         pack append . .b {top}\n\
         update\n\
         pointer [expr {[winfo x .b] + 5}] [expr {[winfo y .b] + 5}]\n\
         click\n\
         click\n\
         puts \"hits=$hits\"\n\
         exit 0\n",
        &[],
    );
    assert_eq!(status, 0);
    assert!(out.contains("hits=2"), "{out}");
}

#[test]
fn canvas_drawing_from_script() {
    // The paper's Section 5 plan: "enhance wish with drawing commands for
    // shapes and text" — exercised through the shell.
    let (out, status) = run_script(
        "canvas .c -geometry 120x60\n\
         pack append . .c {top}\n\
         .c create rectangle 10 10 50 40 -fill red -tag box\n\
         .c create text 60 30 -text Drawn\n\
         update\n\
         puts [screendump]\n\
         puts bbox=[.c bbox box]\n\
         exit 0\n",
        &[],
    );
    assert_eq!(status, 0);
    assert!(out.contains("Drawn"), "{out}");
    assert!(out.contains("bbox=10 10 50 40"), "{out}");
}

#[test]
fn calculator_script_computes() {
    // scripts/calc.tcl driven through its buttons: 7 * 6 = 42.
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let calc = std::fs::read_to_string(repo.join("scripts/calc.tcl")).unwrap();
    let driver = "
        proc press {label} {
            foreach row {0 1 2 3} {
                foreach b [winfo children .row$row] {
                    if {[lindex [$b configure -text] 4] == $label} {
                        $b invoke
                        return
                    }
                }
            }
            error \"no key $label\"
        }
        update
        press 7
        press *
        press 6
        press =
        puts result=[.display get]
        exit 0
    ";
    let (out, status) = run_script(&format!("{calc}\n{driver}"), &[]);
    assert_eq!(status, 0, "{out}");
    assert!(out.contains("result=42"), "{out}");
}

#[test]
fn calculator_handles_division_and_clear() {
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let calc = std::fs::read_to_string(repo.join("scripts/calc.tcl")).unwrap();
    let driver = "
        key {9}; key {/}; key {2}; key {=}
        puts div=[.display get]
        key C
        puts clear=[.display get]
        exit 0
    ";
    let (out, status) = run_script(&format!("{calc}\n{driver}"), &[]);
    assert_eq!(status, 0, "{out}");
    assert!(out.contains("div=4"), "{out}"); // floor division, 1991 expr
    assert!(out.contains("clear=\n") || out.contains("clear="), "{out}");
}
