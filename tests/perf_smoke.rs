//! Performance smoke tests: very loose upper bounds that catch
//! catastrophic regressions (accidental O(n²) loops, busy-waits) without
//! being flaky on loaded machines. The real measurements live in the
//! bench crate; these only assert that the Table II operations stay
//! within two orders of magnitude of their measured values.

use std::time::Instant;

use tk::TkEnv;

#[test]
fn simple_command_stays_fast() {
    let interp = tcl::Interp::new();
    interp.eval("set a 0").unwrap();
    let start = Instant::now();
    for _ in 0..1000 {
        interp.eval("set a 1").unwrap();
    }
    let per = start.elapsed() / 1000;
    assert!(
        per < std::time::Duration::from_micros(500),
        "set a 1 took {per:?} (measured ~0.6 µs; paper budget was 68 µs)"
    );
}

#[test]
fn send_stays_fast() {
    let env = TkEnv::new();
    let a = env.app("alpha");
    let _b = env.app("beta");
    a.eval("send beta {}").unwrap();
    let start = Instant::now();
    for _ in 0..100 {
        a.eval("send beta {}").unwrap();
    }
    let per = start.elapsed() / 100;
    assert!(
        per < std::time::Duration::from_millis(15),
        "send took {per:?} (measured ~5 µs without IPC cost; the paper's \
         budget on 1991 hardware was 15 ms)"
    );
}

#[test]
fn fifty_buttons_stay_fast() {
    let env = TkEnv::new();
    let app = env.app("buttons");
    let start = Instant::now();
    for i in 0..50 {
        app.eval(&format!("button .b{i} -text b{i} -command {{}}"))
            .unwrap();
        app.eval(&format!("pack append . .b{i} {{top}}")).unwrap();
    }
    app.update();
    for i in 0..50 {
        app.eval(&format!("destroy .b{i}")).unwrap();
    }
    app.update();
    let total = start.elapsed();
    assert!(
        total < std::time::Duration::from_millis(440),
        "50 buttons took {total:?} (measured ~5 ms; the paper's own \
         number on 1991 hardware was 440 ms)"
    );
}

#[test]
fn observability_overhead_is_small() {
    // The observability core must be always-on-cheap: with the trace ring
    // disabled (the default), the per-request recording work attributable
    // to the 50-button workload must stay well under 10% of the
    // workload's own time. Measured directly: time the workload, count
    // its requests, then time that many record operations in isolation.
    let env = TkEnv::new();
    let app = env.app("buttons");
    let workload = |app: &tk::TkApp| {
        for i in 0..50 {
            app.eval(&format!("button .b{i} -text b{i} -command {{}}"))
                .unwrap();
            app.eval(&format!("pack append . .b{i} {{top}}")).unwrap();
        }
        app.update();
        for i in 0..50 {
            app.eval(&format!("destroy .b{i}")).unwrap();
        }
        app.update();
    };
    assert!(!app.conn().obs_trace_enabled(), "trace must default to off");
    workload(&app); // warm caches

    // Median of several runs to shrug off scheduler noise.
    let mut times: Vec<std::time::Duration> = (0..5)
        .map(|_| {
            app.conn().reset_obs();
            let start = Instant::now();
            workload(&app);
            start.elapsed()
        })
        .collect();
    times.sort();
    let workload_time = times[times.len() / 2];
    let requests = app.conn().stats().requests;
    assert!(requests > 1000, "workload should be protocol-heavy");

    // The per-request instrumentation: one kind-counter bump, one or two
    // histogram records, one disabled-trace check.
    let mut obs = xsim::ClientObs::default();
    let d = std::time::Duration::from_nanos(700);
    let start = Instant::now();
    for i in 0..requests {
        obs.record(
            i,
            xsim::RequestKind::CreateWindow,
            i % 4 == 0,
            xsim::Xid(1),
            d,
        );
    }
    let record_time = start.elapsed();
    assert!(
        record_time * 10 < workload_time,
        "recording {requests} requests took {record_time:?}, more than 10% \
         of the {workload_time:?} workload"
    );
}

#[test]
fn event_dispatch_throughput() {
    // The §7 painting scenario needs motion events to clear the queue at
    // interactive rates.
    let env = TkEnv::new();
    let app = env.app("t");
    app.eval("frame .c -geometry 300x300; pack append . .c {top}")
        .unwrap();
    app.eval("set n 0; bind .c <Motion> {incr n}").unwrap();
    app.update();
    let start = Instant::now();
    for i in 0..500 {
        env.display().move_pointer(10 + (i % 200), 50);
        app.process_pending();
    }
    let per = start.elapsed() / 500;
    assert!(
        per < std::time::Duration::from_millis(1),
        "motion dispatch took {per:?} per event"
    );
    assert_eq!(app.eval("set n").unwrap(), "500");
}
