//! Cross-widget integration tests: composition through Tcl (Section 4),
//! option-database styling (Section 3.5), focus flow (Section 3.7), and
//! rendering sanity checked against the framebuffer.

use tk::TkEnv;

fn app() -> (TkEnv, tk::TkApp) {
    let env = TkEnv::new();
    let a = env.app("test");
    (env, a)
}

#[test]
fn listbox_and_scrollbar_compose_through_tcl() {
    // The Section 4 composition example in full, driven both ways.
    let (env, app) = app();
    app.eval("scrollbar .scroll -command \".list view\"")
        .unwrap();
    app.eval("listbox .list -scroll \".scroll set\" -geometry 12x4")
        .unwrap();
    app.eval("pack append . .scroll {right filly} .list {left expand fill}")
        .unwrap();
    for i in 0..30 {
        app.eval(&format!(".list insert end row{i:02}")).unwrap();
    }
    app.update();
    // Listbox -> scrollbar: the view state arrived.
    let state = app.eval(".scroll get").unwrap();
    let parts: Vec<i64> = state
        .split_whitespace()
        .map(|p| p.parse().unwrap())
        .collect();
    assert_eq!(parts[0], 30);
    assert!(parts[1] >= 4);
    // Scrollbar -> listbox: `.list view 10` by hand, then via widget.
    app.eval(".list view 10").unwrap();
    app.update();
    assert_eq!(app.eval(".list nearest 1").unwrap(), "10");
    let state = app.eval(".scroll get").unwrap();
    assert!(state.starts_with("30"), "{state}");
    assert_eq!(state.split_whitespace().nth(2).unwrap(), "10");
    env.dispatch_all();
}

#[test]
fn option_database_styles_new_widgets() {
    let (_env, app) = app();
    app.eval("option add *Button.background red").unwrap();
    app.eval("option add *Button.activeBackground yellow")
        .unwrap();
    app.eval("option add *myspecial.background blue").unwrap();
    app.eval("button .b1 -text one").unwrap();
    app.eval("button .myspecial -text two").unwrap();
    assert!(app
        .eval("lindex [.b1 configure -background] 4")
        .unwrap()
        .contains("red"));
    assert!(app
        .eval("lindex [.b1 configure -activebackground] 4")
        .unwrap()
        .contains("yellow"));
    // The name pattern beats the class pattern.
    assert!(app
        .eval("lindex [.myspecial configure -background] 4")
        .unwrap()
        .contains("blue"));
    // Explicit creation options beat the database.
    app.eval("button .b2 -background green").unwrap();
    assert!(app
        .eval("lindex [.b2 configure -background] 4")
        .unwrap()
        .contains("green"));
}

#[test]
fn focus_routes_keystrokes_between_entries() {
    let (env, app) = app();
    app.eval("entry .e1 -width 8; entry .e2 -width 8").unwrap();
    app.eval("pack append . .e1 {top} .e2 {top}").unwrap();
    app.update();
    app.eval("focus .e1").unwrap();
    env.display().type_string("one");
    env.dispatch_all();
    app.eval("focus .e2").unwrap();
    env.display().type_string("two");
    env.dispatch_all();
    assert_eq!(app.eval(".e1 get").unwrap(), "one");
    assert_eq!(app.eval(".e2 get").unwrap(), "two");
}

#[test]
fn dialog_box_from_pure_tcl() {
    // Section 5: "Tk contains no special support for dialog boxes."
    let (_env, app) = app();
    app.eval(
        r#"
        proc ask {question} {
            toplevel .ask
            message .ask.q -text $question -width 150
            button .ask.yes -text Yes -command {global answer; set answer yes; destroy .ask}
            button .ask.no -text No -command {global answer; set answer no; destroy .ask}
            pack append .ask .ask.q {top} .ask.yes {left expand} .ask.no {right expand}
        }
    "#,
    )
    .unwrap();
    app.eval("ask {Save changes?}").unwrap();
    app.update();
    assert_eq!(app.eval("winfo exists .ask").unwrap(), "1");
    assert_eq!(app.eval("winfo class .ask").unwrap(), "Toplevel");
    app.eval(".ask.yes invoke").unwrap();
    app.update();
    assert_eq!(app.eval("set answer").unwrap(), "yes");
    assert_eq!(app.eval("winfo exists .ask").unwrap(), "0");
}

#[test]
fn checkbuttons_and_radiobuttons_render_state() {
    let (env, app) = app();
    app.eval("checkbutton .c -text Bold -variable bold")
        .unwrap();
    app.eval("radiobutton .r -text Red -variable color -value red")
        .unwrap();
    app.eval("pack append . .c {top} .r {top}").unwrap();
    app.update();
    app.eval(".c select; .r select").unwrap();
    app.update();
    assert_eq!(app.eval("set bold").unwrap(), "1");
    assert_eq!(app.eval("set color").unwrap(), "red");
    // The screen shows both labels.
    let dump = env.display().ascii_dump();
    assert!(dump.contains("Bold"), "{dump}");
    assert!(dump.contains("Red"), "{dump}");
}

#[test]
fn button_press_renders_sunken_then_invokes() {
    let (env, app) = app();
    app.eval("set hits 0; button .b -text Go -command {incr hits}")
        .unwrap();
    app.eval("pack append . .b {top}").unwrap();
    app.update();
    let rec = app.window(".b").unwrap();
    let (cx, cy) = (
        rec.x.get() + rec.width.get() as i32 / 2,
        rec.y.get() + rec.height.get() as i32 / 2,
    );
    env.display().move_pointer(cx, cy);
    env.display().press_button(1);
    env.dispatch_all();
    app.update();
    // Not yet invoked while held down.
    assert_eq!(app.eval("set hits").unwrap(), "0");
    env.display().release_button(1);
    env.dispatch_all();
    assert_eq!(app.eval("set hits").unwrap(), "1");
    // Moving out cancels a pending press.
    env.display().press_button(1);
    env.display().move_pointer(500, 500);
    env.display().release_button(1);
    env.dispatch_all();
    assert_eq!(app.eval("set hits").unwrap(), "1");
}

#[test]
fn scale_reports_through_command() {
    let (env, app) = app();
    app.eval("set seen {}").unwrap();
    app.eval("proc watch {v} {global seen; lappend seen $v}")
        .unwrap();
    app.eval("scale .s -from 0 -to 10 -length 110 -command watch")
        .unwrap();
    app.eval("pack append . .s {top}").unwrap();
    app.update();
    let rec = app.window(".s").unwrap();
    // Drag from the middle to the right across the trough (the value is 0
    // initially, so starting at the left edge would produce no change).
    let y = rec.y.get() + rec.height.get() as i32 - 6;
    env.display()
        .move_pointer(rec.x.get() + rec.width.get() as i32 / 2, y);
    env.display().press_button(1);
    env.dispatch_all();
    env.display()
        .move_pointer(rec.x.get() + rec.width.get() as i32 - 12, y);
    env.dispatch_all();
    env.display().release_button(1);
    env.dispatch_all();
    let seen = app.eval("set seen").unwrap();
    let values: Vec<i64> = seen
        .split_whitespace()
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(values.len() >= 2, "drag produced {seen}");
    assert!(values.last().unwrap() > values.first().unwrap());
    assert_eq!(
        app.eval(".s get").unwrap(),
        values.last().unwrap().to_string()
    );
}

#[test]
fn menus_post_and_invoke_via_keyboardless_mouse() {
    let (env, app) = app();
    app.eval("menubutton .mb -text File -menu .mb.m").unwrap();
    app.eval("menu .mb.m").unwrap();
    app.eval(".mb.m add command -label New -command {set did new}")
        .unwrap();
    app.eval(".mb.m add separator").unwrap();
    app.eval(".mb.m add command -label Quit -command {set did quit}")
        .unwrap();
    app.eval("pack append . .mb {top frame nw}").unwrap();
    app.update();
    let mb = app.window(".mb").unwrap();
    env.display().move_pointer(mb.x.get() + 5, mb.y.get() + 5);
    env.display().click(1);
    env.dispatch_all();
    app.update();
    assert!(app.window(".mb.m").unwrap().mapped.get());
    // Click the third entry (Quit): entries are ~17px tall.
    env.display().move_pointer(
        mb.x.get() + 10,
        mb.y.get() + mb.height.get() as i32 + 2 + 2 * 17 + 8,
    );
    env.display().click(1);
    env.dispatch_all();
    assert_eq!(app.eval("set did").unwrap(), "quit");
}

#[test]
fn destroy_cleans_up_everything() {
    let (_env, app) = app();
    app.eval("frame .f").unwrap();
    app.eval("button .f.b -text x -command {}").unwrap();
    app.eval("entry .f.e").unwrap();
    app.eval("pack append . .f {top}").unwrap();
    app.eval("pack append .f .f.b {top} .f.e {top}").unwrap();
    app.eval("bind .f.b <Enter> {print hi}").unwrap();
    app.update();
    let count_before: usize = app.window_paths().len();
    assert_eq!(count_before, 4); // ., .f, .f.b, .f.e
    app.eval("destroy .f").unwrap();
    app.update();
    assert_eq!(app.window_paths().len(), 1);
    assert!(app.eval(".f.b invoke").is_err());
    assert_eq!(app.eval("bind .f.b").unwrap(), "");
    // The names are reusable.
    app.eval("frame .f; button .f.b -text again").unwrap();
}

#[test]
fn widgets_redraw_after_resize() {
    let (env, app) = app();
    app.eval("button .b -text Resize").unwrap();
    app.eval("pack append . .b {top expand fill}").unwrap();
    app.update();
    app.eval("wm geometry . 300x100").unwrap();
    app.update();
    let rec = app.window(".b").unwrap();
    assert_eq!(rec.width.get(), 300);
    // The label is still painted after the resize.
    let dump = env.display().ascii_dump();
    assert!(dump.contains("Resize"), "{dump}");
}

#[test]
fn labels_follow_anchor_option() {
    let (_env, app) = app();
    app.eval("label .l -text hi -anchor w -width 20").unwrap();
    app.eval("pack append . .l {top}").unwrap();
    app.update();
    app.eval(".l configure -anchor e").unwrap();
    app.update();
    // No assertion beyond "no error and still mapped": pixel placement is
    // covered by unit tests of Anchor::place.
    assert!(app.window(".l").unwrap().mapped.get());
}

#[test]
fn entry_reports_view_to_horizontal_scrollbar() {
    let (_env, app) = app();
    app.eval("entry .e -width 8 -scroll {.sb set}").unwrap();
    app.eval("scrollbar .sb -orient horizontal -command {.e view}")
        .unwrap();
    app.eval("pack append . .e {top fillx} .sb {top fillx}")
        .unwrap();
    app.update();
    app.eval(".e insert 0 abcdefghijklmnopqrstuvwxyz").unwrap();
    app.update();
    let state = app.eval(".sb get").unwrap();
    let parts: Vec<i64> = state
        .split_whitespace()
        .map(|p| p.parse().unwrap())
        .collect();
    assert_eq!(parts[0], 26, "{state}");
    assert!(parts[1] >= 8, "{state}");
    // Scrolling the entry updates the scrollbar's first unit.
    app.eval(".e view 10").unwrap();
    app.update();
    let state = app.eval(".sb get").unwrap();
    assert_eq!(state.split_whitespace().nth(2).unwrap(), "10", "{state}");
}

#[test]
fn option_readfile_loads_xdefaults() {
    let (_env, app) = app();
    let path = std::env::temp_dir().join("rtk_xdefaults_test");
    std::fs::write(
        &path,
        "! user preferences\n*Button.background: MediumSeaGreen\n*font: 9x15\n",
    )
    .unwrap();
    app.eval(&format!("option readfile {} userDefault", path.display()))
        .unwrap();
    app.eval("button .b -text styled").unwrap();
    let bg = app.eval("lindex [.b configure -background] 4").unwrap();
    assert_eq!(bg, "MediumSeaGreen");
    let font = app.eval("lindex [.b configure -font] 4").unwrap();
    assert_eq!(font, "9x15");
}

#[test]
fn horizontal_scrollbar_arrows_work() {
    let (env, app) = app();
    app.eval("proc view {i} {global got; set got $i}").unwrap();
    app.eval("scrollbar .sb -orient horizontal -command view")
        .unwrap();
    app.eval("pack append . .sb {top fillx}").unwrap();
    app.update();
    app.eval(".sb set 20 5 10 14").unwrap();
    let rec = app.window(".sb").unwrap();
    // Right arrow: one unit forward.
    env.display().move_pointer(
        rec.x.get() + rec.width.get() as i32 - 3,
        rec.y.get() + rec.height.get() as i32 / 2,
    );
    env.display().click(1);
    env.dispatch_all();
    assert_eq!(app.eval("set got").unwrap(), "11");
    // Left arrow: one unit back.
    env.display()
        .move_pointer(rec.x.get() + 3, rec.y.get() + rec.height.get() as i32 / 2);
    env.display().click(1);
    env.dispatch_all();
    assert_eq!(app.eval("set got").unwrap(), "9");
}
