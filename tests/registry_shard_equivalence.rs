//! Registry sharding must be invisible: every observable of the `send`
//! name registry — `winfo interps` listings, collision uniquification,
//! dead-peer GC — must be byte-identical whether the registry lives in
//! one root-window property (`shards = 1`, the legacy layout) or is
//! hashed across N property shards, and identically again over both
//! transports (framed wire and the in-process oracle).
//!
//! Each scenario runs under all four (shards, transport) combinations
//! and produces a transcript string; the suite asserts all four
//! transcripts are equal byte for byte.

use tk::TkEnv;
use xsim::{Display, FaultPlan};

/// The shard count the equivalence claim is made against; matches the
/// default (`tk` routes by 8 shards unless `RTK_SEND_SHARDS` says
/// otherwise).
const SHARDS: u32 = 8;

fn env_with(shards: u32, wire: bool) -> TkEnv {
    let display = Display::new();
    display.set_wire(wire);
    let env = TkEnv::with_display(display);
    // Must precede app creation: names are routed by the count in
    // effect at announce time.
    env.set_send_shards(shards);
    env
}

/// Runs `scenario` under every (shards, transport) combination and
/// asserts the transcripts agree byte for byte, with the legacy
/// single-property layout over the wire as the reference.
fn assert_equivalent(label: &str, scenario: impl Fn(&TkEnv) -> String) {
    let reference = scenario(&env_with(1, true));
    assert!(!reference.is_empty(), "{label}: empty reference transcript");
    for (shards, wire) in [(1, false), (SHARDS, true), (SHARDS, false)] {
        let got = scenario(&env_with(shards, wire));
        assert_eq!(
            got, reference,
            "{label}: shards={shards} wire={wire} diverged from the \
             legacy single-shard wire transcript"
        );
    }
}

/// `winfo interps` returns the same (sorted) listing from every app's
/// point of view, however the names hashed across shards.
#[test]
fn interps_listing_is_shard_layout_independent() {
    assert_equivalent("interps listing", |env| {
        let names = [
            "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
        ];
        let apps: Vec<_> = names.iter().map(|n| env.app(n)).collect();
        env.dispatch_all();
        let mut out = String::new();
        for (name, app) in names.iter().zip(&apps) {
            let listing = app.eval("winfo interps").unwrap();
            out.push_str(&format!("{name}: {listing}\n"));
        }
        out
    });
}

/// Name collisions uniquify to the same `name #k` sequence, and sends
/// addressed to the uniquified names reach the right interpreter — even
/// though `editor` and `editor #2` may hash to different shards.
#[test]
fn name_collisions_uniquify_identically() {
    assert_equivalent("name collision", |env| {
        let first = env.app("editor");
        let second = env.app("editor");
        let third = env.app("editor");
        let outsider = env.app("probe");
        env.dispatch_all();
        first.eval("set who original").unwrap();
        second.eval("set who runnerup").unwrap();
        third.eval("set who third").unwrap();

        let mut out = String::new();
        out.push_str(&format!(
            "interps: {}\n",
            outsider.eval("winfo interps").unwrap()
        ));
        for target in ["editor", "{editor #2}", "{editor #3}"] {
            let got = outsider
                .eval(&format!("send {target} {{set who}}"))
                .unwrap();
            out.push_str(&format!("send {target}: {got}\n"));
        }
        out
    });
}

/// A peer that dies without withdrawing leaves a stale entry; the first
/// send to it fails the same way, prunes the same entry, bumps the same
/// `registry_gc` count, and leaves the same listing — whichever shard
/// held the corpse.
#[test]
fn dead_peer_gc_prunes_identically() {
    assert_equivalent("dead-peer GC", |env| {
        let a = env.app("alpha");
        let b = env.app("beta");
        let _c = env.app("gamma");
        assert_eq!(a.eval("send beta {expr 1+1}").unwrap(), "2");
        // Kill beta's connection at its next request so nothing
        // withdraws its registry entry — a crash, not a clean exit.
        let victim = b.conn().client_id();
        let seq = b.conn().sequence();
        env.display()
            .with_server(|s| s.install_fault_plan(FaultPlan::default().kill_at(victim.0, seq + 1)));
        let _ = b.eval("wm title . doomed");
        env.dispatch_all();

        let mut out = String::new();
        let e = a.eval("send beta {expr 1+1}").unwrap_err();
        out.push_str(&format!("send beta: error {}\n", e.msg));
        out.push_str(&format!("interps: {}\n", a.eval("winfo interps").unwrap()));
        out.push_str(&format!(
            "registry_gc: {}\n",
            a.obs().counter("registry_gc")
        ));
        // A second listing is already clean: the prune rewrote only the
        // shard that held the corpse, once.
        out.push_str(&format!(
            "interps again: {}\n",
            a.eval("winfo interps").unwrap()
        ));
        out.push_str(&format!(
            "registry_gc again: {}\n",
            a.obs().counter("registry_gc")
        ));
        out
    });
}
