//! The program cache must be invisible: with the compiler on (the
//! default) and off (`RTK_NO_COMPILE=1`), every script must produce
//! byte-identical results, error messages, error traces, and X request
//! streams. These tests replay the checked-in chaos corpora and a
//! seeded random script generator in both modes and diff everything the
//! interpreter can observably produce.
//!
//! `TkApp::interp().set_compile(false)` selects at runtime exactly what
//! `RTK_NO_COMPILE=1` selects at startup, so the sweep covers the env
//! var's code path without the env-mutation races of `set_var`.

use tcl::Interp;
use tk::{TkApp, TkEnv};
use tk_bench::chaos::{
    generate_ops, generate_plan, generate_storm_ops, generate_storm_plan, Op, SCRIPT_OPS,
    STORM_APPS, STORM_OPS,
};
use xsim::XorShift;

/// Corpus lines are `script_seed fault_seed [apps]`; the optional third
/// column is the storm's app count (the two-app corpus carries none and
/// the default applies).
fn parse_entries(text: &str) -> Vec<(u64, u64, usize)> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut it = line.split_whitespace();
            Some((
                it.next().unwrap().parse().expect("script seed"),
                it.next().unwrap().parse().expect("fault seed"),
                it.next()
                    .map(|n| n.parse().expect("app count"))
                    .unwrap_or(STORM_APPS),
            ))
        })
        .collect()
}

/// Everything one replay produces that the other mode must reproduce
/// byte for byte.
#[derive(Debug, PartialEq)]
struct Replay {
    /// Per-Tcl-op outcome: the result string, or the full exception
    /// (code, message, trace).
    tcl: Vec<Result<String, tcl::Exception>>,
    /// Per-app protocol stream: (requests, flushes, round_trips).
    protocol: Vec<(u64, u64, u64)>,
    /// Faults fired on each connection (the streams staying aligned is
    /// what keeps sequence-keyed faults hitting the same requests).
    faults: Vec<u64>,
    /// Final screen contents.
    dump: String,
}

/// Replays an op list against apps `names`, all in one compile mode,
/// under an optional fault plan.
fn replay(ops: &[Op], names: &[&str], compiled: bool, plan: Option<&xsim::FaultPlan>) -> Replay {
    let env = TkEnv::new();
    let apps: Vec<TkApp> = names.iter().map(|n| env.app(n)).collect();
    for app in &apps {
        app.interp().set_compile(compiled);
    }
    env.dispatch_all();
    if let Some(plan) = plan {
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));
    }
    let mut tcl = Vec::new();
    for op in ops {
        match op {
            Op::Tcl(i, s) => tcl.push(apps[*i].eval(s)),
            Op::Click(x, y) => {
                env.display().move_pointer(*x, *y);
                env.display().click(1);
                env.dispatch_all();
            }
            Op::Key(c) => {
                env.display().type_char(*c);
                env.dispatch_all();
            }
            Op::Advance(ms) => env.advance(*ms),
        }
    }
    env.dispatch_all();
    Replay {
        tcl,
        protocol: apps
            .iter()
            .map(|a| {
                let s = a.conn().stats();
                (s.requests, s.flushes, s.round_trips)
            })
            .collect(),
        faults: apps
            .iter()
            .map(|a| a.conn().with_obs(|o| o.faults_injected).unwrap_or(0))
            .collect(),
        dump: env.display().ascii_dump(),
    }
}

fn assert_equivalent(label: &str, compiled: &Replay, direct: &Replay, ops: &[Op]) {
    for (i, (c, d)) in compiled.tcl.iter().zip(&direct.tcl).enumerate() {
        assert_eq!(
            c,
            d,
            "{label}: compiled and direct modes disagree on Tcl op {i} \
             ({:?})",
            ops.iter()
                .filter(|op| matches!(op, Op::Tcl(..)))
                .nth(i)
                .map(|op| op.to_string())
        );
    }
    assert_eq!(
        compiled.protocol, direct.protocol,
        "{label}: request streams diverged between compile modes"
    );
    assert_eq!(
        compiled.faults, direct.faults,
        "{label}: different faults fired between compile modes"
    );
    assert_eq!(compiled.dump, direct.dump, "{label}: screens diverged");
}

/// Every chaos-corpus pair — random Tcl/Tk scripts across two apps under
/// the corpus fault plans — must replay identically in both modes: same
/// results, same error strings, same request streams, same faults, same
/// final screen.
#[test]
fn chaos_corpus_is_identical_across_compile_modes() {
    let pairs = parse_entries(include_str!("chaos_corpus.txt"));
    assert!(!pairs.is_empty(), "corpus file is empty");
    for (script_seed, fault_seed, _) in pairs {
        let ops = generate_ops(script_seed, SCRIPT_OPS);
        let plan = generate_plan(fault_seed);
        let names = ["chaos0", "chaos1"];
        let compiled = replay(&ops, &names, true, Some(&plan));
        let direct = replay(&ops, &names, false, Some(&plan));
        assert_equivalent(
            &format!("chaos pair ({script_seed}, {fault_seed})"),
            &compiled,
            &direct,
            &ops,
        );
    }
}

/// The storm corpus — three apps exchanging nested/concurrent sends
/// under faults — must also be mode-blind. `send` evaluates scripts in a
/// *remote* interpreter, so this covers the cross-interp eval path.
#[test]
fn storm_corpus_is_identical_across_compile_modes() {
    let entries = parse_entries(include_str!("chaos_storm_corpus.txt"));
    assert!(!entries.is_empty(), "storm corpus file is empty");
    for (script_seed, fault_seed, napps) in entries {
        let names: Vec<String> = (0..napps).map(|i| format!("storm{i}")).collect();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        let ops = generate_storm_ops(script_seed, STORM_OPS, napps);
        let plan = generate_storm_plan(fault_seed, napps);
        let compiled = replay(&ops, &names, true, Some(&plan));
        let direct = replay(&ops, &names, false, Some(&plan));
        assert_equivalent(
            &format!("storm entry ({script_seed}, {fault_seed}, {napps} apps)"),
            &compiled,
            &direct,
            &ops,
        );
    }
}

/// Generates one random interpreter-level script: specialized forms
/// (`set`/`if`/`while`/`for`/`foreach`/`expr`), proc definition and
/// redefinition, deliberate runtime errors, unparseable tails, and
/// nested substitution — the full surface the compiler lowers.
fn gen_script(rng: &mut XorShift) -> String {
    let v = rng.below(5);
    match rng.below(16) {
        0 => format!("set v{v} {}", rng.below(1000)),
        1 => format!("set v{}", rng.below(8)), // may error: unset variable
        2 => format!("expr {{$v{v} + {}}}", rng.below(50)),
        3 => format!(
            "expr {{{} * {} - {}}}",
            rng.below(9),
            rng.below(9),
            rng.below(9)
        ),
        4 => format!("expr {{$v{v} > {} ? \"big\" : \"small\"}}", rng.below(500)),
        5 => format!("if {{$v{v} % 2 == 0}} {{set even yes}} else {{set even no}}"),
        6 => format!(
            "set i 0\nwhile {{$i < {}}} {{set i [expr {{$i + 1}}]}}\nset i",
            rng.below(6) + 1
        ),
        7 => format!(
            "for {{set j 0}} {{$j < {}}} {{set j [expr {{$j + 1}}]}} {{set acc{v} $j}}",
            rng.below(5) + 1
        ),
        8 => format!(
            "foreach x {{a b {} c}} {{set last $x}}\nset last",
            rng.below(10)
        ),
        9 => format!(
            "proc p{} {{a}} {{return [expr {{$a * {}}}]}}",
            rng.below(3),
            rng.below(7) + 1
        ),
        10 => format!("p{} {}", rng.below(3), rng.below(20)), // may error: undefined proc
        11 => format!("string length [set v{v} {}]", rng.below(100)),
        12 => "expr {1 +}".into(), // expr parse error, both modes
        13 => "while {$nope} {break}".into(), // runtime error in the condition
        14 => format!("catch {{expr {{100 / ($v{v} % 3)}}}} caught"),
        _ => format!(
            "set s [list a {} b]\nforeach e $s {{append out{v} $e}}",
            rng.below(5)
        ),
    }
}

/// A seeded random sweep over two bare interpreters, one per mode. Each
/// generated script is evaluated twice in both interps — the second
/// round replays from the program cache — and every result, exception,
/// and `errorInfo` must match byte for byte.
#[test]
fn random_scripts_agree_across_compile_modes() {
    const CASES: usize = 400;
    let compiled = Interp::new();
    compiled.set_compile(true);
    let direct = Interp::new();
    direct.set_compile(false);
    let mut rng = XorShift::new(0xc0de);
    for case in 0..CASES {
        let script = gen_script(&mut rng);
        for round in 0..2 {
            let c = compiled.eval(&script);
            let d = direct.eval(&script);
            assert_eq!(
                c, d,
                "case {case} round {round}: modes disagree on {script:?}"
            );
            let ci = compiled.get_var_at(0, "errorInfo", None).ok();
            let di = direct.get_var_at(0, "errorInfo", None).ok();
            assert_eq!(
                ci, di,
                "case {case} round {round}: errorInfo diverged after {script:?}"
            );
        }
    }
}
