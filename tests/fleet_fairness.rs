//! Fleet fairness: the per-client request quota must make one hot
//! client's flood *its own* problem. Two seeded property suites:
//!
//! * **Spinner fairness** — with one client flooding one-way requests
//!   under a quota, every other client's `send` still completes within
//!   its deadline, and the overflow is deferred (counted in
//!   `wire.backpressure_stalls`), never dropped: after the storm no
//!   request remains parked on the spinner's deferred queue.
//! * **Ordering at N=64** — per-client event ordering holds across a
//!   64-app send ring under drop/delay fault plans: the sends a given
//!   sender lands at a given receiver arrive in issue order, for every
//!   (sender, receiver) pair, whatever the faults did to the traffic
//!   in between.

use tk::{TkApp, TkEnv};
use xsim::fault::{FaultAction, FaultSpec};
use xsim::{FaultPlan, XorShift};

/// Virtual-ms deadline that defines "fair": a quota-throttled spinner
/// may slow itself down arbitrarily, but never push a peer's send past
/// this bound.
const DEADLINE_MS: u64 = 5_000;

fn fleet(napps: usize, prefix: &str) -> (TkEnv, Vec<TkApp>) {
    let env = TkEnv::new();
    let apps: Vec<TkApp> = (0..napps)
        .map(|i| env.app(&format!("{prefix}{i}")))
        .collect();
    env.dispatch_all();
    (env, apps)
}

/// Property (a): for several seeds, pick a spinner, flood a seeded
/// number of one-way requests through it under a small quota, then have
/// every other app complete a send within the deadline. The spinner's
/// deferred backlog must drain completely (deferral is not loss).
#[test]
fn a_spinning_client_cannot_push_any_peer_past_its_deadline() {
    for seed in 1..=5u64 {
        let mut rng = XorShift::new(seed ^ 0xfa17_fa17);
        let napps = 4 + rng.below(5) as usize; // 4..=8
        let spinner = rng.below(napps as u64) as usize;
        let burst = 32 + rng.below(97) as usize; // 32..=128
        let quota = 4 + rng.below(9) as usize; // 4..=12

        let (env, apps) = fleet(napps, "fair");
        apps[spinner]
            .eval("label .spin -text boot")
            .expect("spinner label");
        env.dispatch_all();
        env.display()
            .with_server(|s| s.set_client_quota(Some(quota)));

        for k in 0..burst {
            apps[spinner]
                .eval(&format!(".spin configure -text s{k}"))
                .expect("spinner one-way");
        }

        // Every peer (and the spinner itself) completes a send within
        // the deadline, measured on the virtual clock.
        for (i, app) in apps.iter().enumerate() {
            let target = (i + 1) % napps;
            let t0 = env.now();
            app.eval(&format!(
                "send -timeout {DEADLINE_MS} fair{target} {{set from_{i} {seed}}}"
            ))
            .unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: fair{i}'s send starved past {DEADLINE_MS}ms \
                     (spinner fair{spinner}, burst {burst}, quota {quota}): {}",
                    e.msg
                )
            });
            let dt = env.now().saturating_sub(t0);
            assert!(
                dt <= DEADLINE_MS,
                "seed {seed}: fair{i}'s send took {dt}ms under spinner load"
            );
        }
        env.dispatch_all();

        // The quota actually engaged...
        let spinner_client = apps[spinner].conn().client_id();
        let stalls = env
            .display()
            .with_server(|s| s.backpressure_stalls(spinner_client));
        assert!(
            stalls > 0,
            "seed {seed}: burst {burst} never tripped quota {quota}"
        );
        // ...and deferred work was deferred, not dropped: once everything
        // has drained, nothing is still parked on the spinner. (The
        // spinner's own send above succeeded too, and requests apply in
        // issue order, so the whole flood was executed before it.)
        let parked = env
            .display()
            .with_server(|s| s.deferred_len(spinner_client));
        assert_eq!(
            parked, 0,
            "seed {seed}: the spinner's deferred tail went missing \
             ({parked} requests still parked after drain)"
        );
    }
}

/// Builds a drop/delay-only fault plan: `n` specs spread over `clients`
/// clients and a request/event horizon, derived from `seed`. Kills and
/// errors are excluded on purpose — this suite is about ordering under
/// lossy, laggy delivery, not about teardown.
fn drop_delay_plan(seed: u64, n: usize, clients: u32, horizon: u64) -> FaultPlan {
    let mut rng = XorShift::new(seed ^ 0x0d0d_de1a);
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        let client = rng.below(u64::from(clients)) as u32;
        let at = rng.below(horizon);
        let action = if rng.below(2) == 0 {
            FaultAction::DropRequest
        } else {
            FaultAction::DelayEvent(1 + rng.below(4) as u32)
        };
        specs.push(FaultSpec { client, at, action });
    }
    FaultPlan::new(specs)
}

/// Property (b): 64 apps in a send ring under drop/delay plans. Each
/// app sends `k:{round}` markers to its ring neighbour with a short
/// timeout (drops burn virtual time, so long waits would dominate the
/// suite); whatever subset of the sends survives, the markers a
/// receiver holds from its upstream sender must be in strictly
/// increasing round order — per-client delivery order survives the
/// faults.
#[test]
fn per_client_ordering_holds_at_64_apps_under_drop_delay_plans() {
    const NAPPS: usize = 64;
    const ROUNDS: u64 = 3;
    for seed in 1..=2u64 {
        let (env, apps) = fleet(NAPPS, "ring");
        let plan = drop_delay_plan(seed, 24, NAPPS as u32, 3_000);
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));

        for round in 1..=ROUNDS {
            for (i, app) in apps.iter().enumerate() {
                let target = (i + 1) % NAPPS;
                // Failed sends are expected under drops — the invariant
                // is about the ones that landed.
                let _ = app.eval(&format!(
                    "send -timeout 400 ring{target} {{lappend inbox {i}:{round}}}"
                ));
            }
        }
        env.dispatch_all();

        for (i, app) in apps.iter().enumerate() {
            let upstream = (i + NAPPS - 1) % NAPPS;
            let inbox = match app.eval("set inbox") {
                Ok(v) => v,
                Err(_) => continue, // every send from upstream was lost
            };
            let mut last = 0u64;
            for entry in inbox.split_whitespace() {
                let (sender, round) = entry.split_once(':').expect("marker shape");
                assert_eq!(
                    sender.parse::<usize>().unwrap(),
                    upstream,
                    "seed {seed}: ring{i} heard from a non-neighbour: {inbox}"
                );
                let round: u64 = round.parse().unwrap();
                assert!(
                    round > last,
                    "seed {seed}: ring{i} saw ring{upstream}'s round {round} after \
                     {last} — per-client order broke under plan:\n{}",
                    plan.describe()
                );
                last = round;
            }
        }
    }
}
