//! Property tests for the Tcl list/quote machinery, driven by the
//! in-repo deterministic PRNG (`xsim::XorShift` — no external proptest
//! dependency, and every failure reprints its seed for replay).
//!
//! The laws under test are the ones Tcl scripts lean on constantly:
//! `format_list`/`parse_list` must round-trip arbitrary element strings
//! (quoting), parsing is a normalizing projection (parse∘format∘parse =
//! parse∘format), and the interpreter-level `list`/`lindex`/`llength`/
//! `join`/`split` commands agree with the library functions.

use tcl::{format_list, parse_list, Interp};
use xsim::XorShift;

const CASES: usize = 300;

/// Characters weighted toward the ones that make Tcl quoting hard.
fn gen_element(rng: &mut XorShift) -> String {
    let len = rng.below(8) as usize;
    let mut s = String::new();
    for _ in 0..len {
        let c = match rng.below(18) {
            0 => '{',
            1 => '}',
            2 => '"',
            3 => '\\',
            4 => ' ',
            5 => '\t',
            6 => '\n',
            7 => '$',
            8 => '[',
            9 => ']',
            10 => ';',
            11 => '#',
            _ => (b'a' + rng.below(26) as u8) as char,
        };
        s.push(c);
    }
    s
}

fn gen_elements(rng: &mut XorShift) -> Vec<String> {
    let n = rng.below(6) as usize;
    (0..n).map(|_| gen_element(rng)).collect()
}

#[test]
fn format_then_parse_round_trips_arbitrary_elements() {
    let mut rng = XorShift::new(0xfeed);
    for case in 0..CASES {
        let elems = gen_elements(&mut rng);
        let formatted = format_list(&elems);
        let parsed = parse_list(&formatted).unwrap_or_else(|e| {
            panic!("case {case}: format_list produced unparseable {formatted:?}: {e:?}")
        });
        assert_eq!(
            parsed, elems,
            "case {case}: round trip changed the elements (formatted: {formatted:?})"
        );
    }
}

#[test]
fn parsing_is_a_normalizing_projection() {
    // For any string that parses at all, format(parse(s)) parses back to
    // the same elements — formatting never loses what parsing found.
    let mut rng = XorShift::new(0xbeef);
    let mut parseable = 0;
    for _ in 0..CASES {
        let raw = gen_element(&mut rng);
        let Ok(once) = parse_list(&raw) else { continue };
        parseable += 1;
        let normalized = format_list(&once);
        let twice = parse_list(&normalized).expect("normalized form must parse");
        assert_eq!(twice, once, "normalization changed elements for {raw:?}");
    }
    // The generator must not be so hostile that the property is vacuous.
    assert!(parseable > CASES / 4, "only {parseable} inputs parsed");
}

#[test]
fn interpreter_list_commands_agree_with_the_library() {
    let interp = Interp::new();
    let mut rng = XorShift::new(0xcafe);
    for case in 0..CASES {
        let elems = gen_elements(&mut rng);
        // `list` applied to the elements (passed through set, so the
        // interpreter never substitutes their contents) equals
        // format_list.
        let mut script = String::from("list");
        for (i, e) in elems.iter().enumerate() {
            let _ = interp.set_var(&format!("e{i}"), None, e);
            script.push_str(&format!(" ${{e{i}}}"));
        }
        let listed = interp.eval(&script).expect("list cannot fail");
        assert_eq!(listed, format_list(&elems), "case {case}");

        let _ = interp.set_var("l", None, &listed);
        let llength = interp.eval("llength $l").expect("llength");
        assert_eq!(llength, elems.len().to_string(), "case {case}");
        for (i, e) in elems.iter().enumerate() {
            let nth = interp.eval(&format!("lindex $l {i}")).expect("lindex");
            assert_eq!(&nth, e, "case {case}: lindex {i} of {listed:?}");
        }
    }
}

#[test]
fn split_inverts_join_for_separator_free_elements() {
    let interp = Interp::new();
    let mut rng = XorShift::new(0xd00d);
    for case in 0..CASES {
        // Elements free of the separator and of quoting specials: join
        // flattens to plain text, so this is the exact precondition under
        // which split can invert it.
        let n = rng.range(1, 5) as usize;
        let elems: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.range(1, 6) as usize;
                (0..len)
                    .map(|_| (b'a' + rng.below(26) as u8) as char)
                    .collect()
            })
            .collect();
        let _ = interp.set_var("l", None, &format_list(&elems));
        let joined = interp.eval("join $l ,").expect("join");
        assert_eq!(joined, elems.join(","), "case {case}");
        let _ = interp.set_var("j", None, &joined);
        let split = interp.eval("split $j ,").expect("split");
        assert_eq!(
            parse_list(&split).expect("split output is a list"),
            elems,
            "case {case}: split did not invert join"
        );
    }
}
