//! Property tests for the packer (Section 3.4): across seeded random
//! widget trees and packing options, children stay inside their master,
//! siblings never overlap, and a second relayout of a settled tree is a
//! no-op on the wire (zero protocol requests — the structure cache and
//! the `place_window` short-circuit absorb it).

use tk::{TkApp, TkEnv};
use xsim::XorShift;

const SEEDS: u64 = 60;

const SIDES: [&str; 4] = ["top", "bottom", "left", "right"];
const ANCHORS: [&str; 9] = ["center", "n", "s", "e", "w", "ne", "nw", "se", "sw"];

/// One generated scenario: the masters that got slaves, and every
/// `(master, child)` packing edge.
struct Scenario {
    masters: Vec<String>,
    packed: Vec<(String, String)>,
}

/// Random packing options in the `pack append` word form.
fn random_options(rng: &mut XorShift) -> String {
    let mut words = vec![SIDES[rng.below(4) as usize].to_string()];
    if rng.below(4) == 0 {
        words.push("expand".into());
    }
    match rng.below(4) {
        0 => words.push("fill".into()),
        1 => words.push("fillx".into()),
        2 => words.push("filly".into()),
        _ => {}
    }
    if rng.below(3) == 0 {
        words.push(format!("padx {}", rng.below(7)));
    }
    if rng.below(3) == 0 {
        words.push(format!("pady {}", rng.below(7)));
    }
    if rng.below(3) == 0 {
        words.push(format!("frame {}", ANCHORS[rng.below(9) as usize]));
    }
    words.join(" ")
}

/// Builds a random two-level tree: a few frame masters packed into `.`,
/// each holding randomly-sized, randomly-optioned frame children.
fn build_scenario(app: &TkApp, seed: u64) -> Scenario {
    let mut rng = XorShift::new(seed);
    let mut masters = vec![".".to_string()];
    let mut packed = Vec::new();

    let n_masters = 1 + rng.below(3);
    for m in 0..n_masters {
        let master = format!(".m{m}");
        app.eval(&format!("frame {master} -borderwidth {}", rng.below(4)))
            .unwrap();
        let opts = random_options(&mut rng);
        app.eval(&format!("pack append . {master} {{{opts}}}"))
            .unwrap();
        packed.push((".".into(), master.clone()));
        masters.push(master.clone());

        let n_children = 1 + rng.below(5);
        for c in 0..n_children {
            let child = format!("{master}.c{c}");
            let w = 10 + rng.below(70);
            let h = 8 + rng.below(40);
            app.eval(&format!("frame {child} -geometry {w}x{h}"))
                .unwrap();
            let opts = random_options(&mut rng);
            app.eval(&format!("pack append {master} {child} {{{opts}}}"))
                .unwrap();
            packed.push((master.clone(), child.clone()));
        }
    }
    // A couple of directly-packed leaf widgets on the toplevel too.
    for l in 0..rng.below(3) {
        let child = format!(".l{l}");
        app.eval(&format!("label {child} -text {{leaf {l}}}"))
            .unwrap();
        let opts = random_options(&mut rng);
        app.eval(&format!("pack append . {child} {{{opts}}}"))
            .unwrap();
        packed.push((".".into(), child));
    }
    // Two updates: geometry propagation may cascade a master's new
    // requested size up one level; the second pass settles it.
    app.update();
    app.update();
    Scenario { masters, packed }
}

/// Parent-relative geometry of a window.
fn geometry(app: &TkApp, path: &str) -> (i32, i32, i32, i32) {
    let rec = app
        .window(path)
        .unwrap_or_else(|| panic!("no window {path}"));
    (
        rec.x.get(),
        rec.y.get(),
        rec.width.get() as i32,
        rec.height.get() as i32,
    )
}

#[test]
fn packed_children_stay_inside_their_master() {
    for seed in 1..=SEEDS {
        let env = TkEnv::new();
        let app = env.app("pack");
        let scenario = build_scenario(&app, seed);
        for (master, child) in &scenario.packed {
            let (x, y, w, h) = geometry(&app, child);
            let mrec = app.window(master).unwrap();
            let (mw, mh) = (mrec.width.get() as i32, mrec.height.get() as i32);
            assert!(
                x >= 0 && y >= 0 && x + w <= mw && y + h <= mh,
                "seed {seed}: {child} ({x},{y} {w}x{h}) escapes {master} ({mw}x{mh})"
            );
        }
    }
}

#[test]
fn packed_siblings_never_overlap() {
    for seed in 1..=SEEDS {
        let env = TkEnv::new();
        let app = env.app("pack");
        let scenario = build_scenario(&app, seed);
        for master in &scenario.masters {
            let sibs: Vec<&String> = scenario
                .packed
                .iter()
                .filter(|(m, _)| m == master)
                .map(|(_, c)| c)
                .collect();
            for (i, a) in sibs.iter().enumerate() {
                for b in &sibs[i + 1..] {
                    let (ax, ay, aw, ah) = geometry(&app, a);
                    let (bx, by, bw, bh) = geometry(&app, b);
                    let disjoint = ax + aw <= bx || bx + bw <= ax || ay + ah <= by || by + bh <= ay;
                    assert!(
                        disjoint,
                        "seed {seed}: {a} ({ax},{ay} {aw}x{ah}) overlaps \
                         {b} ({bx},{by} {bw}x{bh}) in {master}"
                    );
                }
            }
        }
    }
}

#[test]
fn relayout_of_a_settled_tree_is_free() {
    for seed in 1..=SEEDS {
        let env = TkEnv::new();
        let app = env.app("pack");
        let scenario = build_scenario(&app, seed);

        // Remember where everything sits...
        let before: Vec<(i32, i32, i32, i32)> = scenario
            .packed
            .iter()
            .map(|(_, c)| geometry(&app, c))
            .collect();

        // ...then relayout every master again. A settled tree must not
        // move a window, ask for new geometry, or touch the server.
        let requests = app.conn().stats().requests;
        for master in &scenario.masters {
            tk::pack::relayout(&app, master);
        }
        app.update();
        let delta = app.conn().stats().requests - requests;
        assert_eq!(
            delta, 0,
            "seed {seed}: second relayout sent {delta} protocol requests"
        );
        let after: Vec<(i32, i32, i32, i32)> = scenario
            .packed
            .iter()
            .map(|(_, c)| geometry(&app, c))
            .collect();
        assert_eq!(before, after, "seed {seed}: second relayout moved a window");
    }
}

/// Unpacking a slave gives its space back: siblings re-settle, and the
/// unpacked window is no longer mapped.
#[test]
fn unpack_releases_the_parcel() {
    let env = TkEnv::new();
    let app = env.app("pack");
    app.eval("frame .a -geometry 40x20").unwrap();
    app.eval("frame .b -geometry 40x20").unwrap();
    app.eval("pack append . .a {top} .b {top}").unwrap();
    app.update();
    let (_, by, _, _) = geometry(&app, ".b");
    assert!(by >= 20, ".b below .a");
    app.eval("pack unpack .a").unwrap();
    app.update();
    let (_, by, _, _) = geometry(&app, ".b");
    assert_eq!(by, 0, ".b takes over the cavity");
    assert!(!app.window(".a").unwrap().mapped.get());
}
