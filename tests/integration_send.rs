//! Integration tests for Section 6: applications working together through
//! `send` — the debugger/editor pair, the spreadssheet-style active
//! objects, the hypertext pattern, and the live interface editor.

use tk::TkEnv;

#[test]
fn debugger_editor_cooperate() {
    let env = TkEnv::new();
    let editor = env.app("editor");
    let debugger = env.app("debugger");
    editor
        .eval("listbox .src -geometry 20x8; pack append . .src {top}")
        .unwrap();
    editor
        .eval("foreach l {l0 l1 l2 l3 l4} {.src insert end $l}")
        .unwrap();
    editor
        .eval("proc highlight {n} {.src select clear; .src select from $n; return done}")
        .unwrap();
    // The debugger highlights the current line in the editor.
    let r = debugger.eval("send editor {highlight 3}").unwrap();
    assert_eq!(r, "done");
    assert_eq!(editor.eval(".src curselection").unwrap(), "3");
    // The editor asks the debugger for a variable's value.
    debugger.eval("set counter 42").unwrap();
    assert_eq!(editor.eval("send debugger {set counter}").unwrap(), "42");
}

#[test]
fn spreadsheet_cells_with_embedded_commands() {
    // "A Tk-based spreadsheet might permit cells to contain embedded Tcl
    // commands. When such a cell is evaluated the Tcl command would be
    // executed automatically; it could fetch information from an
    // independent database package."
    let env = TkEnv::new();
    let database = env.app("database");
    database
        .eval("set prices(widget) 19; set prices(gadget) 7")
        .unwrap();
    let sheet = env.app("spreadsheet");
    sheet
        .eval(
            r#"
        set cell(a1) {=send database {set prices(widget)}}
        set cell(a2) {=send database {set prices(gadget)}}
        set cell(a3) {=expr {[eval-cell a1] + [eval-cell a2]}}
        proc eval-cell {name} {
            global cell
            set v $cell($name)
            if {[string index $v 0] == "="} {
                return [eval [string range $v 1 end]]
            }
            return $v
        }
    "#,
        )
        .unwrap();
    assert_eq!(sheet.eval("eval-cell a1").unwrap(), "19");
    assert_eq!(sheet.eval("eval-cell a3").unwrap(), "26");
    // Fresh data propagates on the next evaluation.
    database.eval("set prices(widget) 25").unwrap();
    assert_eq!(sheet.eval("eval-cell a3").unwrap(), "32");
}

#[test]
fn hypertext_links_open_views() {
    // "A hypertext system can be implemented by associating Tcl commands
    // with pieces of text ... a 'link' can be produced by writing a Tcl
    // command that opens a new view."
    let env = TkEnv::new();
    let app = env.app("hyper");
    app.eval(
        r#"
        label .doc -text "See also: chapter 2"
        pack append . .doc {top}
        bind .doc <Button-1> {
            toplevel .view
            label .view.body -text "Chapter 2 contents"
            pack append .view .view.body {top}
        }
    "#,
    )
    .unwrap();
    app.update();
    let doc = app.window(".doc").unwrap();
    env.display().move_pointer(doc.x.get() + 5, doc.y.get() + 5);
    env.display().click(1);
    env.dispatch_all();
    app.update();
    assert_eq!(app.eval("winfo exists .view").unwrap(), "1");
    assert!(app.window(".view.body").unwrap().mapped.get());
}

#[test]
fn interface_editor_works_on_live_application() {
    // "With Tk and send it becomes possible for an interface editor to
    // work on live applications, using send to query and modify the
    // application's interface."
    let env = TkEnv::new();
    let target = env.app("target");
    target
        .eval("button .go -text Start -bg gray -command {}; pack append . .go {top}")
        .unwrap();
    let ui_editor = env.app("uieditor");
    // Query the live interface...
    assert_eq!(
        ui_editor.eval("send target {winfo children .}").unwrap(),
        ".go"
    );
    assert_eq!(
        ui_editor.eval("send target {winfo class .go}").unwrap(),
        "Button"
    );
    // ...modify it, and read the change back.
    ui_editor
        .eval("send target {.go configure -text Launch -bg red}")
        .unwrap();
    assert_eq!(
        ui_editor
            .eval("send target {lindex [.go configure -text] 4}")
            .unwrap(),
        "Launch"
    );
    // Produce a startup file describing the final interface.
    let config = ui_editor
        .eval("send target {format {button .go -text %s -bg %s} [lindex [.go configure -text] 4] [lindex [.go configure -background] 4]}")
        .unwrap();
    assert_eq!(config, "button .go -text Launch -bg red");
}

#[test]
fn send_is_reentrant_through_chains() {
    let env = TkEnv::new();
    let _a = env.app("a");
    let _b = env.app("b");
    let _c = env.app("c");
    let a = env.application_names();
    assert!(a.contains(&"a".to_string()));
    // a -> b -> c -> back to a.
    let first = env.app("driver");
    first.eval("set home base").unwrap();
    let r = first
        .eval("send a {send b {send c {send driver {set home}}}}")
        .unwrap();
    assert_eq!(r, "base");
}

#[test]
fn send_survives_target_errors_with_trace() {
    let env = TkEnv::new();
    let a = env.app("a");
    let _b = env.app("b");
    let e = a.eval("send b {expr {1/0}}").unwrap_err();
    assert!(e.msg.contains("divide by zero"));
    // The sender keeps working afterwards.
    assert_eq!(a.eval("send b {expr {2+2}}").unwrap(), "4");
}

#[test]
fn painting_pipeline_forwards_many_events() {
    // The Section 7 latency vignette, as a throughput check.
    let env = TkEnv::new();
    let canvas = env.app("canvas");
    canvas.eval("set strokes {}").unwrap();
    canvas
        .eval("proc stroke {x y} {global strokes; lappend strokes $x,$y}")
        .unwrap();
    let painter = env.app("painter");
    painter
        .eval("frame .pad -geometry 100x100; pack append . .pad {top}")
        .unwrap();
    painter
        .eval(r#"bind .pad <B1-Motion> {send canvas "stroke %x %y"}"#)
        .unwrap();
    env.dispatch_all();
    let pad = painter.window(".pad").unwrap();
    let d = env.display();
    d.move_pointer(pad.x.get() + 5, pad.y.get() + 5);
    d.press_button(1);
    for i in 0..20 {
        d.move_pointer(pad.x.get() + 5 + i, pad.y.get() + 5);
        env.dispatch_all();
    }
    d.release_button(1);
    env.dispatch_all();
    let n: usize = canvas.eval("llength $strokes").unwrap().parse().unwrap();
    assert_eq!(n, 20, "every motion event must arrive at the canvas");
}
