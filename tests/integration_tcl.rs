//! Integration tests for the Tcl interpreter as a programming language:
//! complete programs, the paper's Figure 1-5 examples verbatim, and the
//! "programs are data" property that makes Tk's callbacks possible.

use tcl::Interp;

#[test]
fn figures_1_through_5_verbatim() {
    let i = Interp::new();
    let out = i.capture_output();
    // Figure 1.
    i.eval("set a 1000").unwrap();
    i.eval("print foo; print bar").unwrap();
    assert_eq!(&*out.borrow(), "foobar");
    // Figure 2.
    i.eval("set msg \"Hello, world\"").unwrap();
    i.eval("set x {a b {x1 x2}}").unwrap();
    assert_eq!(i.eval("set msg").unwrap(), "Hello, world");
    assert_eq!(i.eval("llength $x").unwrap(), "3");
    // Figure 3.
    out.borrow_mut().clear();
    i.eval("print $msg").unwrap();
    assert_eq!(&*out.borrow(), "Hello, world");
    i.eval("set i 1").unwrap();
    i.eval("if $i<2 {set j 43}").unwrap();
    assert_eq!(i.eval("set j").unwrap(), "43");
    // Figure 4.
    out.borrow_mut().clear();
    i.eval("print [list q r $x]").unwrap();
    assert_eq!(&*out.borrow(), "q r {a b {x1 x2}}");
    i.eval("set msg [format \"x is %s\" $x]").unwrap();
    assert_eq!(i.eval("set msg").unwrap(), "x is a b {x1 x2}");
    // Figure 5.
    i.eval(r#"set msg "\{ and \} are special""#).unwrap();
    assert_eq!(i.eval("set msg").unwrap(), "{ and } are special");
    out.borrow_mut().clear();
    i.eval("print Hello!\\n").unwrap();
    assert_eq!(&*out.borrow(), "Hello!\n");
}

#[test]
fn fibonacci_program() {
    let i = Interp::new();
    i.eval(
        "proc fib {n} {
            if {$n < 2} {return $n}
            return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}]
        }",
    )
    .unwrap();
    assert_eq!(i.eval("fib 15").unwrap(), "610");
}

#[test]
fn iterative_sort_program() {
    let i = Interp::new();
    i.eval(
        "proc bubble {list} {
            set n [llength $list]
            for {set i 0} {$i < $n} {incr i} {
                for {set j 0} {$j < [expr {$n-$i-1}]} {incr j} {
                    set a [lindex $list $j]
                    set b [lindex $list [expr {$j+1}]]
                    if {$a > $b} {
                        set list [lreplace $list $j [expr {$j+1}] $b $a]
                    }
                }
            }
            return $list
        }",
    )
    .unwrap();
    assert_eq!(i.eval("bubble {5 3 9 1 7 2}").unwrap(), "1 2 3 5 7 9");
}

#[test]
fn programs_synthesized_on_the_fly() {
    // "Tcl programs have the same basic form as Tcl data, which allows new
    // Tcl programs to be synthesized and executed on-the-fly."
    let i = Interp::new();
    i.eval("set body {return [expr {$x * $x}]}").unwrap();
    i.eval("eval [list proc square {x} $body]").unwrap();
    assert_eq!(i.eval("square 12").unwrap(), "144");
    // And introspected back out (Section 8's "access to its own
    // internals").
    assert_eq!(
        i.eval("info body square").unwrap(),
        "return [expr {$x * $x}]"
    );
}

#[test]
fn error_info_traceback_through_procs() {
    let i = Interp::new();
    i.eval("proc outer {} {middle}").unwrap();
    i.eval("proc middle {} {inner}").unwrap();
    i.eval("proc inner {} {error deep-failure}").unwrap();
    let e = i.eval("outer").unwrap_err();
    assert_eq!(e.msg, "deep-failure");
    let info = i.get_var_at(0, "errorInfo", None).unwrap();
    assert!(info.contains("deep-failure"));
    assert!(info.contains("inner"));
    assert!(info.contains("outer"));
}

#[test]
fn catch_isolates_failures() {
    let i = Interp::new();
    let script = "
        set results {}
        foreach item {1 0 2} {
            if {[catch {expr {10 / $item}} value]} {
                lappend results error
            } else {
                lappend results $value
            }
        }
        set results
    ";
    assert_eq!(i.eval(script).unwrap(), "10 error 5");
}

#[test]
fn upvar_implements_reference_semantics() {
    let i = Interp::new();
    i.eval(
        "proc swap {aName bName} {
            upvar $aName a $bName b
            set tmp $a
            set a $b
            set b $tmp
        }",
    )
    .unwrap();
    i.eval("set x 1; set y 2; swap x y").unwrap();
    assert_eq!(i.eval("set x").unwrap(), "2");
    assert_eq!(i.eval("set y").unwrap(), "1");
}

#[test]
fn string_only_data_model_interops_with_numbers() {
    let i = Interp::new();
    // Everything is a string: numbers survive round trips through lists,
    // variables, and format.
    i.eval("set vals {}").unwrap();
    i.eval("foreach v {1 2 3} {lappend vals [format %03d $v]}")
        .unwrap();
    assert_eq!(i.eval("set vals").unwrap(), "001 002 003");
    assert_eq!(i.eval("expr {[lindex $vals 2] + 1}").unwrap(), "4");
}

#[test]
fn deep_recursion_is_caught_not_crashed() {
    let i = Interp::new();
    i.eval("proc down {n} {down [expr {$n+1}]}").unwrap();
    let e = i.eval("down 0").unwrap_err();
    assert!(e.msg.contains("too many nested calls"));
    // The interpreter remains usable.
    assert_eq!(i.eval("expr {1+1}").unwrap(), "2");
}

#[test]
fn command_line_application_pattern() {
    // An application registers a few primitives; Tcl composes them
    // (Section 2's whole point).
    let i = Interp::new();
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::<String>::new()));
    let l = log.clone();
    i.register("emit", move |_i, argv| {
        l.borrow_mut().push(argv[1..].join(" "));
        Ok(String::new())
    });
    i.eval(
        "foreach color {red green blue} {
            if {[string match g* $color]} continue
            emit chose $color
        }",
    )
    .unwrap();
    assert_eq!(log.borrow().join("; "), "chose red; chose blue");
}

#[test]
fn whole_figure9_proc_parses_and_defines() {
    let i = Interp::new();
    i.eval(
        r#"proc browse {dir file} {
            if {[string compare $dir "."] != 0} {set file $dir/$file}
            if [file $file isdirectory] {
                set cmd [list exec sh -c "browse $file &"]
                eval $cmd
            } else {
                if [file $file isfile] {exec mx $file} else {
                    print "$file isn't a directory or regular file\n"
                }
            }
        }"#,
    )
    .unwrap();
    assert_eq!(i.eval("info args browse").unwrap(), "dir file");
}
