//! Section 6's headline scenario: "Tk-based debuggers and editors can be
//! built as separate programs. The debugger can send commands to the
//! editor to highlight the current line of execution, and the editor can
//! send commands to the debugger to print the contents of a selected
//! variable or set a breakpoint."
//!
//! Two independent applications — an "editor" showing source lines in a
//! listbox, and a "debugger" stepping through a program — cooperate purely
//! through `send`. Neither knows the other's implementation; each exposes
//! a couple of Tcl procs as its public interface.
//!
//! Run with: `cargo run --example send_tools`

use tk::TkEnv;

fn main() {
    let env = TkEnv::new();

    // ---- The editor: a listbox of source lines plus a `goto-line` API.
    let editor = env.app("editor");
    editor
        .eval(
            r#"
        listbox .text -geometry 32x10 -relief sunken
        label .status -text "editor: idle"
        pack append . .status {top fillx} .text {top expand fill}
        foreach line {
            {PROGRAM compute}
            {  total = 0}
            {  FOR i = 0 TO 9}
            {    total = total + compute(i)}
            {  END}
            {  RETURN report(total)}
            {END}
        } {.text insert end $line}
        wm geometry . +0+0
        proc goto-line {n} {
            .text select clear
            .text select from $n
            .status configure -text "editor: at line $n"
            return "editor showing line $n"
        }
        proc selected-text {} {
            set sel [.text curselection]
            if {[llength $sel] == 0} {return ""}
            return [.text get [lindex $sel 0]]
        }
    "#,
        )
        .expect("editor setup");

    // ---- The debugger: steps a fake program; tells the editor where it is.
    let debugger = env.app("debugger");
    debugger
        .eval(
            r#"
        label .state -text "stopped"
        button .step -text Step -command step
        button .break -text "Breakpoint at editor selection" -command break-here
        pack append . .state {top fillx} .step {top fillx} .break {top fillx}
        wm geometry . +400+0
        set pc 0
        set breakpoints {}
        proc step {} {
            global pc breakpoints
            set pc [expr $pc+1]
            .state configure -text "stopped at line $pc"
            # The debugger reaches into the editor to highlight the line.
            send editor [list goto-line $pc]
            if {[lsearch $breakpoints $pc] >= 0} {
                .state configure -text "hit breakpoint at line $pc"
            }
            return $pc
        }
        proc break-here {} {
            global breakpoints
            # Ask the editor which line its user selected.
            set line [send editor {.text curselection}]
            if {$line != ""} {lappend breakpoints [lindex $line 0]}
            return $breakpoints
        }
        proc breakpoints {} {global breakpoints; return $breakpoints}
    "#,
        )
        .expect("debugger setup");
    env.dispatch_all();

    // The user clicks Step twice in the debugger.
    for _ in 0..2 {
        debugger.eval(".step invoke").expect("step");
    }
    println!(
        "debugger state: {}",
        debugger.eval("lindex [.state configure -text] 4").unwrap()
    );
    println!(
        "editor status:  {}",
        editor.eval("lindex [.status configure -text] 4").unwrap()
    );

    // The editor's user selects line 4 and the debugger sets a breakpoint
    // there — by asking the editor via send.
    editor.eval(".text select from 4").expect("select");
    debugger.eval(".break invoke").expect("breakpoint");
    println!(
        "debugger breakpoints: {}",
        debugger.eval("breakpoints").unwrap()
    );

    // Step until the breakpoint is hit.
    for _ in 0..2 {
        debugger.eval(".step invoke").expect("step");
    }
    println!(
        "debugger state: {}",
        debugger.eval("lindex [.state configure -text] 4").unwrap()
    );

    // And the editor can drive the debugger just as easily.
    let from_editor = editor
        .eval("send debugger {expr {$pc * 100}}")
        .expect("editor querying debugger");
    println!("editor asked debugger for pc*100: {from_editor}");

    println!(
        "\nBoth applications, one display:\n{}",
        env.display().ascii_dump()
    );
}
