//! Section 5: "Tk contains no special support for dialog boxes. The basic
//! commands for creating and arranging widgets are already sufficient ...
//! dialogs are created by writing short Tcl scripts."
//!
//! A file-save dialog built from stock widgets in a dozen lines of Tcl:
//! a toplevel, a message, an entry (focused, per Section 3.7), and two
//! buttons. No C — er, Rust — code specific to dialogs exists anywhere in
//! the toolkit.
//!
//! Run with: `cargo run --example dialog`

use tk::TkEnv;

fn main() {
    let env = TkEnv::new();
    let app = env.app("editor");

    app.eval(
        r#"
        # The main application window.
        label .title -text "My Editor"
        button .save -text "Save As..." -command show-dialog
        pack append . .title {top fillx} .save {top}

        set dialog-result ""

        proc show-dialog {} {
            toplevel .d
            wm geometry .d +60+40
            message .d.msg -text "Save the current buffer to which file?" -width 180
            entry .d.name -width 24
            frame .d.buttons
            button .d.buttons.ok -text Save -command {
                global dialog-result
                set dialog-result [.d.name get]
                destroy .d
            }
            button .d.buttons.cancel -text Cancel -command {
                global dialog-result
                set dialog-result "(cancelled)"
                destroy .d
            }
            pack append .d.buttons .d.buttons.ok {left expand} .d.buttons.cancel {right expand}
            pack append .d .d.msg {top fillx} .d.name {top fillx} .d.buttons {top fillx}
            # Section 3.7: focus moves to the entry so the user can type
            # without moving the mouse.
            focus .d.name
        }
    "#,
    )
    .expect("application setup");
    app.update();

    // The user clicks "Save As...".
    app.eval(".save invoke").expect("open dialog");
    app.update();
    assert_eq!(app.eval("winfo exists .d").unwrap(), "1");
    println!("Dialog on screen:\n{}", env.display().ascii_dump());

    // The focus is on the entry; the user just types.
    assert_eq!(app.eval("focus").unwrap(), ".d.name");
    env.display().type_string("chapter1.txt");
    env.dispatch_all();

    // Click Save.
    let ok = app.window(".d.buttons.ok").expect("ok button");
    let mut x = ok.x.get() + ok.width.get() as i32 / 2;
    let mut y = ok.y.get() + ok.height.get() as i32 / 2;
    // Accumulate ancestor offsets to get root coordinates.
    for anc in [".d.buttons", ".d"] {
        let rec = app.window(anc).unwrap();
        x += rec.x.get();
        y += rec.y.get();
    }
    env.display().move_pointer(x, y);
    env.display().click(1);
    env.dispatch_all();
    app.update();

    println!(
        "Dialog answered: {}",
        app.eval("set dialog-result").unwrap()
    );
    assert_eq!(app.eval("set dialog-result").unwrap(), "chapter1.txt");
    assert_eq!(app.eval("winfo exists .d").unwrap(), "0");
    println!("The dialog destroyed itself; the main window remains:");
    println!("{}", env.display().ascii_dump());
}
