//! Section 7's performance vignette, as a working program: "it is possible
//! to paint with the mouse in one application, have all the mouse motion
//! events bound into Tcl commands, which in turn use send to forward
//! commands to another application in a different process, which finally
//! draws the painted object in its own window."
//!
//! The "canvas" application exposes one primitive, `dot x y`, that draws a
//! filled square. The "painter" application binds `<B1-Motion>` to a Tcl
//! command that forwards every motion event through `send`.
//!
//! Run with: `cargo run --example painter`

use tk::TkEnv;

fn main() {
    let env = TkEnv::new();

    // The canvas application: a frame plus a drawing primitive written as
    // a native command (the kind of "key primitive operation" the paper
    // says an application should implement and let Tcl compose).
    let canvas = env.app("canvas");
    canvas
        .eval("frame .c -geometry 200x120 -background white; pack append . .c {top expand fill}")
        .expect("canvas setup");
    canvas.eval("wm geometry . +0+0").unwrap();
    canvas.register_command("dot", |app, _interp, argv| {
        if argv.len() != 3 {
            return Err(tcl::wrong_args("dot x y"));
        }
        let x: i32 = argv[1]
            .parse()
            .map_err(|_| tcl::Exception::error("bad x"))?;
        let y: i32 = argv[2]
            .parse()
            .map_err(|_| tcl::Exception::error("bad y"))?;
        let rec = app.require_window(".c")?;
        let black = app.cache().color(app.conn(), "black")?;
        let gc = app.cache().gc(
            app.conn(),
            xsim::GcValues {
                foreground: black,
                ..Default::default()
            },
        );
        app.conn().fill_rectangle(rec.xid, gc, x - 2, y - 2, 4, 4);
        Ok(String::new())
    });
    canvas
        .eval("set dots 0; proc count-dot {} {global dots; incr dots}")
        .unwrap();

    // The painter application: its window mirrors the canvas size; every
    // B1 drag forwards the stroke.
    let painter = env.app("painter");
    painter
        .eval(
            r#"
        frame .pad -geometry 200x120 -background gray
        pack append . .pad {top expand fill}
        wm geometry . +300+0
        bind .pad <B1-Motion> {send canvas "dot %x %y; count-dot"}
        bind .pad <Button-1> {send canvas "dot %x %y; count-dot"}
    "#,
        )
        .expect("painter setup");
    env.dispatch_all();

    // The user paints a diagonal stroke in the painter's window.
    let pad = painter.window(".pad").expect("pad window");
    let (ox, oy) = (pad.x.get() + 300, pad.y.get()); // painter is at +300+0
    let d = env.display();
    d.move_pointer(ox + 10, oy + 10);
    d.press_button(1);
    for i in 0..40 {
        d.move_pointer(ox + 10 + i * 4, oy + 10 + i * 2);
        env.dispatch_all();
    }
    d.release_button(1);
    env.dispatch_all();

    let dots = canvas.eval("set dots").unwrap();
    println!("The canvas drew {dots} dots forwarded through send.");

    // Verify the pixels really landed in the canvas application's window.
    let rec = canvas.window(".c").unwrap();
    let black = xsim::Rgb::new(0, 0, 0);
    let painted = env.display().with_server(|s| {
        s.window_surface(rec.xid)
            .map(|surf| surf.count_pixels(black))
            .unwrap_or(0)
    });
    println!("Black pixels on the canvas: {painted}");
    assert!(painted > 100, "the stroke should be visible");

    let ppm = env.display().screenshot().to_ppm();
    let out = std::env::temp_dir().join("rtk_painter.ppm");
    std::fs::write(&out, ppm).expect("write screenshot");
    println!("Screenshot written to {}", out.display());
}
