//! Quickstart: the paper's Section 4 "Hello, world" button, created,
//! configured, clicked, and reconfigured entirely through Tcl.
//!
//! Run with: `cargo run --example quickstart`

use tk::TkEnv;

fn main() {
    // One simulated display, one Tk application.
    let env = TkEnv::new();
    let app = env.app("hello");

    // Capture `print` output so we can show what the button's command did.
    let output = app.interp().capture_output();

    // The exact creation command from Section 4 of the paper.
    app.eval(r#"button .hello -bg Red -text "Hello, world" -command "print Hello!\n""#)
        .expect("create the button");
    app.eval("pack append . .hello {top}").expect("pack it");
    app.update();

    println!("Screen after creation:\n{}", env.display().ascii_dump());

    // The user moves the mouse over the button and clicks.
    let rec = app.window(".hello").expect("button window");
    env.display().move_pointer(
        rec.x.get() + rec.width.get() as i32 / 2,
        rec.y.get() + rec.height.get() as i32 / 2,
    );
    env.display().click(1);
    env.dispatch_all();
    println!("The -command printed: {:?}", output.borrow().as_str());

    // Manipulate the widget through its widget command (also Section 4):
    app.eval(".hello flash").expect("flash");
    app.eval(".hello configure -bg PalePink1 -relief sunken")
        .expect("reconfigure");
    app.update();
    println!(
        "Current -bg: {}",
        app.eval("lindex [.hello configure -background] 4").unwrap()
    );

    // Everything is introspectable from Tcl at run time:
    println!("Windows: {}", app.eval("winfo children .").unwrap());
    println!(
        "Button geometry: {}x{} requested, {} actual",
        app.eval("winfo reqwidth .hello").unwrap(),
        app.eval("winfo reqheight .hello").unwrap(),
        app.eval("winfo geometry .hello").unwrap(),
    );
}
