//! Section 6's decomposition argument, made concrete: "Commercial
//! spreadsheet programs tend to be lumped together with chart packages
//! ... in order to allow the different functions to work together. The
//! lumping results in unnecessary re-implementation of functions."
//!
//! Here the spreadsheet and the chart tool are *separate applications*.
//! The chart tool knows nothing about spreadsheets — it exposes one Tcl
//! proc, `plot values`, drawn with the canvas widget (the drawing
//! commands the paper lists as wish's next step). The spreadsheet pushes
//! its column through `send` whenever a cell changes.
//!
//! Run with: `cargo run --example chart`

use tk::TkEnv;

fn main() {
    let env = TkEnv::new();

    // ---- The chart tool: a reusable plotting application.
    let chart = env.app("chart");
    chart
        .eval(
            r#"
        canvas .plot -geometry 220x120 -background white
        label .caption -text "chart: no data"
        pack append . .plot {top expand fill} .caption {bottom fillx}
        wm geometry . +300+0
        proc plot {values} {
            .plot delete all
            .plot create line 10 100 210 100
            .plot create line 10 100 10 8
            set x 16
            set max 1
            foreach v $values {if {$v > $max} {set max $v}}
            foreach v $values {
                set h [expr {$v * 88 / $max}]
                .plot create rectangle $x [expr {100 - $h}] [expr {$x + 18}] 100 -fill SteelBlue -tag bar
                .plot create text $x [expr {97 - $h}] -text $v
                set x [expr {$x + 26}]
            }
            .caption configure -text "chart: [llength $values] bars, max $max"
            return [llength $values]
        }
    "#,
        )
        .expect("chart setup");

    // ---- The spreadsheet: cells in entry widgets; every change replots.
    let sheet = env.app("spreadsheet");
    sheet
        .eval(
            r#"
        label .head -text "Q1 Q2 Q3 Q4 revenue"
        pack append . .head {top fillx}
        set cells {}
        foreach q {1 2 3 4} {
            entry .e$q -width 8
            pack append . .e$q {top}
            lappend cells .e$q
        }
        wm geometry . +0+0
        proc replot {} {
            global cells
            set values {}
            foreach c $cells {
                set v [$c get]
                if {$v == ""} {set v 0}
                lappend values $v
            }
            send chart [list plot $values]
        }
    "#,
        )
        .expect("spreadsheet setup");
    env.dispatch_all();

    // The user types quarterly numbers into the spreadsheet.
    for (i, v) in [("1", "30"), ("2", "55"), ("3", "42"), ("4", "70")] {
        sheet.eval(&format!(".e{i} insert 0 {v}")).unwrap();
    }
    // ... and the sheet pushes the column to the chart tool.
    let bars = sheet.eval("replot").expect("replot");
    println!("spreadsheet sent its column; the chart drew it (result: {bars})");
    println!(
        "chart caption: {}",
        chart.eval("lindex [.caption configure -text] 4").unwrap()
    );
    env.dispatch_all();
    chart.update();

    println!("\nTwo cooperating tools:\n{}", env.display().ascii_dump());

    // A cell changes; the chart follows — live data, not a copy.
    sheet.eval(".e2 delete 0 end; .e2 insert 0 90").unwrap();
    sheet.eval("replot").unwrap();
    println!(
        "after editing Q2: {}",
        chart.eval("lindex [.caption configure -text] 4").unwrap()
    );
    assert!(!chart.eval(".plot bbox bar").unwrap().is_empty());

    let ppm = env.display().screenshot().to_ppm();
    let out = std::env::temp_dir().join("rtk_chart.ppm");
    std::fs::write(&out, ppm).expect("write screenshot");
    println!("Screenshot written to {}", out.display());
}
