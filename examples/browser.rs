//! The paper's Figure 9: "A simple directory browser, implemented as a
//! script for wish" — all 21 lines of it, run against the simulated
//! display, ending with a screen dump in the spirit of Figure 10.
//!
//! The script is embedded byte-for-byte (minus the `#!wish -f` line, which
//! only matters to the kernel's interpreter machinery). `mx` (the editor)
//! and `sh` are stubbed through the pluggable exec executor so the example
//! is self-contained; `ls` is served from a synthesized directory.
//!
//! Run with: `cargo run --example browser`

use std::cell::RefCell;
use std::rc::Rc;

use tk::TkEnv;

/// Figure 9, lines 2-21.
const BROWSE_SCRIPT: &str = r#"
scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}
proc browse {dir file} {
    if {[string compare $dir "."] != 0} {set file $dir/$file}
    if [file $file isdirectory] {
        set cmd [list exec sh -c "browse $file &"]
        eval $cmd
    } else {
        if [file $file isfile] {exec mx $file} else {
            print "$file isn't a directory or regular file\n"
        }
    }
}
if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
    .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}
"#;

/// Serves `ls` from a synthetic directory and records `mx`/`sh` launches.
struct BrowserExecutor {
    listing: Vec<String>,
    launched: Rc<RefCell<Vec<String>>>,
}

impl tcl::Executor for BrowserExecutor {
    fn run(&self, _interp: &tcl::Interp, argv: &[String]) -> Result<String, String> {
        match argv[0].as_str() {
            "ls" => Ok(self.listing.join("\n")),
            "mx" => {
                self.launched.borrow_mut().push(format!("mx {}", argv[1]));
                Ok(String::new())
            }
            "sh" => {
                self.launched.borrow_mut().push(argv.join(" "));
                Ok(String::new())
            }
            other => Err(format!("couldn't execute \"{other}\"")),
        }
    }
}

fn main() {
    // A synthetic home directory: some files and a subdirectory, realized
    // on disk so the script's `file isdirectory` / `file isfile` tests
    // behave exactly as they would have on the author's workstation.
    let dir = std::env::temp_dir().join("rtk_browser_example");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("projects")).expect("create example dir");
    for f in [
        "Makefile",
        "browse",
        "main.c",
        "main.h",
        "notes.txt",
        "paper.ms",
    ] {
        std::fs::write(dir.join(f), "contents\n").expect("create example file");
    }

    let env = TkEnv::new();
    let app = env.app("browse");
    let launched = Rc::new(RefCell::new(Vec::new()));
    let mut listing: Vec<String> = std::fs::read_dir(&dir)
        .expect("read example dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    listing.sort();
    app.interp().set_executor(Rc::new(BrowserExecutor {
        listing,
        launched: launched.clone(),
    }));

    // argv/argc as wish would set them: browse <dir>.
    let dirs = dir.display().to_string();
    app.interp()
        .set_var_at(0, "argv", None, &tcl::format_list(&[dirs]))
        .unwrap();
    app.interp().set_var_at(0, "argc", None, "1").unwrap();

    app.eval(BROWSE_SCRIPT).expect("Figure 9 script runs");
    app.update();

    println!(
        "The browser is showing {} entries:",
        app.eval(".list size").unwrap()
    );

    // The user clicks on "main.c" (item 2), then presses space to browse
    // it, exactly as Figure 9's bindings prescribe.
    let list = app.window(".list").unwrap();
    let line_height = 13; // the `fixed` font
    let item = 2;
    env.display().move_pointer(
        list.x.get() + 20,
        list.y.get() + 4 + item * line_height + line_height / 2,
    );
    env.display().click(1);
    env.dispatch_all();
    println!("Selected item(s): {}", app.eval("selection get").unwrap());
    env.display().press_key("space");
    env.dispatch_all();

    // Now double up: select the subdirectory and browse it too.
    let dir_item = 6; // "projects" sorts last
    env.display().move_pointer(
        list.x.get() + 20,
        list.y.get() + 4 + dir_item * line_height + line_height / 2,
    );
    env.display().click(1);
    env.dispatch_all();
    env.display().press_key("space");
    env.dispatch_all();

    println!("\nPrograms launched by the browser:");
    for l in launched.borrow().iter() {
        println!("    {l}");
    }

    // Figure 10: the screen dump.
    println!("\nScreen dump (Figure 10):\n{}", env.display().ascii_dump());
    let ppm = env.display().screenshot().to_ppm();
    let out = std::env::temp_dir().join("rtk_browser.ppm");
    std::fs::write(&out, ppm).expect("write screenshot");
    println!("Pixel screenshot written to {}", out.display());

    // Control-q exits, per the script's final binding.
    env.display().set_modifiers(xsim::event::state::CONTROL);
    env.display().type_char('q');
    env.display().set_modifiers(0);
    env.dispatch_all();
    assert!(app.destroyed(), "Control-q should destroy the application");
    println!("Control-q destroyed the application. Goodbye.");
}
