use tcl::interp::Interp;

#[test]
fn intra_script_redefinition() {
    let mut results = Vec::new();
    for mode in [false, true] {
        let i = Interp::new();
        i.set_compile(mode);
        let r = i.eval("proc set {args} {return shadowed}\nset a 1");
        results.push(format!("compile={mode}: {r:?}"));
    }
    panic!("{}", results.join(" | "));
}
