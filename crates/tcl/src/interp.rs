//! The Tcl interpreter: command registry, call frames, and evaluation.
//!
//! The interpreter is a cheaply clonable handle (`Rc` inside) whose methods
//! take `&self`; interior mutability is scoped to individual operations and
//! never held across a nested evaluation. This is what lets command
//! procedures re-enter the interpreter — the pattern the paper relies on
//! everywhere: `if` evaluating its body, widgets evaluating their `-command`
//! scripts, `send` evaluating scripts that arrive from other applications.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::compile::{CompiledCmd, CompiledWord, OpKind, Program, SPECIALIZED};
use crate::error::{Code, Exception, TclResult};
use crate::parser::{parse_command, Part, Word};

/// A native command procedure.
///
/// `argv[0]` is the command name, further elements are the fully
/// substituted arguments — the same calling convention as the C `Tcl_CmdProc`.
pub type CmdFn = Rc<dyn Fn(&Interp, &[String]) -> TclResult>;

/// A registered command: either native Rust or a Tcl `proc`.
#[derive(Clone)]
pub enum Command {
    /// A command implemented in Rust.
    Native(CmdFn),
    /// A command defined by the `proc` built-in.
    Proc(Rc<ProcDef>),
}

/// The definition of a Tcl procedure.
pub struct ProcDef {
    /// Formal parameters: `(name, default)`. The final parameter may be the
    /// special name `args`, which collects remaining arguments as a list.
    pub params: Vec<(String, Option<String>)>,
    /// The body script.
    pub body: String,
}

/// One variable slot in a call frame.
#[derive(Clone, Debug)]
pub enum Var {
    /// An ordinary string-valued variable.
    Scalar(String),
    /// An associative array of elements.
    Array(HashMap<String, String>),
    /// A link to a variable in another frame, created by `upvar`/`global`.
    Link { level: usize, name: String },
}

/// Which operations a variable trace fires on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceOps {
    /// Fire on reads.
    pub read: bool,
    /// Fire on writes.
    pub write: bool,
    /// Fire on unset.
    pub unset: bool,
}

impl TraceOps {
    /// Parses an ops string of `r`, `w`, and `u` characters.
    pub fn parse(spec: &str) -> Result<TraceOps, Exception> {
        let mut ops = TraceOps::default();
        for c in spec.chars() {
            match c {
                'r' => ops.read = true,
                'w' => ops.write = true,
                'u' => ops.unset = true,
                other => {
                    return Err(Exception::error(format!(
                        "bad operation \"{other}\": should be one or more of rwu"
                    )))
                }
            }
        }
        if ops == TraceOps::default() {
            return Err(Exception::error(
                "bad operations \"\": should be one or more of rwu",
            ));
        }
        Ok(ops)
    }

    /// Renders back into the `rwu` form.
    pub fn text(&self) -> String {
        let mut s = String::new();
        if self.read {
            s.push('r');
        }
        if self.write {
            s.push('w');
        }
        if self.unset {
            s.push('u');
        }
        s
    }
}

/// A native trace callback: `(interp, name1, name2, op)`.
pub type NativeTraceFn = Rc<dyn Fn(&Interp, &str, &str, &str)>;

/// What a trace runs when it fires.
pub enum TraceAction {
    /// A Tcl command, called as `command name1 name2 op`.
    Script(String),
    /// A native callback — used by Tk widgets to track their
    /// `-variable` options.
    Native(NativeTraceFn),
}

/// One registered variable trace.
pub struct TraceDef {
    /// Unique id (for removal of native traces).
    pub id: u64,
    /// The operations this trace fires on.
    pub ops: TraceOps,
    /// The action to run.
    pub action: TraceAction,
    /// Re-entrancy guard: a trace does not fire while it is running.
    firing: std::cell::Cell<bool>,
}

/// A call frame holding local variables. Frame 0 is the global frame.
#[derive(Default)]
pub struct Frame {
    vars: HashMap<String, Var>,
    traces: HashMap<String, Vec<Rc<TraceDef>>>,
    /// The proc invocation that created this frame, for `info level`.
    pub invocation: Vec<String>,
}

/// Where `print`/`puts` output goes.
enum Output {
    /// Write to the process standard output.
    Stdout,
    /// Capture into an in-memory buffer readable by tests.
    Capture(Rc<RefCell<String>>),
}

/// Runs external commands on behalf of `exec`. Applications substitute a
/// fake executor to keep tests hermetic.
pub trait Executor {
    /// Runs `argv` and returns its standard output, or an error message.
    fn run(&self, interp: &Interp, argv: &[String]) -> Result<String, String>;
}

/// The default executor: `std::process::Command`.
struct SystemExecutor;

impl Executor for SystemExecutor {
    fn run(&self, _interp: &Interp, argv: &[String]) -> Result<String, String> {
        if argv.is_empty() {
            return Err("exec: no command given".into());
        }
        // A trailing `&` requests background execution, as in Figure 9's
        // `exec sh -c "browse $file &"`.
        let (argv, background) = match argv.last().map(String::as_str) {
            Some("&") => (&argv[..argv.len() - 1], true),
            _ => (argv, false),
        };
        if argv.is_empty() {
            return Err("exec: no command given".into());
        }
        let mut cmd = std::process::Command::new(&argv[0]);
        cmd.args(&argv[1..]);
        if background {
            match cmd.spawn() {
                Ok(_) => Ok(String::new()),
                Err(e) => Err(format!("couldn't execute \"{}\": {e}", argv[0])),
            }
        } else {
            match cmd.output() {
                Ok(out) => {
                    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
                    // Tcl's exec trims one trailing newline.
                    if text.ends_with('\n') {
                        text.pop();
                    }
                    if out.status.success() {
                        Ok(text)
                    } else {
                        let err = String::from_utf8_lossy(&out.stderr).into_owned();
                        Err(if err.is_empty() {
                            format!("command \"{}\" returned non-zero status", argv[0])
                        } else {
                            err.trim_end().to_string()
                        })
                    }
                }
                Err(e) => Err(format!("couldn't execute \"{}\": {e}", argv[0])),
            }
        }
    }
}

/// Deterministic counters for the compile pipeline. All are monotonic
/// between resets and carry no wall-clock noise, so CI budgets can pin
/// their exact values.
#[derive(Default)]
pub struct CompileStats {
    /// Scripts lowered to programs.
    pub compiles: Cell<u64>,
    /// Program-cache lookups that found a current entry.
    pub cache_hits: Cell<u64>,
    /// Program-cache lookups that had to (re)compile.
    pub cache_misses: Cell<u64>,
    /// Entries dropped because the cache hit capacity.
    pub evictions: Cell<u64>,
    /// Entries dropped because the command epoch moved under them.
    pub invalidations: Cell<u64>,
    /// Commands parsed (`parse_command` yields), in either eval mode.
    pub parses: Cell<u64>,
    /// Commands executed from a cached program past its first run — each
    /// one is a parse the direct interpreter would have repeated.
    pub parses_avoided: Cell<u64>,
    /// Expressions lowered to cached programs.
    pub expr_compiles: Cell<u64>,
    /// Expression-cache lookups that found an entry.
    pub expr_cache_hits: Cell<u64>,
}

fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

/// One program-cache entry. `epoch` records the command epoch the program
/// was compiled under; a bumped epoch makes the entry stale. `gen` is a
/// recency stamp for eviction. `prog` is `None` for scripts that failed to
/// parse — a negative marker so repeated evaluations of a broken script
/// don't re-attempt compilation.
struct CacheEntry {
    prog: Option<Rc<Program>>,
    epoch: u64,
    gen: u64,
}

/// Capacity of the program cache; above it the least recently used half
/// is evicted in one sweep.
const PROGRAM_CACHE_CAP: usize = 512;
/// Capacity of the compiled-expression cache; cleared wholesale when full.
const EXPR_CACHE_CAP: usize = 512;

/// The compile pipeline's shared state.
struct CompileState {
    /// Script string → compiled program.
    programs: RefCell<HashMap<String, CacheEntry>>,
    /// Recency stamp source for eviction ordering.
    gen: Cell<u64>,
    /// Bumped whenever a registry change could invalidate specialized
    /// lowerings (`proc` definitions, `rename`/deletion of specialized
    /// builtins, trace installation).
    cmd_epoch: Cell<u64>,
    /// The `RTK_NO_COMPILE` escape hatch, also settable programmatically.
    enabled: Cell<bool>,
    stats: CompileStats,
    /// Command-name atom table: name → index into `atom_cmds`.
    atom_ids: RefCell<HashMap<String, u32>>,
    /// Live command bindings per atom, kept in sync by the registry so
    /// dispatch through an atom honors later registrations.
    atom_cmds: RefCell<Vec<Option<Command>>>,
    /// The builtin command procedures captured at construction; a
    /// specialized lowering is only valid while the registered command is
    /// still pointer-identical to its baseline.
    baseline: RefCell<HashMap<String, CmdFn>>,
    /// Expression source → compiled expression (`None`: parse failed).
    exprs: RefCell<HashMap<String, Option<Rc<crate::expr::ExprProgram>>>>,
}

impl CompileState {
    fn new() -> CompileState {
        // Mirrors the RTK_NO_DAMAGE convention: set and non-zero disables.
        let enabled = std::env::var("RTK_NO_COMPILE").map_or(true, |v| v.is_empty() || v == "0");
        CompileState {
            programs: RefCell::new(HashMap::new()),
            gen: Cell::new(0),
            cmd_epoch: Cell::new(0),
            enabled: Cell::new(enabled),
            stats: CompileStats::default(),
            atom_ids: RefCell::new(HashMap::new()),
            atom_cmds: RefCell::new(Vec::new()),
            baseline: RefCell::new(HashMap::new()),
            exprs: RefCell::new(HashMap::new()),
        }
    }
}

struct InterpInner {
    commands: RefCell<HashMap<String, Command>>,
    frames: RefCell<Vec<Frame>>,
    output: RefCell<Output>,
    executor: RefCell<Rc<dyn Executor>>,
    nesting: RefCell<usize>,
    next_trace_id: std::cell::Cell<u64>,
    /// Set by the `exit` command so embedding shells can terminate cleanly.
    exit_requested: RefCell<Option<i32>>,
    compile: CompileState,
}

/// A Tcl interpreter. Clones share the same state.
#[derive(Clone)]
pub struct Interp {
    inner: Rc<InterpInner>,
}

/// The maximum depth of nested script evaluations before the interpreter
/// reports an infinite-recursion error.
const MAX_NESTING: usize = 150;

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Creates an interpreter with all built-in commands registered.
    pub fn new() -> Interp {
        let interp = Interp::bare();
        crate::commands::register_all(&interp);
        // Snapshot the specialized builtins: compile-time specialization
        // is only valid while the registered command is still this exact
        // procedure (a `proc set ...` redefinition must win).
        {
            let commands = interp.inner.commands.borrow();
            let mut baseline = interp.inner.compile.baseline.borrow_mut();
            for name in SPECIALIZED {
                if let Some(Command::Native(f)) = commands.get(*name) {
                    baseline.insert(name.to_string(), f.clone());
                }
            }
        }
        interp
    }

    /// Creates an interpreter with no commands at all (for parser-level
    /// testing or highly restricted embeddings).
    pub fn bare() -> Interp {
        Interp {
            inner: Rc::new(InterpInner {
                commands: RefCell::new(HashMap::new()),
                frames: RefCell::new(vec![Frame::default()]),
                output: RefCell::new(Output::Stdout),
                executor: RefCell::new(Rc::new(SystemExecutor)),
                nesting: RefCell::new(0),
                next_trace_id: std::cell::Cell::new(0),
                exit_requested: RefCell::new(None),
                compile: CompileState::new(),
            }),
        }
    }

    // ----- command registry -------------------------------------------------

    /// Registers a native command, replacing any existing command of the
    /// same name (exactly like `Tcl_CreateCommand`).
    pub fn register<F>(&self, name: &str, f: F)
    where
        F: Fn(&Interp, &[String]) -> TclResult + 'static,
    {
        if SPECIALIZED.contains(&name) {
            self.bump_compile_epoch();
        }
        let cmd = Command::Native(Rc::new(f));
        self.sync_atom(name, Some(cmd.clone()));
        self.inner
            .commands
            .borrow_mut()
            .insert(name.to_string(), cmd);
    }

    /// Registers a Tcl procedure. Always bumps the compile epoch: a proc
    /// (re)definition may shadow a specialized builtin, and cached
    /// programs compiled against the old registry must not survive it.
    pub fn register_proc(&self, name: &str, def: ProcDef) {
        self.bump_compile_epoch();
        let cmd = Command::Proc(Rc::new(def));
        self.sync_atom(name, Some(cmd.clone()));
        self.inner
            .commands
            .borrow_mut()
            .insert(name.to_string(), cmd);
    }

    /// Removes a command. Returns true if it existed.
    pub fn unregister(&self, name: &str) -> bool {
        if SPECIALIZED.contains(&name) {
            self.bump_compile_epoch();
        }
        self.sync_atom(name, None);
        self.inner.commands.borrow_mut().remove(name).is_some()
    }

    /// Renames a command; an empty new name deletes it.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), Exception> {
        if SPECIALIZED.contains(&from) || SPECIALIZED.contains(&to) {
            self.bump_compile_epoch();
        }
        let cmd = {
            let mut cmds = self.inner.commands.borrow_mut();
            let Some(cmd) = cmds.remove(from) else {
                return Err(Exception::error(format!(
                    "can't rename \"{from}\": command doesn't exist"
                )));
            };
            if !to.is_empty() {
                cmds.insert(to.to_string(), cmd.clone());
            }
            cmd
        };
        self.sync_atom(from, None);
        if !to.is_empty() {
            self.sync_atom(to, Some(cmd));
        }
        Ok(())
    }

    /// Looks up a command by name.
    pub fn command(&self, name: &str) -> Option<Command> {
        self.inner.commands.borrow().get(name).cloned()
    }

    /// Returns the names of all registered commands, sorted.
    pub fn command_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.commands.borrow().keys().cloned().collect();
        names.sort();
        names
    }

    /// Returns the names of commands defined as Tcl procs, sorted.
    pub fn proc_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .commands
            .borrow()
            .iter()
            .filter(|(_, c)| matches!(c, Command::Proc(_)))
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Returns the definition of a proc, if `name` is one.
    pub fn proc_def(&self, name: &str) -> Option<Rc<ProcDef>> {
        match self.inner.commands.borrow().get(name) {
            Some(Command::Proc(p)) => Some(p.clone()),
            _ => None,
        }
    }

    // ----- output and exec hooks --------------------------------------------

    /// Redirects `print`/`puts` into a capture buffer and returns it.
    pub fn capture_output(&self) -> Rc<RefCell<String>> {
        let buf = Rc::new(RefCell::new(String::new()));
        *self.inner.output.borrow_mut() = Output::Capture(buf.clone());
        buf
    }

    /// Writes text to the interpreter's output sink.
    pub fn write_output(&self, text: &str) {
        match &*self.inner.output.borrow() {
            Output::Stdout => {
                use std::io::Write;
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                let _ = lock.write_all(text.as_bytes());
                let _ = lock.flush();
            }
            Output::Capture(buf) => buf.borrow_mut().push_str(text),
        }
    }

    /// Replaces the `exec` executor (tests install fakes here).
    pub fn set_executor(&self, exec: Rc<dyn Executor>) {
        *self.inner.executor.borrow_mut() = exec;
    }

    /// Runs `argv` through the current executor.
    pub fn run_exec(&self, argv: &[String]) -> Result<String, String> {
        let exec = self.inner.executor.borrow().clone();
        exec.run(self, argv)
    }

    /// Records a request to exit with the given status (set by `exit`).
    pub fn request_exit(&self, status: i32) {
        *self.inner.exit_requested.borrow_mut() = Some(status);
    }

    /// The status passed to `exit`, if it has been called.
    pub fn exit_requested(&self) -> Option<i32> {
        *self.inner.exit_requested.borrow()
    }

    // ----- variables ----------------------------------------------------------

    fn frame_count(&self) -> usize {
        self.inner.frames.borrow().len()
    }

    /// The current frame's level (0 = global).
    pub fn level(&self) -> usize {
        self.frame_count() - 1
    }

    /// Resolves links: returns the (level, name) a variable access lands on.
    fn resolve(&self, mut level: usize, mut name: String) -> (usize, String) {
        loop {
            let frames = self.inner.frames.borrow();
            match frames[level].vars.get(&name) {
                Some(Var::Link { level: l, name: n }) => {
                    let (l, n) = (*l, n.clone());
                    drop(frames);
                    level = l;
                    name = n;
                }
                _ => return (level, name),
            }
        }
    }

    /// Reads a variable (scalar or array element) in the current frame.
    pub fn get_var(&self, name: &str, index: Option<&str>) -> Result<String, Exception> {
        self.get_var_at(self.level(), name, index)
    }

    // ----- variable traces ------------------------------------------------

    /// Attaches a trace to a variable in the current frame; returns its id.
    /// Trace installation bumps the compile epoch: cached programs were
    /// compiled against a trace-free view of the variable.
    pub fn trace_variable(&self, name: &str, ops: TraceOps, action: TraceAction) -> u64 {
        self.bump_compile_epoch();
        let (base, _) = split_var_name(name);
        let (level, base) = self.resolve(self.level(), base);
        let id = self.inner.next_trace_id.get() + 1;
        self.inner.next_trace_id.set(id);
        self.inner.frames.borrow_mut()[level]
            .traces
            .entry(base)
            .or_default()
            .push(Rc::new(TraceDef {
                id,
                ops,
                action,
                firing: std::cell::Cell::new(false),
            }));
        id
    }

    /// Removes the first script trace matching ops and command text.
    pub fn trace_vdelete(&self, name: &str, ops: TraceOps, command: &str) -> bool {
        let (base, _) = split_var_name(name);
        let (level, base) = self.resolve(self.level(), base);
        let mut frames = self.inner.frames.borrow_mut();
        let Some(list) = frames[level].traces.get_mut(&base) else {
            return false;
        };
        let pos = list.iter().position(|t| {
            t.ops == ops && matches!(&t.action, TraceAction::Script(c) if c == command)
        });
        match pos {
            Some(i) => {
                list.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes a trace by id (native traces use this).
    pub fn trace_remove(&self, name: &str, id: u64) -> bool {
        let (base, _) = split_var_name(name);
        let (level, base) = self.resolve(self.level(), base);
        let mut frames = self.inner.frames.borrow_mut();
        let Some(list) = frames[level].traces.get_mut(&base) else {
            return false;
        };
        let before = list.len();
        list.retain(|t| t.id != id);
        list.len() != before
    }

    /// Lists the traces on a variable as `(ops, command)` pairs; native
    /// traces show a placeholder command.
    pub fn trace_info(&self, name: &str) -> Vec<(String, String)> {
        let (base, _) = split_var_name(name);
        let (level, base) = self.resolve(self.level(), base);
        let frames = self.inner.frames.borrow();
        frames[level]
            .traces
            .get(&base)
            .map(|list| {
                list.iter()
                    .map(|t| {
                        let cmd = match &t.action {
                            TraceAction::Script(c) => c.clone(),
                            TraceAction::Native(_) => "<native>".to_string(),
                        };
                        (t.ops.text(), cmd)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Fires the traces on `(level, name)` for operation `op` (`r`/`w`/`u`).
    /// Script-trace errors propagate (except for unset traces, as in Tcl).
    fn fire_traces(
        &self,
        level: usize,
        name: &str,
        index: Option<&str>,
        op: &str,
    ) -> Result<(), Exception> {
        let list: Vec<Rc<TraceDef>> = {
            let frames = self.inner.frames.borrow();
            match frames[level].traces.get(name) {
                Some(l) if !l.is_empty() => l.clone(),
                _ => return Ok(()),
            }
        };
        for t in list {
            let wanted = match op {
                "r" => t.ops.read,
                "w" => t.ops.write,
                "u" => t.ops.unset,
                _ => false,
            };
            if !wanted || t.firing.get() {
                continue;
            }
            t.firing.set(true);
            let result = match &t.action {
                TraceAction::Script(cmd) => {
                    let call = format!(
                        "{cmd} {}",
                        crate::list::format_list(&[name, index.unwrap_or(""), op])
                    );
                    self.eval(&call).map(|_| ())
                }
                TraceAction::Native(f) => {
                    f(self, name, index.unwrap_or(""), op);
                    Ok(())
                }
            };
            t.firing.set(false);
            if let Err(e) = result {
                if op != "u" && e.code == Code::Error {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Reads a variable in an explicit frame level.
    pub fn get_var_at(
        &self,
        level: usize,
        name: &str,
        index: Option<&str>,
    ) -> Result<String, Exception> {
        let (level, name) = self.resolve(level, name.to_string());
        self.fire_traces(level, &name, index, "r")?;
        let frames = self.inner.frames.borrow();
        match (frames[level].vars.get(&name), index) {
            (Some(Var::Scalar(v)), None) => Ok(v.clone()),
            (Some(Var::Array(_)), None) => Err(Exception::error(format!(
                "can't read \"{name}\": variable is array"
            ))),
            (Some(Var::Array(map)), Some(idx)) => map.get(idx).cloned().ok_or_else(|| {
                Exception::error(format!(
                    "can't read \"{name}({idx})\": no such element in array"
                ))
            }),
            (Some(Var::Scalar(_)), Some(_)) => Err(Exception::error(format!(
                "can't read \"{name}\": variable isn't array"
            ))),
            (Some(Var::Link { .. }), _) => unreachable!("links resolved above"),
            (None, _) => Err(Exception::error(format!(
                "can't read \"{name}\": no such variable"
            ))),
        }
    }

    /// Writes a variable in the current frame. Returns the value written.
    pub fn set_var(
        &self,
        name: &str,
        index: Option<&str>,
        value: &str,
    ) -> Result<String, Exception> {
        self.set_var_at(self.level(), name, index, value)
    }

    /// Writes a variable in an explicit frame level.
    pub fn set_var_at(
        &self,
        level: usize,
        name: &str,
        index: Option<&str>,
        value: &str,
    ) -> Result<String, Exception> {
        let (level, name) = self.resolve(level, name.to_string());
        let written: Result<(), Exception> = {
            let mut frames = self.inner.frames.borrow_mut();
            let slot = frames[level].vars.entry(name.clone());
            use std::collections::hash_map::Entry;
            match (slot, index) {
                (Entry::Occupied(mut e), None) => match e.get_mut() {
                    Var::Scalar(s) => {
                        *s = value.to_string();
                        Ok(())
                    }
                    Var::Array(_) => Err(Exception::error(format!(
                        "can't set \"{name}\": variable is array"
                    ))),
                    Var::Link { .. } => unreachable!(),
                },
                (Entry::Occupied(mut e), Some(idx)) => match e.get_mut() {
                    Var::Array(map) => {
                        map.insert(idx.to_string(), value.to_string());
                        Ok(())
                    }
                    Var::Scalar(_) => Err(Exception::error(format!(
                        "can't set \"{name}({idx})\": variable isn't array"
                    ))),
                    Var::Link { .. } => unreachable!(),
                },
                (Entry::Vacant(e), None) => {
                    e.insert(Var::Scalar(value.to_string()));
                    Ok(())
                }
                (Entry::Vacant(e), Some(idx)) => {
                    let mut map = HashMap::new();
                    map.insert(idx.to_string(), value.to_string());
                    e.insert(Var::Array(map));
                    Ok(())
                }
            }
        };
        written?;
        self.fire_traces(level, &name, index, "w")?;
        Ok(value.to_string())
    }

    /// Removes a variable (or array element) from the current frame. Unset
    /// traces fire after the removal; a whole-variable unset then discards
    /// its traces, as in Tcl.
    pub fn unset_var(&self, name: &str, index: Option<&str>) -> Result<(), Exception> {
        let (level, name) = self.resolve(self.level(), name.to_string());
        let whole = {
            let mut frames = self.inner.frames.borrow_mut();
            match index {
                None => {
                    if frames[level].vars.remove(&name).is_none() {
                        return Err(Exception::error(format!(
                            "can't unset \"{name}\": no such variable"
                        )));
                    }
                    true
                }
                Some(idx) => match frames[level].vars.get_mut(&name) {
                    Some(Var::Array(map)) => {
                        if map.remove(idx).is_none() {
                            return Err(Exception::error(format!(
                                "can't unset \"{name}({idx})\": no such element in array"
                            )));
                        }
                        false
                    }
                    Some(_) => {
                        return Err(Exception::error(format!(
                            "can't unset \"{name}({idx})\": variable isn't array"
                        )))
                    }
                    None => {
                        return Err(Exception::error(format!(
                            "can't unset \"{name}\": no such variable"
                        )))
                    }
                },
            }
        };
        let _ = self.fire_traces(level, &name, index, "u");
        if whole {
            self.inner.frames.borrow_mut()[level].traces.remove(&name);
        }
        Ok(())
    }

    /// Does the variable exist (readably) in the current frame?
    pub fn var_exists(&self, name: &str, index: Option<&str>) -> bool {
        let (level, name) = self.resolve(self.level(), name.to_string());
        let frames = self.inner.frames.borrow();
        match (frames[level].vars.get(&name), index) {
            (Some(Var::Scalar(_)), None) => true,
            (Some(Var::Array(_)), None) => true,
            (Some(Var::Array(map)), Some(i)) => map.contains_key(i),
            _ => false,
        }
    }

    /// Names of variables visible in the current frame, sorted.
    pub fn var_names(&self) -> Vec<String> {
        let frames = self.inner.frames.borrow();
        let mut names: Vec<String> = frames[self.level()].vars.keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of global variables, sorted.
    pub fn global_names(&self) -> Vec<String> {
        let frames = self.inner.frames.borrow();
        let mut names: Vec<String> = frames[0].vars.keys().cloned().collect();
        names.sort();
        names
    }

    /// Creates a link (`upvar`) in the current frame to `(level, other)`.
    pub fn link_var(&self, local: &str, level: usize, other: &str) -> Result<(), Exception> {
        if level >= self.frame_count() {
            return Err(Exception::error("bad level for upvar"));
        }
        let (target_level, target_name) = self.resolve(level, other.to_string());
        let cur = self.level();
        if target_level == cur && target_name == local {
            return Err(Exception::error(format!(
                "can't upvar \"{local}\" to itself"
            )));
        }
        let mut frames = self.inner.frames.borrow_mut();
        frames[cur].vars.insert(
            local.to_string(),
            Var::Link {
                level: target_level,
                name: target_name,
            },
        );
        Ok(())
    }

    /// Returns the sorted element names of an array variable.
    pub fn array_names(&self, name: &str) -> Result<Vec<String>, Exception> {
        let (level, name) = self.resolve(self.level(), name.to_string());
        let frames = self.inner.frames.borrow();
        match frames[level].vars.get(&name) {
            Some(Var::Array(map)) => {
                let mut keys: Vec<String> = map.keys().cloned().collect();
                keys.sort();
                Ok(keys)
            }
            _ => Err(Exception::error(format!("\"{name}\" isn't an array"))),
        }
    }

    // ----- evaluation ---------------------------------------------------------

    /// Evaluates a script: parses commands one at a time, substitutes their
    /// words, and invokes them. Returns the result of the last command.
    ///
    /// With compilation enabled (the default), the script is lowered once
    /// to a cached [`Program`] and replayed from the cache on subsequent
    /// evaluations; `RTK_NO_COMPILE=1` (or [`Interp::set_compile`]) keeps
    /// every evaluation on the direct parse-and-substitute path.
    pub fn eval(&self, script: &str) -> TclResult {
        {
            let mut n = self.inner.nesting.borrow_mut();
            if *n >= MAX_NESTING {
                return Err(Exception::error(
                    "too many nested calls to Tcl_Eval (infinite loop?)",
                ));
            }
            *n += 1;
        }
        let result = if self.inner.compile.enabled.get() {
            match self.lookup_or_compile(script) {
                Some(prog) => self.run_program(&prog),
                None => self.eval_inner(script),
            }
        } else {
            self.eval_inner(script)
        };
        *self.inner.nesting.borrow_mut() -= 1;
        result
    }

    fn eval_inner(&self, script: &str) -> TclResult {
        let mut pos = 0usize;
        let mut result = String::new();
        loop {
            let start = pos;
            let words = match parse_command(script, &mut pos) {
                Ok(Some(w)) => w,
                Ok(None) => return Ok(result),
                Err(e) => return Err(e),
            };
            self.note_parse();
            let source = script[start..pos].trim();
            let mut argv = Vec::with_capacity(words.len());
            let mut subst_err = None;
            for w in &words {
                match self.subst_word(w) {
                    Ok(v) => argv.push(v),
                    Err(e) => {
                        subst_err = Some(e);
                        break;
                    }
                }
            }
            let outcome = match subst_err {
                Some(e) => Err(e),
                None => self.invoke(&argv),
            };
            match outcome {
                Ok(r) => result = r,
                Err(e) if e.code == Code::Error => {
                    let line = if e.trace.is_empty() {
                        format!("while executing\n\"{}\"", truncate(source, 150))
                    } else {
                        format!("invoked from within\n\"{}\"", truncate(source, 150))
                    };
                    let e = e.add_trace(line);
                    self.record_error_info(&e);
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ----- the compile pipeline ---------------------------------------------

    /// Is the compile-once/execute-many pipeline active?
    pub fn compile_enabled(&self) -> bool {
        self.inner.compile.enabled.get()
    }

    /// Enables or disables compilation programmatically (the in-process
    /// equivalent of `RTK_NO_COMPILE=1`). Disabling also drops the caches
    /// so a later re-enable starts cold and deterministic.
    pub fn set_compile(&self, enabled: bool) {
        self.inner.compile.enabled.set(enabled);
        if !enabled {
            self.inner.compile.programs.borrow_mut().clear();
            self.inner.compile.exprs.borrow_mut().clear();
        }
    }

    /// The compile pipeline's deterministic counters, in `obs` naming.
    pub fn compile_counters(&self) -> Vec<(&'static str, u64)> {
        let s = &self.inner.compile.stats;
        vec![
            ("tcl.compiles", s.compiles.get()),
            ("tcl.compile_cache_hits", s.cache_hits.get()),
            ("tcl.compile_cache_misses", s.cache_misses.get()),
            ("tcl.compile_evictions", s.evictions.get()),
            ("tcl.compile_invalidations", s.invalidations.get()),
            ("tcl.parses", s.parses.get()),
            ("tcl.parses_avoided", s.parses_avoided.get()),
            ("tcl.expr_compiles", s.expr_compiles.get()),
            ("tcl.expr_cache_hits", s.expr_cache_hits.get()),
        ]
    }

    /// Zeroes the compile counters without touching the caches: `obs
    /// reset` starts a fresh measurement epoch against warm caches.
    pub fn reset_compile_stats(&self) {
        let s = &self.inner.compile.stats;
        for c in [
            &s.compiles,
            &s.cache_hits,
            &s.cache_misses,
            &s.evictions,
            &s.invalidations,
            &s.parses,
            &s.parses_avoided,
            &s.expr_compiles,
            &s.expr_cache_hits,
        ] {
            c.set(0);
        }
    }

    /// Number of cached programs (for capacity/invalidation tests).
    pub fn program_cache_len(&self) -> usize {
        self.inner.compile.programs.borrow().len()
    }

    /// Counts one `parse_command` yield (called from both eval modes and
    /// from the compiler, so `tcl.parses` measures total parse work).
    pub(crate) fn note_parse(&self) {
        bump(&self.inner.compile.stats.parses);
    }

    /// Invalidates every cached program by advancing the command epoch.
    fn bump_compile_epoch(&self) {
        let e = &self.inner.compile.cmd_epoch;
        e.set(e.get() + 1);
    }

    /// Is `name` still bound to the builtin captured at construction?
    pub(crate) fn is_baseline_command(&self, name: &str) -> bool {
        let baseline = self.inner.compile.baseline.borrow();
        let Some(base) = baseline.get(name) else {
            return false;
        };
        match self.inner.commands.borrow().get(name) {
            Some(Command::Native(f)) => Rc::ptr_eq(base, f),
            _ => false,
        }
    }

    /// Interns a command name, returning its atom. The atom's command slot
    /// tracks the live registry, so dispatch through an atom is an index
    /// lookup that still honors later (re)registrations.
    pub(crate) fn intern_atom(&self, name: &str) -> u32 {
        let mut ids = self.inner.compile.atom_ids.borrow_mut();
        if let Some(&id) = ids.get(name) {
            return id;
        }
        let mut cmds = self.inner.compile.atom_cmds.borrow_mut();
        let id = cmds.len() as u32;
        cmds.push(self.inner.commands.borrow().get(name).cloned());
        ids.insert(name.to_string(), id);
        id
    }

    /// Keeps an interned atom's command slot in sync with the registry.
    fn sync_atom(&self, name: &str, cmd: Option<Command>) {
        if let Some(&id) = self.inner.compile.atom_ids.borrow().get(name) {
            self.inner.compile.atom_cmds.borrow_mut()[id as usize] = cmd;
        }
    }

    /// Dispatches a substituted command line through an interned atom.
    /// Behaviorally identical to [`Interp::invoke`] — an unbound atom
    /// falls back to the full path so the `unknown` hook still fires.
    fn invoke_atom(&self, atom: u32, argv: &[String]) -> TclResult {
        let cmd = self
            .inner
            .compile
            .atom_cmds
            .borrow()
            .get(atom as usize)
            .and_then(|c| c.clone());
        match cmd {
            Some(Command::Native(f)) => f(self, argv),
            Some(Command::Proc(def)) => self.invoke_proc(&argv[0], &def, argv),
            None => self.invoke(argv),
        }
    }

    /// Looks up (or compiles and caches) the program for a script.
    /// `None` means the script does not compile — the caller falls back to
    /// direct evaluation, which reproduces the parse error in place after
    /// executing any leading commands.
    fn lookup_or_compile(&self, script: &str) -> Option<Rc<Program>> {
        let st = &self.inner.compile;
        let epoch = st.cmd_epoch.get();
        {
            let mut cache = st.programs.borrow_mut();
            if let Some(entry) = cache.get_mut(script) {
                if entry.epoch == epoch {
                    bump(&st.stats.cache_hits);
                    st.gen.set(st.gen.get() + 1);
                    entry.gen = st.gen.get();
                    return entry.prog.clone();
                }
                bump(&st.stats.invalidations);
                cache.remove(script);
            }
        }
        bump(&st.stats.cache_misses);
        let prog = match crate::compile::compile(self, script) {
            Ok(p) => {
                bump(&st.stats.compiles);
                Some(Rc::new(p))
            }
            Err(_) => None,
        };
        let mut cache = st.programs.borrow_mut();
        if cache.len() >= PROGRAM_CACHE_CAP {
            let mut gens: Vec<u64> = cache.values().map(|e| e.gen).collect();
            gens.sort_unstable();
            let cutoff = gens[gens.len() / 2];
            let before = cache.len();
            cache.retain(|_, e| e.gen > cutoff);
            st.stats
                .evictions
                .set(st.stats.evictions.get() + (before - cache.len()) as u64);
        }
        st.gen.set(st.gen.get() + 1);
        cache.insert(
            script.to_string(),
            CacheEntry {
                prog: prog.clone(),
                epoch,
                gen: st.gen.get(),
            },
        );
        prog
    }

    /// Executes a compiled program with the exact result/traceback
    /// semantics of [`Interp::eval_inner`].
    fn run_program(&self, prog: &Program) -> TclResult {
        prog.runs.set(prog.runs.get() + 1);
        let rerun = prog.runs.get() > 1;
        let stats = &self.inner.compile.stats;
        let mut result = String::new();
        for cmd in &prog.cmds {
            if rerun {
                bump(&stats.parses_avoided);
            }
            match self.run_cmd(cmd) {
                Ok(r) => result = r,
                Err(e) if e.code == Code::Error => {
                    let line = if e.trace.is_empty() {
                        format!("while executing\n\"{}\"", truncate(&cmd.source, 150))
                    } else {
                        format!("invoked from within\n\"{}\"", truncate(&cmd.source, 150))
                    };
                    let e = e.add_trace(line);
                    self.record_error_info(&e);
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(result)
    }

    /// Substitutes one compiled word.
    fn word_text(&self, word: &CompiledWord) -> Result<String, Exception> {
        match word {
            CompiledWord::Lit(v) => Ok(v.text().to_string()),
            CompiledWord::Dyn(w) => self.subst_word(w),
        }
    }

    /// Executes one compiled command. Specialized ops reuse the same
    /// variable/eval/expr entry points as the builtin command procedures,
    /// so results, traces, and error messages match the direct path byte
    /// for byte.
    fn run_cmd(&self, cmd: &CompiledCmd) -> TclResult {
        use crate::expr::{expr_bool_cached, expr_string_cached};
        match &cmd.op {
            OpKind::Generic { words, head_atom } => {
                let mut argv = Vec::with_capacity(words.len());
                for w in words {
                    argv.push(self.word_text(w)?);
                }
                match head_atom {
                    Some(a) => self.invoke_atom(*a, &argv),
                    None => self.invoke(&argv),
                }
            }
            OpKind::Set { name, index, value } => match value {
                None => self.get_var(name, index.as_deref()),
                Some(w) => {
                    let v = self.word_text(w)?;
                    self.set_var(name, index.as_deref(), &v)
                }
            },
            OpKind::If {
                cond,
                then_body,
                else_body,
            } => {
                if expr_bool_cached(self, cond)? {
                    self.eval(then_body)
                } else if let Some(e) = else_body {
                    self.eval(e)
                } else {
                    Ok(String::new())
                }
            }
            OpKind::While { cond, body } => {
                while expr_bool_cached(self, cond)? {
                    match self.eval(body) {
                        Ok(_) => {}
                        Err(e) if e.code == Code::Break => break,
                        Err(e) if e.code == Code::Continue => continue,
                        Err(e) => return Err(e),
                    }
                }
                Ok(String::new())
            }
            OpKind::For {
                init,
                cond,
                next,
                body,
            } => {
                self.eval(init)?;
                while expr_bool_cached(self, cond)? {
                    match self.eval(body) {
                        Ok(_) => {}
                        Err(e) if e.code == Code::Break => break,
                        Err(e) if e.code == Code::Continue => {}
                        Err(e) => return Err(e),
                    }
                    self.eval(next)?;
                }
                Ok(String::new())
            }
            OpKind::Foreach { var, items, body } => {
                for item in items {
                    self.set_var(var, None, item)?;
                    match self.eval(body) {
                        Ok(_) => {}
                        Err(e) if e.code == Code::Break => break,
                        Err(e) if e.code == Code::Continue => continue,
                        Err(e) => return Err(e),
                    }
                }
                Ok(String::new())
            }
            OpKind::Expr { src } => expr_string_cached(self, src),
        }
    }

    /// Looks up a compiled expression: `Some(hit)` on a cache entry
    /// (where an inner `None` marks a known-unparseable source), `None`
    /// on a miss.
    pub(crate) fn expr_cache_get(&self, src: &str) -> Option<Option<Rc<crate::expr::ExprProgram>>> {
        let st = &self.inner.compile;
        let hit = st.exprs.borrow().get(src).cloned();
        if hit.is_some() {
            bump(&st.stats.expr_cache_hits);
        }
        hit
    }

    /// Stores a compiled expression (or an unparseable marker).
    pub(crate) fn expr_cache_put(&self, src: &str, prog: Option<Rc<crate::expr::ExprProgram>>) {
        let st = &self.inner.compile;
        if prog.is_some() {
            bump(&st.stats.expr_compiles);
        }
        let mut cache = st.exprs.borrow_mut();
        if cache.len() >= EXPR_CACHE_CAP {
            cache.clear();
        }
        cache.insert(src.to_string(), prog);
    }

    /// Stores `errorInfo` in the global frame when an error unwinds.
    fn record_error_info(&self, e: &Exception) {
        let _ = self.set_var_at(0, "errorInfo", None, &e.error_info());
    }

    /// Performs the substitutions of Figures 3-5 on one parsed word.
    pub fn subst_word(&self, word: &Word) -> Result<String, Exception> {
        // Fast path: a single literal part needs no allocation gymnastics.
        if let [Part::Lit(s)] = word.as_slice() {
            return Ok(s.clone());
        }
        let mut out = String::new();
        for part in word {
            match part {
                Part::Lit(s) => out.push_str(s),
                Part::Var(name, None) => out.push_str(&self.get_var(name, None)?),
                Part::Var(name, Some(idx_parts)) => {
                    let idx = self.subst_word(idx_parts)?;
                    out.push_str(&self.get_var(name, Some(&idx))?);
                }
                Part::Cmd(script) => out.push_str(&self.eval(script)?),
            }
        }
        Ok(out)
    }

    /// Performs `$`, `[]`, and `\` substitution on an arbitrary string (the
    /// `subst` command, also used by `expr` for brace-shielded operands).
    pub fn subst_string(&self, src: &str) -> Result<String, Exception> {
        use crate::parser::{backslash, parse_brackets};
        let bytes = src.as_bytes();
        let mut out = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'$' => {
                    let mut parts = Vec::new();
                    i = crate::parser::parse_dollar(src, i, &mut parts)?;
                    out.push_str(&self.subst_word(&parts)?);
                }
                b'[' => {
                    let (script, next) = parse_brackets(src, i)?;
                    out.push_str(&self.eval(&script)?);
                    i = next;
                }
                b'\\' => {
                    let (s, used) = backslash(src, i);
                    out.push_str(&s);
                    i += used;
                }
                _ => {
                    let ch = src[i..].chars().next().unwrap();
                    out.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        Ok(out)
    }

    /// Invokes a fully substituted command line.
    pub fn invoke(&self, argv: &[String]) -> TclResult {
        if argv.is_empty() || argv.iter().all(|a| a.is_empty()) && argv.len() == 1 {
            return Ok(String::new());
        }
        let cmd = self.command(&argv[0]);
        match cmd {
            Some(Command::Native(f)) => f(self, argv),
            Some(Command::Proc(def)) => self.invoke_proc(&argv[0], &def, argv),
            None => {
                // The `unknown` hook: if a proc or command named `unknown`
                // exists, it is called with the original words.
                if self.command("unknown").is_some() && argv[0] != "unknown" {
                    let mut call = vec!["unknown".to_string()];
                    call.extend_from_slice(argv);
                    return self.invoke(&call);
                }
                Err(Exception::error(format!(
                    "invalid command name \"{}\"",
                    argv[0]
                )))
            }
        }
    }

    /// Invokes a Tcl proc: binds formals in a fresh frame, evaluates the
    /// body, and maps `return` to a normal completion.
    fn invoke_proc(&self, name: &str, def: &ProcDef, argv: &[String]) -> TclResult {
        let mut frame = Frame {
            vars: HashMap::new(),
            traces: HashMap::new(),
            invocation: argv.to_vec(),
        };
        let mut ai = 1usize;
        for (pi, (pname, default)) in def.params.iter().enumerate() {
            if pname == "args" && pi == def.params.len() - 1 {
                let rest: Vec<String> = argv[ai.min(argv.len())..].to_vec();
                frame
                    .vars
                    .insert("args".into(), Var::Scalar(crate::list::format_list(&rest)));
                ai = argv.len();
                break;
            }
            let value = if ai < argv.len() {
                let v = argv[ai].clone();
                ai += 1;
                v
            } else if let Some(d) = default {
                d.clone()
            } else {
                return Err(Exception::error(format!(
                    "no value given for parameter \"{pname}\" to \"{name}\""
                )));
            };
            frame.vars.insert(pname.clone(), Var::Scalar(value));
        }
        if ai < argv.len() {
            return Err(Exception::error(format!(
                "called \"{name}\" with too many arguments"
            )));
        }
        self.inner.frames.borrow_mut().push(frame);
        let result = self.eval(&def.body);
        self.inner.frames.borrow_mut().pop();
        match result {
            Err(e) if e.code == Code::Return => Ok(e.msg),
            Err(e) if e.code == Code::Error => {
                Err(e.add_trace(format!("(procedure \"{name}\" line ?)")))
            }
            Err(e) if e.code == Code::Break => {
                Err(Exception::error("invoked \"break\" outside of a loop"))
            }
            Err(e) if e.code == Code::Continue => {
                Err(Exception::error("invoked \"continue\" outside of a loop"))
            }
            other => other,
        }
    }

    /// Evaluates a script in the frame at `level` (for `uplevel`).
    pub fn eval_at_level(&self, level: usize, script: &str) -> TclResult {
        if level >= self.frame_count() {
            return Err(Exception::error(format!("bad level \"{level}\"")));
        }
        // Temporarily hide the frames above `level`.
        let hidden: Vec<Frame> = {
            let mut frames = self.inner.frames.borrow_mut();
            frames.split_off(level + 1)
        };
        let result = self.eval(script);
        self.inner.frames.borrow_mut().extend(hidden);
        result
    }

    /// The invocation words of the proc at `level`, for `info level`.
    pub fn invocation_at(&self, level: usize) -> Option<Vec<String>> {
        let frames = self.inner.frames.borrow();
        frames.get(level).map(|f| f.invocation.clone())
    }

    /// Parses a `level` argument for `uplevel`/`upvar`: either `#N`
    /// (absolute) or `N` (relative to the current frame).
    pub fn parse_level(&self, spec: &str) -> Result<usize, Exception> {
        let cur = self.level();
        if let Some(abs) = spec.strip_prefix('#') {
            let n: usize = abs
                .parse()
                .map_err(|_| Exception::error(format!("bad level \"{spec}\"")))?;
            if n > cur {
                return Err(Exception::error(format!("bad level \"{spec}\"")));
            }
            Ok(n)
        } else {
            let n: usize = spec
                .parse()
                .map_err(|_| Exception::error(format!("bad level \"{spec}\"")))?;
            if n > cur {
                return Err(Exception::error(format!("bad level \"{spec}\"")));
            }
            Ok(cur - n)
        }
    }
}

/// Truncates a source excerpt for tracebacks.
fn truncate(s: &str, max: usize) -> &str {
    if s.len() <= max {
        s
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        &s[..end]
    }
}

/// Splits a variable reference `name(index)` into name and index parts.
/// Used by commands like `set` that accept either form.
pub fn split_var_name(spec: &str) -> (String, Option<String>) {
    if let Some(open) = spec.find('(') {
        if spec.ends_with(')') {
            return (
                spec[..open].to_string(),
                Some(spec[open + 1..spec.len() - 1].to_string()),
            );
        }
    }
    (spec.to_string(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_variable() {
        let i = Interp::new();
        assert_eq!(i.eval("set a 1000").unwrap(), "1000");
        assert_eq!(i.eval("set a").unwrap(), "1000");
    }

    #[test]
    fn variable_substitution() {
        let i = Interp::new();
        i.eval("set msg hello").unwrap();
        assert_eq!(i.eval("set b $msg").unwrap(), "hello");
    }

    #[test]
    fn command_substitution() {
        let i = Interp::new();
        i.eval("set x 5").unwrap();
        assert_eq!(i.eval("set y [set x]").unwrap(), "5");
    }

    #[test]
    fn unknown_command_reports_error() {
        let i = Interp::new();
        let e = i.eval("definitely_not_a_command").unwrap_err();
        assert!(e.msg.contains("invalid command name"));
    }

    #[test]
    fn unknown_hook_is_called() {
        let i = Interp::new();
        i.eval("proc unknown {args} {return \"caught: $args\"}")
            .unwrap();
        assert_eq!(i.eval("frobnicate 1 2").unwrap(), "caught: frobnicate 1 2");
    }

    #[test]
    fn undefined_variable_reports_error() {
        let i = Interp::new();
        let e = i.eval("set b $nosuch").unwrap_err();
        assert!(e.msg.contains("no such variable"), "{}", e.msg);
    }

    #[test]
    fn array_elements() {
        let i = Interp::new();
        i.eval("set a(x) 1; set a(y) 2").unwrap();
        assert_eq!(i.eval("set a(x)").unwrap(), "1");
        i.eval("set k y").unwrap();
        assert_eq!(i.eval("set b $a($k)").unwrap(), "2");
    }

    #[test]
    fn scalar_vs_array_mismatch_errors() {
        let i = Interp::new();
        i.eval("set s 1").unwrap();
        assert!(i.eval("set s(x) 2").is_err());
        i.eval("set arr(e) 1").unwrap();
        assert!(i.eval("set arr").is_err());
    }

    #[test]
    fn native_command_registration() {
        let i = Interp::new();
        i.register("double", |_i, argv| {
            let n: i64 = argv[1].parse().unwrap();
            Ok((n * 2).to_string())
        });
        assert_eq!(i.eval("double 21").unwrap(), "42");
    }

    #[test]
    fn rename_and_delete_command() {
        let i = Interp::new();
        i.register("orig", |_i, _a| Ok("hi".into()));
        i.rename("orig", "renamed").unwrap();
        assert_eq!(i.eval("renamed").unwrap(), "hi");
        assert!(i.eval("orig").is_err());
        i.rename("renamed", "").unwrap();
        assert!(i.eval("renamed").is_err());
    }

    #[test]
    fn result_is_last_command() {
        let i = Interp::new();
        assert_eq!(i.eval("set a 1; set b 2").unwrap(), "2");
    }

    #[test]
    fn nesting_limit_reported() {
        let i = Interp::new();
        i.eval("proc loop {} {loop}").unwrap();
        let e = i.eval("loop").unwrap_err();
        assert!(e.msg.contains("too many nested calls") || e.msg.contains("recursion"));
    }

    #[test]
    fn error_info_recorded() {
        let i = Interp::new();
        i.eval("proc f {} {set x $nosuch}").unwrap();
        assert!(i.eval("f").is_err());
        let info = i.get_var_at(0, "errorInfo", None).unwrap();
        assert!(info.contains("no such variable"));
        assert!(info.contains("while executing"));
    }

    #[test]
    fn capture_output_collects_print() {
        let i = Interp::new();
        let buf = i.capture_output();
        i.eval("print hello").unwrap();
        assert_eq!(&*buf.borrow(), "hello");
    }

    #[test]
    fn split_var_name_forms() {
        assert_eq!(split_var_name("a"), ("a".into(), None));
        assert_eq!(split_var_name("a(i)"), ("a".into(), Some("i".into())));
        assert_eq!(split_var_name("a(i"), ("a(i".into(), None));
    }

    #[test]
    fn subst_string_performs_all_substitutions() {
        let i = Interp::new();
        i.eval("set x world").unwrap();
        assert_eq!(
            i.subst_string("hello $x [set x] \\n").unwrap(),
            "hello world world \n"
        );
    }

    fn counter(i: &Interp, name: &str) -> u64 {
        i.compile_counters()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    #[test]
    fn repeated_eval_hits_the_program_cache() {
        let i = Interp::new();
        i.set_compile(true);
        i.eval("set a 1").unwrap();
        let compiles = counter(&i, "tcl.compiles");
        let hits = counter(&i, "tcl.compile_cache_hits");
        i.eval("set a 1").unwrap();
        i.eval("set a 1").unwrap();
        assert_eq!(
            counter(&i, "tcl.compiles"),
            compiles,
            "recompiled a cached script"
        );
        assert_eq!(counter(&i, "tcl.compile_cache_hits"), hits + 2);
    }

    #[test]
    fn proc_redefinition_invalidates_the_cache() {
        let i = Interp::new();
        i.set_compile(true);
        assert_eq!(i.eval("set a 7").unwrap(), "7");
        assert_eq!(i.eval("set a 7").unwrap(), "7");
        // Shadow the builtin: the cached specialized program must not be
        // consulted again.
        i.eval("proc set {args} {return shadowed}").unwrap();
        assert_eq!(i.eval("set a 7").unwrap(), "shadowed");
        assert!(counter(&i, "tcl.compile_invalidations") > 0);
        // Un-shadow via rename-to-delete: still no stale program.
        i.eval("rename set {}").unwrap();
        assert!(i.eval("set a 7").is_err(), "builtin really gone");
    }

    #[test]
    fn rename_of_a_specialized_builtin_invalidates() {
        let i = Interp::new();
        i.set_compile(true);
        i.eval("set a 1").unwrap();
        i.rename("set", "set_orig").unwrap();
        let e = i.eval("set a 1").unwrap_err();
        assert!(e.msg.contains("invalid command name"), "{}", e.msg);
        i.rename("set_orig", "set").unwrap();
        assert_eq!(i.eval("set a 1").unwrap(), "1");
    }

    #[test]
    fn cache_capacity_eviction_is_bounded_and_counted() {
        let i = Interp::new();
        i.set_compile(true);
        for n in 0..(super::PROGRAM_CACHE_CAP + 40) {
            i.eval(&format!("set v{n} {n}")).unwrap();
        }
        assert!(i.program_cache_len() <= super::PROGRAM_CACHE_CAP);
        assert!(counter(&i, "tcl.compile_evictions") > 0);
        // Evicted scripts still evaluate correctly (recompile on demand).
        assert_eq!(i.eval("set v0 0").unwrap(), "0");
    }

    #[test]
    fn trace_installation_invalidates_the_cache() {
        let i = Interp::new();
        i.set_compile(true);
        i.eval("proc noop {args} {}").unwrap();
        i.eval("set watched 1").unwrap();
        let before = counter(&i, "tcl.compile_invalidations");
        i.eval("trace variable watched w noop").unwrap();
        i.eval("set watched 1").unwrap();
        assert!(counter(&i, "tcl.compile_invalidations") > before);
    }

    #[test]
    fn reset_compile_stats_keeps_the_cache_warm() {
        let i = Interp::new();
        i.set_compile(true);
        i.eval("set a 1").unwrap();
        let cached = i.program_cache_len();
        i.reset_compile_stats();
        assert_eq!(counter(&i, "tcl.compiles"), 0);
        assert_eq!(counter(&i, "tcl.compile_cache_hits"), 0);
        assert_eq!(i.program_cache_len(), cached, "reset wiped the cache");
        // The next evaluation is a pure cache hit: counters restart from
        // zero but no recompile happens.
        i.eval("set a 1").unwrap();
        assert_eq!(counter(&i, "tcl.compiles"), 0);
        assert_eq!(counter(&i, "tcl.compile_cache_hits"), 1);
    }

    #[test]
    fn compiled_and_direct_agree_on_error_traces() {
        let scripts = [
            "set",
            "set a $nosuch",
            "if {1} {set x $missing}",
            "while {$i < [broken} {set i 0}",
            "foreach x {a b c} {error boom}",
            "set a 1; nosuchcmd; set b 2",
            "expr {1/0}",
            "for {set i 0} {$i < 3} {incr i} {if {$i == 1} {error mid}}",
        ];
        for script in scripts {
            let direct = Interp::new();
            direct.set_compile(false);
            let compiled = Interp::new();
            compiled.set_compile(true);
            // Run twice so the compiled side exercises the cache-hit path.
            for _ in 0..2 {
                let d = direct.eval(script);
                let c = compiled.eval(script);
                match (&d, &c) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{script}"),
                    (Err(a), Err(b)) => {
                        assert_eq!(a.msg, b.msg, "{script}");
                        assert_eq!(a.code, b.code, "{script}");
                        assert_eq!(a.error_info(), b.error_info(), "{script}");
                    }
                    _ => panic!("{script}: direct={d:?} compiled={c:?}"),
                }
            }
            let di = direct.get_var_at(0, "errorInfo", None).ok();
            let ci = compiled.get_var_at(0, "errorInfo", None).ok();
            assert_eq!(di, ci, "{script}");
        }
    }

    #[test]
    fn parses_avoided_accrues_on_loop_bodies() {
        let i = Interp::new();
        i.set_compile(true);
        i.eval("set hot 0; for {set n 0} {$n < 50} {incr n} {set hot [expr {$hot + $n}]}")
            .unwrap();
        assert_eq!(i.eval("set hot").unwrap(), "1225");
        let parses = counter(&i, "tcl.parses");
        let avoided = counter(&i, "tcl.parses_avoided");
        assert!(
            avoided > parses * 10,
            "loop body should replay from cache: parses={parses} avoided={avoided}"
        );
    }
}
