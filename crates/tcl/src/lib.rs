//! # tcl — an embeddable Tool Command Language interpreter
//!
//! A from-scratch Rust implementation of the Tcl language as described in
//! Ousterhout's papers ("Tcl: An Embeddable Command Language", USENIX 1990,
//! and Section 2 of "An X11 Toolkit Based on the Tcl Language", USENIX
//! 1991). It provides:
//!
//! * the complete command syntax of the paper's Figures 1-5 (fields, brace
//!   and quote grouping, `$` variable substitution, `[]` command
//!   substitution, `\` escapes);
//! * an interpreter with a registry of *command procedures*, call frames,
//!   `upvar`/`uplevel`, and the five completion codes;
//! * ~50 built-in commands of the Tcl 6.x era, including the old-style
//!   `print`/`index`/`range` spellings that the paper's scripts use;
//! * a C-operator expression evaluator with lazy `&&`/`||`/`?:`;
//! * Tcl list parsing and formatting that round-trips.
//!
//! Everything is a string: commands, arguments, results, and variables, as
//! the paper's Section 2 specifies. The interpreter is single-threaded and
//! reentrant — command procedures receive `&Interp` and may evaluate
//! scripts recursively, which is how `if`, widget callbacks, and `send`
//! all work.
//!
//! # Examples
//!
//! ```
//! use tcl::Interp;
//!
//! let interp = Interp::new();
//! interp.eval("set a 1000").unwrap();
//! assert_eq!(interp.eval("expr {$a / 8}").unwrap(), "125");
//!
//! // Applications register their own commands:
//! interp.register("double", |_i, argv| {
//!     let n: i64 = argv[1].parse().map_err(|_| tcl::Exception::error("not a number"))?;
//!     Ok((n * 2).to_string())
//! });
//! assert_eq!(interp.eval("double 21").unwrap(), "42");
//! ```

pub mod commands;
pub mod compile;
pub mod error;
pub mod expr;
pub mod interp;
pub mod list;
pub mod parser;
pub mod regex;
pub mod strutil;
pub mod value;

pub use error::{wrong_args, Code, Exception, TclResult};
pub use expr::{
    eval_expr, expr_bool, expr_bool_cached, expr_string, expr_string_cached, parse_number_calls,
    reset_parse_number_calls, Value,
};
pub use interp::{split_var_name, Command, Executor, Interp, ProcDef, TraceAction, TraceOps};
pub use list::{format_list, parse_list};
pub use value::TclValue;
