//! Result and exception types for Tcl evaluation.
//!
//! Tcl commands complete with one of five codes: `TCL_OK`, `TCL_ERROR`,
//! `TCL_RETURN`, `TCL_BREAK`, or `TCL_CONTINUE`. We model `TCL_OK` as
//! `Ok(String)` and the other four as an [`Exception`] carried in `Err`,
//! which keeps the common path allocation-free of control-flow plumbing
//! while letting `proc` bodies and loop commands intercept the codes they
//! understand (exactly as the C implementation's `switch` on the return
//! code does).

use std::fmt;

/// Completion code of a Tcl evaluation other than `TCL_OK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `TCL_ERROR`: a genuine error; the message describes it.
    Error,
    /// `TCL_RETURN`: the `return` command was invoked.
    Return,
    /// `TCL_BREAK`: the `break` command was invoked.
    Break,
    /// `TCL_CONTINUE`: the `continue` command was invoked.
    Continue,
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Code::Error => "error",
            Code::Return => "return",
            Code::Break => "break",
            Code::Continue => "continue",
        };
        f.write_str(s)
    }
}

/// A non-`TCL_OK` completion: an error or a control-flow signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exception {
    /// Which non-OK code this is.
    pub code: Code,
    /// The associated value: the error message for `Error`, the returned
    /// value for `Return`, empty for `Break`/`Continue`.
    pub msg: String,
    /// Accumulated stack traceback (the `errorInfo` of real Tcl); built up
    /// as an error propagates outward through nested evaluations.
    pub trace: Vec<String>,
}

impl Exception {
    /// Creates a `TCL_ERROR` exception with the given message.
    pub fn error(msg: impl Into<String>) -> Exception {
        Exception {
            code: Code::Error,
            msg: msg.into(),
            trace: Vec::new(),
        }
    }

    /// Creates a `TCL_RETURN` exception carrying the returned value.
    pub fn ret(value: impl Into<String>) -> Exception {
        Exception {
            code: Code::Return,
            msg: value.into(),
            trace: Vec::new(),
        }
    }

    /// Creates a `TCL_BREAK` exception.
    pub fn brk() -> Exception {
        Exception {
            code: Code::Break,
            msg: String::new(),
            trace: Vec::new(),
        }
    }

    /// Creates a `TCL_CONTINUE` exception.
    pub fn cont() -> Exception {
        Exception {
            code: Code::Continue,
            msg: String::new(),
            trace: Vec::new(),
        }
    }

    /// Appends one line of traceback context (innermost first).
    pub fn add_trace(mut self, line: impl Into<String>) -> Exception {
        if self.code == Code::Error {
            self.trace.push(line.into());
        }
        self
    }

    /// Renders the full `errorInfo`-style traceback.
    pub fn error_info(&self) -> String {
        let mut out = self.msg.clone();
        for line in &self.trace {
            out.push('\n');
            out.push_str("    ");
            out.push_str(line);
        }
        out
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Exception {}

/// The result of evaluating a Tcl script or command.
pub type TclResult = Result<String, Exception>;

/// Convenience: the canonical "wrong # args" error used by built-ins.
pub fn wrong_args(usage: &str) -> Exception {
    Exception::error(format!("wrong # args: should be \"{usage}\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_constructor_sets_code() {
        let e = Exception::error("boom");
        assert_eq!(e.code, Code::Error);
        assert_eq!(e.msg, "boom");
    }

    #[test]
    fn return_carries_value() {
        let e = Exception::ret("42");
        assert_eq!(e.code, Code::Return);
        assert_eq!(e.msg, "42");
    }

    #[test]
    fn trace_accumulates_only_for_errors() {
        let e = Exception::error("x").add_trace("while executing \"foo\"");
        assert_eq!(e.trace.len(), 1);
        let b = Exception::brk().add_trace("ignored");
        assert!(b.trace.is_empty());
    }

    #[test]
    fn error_info_formats_traceback() {
        let e = Exception::error("bad")
            .add_trace("while executing \"a\"")
            .add_trace("invoked from within \"b\"");
        assert_eq!(
            e.error_info(),
            "bad\n    while executing \"a\"\n    invoked from within \"b\""
        );
    }

    #[test]
    fn display_shows_message() {
        assert_eq!(Exception::error("oops").to_string(), "oops");
    }

    #[test]
    fn wrong_args_format() {
        assert_eq!(
            wrong_args("set varName ?newValue?").msg,
            "wrong # args: should be \"set varName ?newValue?\""
        );
    }
}
