//! A compact dual-port value: the string every Tcl value *is*, plus a
//! lazily parsed numeric interpretation cached alongside it.
//!
//! Tcl 6.x semantics are "everything is a string", so the interpreter can
//! never store a value as *only* a number — but nothing stops it from
//! remembering what the string parsed to. `TclValue` is that memo: the
//! text is authoritative, and the first caller who needs the numeric view
//! pays for one `parse_number`; every later caller reads the cached
//! result. The compile module interns literals as `Rc<TclValue>` so a
//! literal that appears in a loop body is parsed at most once per process,
//! not once per iteration.

use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::expr::{parse_number, Value};

/// A string value with a memoized numeric interpretation.
pub struct TclValue {
    text: String,
    num: OnceCell<Option<Value>>,
}

impl TclValue {
    /// Wraps a string.
    pub fn new(text: String) -> TclValue {
        TclValue {
            text,
            num: OnceCell::new(),
        }
    }

    /// The authoritative string form.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The numeric interpretation, parsed on first use and cached.
    pub fn number(&self) -> Option<Value> {
        self.num.get_or_init(|| parse_number(&self.text)).clone()
    }
}

/// Upper bound on the interned-literal table; when full it is cleared
/// rather than evicted piecemeal (the hot literals repopulate immediately).
const LITERAL_TABLE_CAP: usize = 512;

thread_local! {
    static LITERALS: RefCell<HashMap<String, Rc<TclValue>>> =
        RefCell::new(HashMap::new());
}

/// Interns a string in the thread's literal table, sharing the memoized
/// numeric parse between every user of the same text.
pub fn intern(text: &str) -> Rc<TclValue> {
    LITERALS.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(v) = t.get(text) {
            return v.clone();
        }
        if t.len() >= LITERAL_TABLE_CAP {
            t.clear();
        }
        let v = Rc::new(TclValue::new(text.to_string()));
        t.insert(text.to_string(), v.clone());
        v
    })
}

/// `parse_number` through the literal table: repeated queries for the same
/// text hit the memo instead of re-parsing.
pub fn memo_number(text: &str) -> Option<Value> {
    intern(text).number()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_is_memoized() {
        let v = TclValue::new("42".into());
        let before = crate::expr::parse_number_calls();
        assert_eq!(v.number(), Some(Value::Int(42)));
        assert_eq!(v.number(), Some(Value::Int(42)));
        assert_eq!(crate::expr::parse_number_calls() - before, 1);
    }

    #[test]
    fn intern_shares_the_memo() {
        let a = intern("3.5");
        let b = intern("3.5");
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(memo_number("3.5"), Some(Value::Double(3.5)));
        assert_eq!(memo_number("not a number"), None);
    }
}
