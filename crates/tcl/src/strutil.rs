//! String utilities shared by built-in commands: Tcl glob-style matching
//! (`string match`, `case`, `switch -glob`) and `format`/`scan` conversion.

use crate::error::{Exception, TclResult};

/// Tcl glob-style pattern matching: `*` matches any sequence, `?` any single
/// character, `[abc]`/`[a-z]` character sets, and `\x` escapes `x`.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    glob_inner(
        &pattern.chars().collect::<Vec<_>>(),
        &text.chars().collect::<Vec<_>>(),
    )
}

fn glob_inner(pat: &[char], text: &[char]) -> bool {
    let mut p = 0usize;
    let mut t = 0usize;
    // Backtracking point for the most recent `*`.
    let mut star: Option<(usize, usize)> = None;
    while t < text.len() {
        if p < pat.len() {
            match pat[p] {
                '*' => {
                    star = Some((p, t));
                    p += 1;
                    continue;
                }
                '?' => {
                    p += 1;
                    t += 1;
                    continue;
                }
                '[' => {
                    if let Some((matched, next_p)) = match_set(pat, p, text[t]) {
                        if matched {
                            p = next_p;
                            t += 1;
                            continue;
                        }
                    }
                }
                '\\' if p + 1 < pat.len() => {
                    if pat[p + 1] == text[t] {
                        p += 2;
                        t += 1;
                        continue;
                    }
                }
                c => {
                    if c == text[t] {
                        p += 1;
                        t += 1;
                        continue;
                    }
                }
            }
        }
        // Mismatch: backtrack to the last `*` if any.
        match star {
            Some((sp, st)) => {
                p = sp + 1;
                t = st + 1;
                star = Some((sp, st + 1));
            }
            None => return false,
        }
    }
    while p < pat.len() && pat[p] == '*' {
        p += 1;
    }
    p == pat.len()
}

/// Matches `c` against the set starting at `pat[p] == '['`. Returns
/// `(matched, position past the closing bracket)`, or `None` when the set
/// is malformed (treated as a literal `[` by the caller's fallthrough).
fn match_set(pat: &[char], p: usize, c: char) -> Option<(bool, usize)> {
    let mut i = p + 1;
    let mut matched = false;
    let negated = i < pat.len() && pat[i] == '^';
    if negated {
        i += 1;
    }
    let mut any = false;
    while i < pat.len() && pat[i] != ']' {
        any = true;
        if i + 2 < pat.len() && pat[i + 1] == '-' && pat[i + 2] != ']' {
            if pat[i] <= c && c <= pat[i + 2] {
                matched = true;
            }
            i += 3;
        } else {
            if pat[i] == c {
                matched = true;
            }
            i += 1;
        }
    }
    if i >= pat.len() || !any && pat.get(i) != Some(&']') {
        return None; // unterminated set
    }
    Some((matched != negated, i + 1))
}

/// Implements the `format` command (a subset of ANSI C `sprintf`):
/// `%s %d %i %u %x %X %o %c %f %e %E %g %G %%` with `-`, `0`, ` `, `+`
/// flags, width, and precision (including `*`).
pub fn format_cmd(spec: &str, args: &[String]) -> TclResult {
    let mut out = String::new();
    let chars: Vec<char> = spec.chars().collect();
    let mut i = 0usize;
    let mut arg_i = 0usize;
    let next_arg = |arg_i: &mut usize| -> Result<String, Exception> {
        if *arg_i >= args.len() {
            return Err(Exception::error(
                "not enough arguments for all format specifiers",
            ));
        }
        let v = args[*arg_i].clone();
        *arg_i += 1;
        Ok(v)
    };
    while i < chars.len() {
        if chars[i] != '%' {
            out.push(chars[i]);
            i += 1;
            continue;
        }
        i += 1;
        if i >= chars.len() {
            return Err(Exception::error(
                "format string ended in middle of field specifier",
            ));
        }
        if chars[i] == '%' {
            out.push('%');
            i += 1;
            continue;
        }
        // Flags.
        let mut left = false;
        let mut zero = false;
        let mut plus = false;
        let mut space = false;
        let mut alt = false;
        while i < chars.len() {
            match chars[i] {
                '-' => left = true,
                '0' => zero = true,
                '+' => plus = true,
                ' ' => space = true,
                '#' => alt = true,
                _ => break,
            }
            i += 1;
        }
        // Width.
        let mut width: usize = 0;
        if i < chars.len() && chars[i] == '*' {
            width = next_arg(&mut arg_i)?
                .trim()
                .parse()
                .map_err(|_| Exception::error("expected integer for * width"))?;
            i += 1;
        } else {
            while i < chars.len() && chars[i].is_ascii_digit() {
                width = width * 10 + chars[i].to_digit(10).unwrap() as usize;
                i += 1;
            }
        }
        // Precision.
        let mut precision: Option<usize> = None;
        if i < chars.len() && chars[i] == '.' {
            i += 1;
            let mut prec = 0usize;
            if i < chars.len() && chars[i] == '*' {
                prec = next_arg(&mut arg_i)?
                    .trim()
                    .parse()
                    .map_err(|_| Exception::error("expected integer for * precision"))?;
                i += 1;
            } else {
                while i < chars.len() && chars[i].is_ascii_digit() {
                    prec = prec * 10 + chars[i].to_digit(10).unwrap() as usize;
                    i += 1;
                }
            }
            precision = Some(prec);
        }
        // Length modifiers are accepted and ignored.
        while i < chars.len() && matches!(chars[i], 'l' | 'h' | 'L') {
            i += 1;
        }
        if i >= chars.len() {
            return Err(Exception::error(
                "format string ended in middle of field specifier",
            ));
        }
        let conv = chars[i];
        i += 1;
        let int_arg = |s: &str| -> Result<i64, Exception> {
            match crate::expr::parse_number(s) {
                Some(crate::expr::Value::Int(v)) => Ok(v),
                Some(crate::expr::Value::Double(d)) => Ok(d as i64),
                _ => Err(Exception::error(format!(
                    "expected integer but got \"{s}\""
                ))),
            }
        };
        let float_arg = |s: &str| -> Result<f64, Exception> {
            match crate::expr::parse_number(s) {
                Some(crate::expr::Value::Int(v)) => Ok(v as f64),
                Some(crate::expr::Value::Double(d)) => Ok(d),
                _ => Err(Exception::error(format!(
                    "expected floating-point number but got \"{s}\""
                ))),
            }
        };
        let body = match conv {
            's' => {
                let mut v = next_arg(&mut arg_i)?;
                if let Some(p) = precision {
                    v.truncate(v.char_indices().nth(p).map(|(b, _)| b).unwrap_or(v.len()));
                }
                v
            }
            'c' => {
                let v = int_arg(&next_arg(&mut arg_i)?)?;
                char::from_u32(v as u32).unwrap_or('\u{fffd}').to_string()
            }
            'd' | 'i' => {
                let v = int_arg(&next_arg(&mut arg_i)?)?;
                let mut s = v.abs().to_string();
                if v < 0 {
                    s.insert(0, '-');
                } else if plus {
                    s.insert(0, '+');
                } else if space {
                    s.insert(0, ' ');
                }
                s
            }
            'u' => {
                let v = int_arg(&next_arg(&mut arg_i)?)?;
                (v as u64).to_string()
            }
            'x' => {
                let v = int_arg(&next_arg(&mut arg_i)?)?;
                let s = format!("{:x}", v as u64);
                if alt {
                    format!("0x{s}")
                } else {
                    s
                }
            }
            'X' => {
                let v = int_arg(&next_arg(&mut arg_i)?)?;
                let s = format!("{:X}", v as u64);
                if alt {
                    format!("0X{s}")
                } else {
                    s
                }
            }
            'o' => {
                let v = int_arg(&next_arg(&mut arg_i)?)?;
                let s = format!("{:o}", v as u64);
                if alt {
                    format!("0{s}")
                } else {
                    s
                }
            }
            'f' => {
                let v = float_arg(&next_arg(&mut arg_i)?)?;
                format!("{:.*}", precision.unwrap_or(6), v)
            }
            'e' | 'E' => {
                let v = float_arg(&next_arg(&mut arg_i)?)?;
                let s = format!("{:.*e}", precision.unwrap_or(6), v);
                // Rust writes `1.5e3`; C writes `1.500000e+03`.
                let s = fix_exponent(&s);
                if conv == 'E' {
                    s.to_uppercase()
                } else {
                    s
                }
            }
            'g' | 'G' => {
                let v = float_arg(&next_arg(&mut arg_i)?)?;
                let p = precision.unwrap_or(6).max(1);
                let s = format_g(v, p);
                if conv == 'G' {
                    s.to_uppercase()
                } else {
                    s
                }
            }
            other => return Err(Exception::error(format!("bad field specifier \"{other}\""))),
        };
        // Apply width.
        if body.chars().count() < width {
            let pad = width - body.chars().count();
            if left {
                out.push_str(&body);
                out.extend(std::iter::repeat(' ').take(pad));
            } else if zero && !matches!(conv, 's' | 'c') {
                // Zero padding goes after any sign.
                let (sign, digits) = match body.strip_prefix('-') {
                    Some(d) => ("-", d),
                    None => ("", body.as_str()),
                };
                out.push_str(sign);
                out.extend(std::iter::repeat('0').take(pad));
                out.push_str(digits);
            } else {
                out.extend(std::iter::repeat(' ').take(pad));
                out.push_str(&body);
            }
        } else {
            out.push_str(&body);
        }
    }
    Ok(out)
}

/// Rewrites Rust's `1.5e3` exponent form into C's `1.5e+03`.
fn fix_exponent(s: &str) -> String {
    match s.find(['e', 'E']) {
        Some(pos) => {
            let (mantissa, exp) = s.split_at(pos);
            let exp = &exp[1..];
            let (sign, digits) = match exp.strip_prefix('-') {
                Some(d) => ("-", d),
                None => ("+", exp),
            };
            format!("{mantissa}e{sign}{digits:0>2}")
        }
        None => s.to_string(),
    }
}

/// `%g`: shortest of `%e` and `%f` at the given significant digits, with
/// trailing zeros removed.
fn format_g(v: f64, sig: usize) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let exp = v.abs().log10().floor() as i32;
    if exp < -4 || exp >= sig as i32 {
        let s = format!("{:.*e}", sig.saturating_sub(1), v);
        let s = fix_exponent(&s);
        // Trim trailing zeros in the mantissa.
        if let Some(epos) = s.find('e') {
            let (m, e) = s.split_at(epos);
            let m = trim_zeros(m);
            return format!("{m}{e}");
        }
        s
    } else {
        let decimals = (sig as i32 - 1 - exp).max(0) as usize;
        trim_zeros(&format!("{v:.decimals$}")).to_string()
    }
}

fn trim_zeros(s: &str) -> &str {
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.')
    } else {
        s
    }
}

/// Implements the `scan` command: parses `input` against `spec` supporting
/// `%d %x %o %c %s %f %e %g` with `%*` suppression and width limits.
/// Returns the parsed field values; the caller assigns them to variables.
pub fn scan_cmd(input: &str, spec: &str) -> Result<Vec<Option<String>>, Exception> {
    let mut out: Vec<Option<String>> = Vec::new();
    let ib: Vec<char> = input.chars().collect();
    let sb: Vec<char> = spec.chars().collect();
    let mut ii = 0usize;
    let mut si = 0usize;
    while si < sb.len() {
        let sc = sb[si];
        if sc == '%' {
            si += 1;
            if si >= sb.len() {
                return Err(Exception::error(
                    "format string ended in middle of field specifier",
                ));
            }
            let mut suppress = false;
            if sb[si] == '*' {
                suppress = true;
                si += 1;
            }
            let mut width = usize::MAX;
            let mut has_width = false;
            let mut w = 0usize;
            while si < sb.len() && sb[si].is_ascii_digit() {
                w = w * 10 + sb[si].to_digit(10).unwrap() as usize;
                has_width = true;
                si += 1;
            }
            if has_width {
                width = w;
            }
            while si < sb.len() && matches!(sb[si], 'l' | 'h' | 'L') {
                si += 1;
            }
            if si >= sb.len() {
                return Err(Exception::error(
                    "format string ended in middle of field specifier",
                ));
            }
            let conv = sb[si];
            si += 1;
            // `%c` does not skip white space; the others do.
            if conv != 'c' {
                while ii < ib.len() && ib[ii].is_whitespace() {
                    ii += 1;
                }
            }
            if ii >= ib.len() {
                break;
            }
            let start = ii;
            let value: Option<String> = match conv {
                'd' | 'u' => {
                    if ii < ib.len() && (ib[ii] == '-' || ib[ii] == '+') && ii - start < width {
                        ii += 1;
                    }
                    while ii < ib.len() && ib[ii].is_ascii_digit() && ii - start < width {
                        ii += 1;
                    }
                    let text: String = ib[start..ii].iter().collect();
                    text.parse::<i64>().ok().map(|v| v.to_string())
                }
                'x' => {
                    while ii < ib.len() && ib[ii].is_ascii_hexdigit() && ii - start < width {
                        ii += 1;
                    }
                    let text: String = ib[start..ii].iter().collect();
                    i64::from_str_radix(&text, 16).ok().map(|v| v.to_string())
                }
                'o' => {
                    while ii < ib.len() && ('0'..='7').contains(&ib[ii]) && ii - start < width {
                        ii += 1;
                    }
                    let text: String = ib[start..ii].iter().collect();
                    i64::from_str_radix(&text, 8).ok().map(|v| v.to_string())
                }
                'c' => {
                    let c = ib[ii];
                    ii += 1;
                    Some((c as u32).to_string())
                }
                's' => {
                    while ii < ib.len() && !ib[ii].is_whitespace() && ii - start < width {
                        ii += 1;
                    }
                    Some(ib[start..ii].iter().collect())
                }
                'f' | 'e' | 'g' => {
                    if ii < ib.len() && (ib[ii] == '-' || ib[ii] == '+') {
                        ii += 1;
                    }
                    while ii < ib.len()
                        && (ib[ii].is_ascii_digit()
                            || matches!(ib[ii], '.' | 'e' | 'E' | '+' | '-'))
                        && ii - start < width
                    {
                        ii += 1;
                    }
                    let text: String = ib[start..ii].iter().collect();
                    text.parse::<f64>().ok().map(crate::expr::double_to_string)
                }
                other => {
                    return Err(Exception::error(format!(
                        "bad scan conversion character \"{other}\""
                    )))
                }
            };
            match value {
                Some(v) => {
                    if !suppress {
                        out.push(Some(v));
                    }
                }
                None => break,
            }
        } else if sc.is_whitespace() {
            while ii < ib.len() && ib[ii].is_whitespace() {
                ii += 1;
            }
            si += 1;
        } else {
            if ii < ib.len() && ib[ii] == sc {
                ii += 1;
            } else {
                break;
            }
            si += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_literal() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "abcd"));
    }

    #[test]
    fn glob_star() {
        assert!(glob_match("a*", "abc"));
        assert!(glob_match("*c", "abc"));
        assert!(glob_match("a*c", "abc"));
        assert!(glob_match("*", ""));
        assert!(glob_match("a*b*c", "aXbYc"));
        assert!(!glob_match("a*b", "ac"));
    }

    #[test]
    fn glob_question() {
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
    }

    #[test]
    fn glob_sets() {
        assert!(glob_match("[abc]x", "bx"));
        assert!(!glob_match("[abc]x", "dx"));
        assert!(glob_match("[a-z]x", "mx"));
        assert!(glob_match("[^a-z]x", "Mx"));
    }

    #[test]
    fn glob_escape() {
        assert!(glob_match("a\\*b", "a*b"));
        assert!(!glob_match("a\\*b", "aXb"));
    }

    #[test]
    fn glob_star_backtracking() {
        assert!(glob_match("*ab", "aab"));
        assert!(glob_match("*aab", "aaab"));
        assert!(glob_match("x*Button.background", "x.a.bButton.background"));
    }

    #[test]
    fn format_strings() {
        assert_eq!(format_cmd("x is %s", &["hi".into()]).unwrap(), "x is hi");
        assert_eq!(
            format_cmd("%d-%d", &["3".into(), "4".into()]).unwrap(),
            "3-4"
        );
        assert_eq!(format_cmd("%5d", &["42".into()]).unwrap(), "   42");
        assert_eq!(format_cmd("%-5d|", &["42".into()]).unwrap(), "42   |");
        assert_eq!(format_cmd("%05d", &["42".into()]).unwrap(), "00042");
        assert_eq!(format_cmd("%05d", &["-42".into()]).unwrap(), "-0042");
    }

    #[test]
    fn format_hex_octal_char() {
        assert_eq!(format_cmd("%x", &["255".into()]).unwrap(), "ff");
        assert_eq!(format_cmd("%X", &["255".into()]).unwrap(), "FF");
        assert_eq!(format_cmd("%#x", &["255".into()]).unwrap(), "0xff");
        assert_eq!(format_cmd("%o", &["8".into()]).unwrap(), "10");
        assert_eq!(format_cmd("%c", &["65".into()]).unwrap(), "A");
    }

    #[test]
    fn format_floats() {
        assert_eq!(format_cmd("%f", &["1.5".into()]).unwrap(), "1.500000");
        assert_eq!(format_cmd("%.2f", &["1.567".into()]).unwrap(), "1.57");
        assert_eq!(format_cmd("%e", &["1500".into()]).unwrap(), "1.500000e+03");
        assert_eq!(format_cmd("%g", &["0.0001".into()]).unwrap(), "0.0001");
        assert_eq!(format_cmd("%g", &["100000000".into()]).unwrap(), "1e+08");
    }

    #[test]
    fn format_percent_and_star() {
        assert_eq!(format_cmd("100%%", &[]).unwrap(), "100%");
        assert_eq!(
            format_cmd("%*d", &["5".into(), "42".into()]).unwrap(),
            "   42"
        );
        assert_eq!(
            format_cmd("%.*s", &["2".into(), "hello".into()]).unwrap(),
            "he"
        );
    }

    #[test]
    fn format_errors() {
        assert!(format_cmd("%d", &[]).is_err());
        assert!(format_cmd("%d", &["notanum".into()]).is_err());
        assert!(format_cmd("%q", &["x".into()]).is_err());
        assert!(format_cmd("%", &[]).is_err());
    }

    #[test]
    fn scan_basics() {
        assert_eq!(
            scan_cmd("12 34", "%d %d").unwrap(),
            vec![Some("12".into()), Some("34".into())]
        );
        assert_eq!(scan_cmd("ff", "%x").unwrap(), vec![Some("255".into())]);
        assert_eq!(
            scan_cmd("hello world", "%s").unwrap(),
            vec![Some("hello".into())]
        );
        assert_eq!(scan_cmd("A", "%c").unwrap(), vec![Some("65".into())]);
        assert_eq!(scan_cmd("1.5", "%f").unwrap(), vec![Some("1.5".into())]);
    }

    #[test]
    fn scan_suppression_and_width() {
        assert_eq!(
            scan_cmd("12 34", "%*d %d").unwrap(),
            vec![Some("34".into())]
        );
        assert_eq!(
            scan_cmd("12345", "%2d%3d").unwrap(),
            vec![Some("12".into()), Some("345".into())]
        );
    }

    #[test]
    fn scan_literal_matching() {
        assert_eq!(scan_cmd("x=42", "x=%d").unwrap(), vec![Some("42".into())]);
        assert_eq!(
            scan_cmd("y=42", "x=%d").unwrap(),
            Vec::<Option<String>>::new()
        );
    }

    #[test]
    fn scan_negative_numbers() {
        assert_eq!(scan_cmd("-17", "%d").unwrap(), vec![Some("-17".into())]);
        assert_eq!(
            scan_cmd("-1.5e2", "%f").unwrap(),
            vec![Some("-150.0".into())]
        );
    }
}
