//! A from-scratch regular-expression engine for the `regexp` and `regsub`
//! commands, covering the Henry Spencer feature set Tcl shipped with:
//! `.` `[...]` `[^...]` `*` `+` `?` `(...)` `|` `^` `$` and `\c` escapes,
//! with numbered capture groups. Matching is backtracking, greedy, and
//! leftmost-first.

use crate::error::Exception;

/// A parsed regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Alt,
    /// Number of capture groups (not counting group 0, the whole match).
    pub group_count: usize,
    nocase: bool,
}

/// Alternation of sequences.
#[derive(Debug, Clone)]
struct Alt(Vec<Seq>);

/// Concatenation of quantified atoms.
#[derive(Debug, Clone)]
struct Seq(Vec<Piece>);

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    quant: Quant,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Quant {
    One,
    Star,
    Plus,
    Opt,
}

#[derive(Debug, Clone)]
enum Atom {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Group(usize, Alt),
    Start,
    End,
}

#[derive(Debug, Clone, Copy)]
enum ClassItem {
    Single(char),
    Range(char, char),
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    group_count: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn error(&self, msg: &str) -> Exception {
        Exception::error(format!(
            "couldn't compile regular expression \"{}\": {msg}",
            self.src
        ))
    }

    fn parse_alt(&mut self) -> Result<Alt, Exception> {
        let mut seqs = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            seqs.push(self.parse_seq()?);
        }
        Ok(Alt(seqs))
    }

    fn parse_seq(&mut self) -> Result<Seq, Exception> {
        let mut pieces = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let quant = match self.peek() {
                Some('*') => {
                    self.bump();
                    Quant::Star
                }
                Some('+') => {
                    self.bump();
                    Quant::Plus
                }
                Some('?') => {
                    self.bump();
                    Quant::Opt
                }
                _ => Quant::One,
            };
            pieces.push(Piece { atom, quant });
        }
        Ok(Seq(pieces))
    }

    fn parse_atom(&mut self) -> Result<Atom, Exception> {
        match self.bump() {
            Some('.') => Ok(Atom::Any),
            Some('^') => Ok(Atom::Start),
            Some('$') => Ok(Atom::End),
            Some('(') => {
                self.group_count += 1;
                let idx = self.group_count;
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.error("unmatched ()"));
                }
                Ok(Atom::Group(idx, inner))
            }
            Some('[') => {
                let negated = self.peek() == Some('^');
                if negated {
                    self.bump();
                }
                let mut items = Vec::new();
                // A `]` first in the set is a literal.
                if self.peek() == Some(']') {
                    self.bump();
                    items.push(ClassItem::Single(']'));
                }
                loop {
                    match self.bump() {
                        None => return Err(self.error("unmatched []")),
                        Some(']') => break,
                        Some(c) => {
                            if self.peek() == Some('-')
                                && self.chars.get(self.pos + 1).copied() != Some(']')
                                && self.chars.get(self.pos + 1).is_some()
                            {
                                self.bump(); // the '-'
                                let hi = self.bump().unwrap();
                                items.push(ClassItem::Range(c, hi));
                            } else {
                                items.push(ClassItem::Single(c));
                            }
                        }
                    }
                }
                Ok(Atom::Class { negated, items })
            }
            Some('\\') => match self.bump() {
                Some('n') => Ok(Atom::Char('\n')),
                Some('t') => Ok(Atom::Char('\t')),
                Some(c) => Ok(Atom::Char(c)),
                None => Err(self.error("trailing backslash")),
            },
            Some('*') | Some('+') | Some('?') => {
                Err(self.error("quantifier with nothing to repeat"))
            }
            Some(')') => Err(self.error("unmatched ()")),
            Some(c) => Ok(Atom::Char(c)),
            None => Err(self.error("unexpected end")),
        }
    }
}

/// Capture slots: index 0 is the whole match; groups start at 1.
pub type Captures = Vec<Option<(usize, usize)>>;

impl Regex {
    /// Compiles a pattern.
    pub fn compile(pattern: &str, nocase: bool) -> Result<Regex, Exception> {
        let mut p = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            group_count: 0,
            src: pattern,
        };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(p.error("unmatched ()"));
        }
        Ok(Regex {
            root,
            group_count: p.group_count,
            nocase,
        })
    }

    /// Finds the leftmost match in `text` starting at or after char
    /// `from`; returns capture positions (char indices) on success.
    pub fn find_at(&self, text: &[char], from: usize) -> Option<Captures> {
        for start in from..=text.len() {
            let mut caps: Captures = vec![None; self.group_count + 1];
            let mut end_pos = None;
            let matched = self.m_alt(&self.root, text, start, &mut caps, &mut |p, _| {
                end_pos = Some(p);
                true
            });
            if matched {
                caps[0] = Some((start, end_pos.unwrap()));
                return Some(caps);
            }
        }
        None
    }

    /// Does the pattern match anywhere in `text`?
    pub fn find(&self, text: &str) -> Option<Captures> {
        let chars: Vec<char> = text.chars().collect();
        self.find_at(&chars, 0)
    }

    fn chars_eq(&self, a: char, b: char) -> bool {
        if self.nocase {
            a.eq_ignore_ascii_case(&b)
        } else {
            a == b
        }
    }

    fn m_alt(
        &self,
        alt: &Alt,
        text: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        for seq in &alt.0 {
            let saved = caps.clone();
            if self.m_seq(&seq.0, text, pos, caps, k) {
                return true;
            }
            *caps = saved;
        }
        false
    }

    fn m_seq(
        &self,
        pieces: &[Piece],
        text: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        let Some((piece, rest)) = pieces.split_first() else {
            return k(pos, caps);
        };
        match piece.quant {
            Quant::One => self.m_atom(&piece.atom, text, pos, caps, &mut |p, c| {
                self.m_seq(rest, text, p, c, k)
            }),
            Quant::Opt => {
                let saved = caps.clone();
                if self.m_atom(&piece.atom, text, pos, caps, &mut |p, c| {
                    self.m_seq(rest, text, p, c, k)
                }) {
                    return true;
                }
                *caps = saved;
                self.m_seq(rest, text, pos, caps, k)
            }
            Quant::Star => self.m_star(&piece.atom, rest, text, pos, caps, k),
            Quant::Plus => self.m_atom(&piece.atom, text, pos, caps, &mut |p, c| {
                self.m_star(&piece.atom, rest, text, p, c, k)
            }),
        }
    }

    /// Greedy star: consume as many atoms as possible, backing off until
    /// the rest of the sequence matches.
    fn m_star(
        &self,
        atom: &Atom,
        rest: &[Piece],
        text: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        let saved = caps.clone();
        // Try one more repetition first (greedy); zero-width repetitions
        // are cut off to avoid infinite regress.
        if self.m_atom(atom, text, pos, caps, &mut |p, c| {
            if p > pos {
                self.m_star(atom, rest, text, p, c, k)
            } else {
                false
            }
        }) {
            return true;
        }
        *caps = saved;
        self.m_seq(rest, text, pos, caps, k)
    }

    fn m_atom(
        &self,
        atom: &Atom,
        text: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        match atom {
            Atom::Char(c) => {
                if pos < text.len() && self.chars_eq(*c, text[pos]) {
                    k(pos + 1, caps)
                } else {
                    false
                }
            }
            Atom::Any => {
                if pos < text.len() {
                    k(pos + 1, caps)
                } else {
                    false
                }
            }
            Atom::Class { negated, items } => {
                if pos >= text.len() {
                    return false;
                }
                let c = text[pos];
                let mut hit = false;
                for item in items {
                    match item {
                        ClassItem::Single(s) => {
                            if self.chars_eq(*s, c) {
                                hit = true;
                            }
                        }
                        ClassItem::Range(lo, hi) => {
                            let (c2, lo2, hi2) = if self.nocase {
                                (
                                    c.to_ascii_lowercase(),
                                    lo.to_ascii_lowercase(),
                                    hi.to_ascii_lowercase(),
                                )
                            } else {
                                (c, *lo, *hi)
                            };
                            if lo2 <= c2 && c2 <= hi2 {
                                hit = true;
                            }
                        }
                    }
                }
                if hit != *negated {
                    k(pos + 1, caps)
                } else {
                    false
                }
            }
            Atom::Group(idx, inner) => {
                let open = pos;
                let idx = *idx;
                self.m_alt(inner, text, pos, caps, &mut |p, c| {
                    let prev = c[idx];
                    c[idx] = Some((open, p));
                    if k(p, c) {
                        true
                    } else {
                        c[idx] = prev;
                        false
                    }
                })
            }
            Atom::Start => {
                if pos == 0 {
                    k(pos, caps)
                } else {
                    false
                }
            }
            Atom::End => {
                if pos == text.len() {
                    k(pos, caps)
                } else {
                    false
                }
            }
        }
    }
}

/// Substitutes a match into a `regsub` replacement spec: `&` (or `\0`) is
/// the whole match, `\1`-`\9` are groups, `\&`/`\\` escape.
pub fn substitute(spec: &str, text: &[char], caps: &Captures) -> String {
    let group = |n: usize| -> String {
        caps.get(n)
            .and_then(|c| *c)
            .map(|(a, b)| text[a..b].iter().collect())
            .unwrap_or_default()
    };
    let mut out = String::new();
    let mut it = spec.chars().peekable();
    while let Some(c) = it.next() {
        match c {
            '&' => out.push_str(&group(0)),
            '\\' => match it.next() {
                Some(d @ '0'..='9') => out.push_str(&group(d as usize - '0' as usize)),
                Some('&') => out.push('&'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            },
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps_text(pattern: &str, text: &str) -> Option<Vec<String>> {
        let re = Regex::compile(pattern, false).unwrap();
        let chars: Vec<char> = text.chars().collect();
        re.find(text).map(|caps| {
            caps.iter()
                .map(|c| match c {
                    Some((a, b)) => chars[*a..*b].iter().collect(),
                    None => String::new(),
                })
                .collect()
        })
    }

    fn matches(pattern: &str, text: &str) -> bool {
        caps_text(pattern, text).is_some()
    }

    #[test]
    fn literals_and_any() {
        assert!(matches("abc", "xxabcxx"));
        assert!(!matches("abc", "ab"));
        assert!(matches("a.c", "azc"));
        assert!(!matches("a.c", "ac"));
    }

    #[test]
    fn anchors() {
        assert!(matches("^abc", "abcdef"));
        assert!(!matches("^abc", "xabc"));
        assert!(matches("def$", "abcdef"));
        assert!(!matches("def$", "defx"));
        assert!(matches("^$", ""));
        assert!(!matches("^$", "x"));
    }

    #[test]
    fn quantifiers() {
        assert!(matches("ab*c", "ac"));
        assert!(matches("ab*c", "abbbc"));
        assert!(matches("ab+c", "abc"));
        assert!(!matches("ab+c", "ac"));
        assert!(matches("ab?c", "ac"));
        assert!(matches("ab?c", "abc"));
        assert!(!matches("ab?c", "abbc"));
    }

    #[test]
    fn classes() {
        assert!(matches("[abc]+", "cab"));
        assert!(!matches("^[abc]+$", "cad"));
        assert!(matches("[a-z0-9]+", "q7"));
        assert!(matches("[^0-9]", "x"));
        assert!(!matches("^[^0-9]$", "5"));
        assert!(matches("[]x]", "]"));
        assert!(matches("[a-]", "-"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(matches("cat|dog", "hotdog"));
        assert!(matches("^(cat|dog)$", "cat"));
        assert!(!matches("^(cat|dog)$", "cow"));
        let caps = caps_text("(a+)(b+)", "xxaabbbyy").unwrap();
        assert_eq!(caps, vec!["aabbb", "aa", "bbb"]);
    }

    #[test]
    fn greedy_matching() {
        let caps = caps_text("a.*b", "aXbYb").unwrap();
        assert_eq!(caps[0], "aXbYb");
        let caps = caps_text("<(.*)>", "<one> <two>").unwrap();
        assert_eq!(caps[1], "one> <two");
    }

    #[test]
    fn nested_groups() {
        let caps = caps_text("((a)(b))c", "abc").unwrap();
        assert_eq!(caps, vec!["abc", "ab", "a", "b"]);
    }

    #[test]
    fn unmatched_group_is_empty() {
        let caps = caps_text("(a)|(b)", "b").unwrap();
        assert_eq!(caps[0], "b");
        assert_eq!(caps[1], "");
        assert_eq!(caps[2], "b");
    }

    #[test]
    fn escapes() {
        assert!(matches(r"a\.c", "a.c"));
        assert!(!matches(r"a\.c", "axc"));
        assert!(matches(r"\(x\)", "(x)"));
        assert!(matches(r"a\\b", r"a\b"));
    }

    #[test]
    fn nocase() {
        let re = Regex::compile("hello", true).unwrap();
        assert!(re.find("say HELLO!").is_some());
        let re = Regex::compile("[a-z]+", true).unwrap();
        assert!(re.find("ABC").is_some());
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("(", false).is_err());
        assert!(Regex::compile(")", false).is_err());
        assert!(Regex::compile("[abc", false).is_err());
        assert!(Regex::compile("*x", false).is_err());
        assert!(Regex::compile("a\\", false).is_err());
    }

    #[test]
    fn empty_star_terminates() {
        // `(a*)*` against "b" must not loop forever.
        assert!(matches("(a*)*", "b"));
        assert!(matches("(a*)*b", "b"));
    }

    #[test]
    fn substitution_spec() {
        let re = Regex::compile("(a+)(b+)", false).unwrap();
        let text: Vec<char> = "xaabby".chars().collect();
        let caps = re.find_at(&text, 0).unwrap();
        assert_eq!(substitute(r"<&>", &text, &caps), "<aabb>");
        assert_eq!(substitute(r"\2-\1", &text, &caps), "bb-aa");
        assert_eq!(substitute(r"\&", &text, &caps), "&");
    }
}
