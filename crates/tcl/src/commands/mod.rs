//! Registration of the built-in Tcl command set.
//!
//! The built-ins cover the language of the paper's era (Tcl 6.x, 1990-91):
//! variables, control flow, procedures, lists, strings, expressions, files,
//! and process execution — plus the old-style aliases (`print`, `index`,
//! `range`) that the Figure 9 browser script uses.

mod control;
mod info_cmd;
mod list_cmds;
mod misc;
mod string_cmds;
mod var;

use crate::interp::Interp;

/// Registers every built-in command on `interp`.
pub fn register_all(interp: &Interp) {
    var::register(interp);
    control::register(interp);
    list_cmds::register(interp);
    string_cmds::register(interp);
    info_cmd::register(interp);
    misc::register(interp);
}
