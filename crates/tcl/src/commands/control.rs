//! Control-flow commands: `if`, `while`, `for`, `foreach`, `break`,
//! `continue`, `return`, `error`, `catch`, `eval`, `case`, `switch`,
//! `proc`, `rename`, `source`, and `exit`.
//!
//! As the paper's Section 2 describes, these are ordinary commands that make
//! recursive calls to the interpreter; none of them is special-cased by the
//! parser.

use crate::error::{wrong_args, Code, Exception, TclResult};
use crate::expr::expr_bool_cached as expr_bool;
use crate::interp::{Interp, ProcDef};

pub fn register(interp: &Interp) {
    interp.register("if", cmd_if);
    interp.register("while", cmd_while);
    interp.register("for", cmd_for);
    interp.register("foreach", cmd_foreach);
    interp.register("break", |_i, argv| {
        if argv.len() != 1 {
            return Err(wrong_args("break"));
        }
        Err(Exception::brk())
    });
    interp.register("continue", |_i, argv| {
        if argv.len() != 1 {
            return Err(wrong_args("continue"));
        }
        Err(Exception::cont())
    });
    interp.register("return", cmd_return);
    interp.register("error", cmd_error);
    interp.register("catch", cmd_catch);
    interp.register("eval", cmd_eval);
    interp.register("case", cmd_case);
    interp.register("switch", cmd_switch);
    interp.register("proc", cmd_proc);
    interp.register("rename", cmd_rename);
    interp.register("source", cmd_source);
    interp.register("exit", cmd_exit);
}

fn cmd_if(interp: &Interp, argv: &[String]) -> TclResult {
    // if expr ?then? body ?elseif expr ?then? body ...? ?else? ?body?
    let mut i = 1usize;
    loop {
        if i >= argv.len() {
            return Err(wrong_args(
                "if test script ?elseif test script? ?else script?",
            ));
        }
        let cond = expr_bool(interp, &argv[i])?;
        i += 1;
        if i < argv.len() && argv[i] == "then" {
            i += 1;
        }
        if i >= argv.len() {
            return Err(Exception::error(format!(
                "wrong # args: no script following \"{}\" argument",
                argv[i - 1]
            )));
        }
        if cond {
            return interp.eval(&argv[i]);
        }
        i += 1;
        if i >= argv.len() {
            return Ok(String::new());
        }
        match argv[i].as_str() {
            "elseif" => {
                i += 1;
                continue;
            }
            "else" => {
                i += 1;
                if i >= argv.len() {
                    return Err(Exception::error(
                        "wrong # args: no script following \"else\" argument",
                    ));
                }
                return interp.eval(&argv[i]);
            }
            // Old-style implicit else: `if cond body1 body2`.
            _ => return interp.eval(&argv[i]),
        }
    }
}

fn cmd_while(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 3 {
        return Err(wrong_args("while test command"));
    }
    while expr_bool(interp, &argv[1])? {
        match interp.eval(&argv[2]) {
            Ok(_) => {}
            Err(e) if e.code == Code::Break => break,
            Err(e) if e.code == Code::Continue => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(String::new())
}

fn cmd_for(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 5 {
        return Err(wrong_args("for start test next command"));
    }
    interp.eval(&argv[1])?;
    while expr_bool(interp, &argv[2])? {
        match interp.eval(&argv[4]) {
            Ok(_) => {}
            Err(e) if e.code == Code::Break => break,
            Err(e) if e.code == Code::Continue => {}
            Err(e) => return Err(e),
        }
        interp.eval(&argv[3])?;
    }
    Ok(String::new())
}

fn cmd_foreach(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 4 {
        return Err(wrong_args("foreach varName list command"));
    }
    let items = crate::list::parse_list(&argv[2])?;
    for item in items {
        interp.set_var(&argv[1], None, &item)?;
        match interp.eval(&argv[3]) {
            Ok(_) => {}
            Err(e) if e.code == Code::Break => break,
            Err(e) if e.code == Code::Continue => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(String::new())
}

fn cmd_return(_interp: &Interp, argv: &[String]) -> TclResult {
    match argv.len() {
        1 => Err(Exception::ret("")),
        2 => Err(Exception::ret(argv[1].clone())),
        _ => Err(wrong_args("return ?value?")),
    }
}

fn cmd_error(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 || argv.len() > 4 {
        return Err(wrong_args("error message ?errorInfo? ?errorCode?"));
    }
    if argv.len() >= 3 && !argv[2].is_empty() {
        let _ = interp.set_var_at(0, "errorInfo", None, &argv[2]);
    }
    if argv.len() == 4 {
        let _ = interp.set_var_at(0, "errorCode", None, &argv[3]);
    }
    Err(Exception::error(argv[1].clone()))
}

fn cmd_catch(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 && argv.len() != 3 {
        return Err(wrong_args("catch command ?varName?"));
    }
    let (code, value) = match interp.eval(&argv[1]) {
        Ok(v) => (0, v),
        Err(e) => {
            let n = match e.code {
                Code::Error => 1,
                Code::Return => 2,
                Code::Break => 3,
                Code::Continue => 4,
            };
            (n, e.msg)
        }
    };
    if argv.len() == 3 {
        interp.set_var(&argv[2], None, &value)?;
    }
    Ok(code.to_string())
}

fn cmd_eval(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("eval arg ?arg ...?"));
    }
    let script = if argv.len() == 2 {
        argv[1].clone()
    } else {
        argv[1..].join(" ")
    };
    interp.eval(&script)
}

/// The old Tcl `case` command:
/// `case string ?in? pat body ?pat body ...?` or with a single list arg.
fn cmd_case(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args(
            "case string ?in? patList body ?patList body ...?",
        ));
    }
    let string = &argv[1];
    let mut rest: Vec<String> = if argv[2] == "in" {
        argv[3..].to_vec()
    } else {
        argv[2..].to_vec()
    };
    if rest.len() == 1 {
        rest = crate::list::parse_list(&rest[0])?;
    }
    if rest.len() % 2 != 0 {
        return Err(Exception::error("extra case pattern with no body"));
    }
    let mut default_body: Option<&String> = None;
    for pair in rest.chunks(2) {
        let patterns = crate::list::parse_list(&pair[0])?;
        for pat in &patterns {
            if pat == "default" {
                default_body = Some(&pair[1]);
            } else if crate::strutil::glob_match(pat, string) {
                return interp.eval(&pair[1]);
            }
        }
    }
    match default_body {
        Some(body) => interp.eval(body),
        None => Ok(String::new()),
    }
}

/// `switch ?-exact|-glob? string pat body ?pat body...?` (with `-` body
/// fall-through), accepted in both flat and single-list forms.
fn cmd_switch(interp: &Interp, argv: &[String]) -> TclResult {
    let mut i = 1usize;
    let mut mode_glob = true;
    while i < argv.len() && argv[i].starts_with('-') && argv[i] != "-" {
        match argv[i].as_str() {
            "-exact" => mode_glob = false,
            "-glob" => mode_glob = true,
            "--" => {
                i += 1;
                break;
            }
            other => {
                return Err(Exception::error(format!(
                    "bad option \"{other}\": should be -exact, -glob, or --"
                )))
            }
        }
        i += 1;
    }
    if i >= argv.len() {
        return Err(wrong_args(
            "switch ?options? string pattern body ?pattern body ...?",
        ));
    }
    let string = argv[i].clone();
    i += 1;
    let mut pairs: Vec<String> = argv[i..].to_vec();
    if pairs.len() == 1 {
        pairs = crate::list::parse_list(&pairs[0])?;
    }
    if pairs.is_empty() || pairs.len() % 2 != 0 {
        return Err(Exception::error("extra switch pattern with no body"));
    }
    let mut matched = false;
    for (n, pair) in pairs.chunks(2).enumerate() {
        let is_last = (n + 1) * 2 == pairs.len();
        if !matched {
            matched = pair[0] == "default" && is_last
                || if mode_glob {
                    crate::strutil::glob_match(&pair[0], &string)
                } else {
                    pair[0] == string
                };
        }
        if matched {
            if pair[1] == "-" {
                continue; // fall through to the next body
            }
            return interp.eval(&pair[1]);
        }
    }
    Ok(String::new())
}

fn cmd_proc(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 4 {
        return Err(wrong_args("proc name args body"));
    }
    let param_specs = crate::list::parse_list(&argv[2])?;
    let mut params = Vec::with_capacity(param_specs.len());
    for spec in &param_specs {
        let parts = crate::list::parse_list(spec)?;
        match parts.len() {
            1 => params.push((parts[0].clone(), None)),
            2 => params.push((parts[0].clone(), Some(parts[1].clone()))),
            _ => {
                return Err(Exception::error(format!(
                    "too many fields in argument specifier \"{spec}\""
                )))
            }
        }
    }
    interp.register_proc(
        &argv[1],
        ProcDef {
            params,
            body: argv[3].clone(),
        },
    );
    Ok(String::new())
}

fn cmd_rename(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 3 {
        return Err(wrong_args("rename oldName newName"));
    }
    interp.rename(&argv[1], &argv[2])?;
    Ok(String::new())
}

fn cmd_source(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 {
        return Err(wrong_args("source fileName"));
    }
    let text = std::fs::read_to_string(&argv[1])
        .map_err(|e| Exception::error(format!("couldn't read file \"{}\": {e}", argv[1])))?;
    interp.eval(&text)
}

fn cmd_exit(interp: &Interp, argv: &[String]) -> TclResult {
    let status = match argv.len() {
        1 => 0,
        2 => argv[1]
            .parse()
            .map_err(|_| Exception::error(format!("expected integer but got \"{}\"", argv[1])))?,
        _ => return Err(wrong_args("exit ?status?")),
    };
    interp.request_exit(status);
    // Unwind all the way out with a distinctive error; embedding shells
    // check `exit_requested` and terminate.
    Err(Exception::error("exit"))
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    #[test]
    fn if_basic_and_else() {
        let i = Interp::new();
        i.eval("set i 1").unwrap();
        assert_eq!(i.eval("if $i<2 {set j 43}; set j").unwrap(), "43");
        assert_eq!(
            i.eval("if {$i > 5} {set k yes} else {set k no}; set k")
                .unwrap(),
            "no"
        );
    }

    #[test]
    fn if_elseif_chain() {
        let i = Interp::new();
        i.eval("set x 7").unwrap();
        let r = i
            .eval("if {$x < 5} {set r low} elseif {$x < 10} {set r mid} else {set r high}")
            .unwrap();
        assert_eq!(r, "mid");
    }

    #[test]
    fn if_then_keyword() {
        let i = Interp::new();
        assert_eq!(i.eval("if 1 then {set a ok}").unwrap(), "ok");
    }

    #[test]
    fn if_old_style_implicit_else() {
        let i = Interp::new();
        assert_eq!(i.eval("if 0 {set a x} {set a y}").unwrap(), "y");
    }

    #[test]
    fn while_loops_and_break() {
        let i = Interp::new();
        i.eval("set n 0; while {$n < 10} {incr n; if {$n == 4} break}")
            .unwrap();
        assert_eq!(i.eval("set n").unwrap(), "4");
    }

    #[test]
    fn while_continue() {
        let i = Interp::new();
        i.eval("set sum 0; set n 0").unwrap();
        i.eval("while {$n < 5} {incr n; if {$n == 3} continue; incr sum $n}")
            .unwrap();
        assert_eq!(i.eval("set sum").unwrap(), "12"); // 1+2+4+5
    }

    #[test]
    fn for_loop() {
        let i = Interp::new();
        i.eval("set sum 0; for {set j 0} {$j < 5} {incr j} {incr sum $j}")
            .unwrap();
        assert_eq!(i.eval("set sum").unwrap(), "10");
    }

    #[test]
    fn foreach_iterates_list() {
        let i = Interp::new();
        i.eval("set out {}; foreach x {a b c} {append out $x-}")
            .unwrap();
        assert_eq!(i.eval("set out").unwrap(), "a-b-c-");
    }

    #[test]
    fn foreach_break_and_continue() {
        let i = Interp::new();
        i.eval("set out {}; foreach x {1 2 3 4} {if {$x == 2} continue; if {$x == 4} break; append out $x}")
            .unwrap();
        assert_eq!(i.eval("set out").unwrap(), "13");
    }

    #[test]
    fn return_from_proc() {
        let i = Interp::new();
        i.eval("proc f {} {return early; set never 1}").unwrap();
        assert_eq!(i.eval("f").unwrap(), "early");
    }

    #[test]
    fn proc_default_args_and_varargs() {
        let i = Interp::new();
        i.eval("proc greet {{name world} args} {return \"$name:$args\"}")
            .unwrap();
        assert_eq!(i.eval("greet").unwrap(), "world:");
        assert_eq!(i.eval("greet tcl 1 2").unwrap(), "tcl:1 2");
    }

    #[test]
    fn proc_wrong_args() {
        let i = Interp::new();
        i.eval("proc two {a b} {}").unwrap();
        assert!(i.eval("two 1").is_err());
        assert!(i.eval("two 1 2 3").is_err());
    }

    #[test]
    fn error_and_catch() {
        let i = Interp::new();
        assert_eq!(i.eval("catch {error boom} msg").unwrap(), "1");
        assert_eq!(i.eval("set msg").unwrap(), "boom");
        assert_eq!(i.eval("catch {set ok 5} msg").unwrap(), "0");
        assert_eq!(i.eval("set msg").unwrap(), "5");
    }

    #[test]
    fn catch_reports_control_flow_codes() {
        let i = Interp::new();
        assert_eq!(i.eval("catch {return x}").unwrap(), "2");
        assert_eq!(i.eval("catch {break}").unwrap(), "3");
        assert_eq!(i.eval("catch {continue}").unwrap(), "4");
    }

    #[test]
    fn eval_concatenates_args() {
        let i = Interp::new();
        assert_eq!(i.eval("eval set a 5").unwrap(), "5");
        assert_eq!(i.eval("eval {set b 6}").unwrap(), "6");
    }

    #[test]
    fn eval_synthesized_command() {
        // The Figure 9 pattern: build a command as a list, then eval it.
        let i = Interp::new();
        i.eval("set cmd [list set result {hello world}]").unwrap();
        i.eval("eval $cmd").unwrap();
        assert_eq!(i.eval("set result").unwrap(), "hello world");
    }

    #[test]
    fn case_command_matches_glob() {
        let i = Interp::new();
        let r = i
            .eval("case abc in {a*} {set r first} default {set r other}")
            .unwrap();
        assert_eq!(r, "first");
        let r = i
            .eval("case zzz in {a*} {set r first} default {set r other}")
            .unwrap();
        assert_eq!(r, "other");
    }

    #[test]
    fn switch_exact_and_fallthrough() {
        let i = Interp::new();
        let r = i
            .eval("switch -exact b {a - b {set r ab} c {set r c} default {set r d}}")
            .unwrap();
        assert_eq!(r, "ab");
    }

    #[test]
    fn rename_via_script() {
        let i = Interp::new();
        i.eval("proc hi {} {return hi}").unwrap();
        i.eval("rename hi hello").unwrap();
        assert_eq!(i.eval("hello").unwrap(), "hi");
        assert!(i.eval("hi").is_err());
    }

    #[test]
    fn source_reads_file() {
        let dir = std::env::temp_dir().join("tcl_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("script.tcl");
        std::fs::write(&path, "set sourced 42\n").unwrap();
        let i = Interp::new();
        i.eval(&format!("source {}", path.display())).unwrap();
        assert_eq!(i.eval("set sourced").unwrap(), "42");
    }

    #[test]
    fn exit_sets_request() {
        let i = Interp::new();
        assert!(i.eval("exit 3").is_err());
        assert_eq!(i.exit_requested(), Some(3));
    }

    #[test]
    fn nested_loops_break_inner_only() {
        let i = Interp::new();
        i.eval("set count 0").unwrap();
        i.eval("foreach a {1 2} {foreach b {1 2 3} {if {$b == 2} break; incr count}}")
            .unwrap();
        assert_eq!(i.eval("set count").unwrap(), "2");
    }
}
