//! List commands: `list`, `lindex`, `llength`, `lappend`, `linsert`,
//! `lrange`, `lreplace`, `lsearch`, `lsort`, `concat`, `join`, `split`,
//! plus the old-style `index` and `range` aliases used in Figure 9.

use crate::error::{wrong_args, Exception, TclResult};
use crate::interp::{split_var_name, Interp};
use crate::list::{format_list, parse_list};

pub fn register(interp: &Interp) {
    interp.register("list", |_i, argv| Ok(format_list(&argv[1..])));
    interp.register("lindex", cmd_lindex);
    interp.register("index", cmd_lindex); // old Tcl alias, used by Figure 9
    interp.register("llength", cmd_llength);
    interp.register("length", cmd_llength_old);
    interp.register("lappend", cmd_lappend);
    interp.register("linsert", cmd_linsert);
    interp.register("lrange", cmd_lrange);
    interp.register("range", cmd_lrange); // old Tcl alias
    interp.register("lreplace", cmd_lreplace);
    interp.register("lsearch", cmd_lsearch);
    interp.register("lsort", cmd_lsort);
    interp.register("concat", cmd_concat);
    interp.register("join", cmd_join);
    interp.register("split", cmd_split);
}

/// Parses a list index: a number or `end` (optionally `end-N`).
fn parse_index(spec: &str, len: usize) -> Result<i64, Exception> {
    if spec == "end" {
        return Ok(len as i64 - 1);
    }
    if let Some(off) = spec.strip_prefix("end-") {
        let n: i64 = off
            .parse()
            .map_err(|_| Exception::error(format!("bad index \"{spec}\"")))?;
        return Ok(len as i64 - 1 - n);
    }
    spec.parse()
        .map_err(|_| Exception::error(format!("bad index \"{spec}\"")))
}

fn cmd_lindex(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 3 {
        return Err(wrong_args("lindex list index"));
    }
    let items = parse_list(&argv[1])?;
    let idx = parse_index(&argv[2], items.len())?;
    if idx < 0 || idx as usize >= items.len() {
        return Ok(String::new());
    }
    Ok(items[idx as usize].clone())
}

fn cmd_llength(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 {
        return Err(wrong_args("llength list"));
    }
    Ok(parse_list(&argv[1])?.len().to_string())
}

/// Old Tcl's `length`: `length string chars|lines` or list length.
fn cmd_llength_old(_i: &Interp, argv: &[String]) -> TclResult {
    match argv.len() {
        2 => Ok(parse_list(&argv[1])?.len().to_string()),
        3 => match argv[2].as_str() {
            "chars" => Ok(argv[1].chars().count().to_string()),
            "lines" => Ok(argv[1].lines().count().to_string()),
            other => Err(Exception::error(format!(
                "bad length option \"{other}\": should be chars or lines"
            ))),
        },
        _ => Err(wrong_args("length string ?chars|lines?")),
    }
}

fn cmd_lappend(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("lappend varName ?value value ...?"));
    }
    let (name, idx) = split_var_name(&argv[1]);
    let mut value = if interp.var_exists(&name, idx.as_deref()) {
        interp.get_var(&name, idx.as_deref())?
    } else {
        String::new()
    };
    for v in &argv[2..] {
        crate::list::append_element(&mut value, v);
    }
    interp.set_var(&name, idx.as_deref(), &value)
}

fn cmd_linsert(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 4 {
        return Err(wrong_args("linsert list index element ?element ...?"));
    }
    let mut items = parse_list(&argv[1])?;
    let idx = parse_index(&argv[2], items.len())?.clamp(0, items.len() as i64) as usize;
    // Old Tcl's linsert inserts *before* the given element; `end` appends
    // after the last element per the documented behaviour of `end`.
    let at = if argv[2] == "end" { items.len() } else { idx };
    for (n, v) in argv[3..].iter().enumerate() {
        items.insert(at + n, v.clone());
    }
    Ok(format_list(&items))
}

fn cmd_lrange(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 4 {
        return Err(wrong_args("lrange list first last"));
    }
    let items = parse_list(&argv[1])?;
    let first = parse_index(&argv[2], items.len())?.max(0) as usize;
    let last = parse_index(&argv[3], items.len())?;
    if last < first as i64 || first >= items.len() {
        return Ok(String::new());
    }
    let last = (last as usize).min(items.len() - 1);
    Ok(format_list(&items[first..=last]))
}

fn cmd_lreplace(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 4 {
        return Err(wrong_args("lreplace list first last ?element element ...?"));
    }
    let mut items = parse_list(&argv[1])?;
    let first = parse_index(&argv[2], items.len())?.max(0) as usize;
    let last = parse_index(&argv[3], items.len())?;
    if first >= items.len() {
        // Appending beyond the end.
        items.extend(argv[4..].iter().cloned());
        return Ok(format_list(&items));
    }
    let last = if last < 0 {
        0
    } else {
        (last as usize).min(items.len() - 1)
    };
    if last >= first {
        items.splice(first..=last, argv[4..].iter().cloned());
    } else {
        items.splice(first..first, argv[4..].iter().cloned());
    }
    Ok(format_list(&items))
}

fn cmd_lsearch(_i: &Interp, argv: &[String]) -> TclResult {
    // lsearch ?-exact|-glob? list pattern
    let (mode, list_arg, pat_arg) = match argv.len() {
        3 => ("-glob", &argv[1], &argv[2]),
        4 => (argv[1].as_str(), &argv[2], &argv[3]),
        _ => return Err(wrong_args("lsearch ?mode? list pattern")),
    };
    let items = parse_list(list_arg)?;
    for (n, item) in items.iter().enumerate() {
        let hit = match mode {
            "-exact" => item == pat_arg,
            "-glob" => crate::strutil::glob_match(pat_arg, item),
            other => {
                return Err(Exception::error(format!(
                    "bad search mode \"{other}\": should be -exact or -glob"
                )))
            }
        };
        if hit {
            return Ok(n.to_string());
        }
    }
    Ok("-1".to_string())
}

fn cmd_lsort(_i: &Interp, argv: &[String]) -> TclResult {
    // lsort ?-ascii|-integer|-real? ?-increasing|-decreasing? list
    let mut mode = "-ascii";
    let mut decreasing = false;
    let mut list_arg: Option<&String> = None;
    for arg in &argv[1..] {
        match arg.as_str() {
            "-ascii" | "-integer" | "-real" => {
                mode = match arg.as_str() {
                    "-integer" => "-integer",
                    "-real" => "-real",
                    _ => "-ascii",
                }
            }
            "-increasing" => decreasing = false,
            "-decreasing" => decreasing = true,
            _ => {
                if list_arg.is_some() {
                    return Err(wrong_args("lsort ?options? list"));
                }
                list_arg = Some(arg);
            }
        }
    }
    let Some(list_arg) = list_arg else {
        return Err(wrong_args("lsort ?options? list"));
    };
    let mut items = parse_list(list_arg)?;
    match mode {
        "-integer" => {
            let mut keyed: Vec<(i64, String)> = Vec::with_capacity(items.len());
            for s in items {
                let k: i64 = s
                    .trim()
                    .parse()
                    .map_err(|_| Exception::error(format!("expected integer but got \"{s}\"")))?;
                keyed.push((k, s));
            }
            keyed.sort_by_key(|(k, _)| *k);
            items = keyed.into_iter().map(|(_, s)| s).collect();
        }
        "-real" => {
            let mut keyed: Vec<(f64, String)> = Vec::with_capacity(items.len());
            for s in items {
                let k: f64 = s.trim().parse().map_err(|_| {
                    Exception::error(format!("expected floating-point number but got \"{s}\""))
                })?;
                keyed.push((k, s));
            }
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            items = keyed.into_iter().map(|(_, s)| s).collect();
        }
        _ => items.sort(),
    }
    if decreasing {
        items.reverse();
    }
    Ok(format_list(&items))
}

fn cmd_concat(_i: &Interp, argv: &[String]) -> TclResult {
    let parts: Vec<&str> = argv[1..]
        .iter()
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .collect();
    Ok(parts.join(" "))
}

fn cmd_join(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 && argv.len() != 3 {
        return Err(wrong_args("join list ?joinString?"));
    }
    let sep = if argv.len() == 3 {
        argv[2].as_str()
    } else {
        " "
    };
    let items = parse_list(&argv[1])?;
    Ok(items.join(sep))
}

fn cmd_split(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 && argv.len() != 3 {
        return Err(wrong_args("split string ?splitChars?"));
    }
    let text = &argv[1];
    let elems: Vec<String> = if argv.len() == 3 && argv[2].is_empty() {
        text.chars().map(|c| c.to_string()).collect()
    } else {
        let seps: Vec<char> = if argv.len() == 3 {
            argv[2].chars().collect()
        } else {
            vec![' ', '\t', '\n', '\r']
        };
        let mut out = Vec::new();
        let mut cur = String::new();
        for c in text.chars() {
            if seps.contains(&c) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.push(c);
            }
        }
        out.push(cur);
        out
    };
    Ok(format_list(&elems))
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn ev(script: &str) -> String {
        Interp::new().eval(script).unwrap()
    }

    #[test]
    fn list_quotes_elements() {
        assert_eq!(ev("list a {b c} d"), "a {b c} d");
        assert_eq!(ev("list"), "");
        assert_eq!(ev("list {}"), "{}");
    }

    #[test]
    fn lindex_and_old_index() {
        assert_eq!(ev("lindex {a b c} 1"), "b");
        assert_eq!(ev("index {a b c} 0"), "a");
        assert_eq!(ev("lindex {a b c} end"), "c");
        assert_eq!(ev("lindex {a b c} 99"), "");
        assert_eq!(ev("lindex {a b c} end-1"), "b");
    }

    #[test]
    fn llength_counts() {
        assert_eq!(ev("llength {a b {c d}}"), "3");
        assert_eq!(ev("llength {}"), "0");
    }

    #[test]
    fn lappend_builds_list() {
        let i = Interp::new();
        i.eval("lappend v a").unwrap();
        i.eval("lappend v {b c}").unwrap();
        assert_eq!(i.eval("set v").unwrap(), "a {b c}");
        assert_eq!(i.eval("llength $v").unwrap(), "2");
    }

    #[test]
    fn linsert_positions() {
        assert_eq!(ev("linsert {a b c} 1 X"), "a X b c");
        assert_eq!(ev("linsert {a b c} 0 X Y"), "X Y a b c");
        assert_eq!(ev("linsert {a b c} end X"), "a b c X");
    }

    #[test]
    fn lrange_and_old_range() {
        assert_eq!(ev("lrange {a b c d} 1 2"), "b c");
        assert_eq!(ev("range {a b c d} 2 end"), "c d");
        assert_eq!(ev("lrange {a b c} 5 7"), "");
    }

    #[test]
    fn lreplace_cases() {
        assert_eq!(ev("lreplace {a b c d} 1 2 X"), "a X d");
        assert_eq!(ev("lreplace {a b c} 0 0"), "b c");
        assert_eq!(ev("lreplace {a b c} 1 0 X"), "a X b c");
    }

    #[test]
    fn lsearch_modes() {
        assert_eq!(ev("lsearch {a ab abc} ab*"), "1");
        assert_eq!(ev("lsearch -exact {a ab abc} ab"), "1");
        assert_eq!(ev("lsearch -exact {a ab abc} zz"), "-1");
    }

    #[test]
    fn lsort_modes() {
        assert_eq!(ev("lsort {b a c}"), "a b c");
        assert_eq!(ev("lsort -decreasing {b a c}"), "c b a");
        assert_eq!(ev("lsort -integer {10 9 2}"), "2 9 10");
        assert_eq!(ev("lsort -real {1.5 0.3 10.0}"), "0.3 1.5 10.0");
        assert_eq!(ev("lsort {10 9 2}"), "10 2 9"); // ascii order
    }

    #[test]
    fn concat_flattens() {
        assert_eq!(ev("concat {a b} {c d}"), "a b c d");
        assert_eq!(ev("concat a {} b"), "a b");
    }

    #[test]
    fn join_and_split() {
        assert_eq!(ev("join {a b c} -"), "a-b-c");
        assert_eq!(ev("join {a {b c}}"), "a b c");
        assert_eq!(ev("split a-b-c -"), "a b c");
        assert_eq!(ev("split {a b}"), "a b");
        assert_eq!(ev("split abc {}"), "a b c");
        assert_eq!(ev("split a--b -"), "a {} b");
    }

    #[test]
    fn nested_list_access() {
        assert_eq!(ev("lindex [lindex {{a b} {c d}} 1] 0"), "c");
    }
}
