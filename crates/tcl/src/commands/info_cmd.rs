//! The `info` command: introspection into the interpreter's own state.
//!
//! The paper's Section 8 calls out that Tcl "provides access to its own
//! internals (e.g. it is possible to retrieve the body of a Tcl procedure
//! or a list of all defined variable names)"; this command is that access.

use crate::error::{wrong_args, Exception, TclResult};
use crate::interp::Interp;
use crate::list::format_list;
use crate::strutil::glob_match;

pub fn register(interp: &Interp) {
    interp.register("info", cmd_info);
}

fn filtered(names: Vec<String>, pattern: Option<&String>) -> String {
    match pattern {
        Some(pat) => format_list(
            &names
                .into_iter()
                .filter(|n| glob_match(pat, n))
                .collect::<Vec<_>>(),
        ),
        None => format_list(&names),
    }
}

fn cmd_info(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("info option ?arg ...?"));
    }
    match argv[1].as_str() {
        "commands" => Ok(filtered(interp.command_names(), argv.get(2))),
        "procs" => Ok(filtered(interp.proc_names(), argv.get(2))),
        "vars" => Ok(filtered(interp.var_names(), argv.get(2))),
        "globals" => Ok(filtered(interp.global_names(), argv.get(2))),
        "exists" => {
            if argv.len() != 3 {
                return Err(wrong_args("info exists varName"));
            }
            let (name, idx) = crate::interp::split_var_name(&argv[2]);
            Ok(if interp.var_exists(&name, idx.as_deref()) {
                "1"
            } else {
                "0"
            }
            .into())
        }
        "body" => {
            if argv.len() != 3 {
                return Err(wrong_args("info body procName"));
            }
            match interp.proc_def(&argv[2]) {
                Some(def) => Ok(def.body.clone()),
                None => Err(Exception::error(format!(
                    "\"{}\" isn't a procedure",
                    argv[2]
                ))),
            }
        }
        "args" => {
            if argv.len() != 3 {
                return Err(wrong_args("info args procName"));
            }
            match interp.proc_def(&argv[2]) {
                Some(def) => Ok(format_list(
                    &def.params
                        .iter()
                        .map(|(n, _)| n.clone())
                        .collect::<Vec<_>>(),
                )),
                None => Err(Exception::error(format!(
                    "\"{}\" isn't a procedure",
                    argv[2]
                ))),
            }
        }
        "default" => {
            if argv.len() != 5 {
                return Err(wrong_args("info default procName arg varName"));
            }
            let def = interp
                .proc_def(&argv[2])
                .ok_or_else(|| Exception::error(format!("\"{}\" isn't a procedure", argv[2])))?;
            let param = def
                .params
                .iter()
                .find(|(n, _)| n == &argv[3])
                .ok_or_else(|| {
                    Exception::error(format!(
                        "procedure \"{}\" doesn't have an argument \"{}\"",
                        argv[2], argv[3]
                    ))
                })?;
            match &param.1 {
                Some(d) => {
                    interp.set_var(&argv[4], None, d)?;
                    Ok("1".into())
                }
                None => {
                    interp.set_var(&argv[4], None, "")?;
                    Ok("0".into())
                }
            }
        }
        "level" => {
            if argv.len() == 2 {
                return Ok(interp.level().to_string());
            }
            let n: i64 = argv[2]
                .parse()
                .map_err(|_| Exception::error(format!("bad level \"{}\"", argv[2])))?;
            let level = if n <= 0 {
                (interp.level() as i64 + n) as usize
            } else {
                n as usize
            };
            match interp.invocation_at(level) {
                Some(words) if !words.is_empty() => Ok(format_list(&words)),
                _ => Err(Exception::error(format!("bad level \"{}\"", argv[2]))),
            }
        }
        "tclversion" => Ok("6.1".into()),
        "library" => Ok(std::env::var("TCL_LIBRARY").unwrap_or_default()),
        "cmdcount" => Ok("0".into()),
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be args, body, cmdcount, commands, \
             default, exists, globals, level, library, procs, tclversion, or vars"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    #[test]
    fn info_exists() {
        let i = Interp::new();
        assert_eq!(i.eval("info exists x").unwrap(), "0");
        i.eval("set x 1").unwrap();
        assert_eq!(i.eval("info exists x").unwrap(), "1");
    }

    #[test]
    fn info_body_and_args() {
        let i = Interp::new();
        i.eval("proc f {a {b 2}} {return $a$b}").unwrap();
        assert_eq!(i.eval("info body f").unwrap(), "return $a$b");
        assert_eq!(i.eval("info args f").unwrap(), "a b");
    }

    #[test]
    fn info_default() {
        let i = Interp::new();
        i.eval("proc f {a {b 2}} {}").unwrap();
        assert_eq!(i.eval("info default f b d").unwrap(), "1");
        assert_eq!(i.eval("set d").unwrap(), "2");
        assert_eq!(i.eval("info default f a d").unwrap(), "0");
    }

    #[test]
    fn info_commands_filters() {
        let i = Interp::new();
        let all = i.eval("info commands").unwrap();
        assert!(all.contains("set"));
        assert!(all.contains("foreach"));
        let sets = i.eval("info commands se*").unwrap();
        assert!(sets.contains("set"));
        assert!(!sets.contains("foreach"));
    }

    #[test]
    fn info_procs_lists_only_procs() {
        let i = Interp::new();
        i.eval("proc myproc {} {}").unwrap();
        let procs = i.eval("info procs").unwrap();
        assert!(procs.contains("myproc"));
        assert!(!procs.contains("set"));
    }

    #[test]
    fn info_vars_and_globals() {
        let i = Interp::new();
        i.eval("set g 1").unwrap();
        i.eval("proc f {} {set local 2; return [info vars]}")
            .unwrap();
        let vars = i.eval("f").unwrap();
        assert!(vars.contains("local"));
        assert!(!vars.contains('g'));
        assert!(i.eval("info globals").unwrap().contains('g'));
    }

    #[test]
    fn info_level() {
        let i = Interp::new();
        assert_eq!(i.eval("info level").unwrap(), "0");
        i.eval("proc f {x} {return [info level]}").unwrap();
        assert_eq!(i.eval("f 1").unwrap(), "1");
        i.eval("proc g {a b} {return [info level 1]}").unwrap();
        assert_eq!(i.eval("g 1 2").unwrap(), "g 1 2");
    }

    #[test]
    fn info_bad_level() {
        let i = Interp::new();
        assert!(i.eval("info level 99").is_err());
    }

    #[test]
    fn info_on_non_proc_errors() {
        let i = Interp::new();
        assert!(i.eval("info body set").is_err());
    }
}
