//! String commands: `string` with its subcommands, `format`, and `scan`.

use crate::error::{wrong_args, Exception, TclResult};
use crate::interp::Interp;
use crate::strutil::{format_cmd, glob_match, scan_cmd};

pub fn register(interp: &Interp) {
    interp.register("string", cmd_string);
    interp.register("format", |_i, argv| {
        if argv.len() < 2 {
            return Err(wrong_args("format formatString ?arg arg ...?"));
        }
        format_cmd(&argv[1], &argv[2..])
    });
    interp.register("scan", cmd_scan);
    interp.register("regexp", cmd_regexp);
    interp.register("regsub", cmd_regsub);
}

/// `regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar ...?`.
fn cmd_regexp(interp: &Interp, argv: &[String]) -> TclResult {
    let mut nocase = false;
    let mut indices = false;
    let mut i = 1usize;
    while i < argv.len() && argv[i].starts_with('-') {
        match argv[i].as_str() {
            "-nocase" => nocase = true,
            "-indices" => indices = true,
            "--" => {
                i += 1;
                break;
            }
            other => {
                return Err(Exception::error(format!(
                    "bad switch \"{other}\": must be -indices, -nocase, or --"
                )))
            }
        }
        i += 1;
    }
    if argv.len() < i + 2 {
        return Err(wrong_args(
            "regexp ?switches? exp string ?matchVar? ?subMatchVar subMatchVar ...?",
        ));
    }
    let re = crate::regex::Regex::compile(&argv[i], nocase)?;
    let text = &argv[i + 1];
    let chars: Vec<char> = text.chars().collect();
    let vars = &argv[i + 2..];
    let Some(caps) = re.find(text) else {
        return Ok("0".into());
    };
    for (n, var) in vars.iter().enumerate() {
        let value = match caps.get(n).and_then(|c| *c) {
            Some((a, b)) => {
                if indices {
                    format!("{a} {}", b.saturating_sub(1))
                } else {
                    chars[a..b].iter().collect()
                }
            }
            None => {
                if indices {
                    "-1 -1".to_string()
                } else {
                    String::new()
                }
            }
        };
        interp.set_var(var, None, &value)?;
    }
    Ok("1".into())
}

/// `regsub ?-all? ?-nocase? exp string subSpec varName` — returns the
/// number of substitutions performed.
fn cmd_regsub(interp: &Interp, argv: &[String]) -> TclResult {
    let mut nocase = false;
    let mut all = false;
    let mut i = 1usize;
    while i < argv.len() && argv[i].starts_with('-') {
        match argv[i].as_str() {
            "-nocase" => nocase = true,
            "-all" => all = true,
            "--" => {
                i += 1;
                break;
            }
            other => {
                return Err(Exception::error(format!(
                    "bad switch \"{other}\": must be -all, -nocase, or --"
                )))
            }
        }
        i += 1;
    }
    if argv.len() != i + 4 {
        return Err(wrong_args("regsub ?switches? exp string subSpec varName"));
    }
    let re = crate::regex::Regex::compile(&argv[i], nocase)?;
    let chars: Vec<char> = argv[i + 1].chars().collect();
    let spec = &argv[i + 2];
    let var = &argv[i + 3];
    let mut out = String::new();
    let mut pos = 0usize;
    let mut count = 0u32;
    while let Some(caps) = re.find_at(&chars, pos) {
        let (a, b) = caps[0].unwrap();
        out.extend(&chars[pos..a]);
        out.push_str(&crate::regex::substitute(spec, &chars, &caps));
        count += 1;
        // Step past the match (or one char for empty matches).
        pos = if b > a { b } else { b + 1 };
        if b == a && a < chars.len() {
            out.push(chars[a]);
        }
        if !all || pos > chars.len() {
            break;
        }
    }
    if pos <= chars.len() {
        out.extend(&chars[pos.min(chars.len())..]);
    }
    interp.set_var(var, None, &out)?;
    Ok(count.to_string())
}

fn char_index(s: &str, spec: &str) -> Result<i64, Exception> {
    let len = s.chars().count() as i64;
    if spec == "end" {
        return Ok(len - 1);
    }
    if let Some(off) = spec.strip_prefix("end-") {
        let n: i64 = off
            .parse()
            .map_err(|_| Exception::error(format!("bad index \"{spec}\"")))?;
        return Ok(len - 1 - n);
    }
    spec.parse()
        .map_err(|_| Exception::error(format!("bad index \"{spec}\"")))
}

fn cmd_string(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args("string option arg ?arg ...?"));
    }
    let opt = argv[1].as_str();
    let s = &argv[2];
    match opt {
        "length" => {
            if argv.len() != 3 {
                return Err(wrong_args("string length string"));
            }
            Ok(s.chars().count().to_string())
        }
        "compare" => {
            if argv.len() != 4 {
                return Err(wrong_args("string compare string1 string2"));
            }
            Ok(match s.as_str().cmp(argv[3].as_str()) {
                std::cmp::Ordering::Less => "-1",
                std::cmp::Ordering::Equal => "0",
                std::cmp::Ordering::Greater => "1",
            }
            .to_string())
        }
        "match" => {
            if argv.len() != 4 {
                return Err(wrong_args("string match pattern string"));
            }
            Ok(if glob_match(s, &argv[3]) { "1" } else { "0" }.to_string())
        }
        "first" => {
            if argv.len() != 4 {
                return Err(wrong_args("string first string1 string2"));
            }
            Ok(match argv[3].find(s.as_str()) {
                Some(byte) => argv[3][..byte].chars().count().to_string(),
                None => "-1".to_string(),
            })
        }
        "last" => {
            if argv.len() != 4 {
                return Err(wrong_args("string last string1 string2"));
            }
            Ok(match argv[3].rfind(s.as_str()) {
                Some(byte) => argv[3][..byte].chars().count().to_string(),
                None => "-1".to_string(),
            })
        }
        "index" => {
            if argv.len() != 4 {
                return Err(wrong_args("string index string charIndex"));
            }
            let idx = char_index(s, &argv[3])?;
            if idx < 0 {
                return Ok(String::new());
            }
            Ok(s.chars()
                .nth(idx as usize)
                .map(|c| c.to_string())
                .unwrap_or_default())
        }
        "range" => {
            if argv.len() != 5 {
                return Err(wrong_args("string range string first last"));
            }
            let len = s.chars().count() as i64;
            let first = char_index(s, &argv[3])?.max(0);
            let last = char_index(s, &argv[4])?.min(len - 1);
            if first > last {
                return Ok(String::new());
            }
            Ok(s.chars()
                .skip(first as usize)
                .take((last - first + 1) as usize)
                .collect())
        }
        "tolower" => Ok(s.to_lowercase()),
        "toupper" => Ok(s.to_uppercase()),
        "trim" | "trimleft" | "trimright" => {
            let chars: Vec<char> = if argv.len() == 4 {
                argv[3].chars().collect()
            } else {
                vec![' ', '\t', '\n', '\r']
            };
            let p = |c: char| chars.contains(&c);
            Ok(match opt {
                "trim" => s.trim_matches(p),
                "trimleft" => s.trim_start_matches(p),
                _ => s.trim_end_matches(p),
            }
            .to_string())
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be compare, first, index, last, \
             length, match, range, tolower, toupper, trim, trimleft, or trimright"
        ))),
    }
}

fn cmd_scan(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 4 {
        return Err(wrong_args("scan string format varName ?varName ...?"));
    }
    let values = scan_cmd(&argv[1], &argv[2])?;
    let vars = &argv[3..];
    let mut assigned = 0usize;
    for (n, v) in values.iter().enumerate() {
        if n >= vars.len() {
            return Err(Exception::error(
                "different numbers of variable names and field specifiers",
            ));
        }
        if let Some(v) = v {
            interp.set_var(&vars[n], None, v)?;
            assigned += 1;
        }
    }
    Ok(assigned.to_string())
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn ev(script: &str) -> String {
        Interp::new().eval(script).unwrap()
    }

    #[test]
    fn string_length_and_index() {
        assert_eq!(ev("string length hello"), "5");
        assert_eq!(ev("string index hello 1"), "e");
        assert_eq!(ev("string index hello end"), "o");
        assert_eq!(ev("string index hello 99"), "");
    }

    #[test]
    fn string_compare() {
        assert_eq!(ev("string compare a b"), "-1");
        assert_eq!(ev("string compare b b"), "0");
        assert_eq!(ev("string compare c b"), "1");
    }

    #[test]
    fn string_match() {
        assert_eq!(ev("string match a* abc"), "1");
        assert_eq!(ev("string match a* xbc"), "0");
        assert_eq!(ev("string match {[0-9]*} 5x"), "1");
    }

    #[test]
    fn string_first_last() {
        assert_eq!(ev("string first lo hello"), "3");
        assert_eq!(ev("string first zz hello"), "-1");
        assert_eq!(ev("string last l hello"), "3");
    }

    #[test]
    fn string_range() {
        assert_eq!(ev("string range hello 1 3"), "ell");
        assert_eq!(ev("string range hello 2 end"), "llo");
        assert_eq!(ev("string range hello 4 1"), "");
    }

    #[test]
    fn string_case_and_trim() {
        assert_eq!(ev("string toupper hi"), "HI");
        assert_eq!(ev("string tolower HI"), "hi");
        assert_eq!(ev("string trim {  x  }"), "x");
        assert_eq!(ev("string trimleft xxabc x"), "abc");
        assert_eq!(ev("string trimright abcxx x"), "abc");
    }

    #[test]
    fn format_through_tcl() {
        assert_eq!(ev("format \"x is %s\" 42"), "x is 42");
        assert_eq!(ev("format %d+%d 1 2"), "1+2");
    }

    #[test]
    fn scan_through_tcl() {
        let i = Interp::new();
        assert_eq!(i.eval("scan {10 20} {%d %d} a b").unwrap(), "2");
        assert_eq!(i.eval("set a").unwrap(), "10");
        assert_eq!(i.eval("set b").unwrap(), "20");
    }

    #[test]
    fn scan_partial_match() {
        let i = Interp::new();
        assert_eq!(i.eval("scan {10 xx} {%d %d} a b").unwrap(), "1");
        assert_eq!(i.eval("set a").unwrap(), "10");
    }

    #[test]
    fn bad_option_reports_choices() {
        let i = Interp::new();
        let e = i.eval("string frobnicate x").unwrap_err();
        assert!(e.msg.contains("bad option"));
    }
}

#[cfg(test)]
mod regex_cmd_tests {
    use crate::interp::Interp;

    fn ev(script: &str) -> String {
        Interp::new().eval(script).unwrap()
    }

    #[test]
    fn regexp_matches_and_captures() {
        let i = Interp::new();
        assert_eq!(i.eval("regexp {a(b+)c} xabbbcy whole part").unwrap(), "1");
        assert_eq!(i.eval("set whole").unwrap(), "abbbc");
        assert_eq!(i.eval("set part").unwrap(), "bbb");
        assert_eq!(i.eval("regexp {z+} abc").unwrap(), "0");
    }

    #[test]
    fn regexp_nocase_and_indices() {
        let i = Interp::new();
        assert_eq!(i.eval("regexp -nocase HELLO {say hello}").unwrap(), "1");
        assert_eq!(i.eval("regexp -indices {l+} {hello} span").unwrap(), "1");
        assert_eq!(i.eval("set span").unwrap(), "2 3");
    }

    #[test]
    fn regsub_single_and_all() {
        let i = Interp::new();
        assert_eq!(i.eval("regsub {o} {foo boo} {0} out").unwrap(), "1");
        assert_eq!(i.eval("set out").unwrap(), "f0o boo");
        assert_eq!(i.eval("regsub -all {o} {foo boo} {0} out").unwrap(), "4");
        assert_eq!(i.eval("set out").unwrap(), "f00 b00");
    }

    #[test]
    fn regsub_group_references() {
        let i = Interp::new();
        i.eval(r#"regsub -all {([a-z]+)=([0-9]+)} {x=1 y=22} {\2:\1} out"#)
            .unwrap();
        assert_eq!(i.eval("set out").unwrap(), "1:x 22:y");
        i.eval(r#"regsub {(.*)} hello {<&>} out"#).unwrap();
        assert_eq!(i.eval("set out").unwrap(), "<hello>");
    }

    #[test]
    fn regsub_no_match_copies_input() {
        let i = Interp::new();
        assert_eq!(i.eval("regsub {zz} {hello} {x} out").unwrap(), "0");
        assert_eq!(i.eval("set out").unwrap(), "hello");
    }

    #[test]
    fn regexp_in_conditionals() {
        assert_eq!(
            ev("if {[regexp {^[0-9]+$} 12345]} {format yes} else {format no}"),
            "yes"
        );
        assert_eq!(
            ev("if {[regexp {^[0-9]+$} 12a45]} {format yes} else {format no}"),
            "no"
        );
    }

    #[test]
    fn bad_pattern_reports_error() {
        let i = Interp::new();
        let e = i.eval("regexp {(} x").unwrap_err();
        assert!(e.msg.contains("couldn't compile"), "{}", e.msg);
    }
}
