//! Miscellaneous commands: `print`, `puts`, `expr`, `subst`, `time`,
//! `file`, `exec`, `glob`, `pwd`, and `cd`.

use std::path::Path;

use crate::error::{wrong_args, Exception, TclResult};
use crate::expr::expr_string_cached as expr_string;
use crate::interp::Interp;
use crate::list::format_list;

pub fn register(interp: &Interp) {
    interp.register("print", cmd_print);
    interp.register("puts", cmd_puts);
    interp.register("expr", cmd_expr);
    interp.register("subst", cmd_subst);
    interp.register("time", cmd_time);
    interp.register("file", cmd_file);
    interp.register("exec", cmd_exec);
    interp.register("glob", cmd_glob);
    interp.register("pwd", |_i, argv| {
        if argv.len() != 1 {
            return Err(wrong_args("pwd"));
        }
        std::env::current_dir()
            .map(|p| p.display().to_string())
            .map_err(|e| Exception::error(format!("error getting working directory: {e}")))
    });
    interp.register("cd", |_i, argv| {
        if argv.len() > 2 {
            return Err(wrong_args("cd ?dirName?"));
        }
        let dir = argv
            .get(1)
            .cloned()
            .or_else(|| std::env::var("HOME").ok())
            .unwrap_or_else(|| "/".to_string());
        std::env::set_current_dir(&dir).map_err(|e| {
            Exception::error(format!(
                "couldn't change working directory to \"{dir}\": {e}"
            ))
        })?;
        Ok(String::new())
    });
}

/// `print` (old Tcl): writes its arguments to standard output with no
/// trailing newline. The Figure 7/9 scripts pass explicit `\n`s.
fn cmd_print(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("print string ?string ...?"));
    }
    for (n, arg) in argv[1..].iter().enumerate() {
        if n > 0 {
            interp.write_output(" ");
        }
        interp.write_output(arg);
    }
    Ok(String::new())
}

/// `puts ?-nonewline? string`: the modern spelling.
fn cmd_puts(interp: &Interp, argv: &[String]) -> TclResult {
    let (text, newline) = match argv.len() {
        2 => (&argv[1], true),
        3 if argv[1] == "-nonewline" => (&argv[2], false),
        3 if argv[1] == "stdout" => (&argv[2], true),
        4 if argv[1] == "-nonewline" && argv[2] == "stdout" => (&argv[3], false),
        _ => return Err(wrong_args("puts ?-nonewline? string")),
    };
    interp.write_output(text);
    if newline {
        interp.write_output("\n");
    }
    Ok(String::new())
}

fn cmd_expr(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("expr arg ?arg ...?"));
    }
    let src = if argv.len() == 2 {
        argv[1].clone()
    } else {
        argv[1..].join(" ")
    };
    expr_string(interp, &src)
}

fn cmd_subst(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 {
        return Err(wrong_args("subst string"));
    }
    interp.subst_string(&argv[1])
}

/// `time command ?count?`: runs the script and reports mean microseconds.
fn cmd_time(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 && argv.len() != 3 {
        return Err(wrong_args("time command ?count?"));
    }
    let count: u64 = if argv.len() == 3 {
        argv[2]
            .parse()
            .map_err(|_| Exception::error(format!("expected integer but got \"{}\"", argv[2])))?
    } else {
        1
    };
    if count == 0 {
        return Ok("0 microseconds per iteration".into());
    }
    let start = std::time::Instant::now();
    for _ in 0..count {
        interp.eval(&argv[1])?;
    }
    let micros = start.elapsed().as_micros() as u64 / count;
    Ok(format!("{micros} microseconds per iteration"))
}

/// The `file` command. Accepts both word orders — `file option name`
/// (Tcl 7+) and `file name option` (the order the paper's Figure 9 uses:
/// `file $file isdirectory`).
fn cmd_file(_i: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args("file option name ?arg ...?"));
    }
    const OPTIONS: &[&str] = &[
        "atime",
        "dirname",
        "executable",
        "exists",
        "extension",
        "isdirectory",
        "isfile",
        "mtime",
        "owned",
        "readable",
        "rootname",
        "size",
        "tail",
        "type",
        "writable",
    ];
    let (opt, name) = if OPTIONS.contains(&argv[1].as_str()) {
        (argv[1].as_str(), argv[2].as_str())
    } else if OPTIONS.contains(&argv[2].as_str()) {
        (argv[2].as_str(), argv[1].as_str())
    } else {
        return Err(Exception::error(format!(
            "bad option \"{}\": must be one of {}",
            argv[1],
            OPTIONS.join(", ")
        )));
    };
    let path = Path::new(name);
    let yes_no = |b: bool| Ok(if b { "1" } else { "0" }.to_string());
    match opt {
        "exists" => yes_no(path.exists()),
        "isdirectory" => yes_no(path.is_dir()),
        "isfile" => yes_no(path.is_file()),
        "readable" => yes_no(std::fs::File::open(path).is_ok() || path.is_dir()),
        "writable" => yes_no(std::fs::OpenOptions::new().append(true).open(path).is_ok()),
        "executable" => {
            #[cfg(unix)]
            {
                use std::os::unix::fs::PermissionsExt;
                yes_no(
                    path.metadata()
                        .map(|m| m.permissions().mode() & 0o111 != 0)
                        .unwrap_or(false),
                )
            }
            #[cfg(not(unix))]
            yes_no(false)
        }
        "owned" => {
            #[cfg(unix)]
            {
                use std::os::unix::fs::MetadataExt;
                yes_no(
                    path.metadata()
                        .map(|m| {
                            // Zero-dependency geteuid comparison via /proc.
                            std::fs::metadata("/proc/self")
                                .map(|me| me.uid() == m.uid())
                                .unwrap_or(false)
                        })
                        .unwrap_or(false),
                )
            }
            #[cfg(not(unix))]
            yes_no(false)
        }
        "dirname" => Ok(match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.display().to_string(),
            _ => ".".to_string(),
        }),
        "tail" => Ok(path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| name.to_string())),
        "rootname" => {
            let s = name;
            match s.rfind('.') {
                Some(dot) if !s[dot..].contains('/') => Ok(s[..dot].to_string()),
                _ => Ok(s.to_string()),
            }
        }
        "extension" => {
            let s = name;
            match s.rfind('.') {
                Some(dot) if !s[dot..].contains('/') => Ok(s[dot..].to_string()),
                _ => Ok(String::new()),
            }
        }
        "size" => path
            .metadata()
            .map(|m| m.len().to_string())
            .map_err(|e| Exception::error(format!("couldn't stat \"{name}\": {e}"))),
        "mtime" | "atime" => path
            .metadata()
            .and_then(|m| {
                if opt == "mtime" {
                    m.modified()
                } else {
                    m.accessed()
                }
            })
            .map(|t| {
                t.duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs().to_string())
                    .unwrap_or_else(|_| "0".into())
            })
            .map_err(|e| Exception::error(format!("couldn't stat \"{name}\": {e}"))),
        "type" => {
            if path.is_dir() {
                Ok("directory".into())
            } else if path.is_symlink() {
                Ok("link".into())
            } else if path.is_file() {
                Ok("file".into())
            } else {
                Err(Exception::error(format!("couldn't stat \"{name}\"")))
            }
        }
        _ => unreachable!("option validated above"),
    }
}

fn cmd_exec(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("exec command ?arg ...?"));
    }
    interp.run_exec(&argv[1..]).map_err(Exception::error)
}

/// `glob ?-nocomplain? pattern ...`: file name globbing in the current
/// directory tree (supports `*`, `?`, `[...]` within path components).
fn cmd_glob(_i: &Interp, argv: &[String]) -> TclResult {
    let mut nocomplain = false;
    let mut patterns: Vec<&String> = Vec::new();
    for a in &argv[1..] {
        if a == "-nocomplain" {
            nocomplain = true;
        } else {
            patterns.push(a);
        }
    }
    if patterns.is_empty() {
        return Err(wrong_args("glob ?-nocomplain? name ?name ...?"));
    }
    let mut out: Vec<String> = Vec::new();
    for pat in patterns {
        glob_pattern(pat, &mut out);
    }
    if out.is_empty() && !nocomplain {
        return Err(Exception::error("no files matched glob pattern(s)"));
    }
    out.sort();
    Ok(format_list(&out))
}

fn glob_pattern(pattern: &str, out: &mut Vec<String>) {
    let (root, rel) = if let Some(rest) = pattern.strip_prefix('/') {
        ("/".to_string(), rest.to_string())
    } else {
        (".".to_string(), pattern.to_string())
    };
    let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty()).collect();
    fn walk(dir: &Path, comps: &[&str], display: &str, out: &mut Vec<String>) {
        let Some((head, rest)) = comps.split_first() else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with('.') && !head.starts_with('.') {
                continue;
            }
            if crate::strutil::glob_match(head, &name) {
                let shown = if display.is_empty() || display == "." {
                    name.clone()
                } else if display == "/" {
                    format!("/{name}")
                } else {
                    format!("{display}/{name}")
                };
                if rest.is_empty() {
                    out.push(shown);
                } else if entry.path().is_dir() {
                    walk(&entry.path(), rest, &shown, out);
                }
            }
        }
    }
    walk(
        Path::new(&root),
        &comps,
        if root == "/" { "/" } else { "" },
        out,
    );
}

#[cfg(test)]
mod tests {
    use crate::interp::{Executor, Interp};
    use std::rc::Rc;

    #[test]
    fn print_writes_without_newline() {
        let i = Interp::new();
        let buf = i.capture_output();
        i.eval("print hello").unwrap();
        i.eval(r#"print " world\n""#).unwrap();
        assert_eq!(&*buf.borrow(), "hello world\n");
    }

    #[test]
    fn puts_appends_newline() {
        let i = Interp::new();
        let buf = i.capture_output();
        i.eval("puts hi").unwrap();
        i.eval("puts -nonewline there").unwrap();
        assert_eq!(&*buf.borrow(), "hi\nthere");
    }

    #[test]
    fn expr_command() {
        let i = Interp::new();
        assert_eq!(i.eval("expr 1+2").unwrap(), "3");
        assert_eq!(i.eval("expr 1 + 2").unwrap(), "3");
        assert_eq!(i.eval("set x 4; expr {$x * 2}").unwrap(), "8");
    }

    #[test]
    fn subst_command() {
        let i = Interp::new();
        i.eval("set v 9").unwrap();
        assert_eq!(i.eval("subst {v is $v}").unwrap(), "v is 9");
    }

    #[test]
    fn time_reports_microseconds() {
        let i = Interp::new();
        let r = i.eval("time {set a 1} 10").unwrap();
        assert!(r.ends_with("microseconds per iteration"), "{r}");
    }

    #[test]
    fn file_both_argument_orders() {
        let i = Interp::new();
        let dir = std::env::temp_dir();
        let d = dir.display();
        assert_eq!(i.eval(&format!("file isdirectory {d}")).unwrap(), "1");
        assert_eq!(i.eval(&format!("file {d} isdirectory")).unwrap(), "1");
        assert_eq!(i.eval(&format!("file {d} isfile")).unwrap(), "0");
    }

    #[test]
    fn file_name_operations() {
        let i = Interp::new();
        assert_eq!(i.eval("file dirname /a/b/c").unwrap(), "/a/b");
        assert_eq!(i.eval("file tail /a/b/c.txt").unwrap(), "c.txt");
        assert_eq!(i.eval("file rootname /a/b.c/d.txt").unwrap(), "/a/b.c/d");
        assert_eq!(i.eval("file extension d.txt").unwrap(), ".txt");
        assert_eq!(i.eval("file extension /a.b/d").unwrap(), "");
        assert_eq!(i.eval("file dirname c").unwrap(), ".");
    }

    #[test]
    fn exec_uses_pluggable_executor() {
        struct Fake;
        impl Executor for Fake {
            fn run(&self, _i: &Interp, argv: &[String]) -> Result<String, String> {
                Ok(format!("ran:{}", argv.join(",")))
            }
        }
        let i = Interp::new();
        i.set_executor(Rc::new(Fake));
        assert_eq!(i.eval("exec ls -a /tmp").unwrap(), "ran:ls,-a,/tmp");
    }

    #[test]
    fn exec_error_propagates() {
        struct Failing;
        impl Executor for Failing {
            fn run(&self, _i: &Interp, _argv: &[String]) -> Result<String, String> {
                Err("nope".into())
            }
        }
        let i = Interp::new();
        i.set_executor(Rc::new(Failing));
        let e = i.eval("exec anything").unwrap_err();
        assert_eq!(e.msg, "nope");
    }

    #[test]
    fn real_exec_runs_echo() {
        let i = Interp::new();
        assert_eq!(i.eval("exec echo hello").unwrap(), "hello");
    }

    #[test]
    fn glob_matches_files() {
        let dir = std::env::temp_dir().join("tcl_glob_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.txt"), "").unwrap();
        std::fs::write(dir.join("b.txt"), "").unwrap();
        std::fs::write(dir.join("c.dat"), "").unwrap();
        let i = Interp::new();
        let r = i.eval(&format!("glob {}/*.txt", dir.display())).unwrap();
        assert!(r.contains("a.txt") && r.contains("b.txt") && !r.contains("c.dat"));
        assert_eq!(
            i.eval(&format!("glob -nocomplain {}/*.zzz", dir.display()))
                .unwrap(),
            ""
        );
        assert!(i.eval(&format!("glob {}/*.zzz", dir.display())).is_err());
    }
}
