//! Variable commands: `set`, `unset`, `incr`, `append`, `global`, `upvar`,
//! `uplevel`, and `array`.

use crate::error::{wrong_args, Exception, TclResult};
use crate::interp::{split_var_name, Interp, TraceAction, TraceOps};

pub fn register(interp: &Interp) {
    interp.register("set", cmd_set);
    interp.register("unset", cmd_unset);
    interp.register("incr", cmd_incr);
    interp.register("append", cmd_append);
    interp.register("global", cmd_global);
    interp.register("upvar", cmd_upvar);
    interp.register("uplevel", cmd_uplevel);
    interp.register("array", cmd_array);
    interp.register("trace", cmd_trace);
}

/// `trace variable name ops command`, `trace vdelete name ops command`,
/// `trace vinfo name`: run a command whenever a variable is read,
/// written, or unset.
fn cmd_trace(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args("trace option ?arg arg ...?"));
    }
    match argv[1].as_str() {
        "variable" => {
            if argv.len() != 5 {
                return Err(wrong_args("trace variable name ops command"));
            }
            let ops = TraceOps::parse(&argv[3])?;
            interp.trace_variable(&argv[2], ops, TraceAction::Script(argv[4].clone()));
            Ok(String::new())
        }
        "vdelete" => {
            if argv.len() != 5 {
                return Err(wrong_args("trace vdelete name ops command"));
            }
            let ops = TraceOps::parse(&argv[3])?;
            interp.trace_vdelete(&argv[2], ops, &argv[4]);
            Ok(String::new())
        }
        "vinfo" => {
            if argv.len() != 3 {
                return Err(wrong_args("trace vinfo name"));
            }
            let lines: Vec<String> = interp
                .trace_info(&argv[2])
                .into_iter()
                .map(|(ops, cmd)| crate::list::format_list(&[ops, cmd]))
                .collect();
            Ok(crate::list::format_list(&lines))
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be variable, vdelete, or vinfo"
        ))),
    }
}

fn cmd_set(interp: &Interp, argv: &[String]) -> TclResult {
    match argv.len() {
        2 => {
            let (name, idx) = split_var_name(&argv[1]);
            interp.get_var(&name, idx.as_deref())
        }
        3 => {
            let (name, idx) = split_var_name(&argv[1]);
            interp.set_var(&name, idx.as_deref(), &argv[2])
        }
        _ => Err(wrong_args("set varName ?newValue?")),
    }
}

fn cmd_unset(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("unset varName ?varName ...?"));
    }
    for spec in &argv[1..] {
        let (name, idx) = split_var_name(spec);
        interp.unset_var(&name, idx.as_deref())?;
    }
    Ok(String::new())
}

fn cmd_incr(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() != 2 && argv.len() != 3 {
        return Err(wrong_args("incr varName ?increment?"));
    }
    let (name, idx) = split_var_name(&argv[1]);
    let cur = interp.get_var(&name, idx.as_deref())?;
    let cur: i64 = cur
        .trim()
        .parse()
        .map_err(|_| Exception::error(format!("expected integer but got \"{cur}\"")))?;
    let by: i64 = if argv.len() == 3 {
        argv[2]
            .trim()
            .parse()
            .map_err(|_| Exception::error(format!("expected integer but got \"{}\"", argv[2])))?
    } else {
        1
    };
    interp.set_var(&name, idx.as_deref(), &(cur + by).to_string())
}

fn cmd_append(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("append varName ?value value ...?"));
    }
    let (name, idx) = split_var_name(&argv[1]);
    let mut value = if interp.var_exists(&name, idx.as_deref()) {
        interp.get_var(&name, idx.as_deref())?
    } else {
        String::new()
    };
    for v in &argv[2..] {
        value.push_str(v);
    }
    interp.set_var(&name, idx.as_deref(), &value)
}

fn cmd_global(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("global varName ?varName ...?"));
    }
    if interp.level() == 0 {
        // `global` at global scope is a no-op.
        return Ok(String::new());
    }
    for name in &argv[1..] {
        interp.link_var(name, 0, name)?;
    }
    Ok(String::new())
}

fn cmd_upvar(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args(
            "upvar ?level? otherVar localVar ?otherVar localVar ...?",
        ));
    }
    // The optional level is recognized by its shape: a number or `#number`.
    let (level, rest) = if argv[1].starts_with('#') || argv[1].parse::<usize>().is_ok() {
        (interp.parse_level(&argv[1])?, &argv[2..])
    } else {
        (interp.parse_level("1")?, &argv[1..])
    };
    if rest.is_empty() || rest.len() % 2 != 0 {
        return Err(wrong_args(
            "upvar ?level? otherVar localVar ?otherVar localVar ...?",
        ));
    }
    for pair in rest.chunks(2) {
        interp.link_var(&pair[1], level, &pair[0])?;
    }
    Ok(String::new())
}

fn cmd_uplevel(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("uplevel ?level? command ?arg ...?"));
    }
    let (level, rest) =
        if argv.len() > 2 && (argv[1].starts_with('#') || argv[1].parse::<usize>().is_ok()) {
            (interp.parse_level(&argv[1])?, &argv[2..])
        } else {
            (interp.parse_level("1")?, &argv[1..])
        };
    if rest.is_empty() {
        return Err(wrong_args("uplevel ?level? command ?arg ...?"));
    }
    let script = if rest.len() == 1 {
        rest[0].clone()
    } else {
        rest.join(" ")
    };
    interp.eval_at_level(level, &script)
}

fn cmd_array(interp: &Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args("array option arrayName ?arg ...?"));
    }
    let name = &argv[2];
    match argv[1].as_str() {
        "names" => Ok(crate::list::format_list(&interp.array_names(name)?)),
        "size" => Ok(interp.array_names(name)?.len().to_string()),
        "exists" => Ok(if interp.array_names(name).is_ok() {
            "1"
        } else {
            "0"
        }
        .into()),
        "get" => {
            let mut out: Vec<String> = Vec::new();
            for key in interp.array_names(name)? {
                let val = interp.get_var(name, Some(&key))?;
                out.push(key);
                out.push(val);
            }
            Ok(crate::list::format_list(&out))
        }
        "set" => {
            if argv.len() != 4 {
                return Err(wrong_args("array set arrayName list"));
            }
            let pairs = crate::list::parse_list(&argv[3])?;
            if pairs.len() % 2 != 0 {
                return Err(Exception::error(
                    "list must have an even number of elements",
                ));
            }
            for pair in pairs.chunks(2) {
                interp.set_var(name, Some(&pair[0]), &pair[1])?;
            }
            Ok(String::new())
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be exists, get, names, set, or size"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    #[test]
    fn incr_default_and_explicit() {
        let i = Interp::new();
        i.eval("set x 5").unwrap();
        assert_eq!(i.eval("incr x").unwrap(), "6");
        assert_eq!(i.eval("incr x 10").unwrap(), "16");
        assert_eq!(i.eval("incr x -1").unwrap(), "15");
    }

    #[test]
    fn incr_non_integer_errors() {
        let i = Interp::new();
        i.eval("set x foo").unwrap();
        assert!(i.eval("incr x").is_err());
    }

    #[test]
    fn append_creates_and_extends() {
        let i = Interp::new();
        assert_eq!(i.eval("append s hello").unwrap(), "hello");
        assert_eq!(i.eval("append s \" \" world").unwrap(), "hello world");
    }

    #[test]
    fn unset_removes() {
        let i = Interp::new();
        i.eval("set x 1").unwrap();
        i.eval("unset x").unwrap();
        assert!(i.eval("set x").is_err());
        assert!(i.eval("unset x").is_err());
    }

    #[test]
    fn global_links_into_procs() {
        let i = Interp::new();
        i.eval("set g 10").unwrap();
        i.eval("proc bump {} {global g; incr g}").unwrap();
        i.eval("bump").unwrap();
        assert_eq!(i.eval("set g").unwrap(), "11");
    }

    #[test]
    fn upvar_aliases_caller_variable() {
        let i = Interp::new();
        i.eval("proc setit {varName} {upvar $varName v; set v 99}")
            .unwrap();
        i.eval("set mine 1; setit mine").unwrap();
        assert_eq!(i.eval("set mine").unwrap(), "99");
    }

    #[test]
    fn upvar_two_levels() {
        let i = Interp::new();
        i.eval("proc outer {} {set x outer-x; inner; set x}")
            .unwrap();
        i.eval("proc inner {} {upvar 1 x y; set y changed}")
            .unwrap();
        assert_eq!(i.eval("outer").unwrap(), "changed");
    }

    #[test]
    fn uplevel_evaluates_in_caller_scope() {
        let i = Interp::new();
        i.eval("proc doit {script} {uplevel $script}").unwrap();
        i.eval("proc caller {} {set local 5; doit {incr local}; set local}")
            .unwrap();
        assert_eq!(i.eval("caller").unwrap(), "6");
    }

    #[test]
    fn uplevel_absolute_level() {
        let i = Interp::new();
        i.eval("set top 1").unwrap();
        i.eval("proc f {} {uplevel #0 {incr top}}").unwrap();
        i.eval("f").unwrap();
        assert_eq!(i.eval("set top").unwrap(), "2");
    }

    #[test]
    fn array_names_and_size() {
        let i = Interp::new();
        i.eval("set a(x) 1; set a(y) 2").unwrap();
        assert_eq!(i.eval("array names a").unwrap(), "x y");
        assert_eq!(i.eval("array size a").unwrap(), "2");
        assert_eq!(i.eval("array exists a").unwrap(), "1");
        assert_eq!(i.eval("array exists nosuch").unwrap(), "0");
    }

    #[test]
    fn array_get_and_set() {
        let i = Interp::new();
        i.eval("array set a {x 1 y 2}").unwrap();
        assert_eq!(i.eval("set a(y)").unwrap(), "2");
        assert_eq!(i.eval("array get a").unwrap(), "x 1 y 2");
    }

    #[test]
    fn unset_array_element() {
        let i = Interp::new();
        i.eval("set a(x) 1; set a(y) 2").unwrap();
        i.eval("unset a(x)").unwrap();
        assert_eq!(i.eval("array names a").unwrap(), "y");
    }

    #[test]
    fn write_trace_fires_with_arguments() {
        let i = Interp::new();
        i.eval("set log {}").unwrap();
        i.eval("proc watch {n1 n2 op} {global log; lappend log $n1/$n2/$op}")
            .unwrap();
        i.eval("trace variable v w watch").unwrap();
        i.eval("set v 1").unwrap();
        i.eval("set v 2").unwrap();
        assert_eq!(i.eval("set log").unwrap(), "v//w v//w");
    }

    #[test]
    fn read_trace_can_compute_value() {
        // The classic computed-variable idiom: a read trace refreshes the
        // value before the read completes.
        let i = Interp::new();
        i.eval("set ticks 0").unwrap();
        i.eval("proc recompute {n1 n2 op} {global now ticks; incr ticks; set now tick$ticks}")
            .unwrap();
        i.eval("set now stale").unwrap();
        i.eval("trace variable now r recompute").unwrap();
        assert_eq!(i.eval("set now").unwrap(), "tick1");
        assert_eq!(i.eval("set now").unwrap(), "tick2");
    }

    #[test]
    fn unset_trace_fires_and_traces_are_discarded() {
        let i = Interp::new();
        i.eval("set gone 0").unwrap();
        i.eval("proc bye {n1 n2 op} {global gone; set gone 1}")
            .unwrap();
        i.eval("set v x; trace variable v u bye").unwrap();
        i.eval("unset v").unwrap();
        assert_eq!(i.eval("set gone").unwrap(), "1");
        // Re-creating the variable: the trace is gone.
        i.eval("set gone 0; set v y; unset v").unwrap();
        assert_eq!(i.eval("set gone").unwrap(), "0");
    }

    #[test]
    fn write_trace_error_propagates_to_set() {
        // A read-only variable implemented with an erroring write trace.
        let i = Interp::new();
        i.eval("set const 42").unwrap();
        i.eval("proc deny {n1 n2 op} {error {is read-only}}")
            .unwrap();
        i.eval("trace variable const w deny").unwrap();
        let e = i.eval("set const 7").unwrap_err();
        assert!(e.msg.contains("read-only"), "{}", e.msg);
    }

    #[test]
    fn trace_does_not_retrigger_itself() {
        // A write trace that writes the traced variable must not recurse.
        let i = Interp::new();
        i.eval("proc clampit {n1 n2 op} {global v; if {$v > 10} {set v 10}}")
            .unwrap();
        i.eval("trace variable v w clampit").unwrap();
        i.eval("set v 99").unwrap();
        assert_eq!(i.eval("set v").unwrap(), "10");
    }

    #[test]
    fn array_element_traces_report_index() {
        let i = Interp::new();
        i.eval("set seen {}").unwrap();
        i.eval("proc watch {n1 n2 op} {global seen; lappend seen $n1.$n2}")
            .unwrap();
        i.eval("trace variable a w watch").unwrap();
        i.eval("set a(x) 1; set a(y) 2").unwrap();
        assert_eq!(i.eval("set seen").unwrap(), "a.x a.y");
    }

    #[test]
    fn vdelete_and_vinfo() {
        let i = Interp::new();
        i.eval("proc w1 {a b c} {}").unwrap();
        i.eval("trace variable v w w1").unwrap();
        i.eval("trace variable v ru w1").unwrap();
        let info = i.eval("trace vinfo v").unwrap();
        assert!(info.contains("{w w1}"), "{info}");
        assert!(info.contains("{ru w1}"), "{info}");
        i.eval("trace vdelete v w w1").unwrap();
        let info = i.eval("trace vinfo v").unwrap();
        assert!(!info.contains("{w w1}"), "{info}");
    }

    #[test]
    fn traces_on_globals_fire_from_procs() {
        let i = Interp::new();
        i.eval("set hits 0").unwrap();
        i.eval("proc count {a b c} {global hits; incr hits}")
            .unwrap();
        i.eval("trace variable g w count").unwrap();
        i.eval("proc setter {} {global g; set g 5}").unwrap();
        i.eval("setter").unwrap();
        assert_eq!(i.eval("set hits").unwrap(), "1");
    }

    #[test]
    fn bad_trace_ops_error() {
        let i = Interp::new();
        assert!(i.eval("trace variable v q cmd").is_err());
        assert!(i.eval("trace frobnicate v w cmd").is_err());
    }
}
