//! Tcl list parsing and formatting.
//!
//! Tcl lists use the same quoting conventions as commands (white-space
//! separated elements, braces and quotes for grouping, backslash escapes)
//! but perform no `$` or `[]` substitution. [`parse_list`] and
//! [`format_list`] round-trip: `parse_list(&format_list(&v)) == v` for any
//! `v`, which the property tests verify.

use crate::error::Exception;
use crate::parser::backslash;

/// Splits a string into its list elements.
///
/// # Examples
///
/// ```
/// let v = tcl::list::parse_list("a b {x1 x2}").unwrap();
/// assert_eq!(v, vec!["a", "b", "x1 x2"]);
/// ```
pub fn parse_list(src: &str) -> Result<Vec<String>, Exception> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    loop {
        while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        if i >= bytes.len() {
            return Ok(out);
        }
        let mut elem = String::new();
        match bytes[i] {
            b'{' => {
                let mut depth = 1usize;
                i += 1;
                let start = i;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            let (_, used) = backslash(src, i);
                            i += used;
                        }
                        b'{' => {
                            depth += 1;
                            i += 1;
                        }
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                            i += 1;
                        }
                        _ => i += src[i..].chars().next().unwrap().len_utf8(),
                    }
                }
                if depth != 0 {
                    return Err(Exception::error("unmatched open brace in list"));
                }
                elem.push_str(&src[start..i]);
                i += 1;
                if i < bytes.len() && !matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                    return Err(Exception::error(
                        "list element in braces followed by characters instead of space",
                    ));
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        let (s, used) = backslash(src, i);
                        elem.push_str(&s);
                        i += used;
                    } else {
                        let ch = src[i..].chars().next().unwrap();
                        elem.push(ch);
                        i += ch.len_utf8();
                    }
                }
                if i >= bytes.len() {
                    return Err(Exception::error("unmatched open quote in list"));
                }
                i += 1;
                if i < bytes.len() && !matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                    return Err(Exception::error(
                        "list element in quotes followed by characters instead of space",
                    ));
                }
            }
            _ => {
                while i < bytes.len() && !matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                    if bytes[i] == b'\\' {
                        let (s, used) = backslash(src, i);
                        elem.push_str(&s);
                        i += used;
                    } else {
                        let ch = src[i..].chars().next().unwrap();
                        elem.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
        }
        out.push(elem);
    }
}

/// How one element must be quoted when formatted into a list.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Quoting {
    None,
    Braces,
    Backslash,
}

/// Decides the quoting needed for `elem` as a list element.
fn quoting_for(elem: &str) -> Quoting {
    if elem.is_empty() {
        return Quoting::Braces;
    }
    let mut needs = Quoting::None;
    let mut depth: i64 = 0;
    let mut unbalanced = false;
    let bytes = elem.as_bytes();
    let mut idx = 0;
    while idx < bytes.len() {
        match bytes[idx] {
            b' ' | b'\t' | b'\n' | b'\r' | b';' | b'"' | b'$' | b'[' | b']' | b'\x0b' | b'\x0c' => {
                needs = needs.max_braces()
            }
            b'{' => {
                depth += 1;
                needs = needs.max_braces();
            }
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    unbalanced = true;
                }
                needs = needs.max_braces();
            }
            b'\\' => {
                if idx + 1 == bytes.len() {
                    // A trailing backslash cannot be brace-quoted.
                    unbalanced = true;
                } else {
                    // Inside braces a backslash shields the next character
                    // from depth counting, so skip it here too.
                    idx += 1;
                }
                needs = needs.max_braces();
            }
            _ => {}
        }
        idx += 1;
    }
    if depth != 0 {
        unbalanced = true;
    }
    if unbalanced {
        Quoting::Backslash
    } else {
        needs
    }
}

impl Quoting {
    fn max_braces(self) -> Quoting {
        match self {
            Quoting::None => Quoting::Braces,
            other => other,
        }
    }
}

/// Appends `elem` to `out` with whatever quoting the element requires.
pub fn append_element(out: &mut String, elem: &str) {
    if !out.is_empty() {
        out.push(' ');
    }
    match quoting_for(elem) {
        Quoting::None => out.push_str(elem),
        Quoting::Braces => {
            out.push('{');
            out.push_str(elem);
            out.push('}');
        }
        Quoting::Backslash => {
            for ch in elem.chars() {
                match ch {
                    ' ' | '\t' | ';' | '"' | '$' | '[' | ']' | '{' | '}' | '\\' => {
                        out.push('\\');
                        out.push(ch);
                    }
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\x0b' => out.push_str("\\v"),
                    '\x0c' => out.push_str("\\f"),
                    _ => out.push(ch),
                }
            }
        }
    }
}

/// Formats elements into a single Tcl list string.
///
/// # Examples
///
/// ```
/// assert_eq!(tcl::list::format_list(&["a", "b c"]), "a {b c}");
/// ```
pub fn format_list<S: AsRef<str>>(elems: &[S]) -> String {
    let mut out = String::new();
    for e in elems {
        append_element(&mut out, e.as_ref());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_elements() {
        assert_eq!(parse_list("a b c").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn parses_braced_elements() {
        assert_eq!(parse_list("a b {x1 x2}").unwrap(), vec!["a", "b", "x1 x2"]);
    }

    #[test]
    fn parses_nested_braces() {
        assert_eq!(parse_list("{a {b c}} d").unwrap(), vec!["a {b c}", "d"]);
    }

    #[test]
    fn parses_quoted_elements() {
        assert_eq!(parse_list("\"a b\" c").unwrap(), vec!["a b", "c"]);
    }

    #[test]
    fn backslashes_decode_in_bare_elements() {
        assert_eq!(parse_list(r"a\ b c").unwrap(), vec!["a b", "c"]);
    }

    #[test]
    fn braces_keep_backslashes() {
        assert_eq!(parse_list(r"{a\nb}").unwrap(), vec![r"a\nb"]);
    }

    #[test]
    fn empty_and_whitespace_lists() {
        assert!(parse_list("").unwrap().is_empty());
        assert!(parse_list("  \t\n ").unwrap().is_empty());
    }

    #[test]
    fn empty_braced_element() {
        assert_eq!(parse_list("a {} b").unwrap(), vec!["a", "", "b"]);
    }

    #[test]
    fn unmatched_brace_errors() {
        assert!(parse_list("{a").is_err());
        assert!(parse_list("\"a").is_err());
    }

    #[test]
    fn junk_after_brace_errors() {
        assert!(parse_list("{a}b").is_err());
    }

    #[test]
    fn formats_plain_elements_unquoted() {
        assert_eq!(format_list(&["a", "b"]), "a b");
    }

    #[test]
    fn formats_spaces_with_braces() {
        assert_eq!(format_list(&["a b"]), "{a b}");
    }

    #[test]
    fn formats_empty_element_as_braces() {
        assert_eq!(format_list(&["", "x"]), "{} x");
    }

    #[test]
    fn formats_unbalanced_brace_with_backslashes() {
        assert_eq!(format_list(&["}"]), r"\}");
        assert_eq!(format_list(&["{"]), r"\{");
    }

    #[test]
    fn formats_trailing_backslash_with_backslashes() {
        assert_eq!(format_list(&["a\\"]), r"a\\");
    }

    #[test]
    fn round_trips_tricky_elements() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["a", "b c", ""],
            vec!["{", "}", "a{b"],
            vec!["$x", "[cmd]", "a;b"],
            vec!["line\nbreak", "tab\there"],
            vec!["back\\slash", "end\\"],
            vec!["\"quoted\""],
            vec!["\\{}", "\\{", "a\\}b"],
        ];
        for case in cases {
            let formatted = format_list(&case);
            let parsed = parse_list(&formatted).unwrap();
            assert_eq!(parsed, case, "round-trip failed for {formatted:?}");
        }
    }

    #[test]
    fn nested_list_round_trip() {
        let inner = format_list(&["x1", "x2"]);
        let outer = format_list(&["a", "b", &inner]);
        assert_eq!(outer, "a b {x1 x2}");
        let parsed = parse_list(&outer).unwrap();
        assert_eq!(parse_list(&parsed[2]).unwrap(), vec!["x1", "x2"]);
    }
}
