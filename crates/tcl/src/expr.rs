//! The Tcl expression evaluator (`expr`, and the conditions of `if`,
//! `while`, and `for`).
//!
//! Expressions support integer, floating-point, and string operands with
//! the full C operator set including `?:`. Operands may be `$variables`,
//! `[command]` substitutions, double-quoted strings (substituted), or
//! brace-quoted strings (verbatim). `&&`, `||`, and `?:` evaluate their
//! operands lazily, so `[...]` side effects only fire on the taken branch.

use std::rc::Rc;

use crate::error::{Exception, TclResult};
use crate::interp::Interp;

/// A computed expression value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A double-precision float.
    Double(f64),
    /// An uninterpreted string.
    Str(String),
}

impl Value {
    /// Renders the value as a Tcl result string.
    pub fn to_result(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Double(d) => double_to_string(*d),
            Value::Str(s) => s.clone(),
        }
    }

    /// Is this value a true boolean condition?
    pub fn truthy(&self) -> Result<bool, Exception> {
        match self {
            Value::Int(i) => Ok(*i != 0),
            Value::Double(d) => Ok(*d != 0.0),
            Value::Str(s) => match crate::value::memo_number(s) {
                Some(Value::Int(i)) => Ok(i != 0),
                Some(Value::Double(d)) => Ok(d != 0.0),
                _ => match s.to_ascii_lowercase().as_str() {
                    "true" | "yes" | "on" | "t" | "y" => Ok(true),
                    "false" | "no" | "off" | "f" | "n" => Ok(false),
                    _ => Err(Exception::error(format!(
                        "expected boolean value but got \"{s}\""
                    ))),
                },
            },
        }
    }
}

/// Formats a double the way Tcl does: always distinguishable from an
/// integer (a bare integral double gains a trailing `.0`).
pub fn double_to_string(d: f64) -> String {
    if d.is_nan() {
        return "NaN".into();
    }
    if d.is_infinite() {
        return if d > 0.0 { "Inf".into() } else { "-Inf".into() };
    }
    let s = format!("{d}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

thread_local! {
    static PARSE_NUMBER_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times [`parse_number`] has run on this thread. Memoization
/// through the literal table ([`crate::value::memo_number`]) is visible as
/// this counter rising slower than the number of numeric coercions — the
/// `eval_hot` budget pins it.
pub fn parse_number_calls() -> u64 {
    PARSE_NUMBER_CALLS.with(|c| c.get())
}

/// Resets the per-thread [`parse_number_calls`] counter.
pub fn reset_parse_number_calls() {
    PARSE_NUMBER_CALLS.with(|c| c.set(0));
}

/// Attempts to interpret a string as a number: decimal/hex/octal integer or
/// a float. Returns `None` for anything else.
pub fn parse_number(s: &str) -> Option<Value> {
    PARSE_NUMBER_CALLS.with(|c| c.set(c.get() + 1));
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    let (neg, body) = match t.as_bytes()[0] {
        b'-' => (true, &t[1..]),
        b'+' => (false, &t[1..]),
        _ => (false, t),
    };
    if body.is_empty() {
        return None;
    }
    let mk = |v: i64| Some(Value::Int(if neg { -v } else { v }));
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok().and_then(mk);
    }
    if body.len() > 1
        && body.starts_with('0')
        && body.bytes().all(|b| b.is_ascii_digit())
        && !body.contains(['8', '9'])
    {
        return i64::from_str_radix(&body[1..], 8).ok().and_then(mk);
    }
    if body.bytes().all(|b| b.is_ascii_digit()) {
        return body.parse::<i64>().ok().and_then(mk);
    }
    // Floats: require a digit and reject trailing junk.
    if body
        .bytes()
        .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        && body.bytes().any(|b| b.is_ascii_digit())
    {
        if let Ok(f) = t.parse::<f64>() {
            return Some(Value::Double(f));
        }
    }
    None
}

/// Binary and unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Mul,
    Div,
    Mod,
    Add,
    Sub,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
    Not,
    BitNot,
    Neg,
    Pos,
}

/// Parsed expression tree. Operand scripts/variables are evaluated lazily
/// when the node is evaluated.
enum Ast {
    Num(Value),
    /// `$name` or `$name(index)`.
    Var(String, Option<String>),
    /// `[script]`.
    Cmd(String),
    /// A double-quoted string: substitutions performed at eval time.
    QuotedStr(String),
    /// A brace-quoted string: verbatim.
    BracedStr(String),
    /// A math function call.
    Func(String, Vec<Ast>),
    Unary(Op, Box<Ast>),
    Binary(Op, Box<Ast>, Box<Ast>),
    Ternary(Box<Ast>, Box<Ast>, Box<Ast>),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Value(Value),
    Var(String, Option<String>),
    Cmd(String),
    QuotedStr(String),
    BracedStr(String),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
    End,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn next_token(&mut self) -> Result<Token, Exception> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Token::End);
        }
        let b = bytes[self.pos];
        match b {
            b'(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Token::Comma)
            }
            b'$' => {
                let mut parts = Vec::new();
                self.pos = crate::parser::parse_dollar(self.src, self.pos, &mut parts)?;
                match parts.pop() {
                    Some(crate::parser::Part::Var(name, idx)) => {
                        // Expression variable indices must be static text
                        // here; dynamic indices still work because the parts
                        // were already flattened by the command parser in
                        // the common (unbraced) case.
                        let idx = match idx {
                            None => None,
                            Some(parts) => Some(flatten_static(&parts)?),
                        };
                        Ok(Token::Var(name, idx))
                    }
                    _ => Err(Exception::error("syntax error in expression: bad $")),
                }
            }
            b'[' => {
                let (script, next) = crate::parser::parse_brackets(self.src, self.pos)?;
                self.pos = next;
                Ok(Token::Cmd(script))
            }
            b'"' => {
                let start = self.pos + 1;
                let mut i = start;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        let (_, used) = crate::parser::backslash(self.src, i);
                        i += used;
                    } else {
                        i += 1;
                    }
                }
                if i >= bytes.len() {
                    return Err(Exception::error("missing \" in expression"));
                }
                let text = self.src[start..i].to_string();
                self.pos = i + 1;
                Ok(Token::QuotedStr(text))
            }
            b'{' => {
                let (content, next) = crate::parser::parse_braces(self.src, self.pos)?;
                self.pos = next;
                Ok(Token::BracedStr(content))
            }
            b'0'..=b'9' | b'.' => self.lex_number(),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Token::Ident(self.src[start..self.pos].to_string()))
            }
            _ => {
                let two = self.src.get(self.pos..self.pos + 2).unwrap_or("");
                for op in ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||"] {
                    if two == op {
                        self.pos += 2;
                        return Ok(Token::Op(op));
                    }
                }
                let one = self.src.get(self.pos..self.pos + 1).unwrap_or("");
                for op in [
                    "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^", "?", ":",
                ] {
                    if one == op {
                        self.pos += 1;
                        return Ok(Token::Op(op));
                    }
                }
                Err(Exception::error(format!(
                    "syntax error in expression: unexpected character \"{one}\""
                )))
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token, Exception> {
        let bytes = self.src.as_bytes();
        let start = self.pos;
        let mut i = self.pos;
        let mut is_float = false;
        if bytes[i] == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
            i += 2;
            while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                i += 1;
            }
        } else {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] | 0x20) == b'e' {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
        }
        let text = &self.src[start..i];
        self.pos = i;
        if text == "." {
            return Err(Exception::error("syntax error in expression: bare \".\""));
        }
        if is_float {
            text.parse::<f64>()
                .map(|f| Token::Value(Value::Double(f)))
                .map_err(|_| Exception::error(format!("malformed number \"{text}\"")))
        } else {
            match parse_number(text) {
                Some(v) => Ok(Token::Value(v)),
                None => Err(Exception::error(format!("malformed number \"{text}\""))),
            }
        }
    }
}

/// Flattens parts that must be static literal text (array indices inside
/// expressions keep their substitutions in the command parser; by the time
/// they reach here only literals remain in practice).
fn flatten_static(parts: &[crate::parser::Part]) -> Result<String, Exception> {
    let mut out = String::new();
    for p in parts {
        match p {
            crate::parser::Part::Lit(s) => out.push_str(s),
            _ => {
                return Err(Exception::error(
                    "dynamic array index in expression not supported; brace the index",
                ))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    ahead: Option<Token>,
}

impl<'a> Parser<'a> {
    fn peek(&mut self) -> Result<&Token, Exception> {
        if self.ahead.is_none() {
            self.ahead = Some(self.lexer.next_token()?);
        }
        Ok(self.ahead.as_ref().unwrap())
    }

    fn next(&mut self) -> Result<Token, Exception> {
        if let Some(t) = self.ahead.take() {
            Ok(t)
        } else {
            self.lexer.next_token()
        }
    }

    /// Precedence-climbing over binary operators, then `?:` on top.
    fn parse_expr(&mut self) -> Result<Ast, Exception> {
        let cond = self.parse_binary(0)?;
        if matches!(self.peek()?, Token::Op("?")) {
            self.next()?;
            let then = self.parse_expr()?;
            match self.next()? {
                Token::Op(":") => {}
                _ => return Err(Exception::error("missing \":\" in ternary expression")),
            }
            let els = self.parse_expr()?;
            return Ok(Ast::Ternary(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Ast, Exception> {
        let mut lhs = self.parse_unary()?;
        while let Token::Op(o) = self.peek()? {
            let Some((op, prec)) = binop(o) else { break };
            if prec < min_prec {
                break;
            }
            self.next()?;
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Ast::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Ast, Exception> {
        match self.peek()? {
            Token::Op("-") => {
                self.next()?;
                Ok(Ast::Unary(Op::Neg, Box::new(self.parse_unary()?)))
            }
            Token::Op("+") => {
                self.next()?;
                Ok(Ast::Unary(Op::Pos, Box::new(self.parse_unary()?)))
            }
            Token::Op("!") => {
                self.next()?;
                Ok(Ast::Unary(Op::Not, Box::new(self.parse_unary()?)))
            }
            Token::Op("~") => {
                self.next()?;
                Ok(Ast::Unary(Op::BitNot, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Ast, Exception> {
        match self.next()? {
            Token::Value(v) => Ok(Ast::Num(v)),
            Token::Var(n, i) => Ok(Ast::Var(n, i)),
            Token::Cmd(s) => Ok(Ast::Cmd(s)),
            Token::QuotedStr(s) => Ok(Ast::QuotedStr(s)),
            Token::BracedStr(s) => Ok(Ast::BracedStr(s)),
            Token::LParen => {
                let inner = self.parse_expr()?;
                match self.next()? {
                    Token::RParen => Ok(inner),
                    _ => Err(Exception::error("unbalanced parentheses in expression")),
                }
            }
            Token::Ident(name) => {
                if matches!(self.peek()?, Token::LParen) {
                    self.next()?;
                    let mut args = Vec::new();
                    if !matches!(self.peek()?, Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.next()? {
                                Token::Comma => continue,
                                Token::RParen => break,
                                _ => {
                                    return Err(Exception::error(
                                        "syntax error in function arguments",
                                    ))
                                }
                            }
                        }
                    } else {
                        self.next()?;
                    }
                    Ok(Ast::Func(name, args))
                } else {
                    // A bare identifier is a string constant (Tcl would
                    // reject most of these, but accepting them makes string
                    // comparisons like {$x == abc} work).
                    Ok(Ast::BracedStr(name))
                }
            }
            t => Err(Exception::error(format!(
                "syntax error in expression: unexpected {t:?}"
            ))),
        }
    }
}

/// Maps an operator token to `(Op, precedence)`. Higher binds tighter.
fn binop(tok: &str) -> Option<(Op, u8)> {
    Some(match tok {
        "*" => (Op::Mul, 11),
        "/" => (Op::Div, 11),
        "%" => (Op::Mod, 11),
        "+" => (Op::Add, 10),
        "-" => (Op::Sub, 10),
        "<<" => (Op::Shl, 9),
        ">>" => (Op::Shr, 9),
        "<" => (Op::Lt, 8),
        ">" => (Op::Gt, 8),
        "<=" => (Op::Le, 8),
        ">=" => (Op::Ge, 8),
        "==" => (Op::Eq, 7),
        "!=" => (Op::Ne, 7),
        "&" => (Op::BitAnd, 6),
        "^" => (Op::BitXor, 5),
        "|" => (Op::BitOr, 4),
        "&&" => (Op::And, 3),
        "||" => (Op::Or, 2),
        _ => return None,
    })
}

/// Parses a full expression, rejecting trailing junk.
fn parse_full(src: &str) -> Result<Ast, Exception> {
    let mut parser = Parser {
        lexer: Lexer::new(src),
        ahead: None,
    };
    let ast = parser.parse_expr()?;
    match parser.next()? {
        Token::End => Ok(ast),
        t => Err(Exception::error(format!(
            "syntax error in expression \"{src}\": unexpected trailing {t:?}"
        ))),
    }
}

/// Evaluates `src` as a Tcl expression, returning the value.
pub fn eval_expr(interp: &Interp, src: &str) -> Result<Value, Exception> {
    let ast = parse_full(src)?;
    eval_ast(interp, &ast)
}

/// A compiled (parsed and constant-folded) expression. The AST stores
/// `$var` and `[cmd]` operands as source strings resolved at evaluation
/// time, so a compiled expression never goes stale: only the fold of
/// static subtrees is baked in.
pub struct ExprProgram {
    ast: Ast,
}

/// Compiles an expression: one parse plus constant folding of static
/// all-numeric subtrees. Fold errors (overflowing shifts, division by
/// zero) leave the subtree unfolded so the error still surfaces at
/// evaluation time with the direct evaluator's message.
pub fn compile_expr(src: &str) -> Result<ExprProgram, Exception> {
    Ok(ExprProgram {
        ast: fold(parse_full(src)?),
    })
}

/// Evaluates `src` through the interpreter's compiled-expression cache.
/// With compilation disabled this is exactly [`eval_expr`]; with it
/// enabled, the parse happens once per distinct source string.
pub fn eval_expr_cached(interp: &Interp, src: &str) -> Result<Value, Exception> {
    if !interp.compile_enabled() {
        return eval_expr(interp, src);
    }
    if let Some(hit) = interp.expr_cache_get(src) {
        return match hit {
            Some(p) => eval_ast(interp, &p.ast),
            None => eval_expr(interp, src),
        };
    }
    match compile_expr(src) {
        Ok(p) => {
            let p = Rc::new(p);
            interp.expr_cache_put(src, Some(p.clone()));
            eval_ast(interp, &p.ast)
        }
        Err(_) => {
            interp.expr_cache_put(src, None);
            eval_expr(interp, src)
        }
    }
}

/// Evaluates `src` and renders the result as a string (the `expr` command).
pub fn expr_string(interp: &Interp, src: &str) -> TclResult {
    Ok(eval_expr(interp, src)?.to_result())
}

/// Evaluates `src` as a boolean condition (for `if`, `while`, `for`).
pub fn expr_bool(interp: &Interp, src: &str) -> Result<bool, Exception> {
    eval_expr(interp, src)?.truthy()
}

/// [`expr_string`] through the compiled-expression cache.
pub fn expr_string_cached(interp: &Interp, src: &str) -> TclResult {
    Ok(eval_expr_cached(interp, src)?.to_result())
}

/// [`expr_bool`] through the compiled-expression cache.
pub fn expr_bool_cached(interp: &Interp, src: &str) -> Result<bool, Exception> {
    eval_expr_cached(interp, src)?.truthy()
}

/// Folds static all-numeric subtrees to their values. Only pure shapes
/// fold: short-circuit operators, ternaries, and anything touching a
/// variable, command, or string stays lazy.
fn fold(ast: Ast) -> Ast {
    match ast {
        Ast::Unary(op, a) => {
            let a = fold(*a);
            if let Ast::Num(v) = &a {
                if let Ok(folded) = const_unary(op, v) {
                    return Ast::Num(folded);
                }
            }
            Ast::Unary(op, Box::new(a))
        }
        Ast::Binary(op, l, r) => {
            let l = fold(*l);
            let r = fold(*r);
            if !matches!(op, Op::And | Op::Or) {
                if let (Ast::Num(a), Ast::Num(b)) = (&l, &r) {
                    if let Ok(v) = eval_binary(op, a, b) {
                        return Ast::Num(v);
                    }
                }
            }
            Ast::Binary(op, Box::new(l), Box::new(r))
        }
        Ast::Ternary(c, t, e) => {
            Ast::Ternary(Box::new(fold(*c)), Box::new(fold(*t)), Box::new(fold(*e)))
        }
        Ast::Func(name, args) => {
            let args: Vec<Ast> = args.into_iter().map(fold).collect();
            if args.iter().all(|a| matches!(a, Ast::Num(_))) {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| match a {
                        Ast::Num(v) => v.clone(),
                        _ => unreachable!("filtered above"),
                    })
                    .collect();
                if let Ok(v) = eval_func(&name, &vals) {
                    return Ast::Num(v);
                }
            }
            Ast::Func(name, args)
        }
        other => other,
    }
}

/// The pure unary operations, mirroring `eval_ast`'s Unary arm on
/// numeric operands.
fn const_unary(op: Op, v: &Value) -> Result<Value, Exception> {
    match (op, v) {
        (Op::Neg, Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
        (Op::Neg, Value::Double(d)) => Ok(Value::Double(-d)),
        (Op::Pos, Value::Int(_) | Value::Double(_)) => Ok(v.clone()),
        (Op::Not, _) => Ok(Value::Int(if v.truthy()? { 0 } else { 1 })),
        (Op::BitNot, Value::Int(i)) => Ok(Value::Int(!i)),
        _ => Err(Exception::error("not constant-foldable")),
    }
}

/// Coerces an operand value: strings that look numeric become numbers.
/// Goes through the literal table so the same text is parsed at most once.
fn numeric(v: &Value) -> Value {
    match v {
        Value::Str(s) => crate::value::memo_number(s).unwrap_or_else(|| v.clone()),
        other => other.clone(),
    }
}

fn eval_ast(interp: &Interp, ast: &Ast) -> Result<Value, Exception> {
    match ast {
        Ast::Num(v) => Ok(v.clone()),
        Ast::Var(name, idx) => {
            let s = interp.get_var(name, idx.as_deref())?;
            Ok(Value::Str(s))
        }
        Ast::Cmd(script) => Ok(Value::Str(interp.eval(script)?)),
        Ast::QuotedStr(s) => Ok(Value::Str(interp.subst_string(s)?)),
        Ast::BracedStr(s) => Ok(Value::Str(s.clone())),
        Ast::Func(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(numeric(&eval_ast(interp, a)?));
            }
            eval_func(name, &vals)
        }
        Ast::Unary(op, operand) => {
            let v = numeric(&eval_ast(interp, operand)?);
            match (op, &v) {
                (Op::Neg, Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
                (Op::Neg, Value::Double(d)) => Ok(Value::Double(-d)),
                (Op::Pos, Value::Int(_) | Value::Double(_)) => Ok(v),
                (Op::Not, _) => Ok(Value::Int(if v.truthy()? { 0 } else { 1 })),
                (Op::BitNot, Value::Int(i)) => Ok(Value::Int(!i)),
                _ => Err(Exception::error(
                    "can't use non-numeric string as operand of unary operator",
                )),
            }
        }
        Ast::Binary(op, l, r) => {
            // Short-circuit operators evaluate the right side lazily.
            match op {
                Op::And => {
                    if !eval_ast(interp, l)?.truthy()? {
                        return Ok(Value::Int(0));
                    }
                    return Ok(Value::Int(if eval_ast(interp, r)?.truthy()? {
                        1
                    } else {
                        0
                    }));
                }
                Op::Or => {
                    if eval_ast(interp, l)?.truthy()? {
                        return Ok(Value::Int(1));
                    }
                    return Ok(Value::Int(if eval_ast(interp, r)?.truthy()? {
                        1
                    } else {
                        0
                    }));
                }
                _ => {}
            }
            let lv = numeric(&eval_ast(interp, l)?);
            let rv = numeric(&eval_ast(interp, r)?);
            eval_binary(*op, &lv, &rv)
        }
        Ast::Ternary(c, t, e) => {
            if eval_ast(interp, c)?.truthy()? {
                eval_ast(interp, t)
            } else {
                eval_ast(interp, e)
            }
        }
    }
}

/// Promotes two operands to a common numeric type, if both are numeric.
fn promote(l: &Value, r: &Value) -> Option<(f64, f64, bool)> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Some((*a as f64, *b as f64, true)),
        (Value::Int(a), Value::Double(b)) => Some((*a as f64, *b, false)),
        (Value::Double(a), Value::Int(b)) => Some((*a, *b as f64, false)),
        (Value::Double(a), Value::Double(b)) => Some((*a, *b, false)),
        _ => None,
    }
}

fn int_pair(l: &Value, r: &Value) -> Result<(i64, i64), Exception> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok((*a, *b)),
        _ => Err(Exception::error(
            "can't use floating-point or string value as operand of integer operator",
        )),
    }
}

fn eval_binary(op: Op, l: &Value, r: &Value) -> Result<Value, Exception> {
    use Op::*;
    match op {
        Add | Sub | Mul => {
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                let v = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    _ => a.wrapping_mul(*b),
                };
                return Ok(Value::Int(v));
            }
            let (a, b, _) = promote(l, r).ok_or_else(|| non_numeric(l, r))?;
            Ok(Value::Double(match op {
                Add => a + b,
                Sub => a - b,
                _ => a * b,
            }))
        }
        Div => match (l, r) {
            (Value::Int(_), Value::Int(0)) => Err(Exception::error("divide by zero")),
            (Value::Int(a), Value::Int(b)) => {
                // C-style truncating division adjusted to floor (Tcl
                // specifies floor semantics for `/` and `%`).
                let q = a.div_euclid(*b);
                Ok(Value::Int(q))
            }
            _ => {
                let (a, b, _) = promote(l, r).ok_or_else(|| non_numeric(l, r))?;
                if b == 0.0 {
                    return Err(Exception::error("divide by zero"));
                }
                Ok(Value::Double(a / b))
            }
        },
        Mod => {
            let (a, b) = int_pair(l, r)?;
            if b == 0 {
                return Err(Exception::error("divide by zero"));
            }
            Ok(Value::Int(a.rem_euclid(b)))
        }
        Shl => {
            let (a, b) = int_pair(l, r)?;
            Ok(Value::Int(a.wrapping_shl(b as u32)))
        }
        Shr => {
            let (a, b) = int_pair(l, r)?;
            Ok(Value::Int(a.wrapping_shr(b as u32)))
        }
        BitAnd => {
            let (a, b) = int_pair(l, r)?;
            Ok(Value::Int(a & b))
        }
        BitXor => {
            let (a, b) = int_pair(l, r)?;
            Ok(Value::Int(a ^ b))
        }
        BitOr => {
            let (a, b) = int_pair(l, r)?;
            Ok(Value::Int(a | b))
        }
        Lt | Gt | Le | Ge | Eq | Ne => {
            let ord = match promote(l, r) {
                Some((a, b, _)) => a.partial_cmp(&b),
                None => {
                    let ls = l.to_result();
                    let rs = r.to_result();
                    Some(ls.cmp(&rs))
                }
            };
            let Some(ord) = ord else {
                // NaN comparisons are all false except `!=`.
                return Ok(Value::Int(if op == Ne { 1 } else { 0 }));
            };
            use std::cmp::Ordering::*;
            let truth = match op {
                Lt => ord == Less,
                Gt => ord == Greater,
                Le => ord != Greater,
                Ge => ord != Less,
                Eq => ord == Equal,
                Ne => ord != Equal,
                _ => unreachable!(),
            };
            Ok(Value::Int(if truth { 1 } else { 0 }))
        }
        And | Or | Not | BitNot | Neg | Pos => unreachable!("handled in eval_ast"),
    }
}

fn non_numeric(l: &Value, r: &Value) -> Exception {
    let offending = match l {
        Value::Str(s) => s.clone(),
        _ => match r {
            Value::Str(s) => s.clone(),
            _ => String::new(),
        },
    };
    Exception::error(format!(
        "can't use non-numeric string \"{offending}\" as operand of arithmetic operator"
    ))
}

/// Evaluates a math function call.
fn eval_func(name: &str, args: &[Value]) -> Result<Value, Exception> {
    fn as_f(v: &Value) -> Result<f64, Exception> {
        match v {
            Value::Int(i) => Ok(*i as f64),
            Value::Double(d) => Ok(*d),
            Value::Str(s) => Err(Exception::error(format!(
                "can't use non-numeric string \"{s}\" as function argument"
            ))),
        }
    }
    let arity = |n: usize| -> Result<(), Exception> {
        if args.len() != n {
            Err(Exception::error(format!(
                "wrong number of arguments for math function \"{name}\""
            )))
        } else {
            Ok(())
        }
    };
    let one = |f: fn(f64) -> f64| -> Result<Value, Exception> {
        arity(1)?;
        Ok(Value::Double(f(as_f(&args[0])?)))
    };
    match name {
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                other => Ok(Value::Double(as_f(other)?.abs())),
            }
        }
        "int" => {
            arity(1)?;
            Ok(Value::Int(as_f(&args[0])? as i64))
        }
        "round" => {
            arity(1)?;
            Ok(Value::Int(as_f(&args[0])?.round() as i64))
        }
        "double" => {
            arity(1)?;
            Ok(Value::Double(as_f(&args[0])?))
        }
        "sqrt" => one(f64::sqrt),
        "sin" => one(f64::sin),
        "cos" => one(f64::cos),
        "tan" => one(f64::tan),
        "asin" => one(f64::asin),
        "acos" => one(f64::acos),
        "atan" => one(f64::atan),
        "sinh" => one(f64::sinh),
        "cosh" => one(f64::cosh),
        "tanh" => one(f64::tanh),
        "exp" => one(f64::exp),
        "log" => one(f64::ln),
        "log10" => one(f64::log10),
        "floor" => one(f64::floor),
        "ceil" => one(f64::ceil),
        "atan2" => {
            arity(2)?;
            Ok(Value::Double(as_f(&args[0])?.atan2(as_f(&args[1])?)))
        }
        "pow" => {
            arity(2)?;
            Ok(Value::Double(as_f(&args[0])?.powf(as_f(&args[1])?)))
        }
        "fmod" => {
            arity(2)?;
            Ok(Value::Double(as_f(&args[0])? % as_f(&args[1])?))
        }
        "hypot" => {
            arity(2)?;
            Ok(Value::Double(as_f(&args[0])?.hypot(as_f(&args[1])?)))
        }
        "min" => {
            if args.is_empty() {
                return Err(Exception::error("min needs at least one argument"));
            }
            let mut best = as_f(&args[0])?;
            for a in &args[1..] {
                best = best.min(as_f(a)?);
            }
            Ok(Value::Double(best))
        }
        "max" => {
            if args.is_empty() {
                return Err(Exception::error("max needs at least one argument"));
            }
            let mut best = as_f(&args[0])?;
            for a in &args[1..] {
                best = best.max(as_f(a)?);
            }
            Ok(Value::Double(best))
        }
        _ => Err(Exception::error(format!(
            "unknown math function \"{name}\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str) -> String {
        let i = Interp::new();
        expr_string(&i, src).unwrap()
    }

    fn ev_err(src: &str) -> Exception {
        let i = Interp::new();
        expr_string(&i, src).unwrap_err()
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(ev("1+2*3"), "7");
        assert_eq!(ev("(1+2)*3"), "9");
        assert_eq!(ev("7/2"), "3");
        assert_eq!(ev("7%2"), "1");
        assert_eq!(ev("-7/2"), "-4"); // floor division
        assert_eq!(ev("-7%2"), "1"); // result has divisor's sign
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(ev("1.5+2.5"), "4.0");
        assert_eq!(ev("1/2.0"), "0.5");
        assert_eq!(ev("2*3.5"), "7.0");
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("1<2"), "1");
        assert_eq!(ev("2<=2"), "1");
        assert_eq!(ev("3>4"), "0");
        assert_eq!(ev("1==1.0"), "1");
        assert_eq!(ev("1!=2"), "1");
    }

    #[test]
    fn string_comparisons() {
        assert_eq!(ev("{abc} == {abc}"), "1");
        assert_eq!(ev("{abc} < {abd}"), "1");
        assert_eq!(ev("{10} == {10}"), "1");
    }

    #[test]
    fn logical_operators() {
        assert_eq!(ev("1 && 0"), "0");
        assert_eq!(ev("1 || 0"), "1");
        assert_eq!(ev("!1"), "0");
        assert_eq!(ev("!0"), "1");
    }

    #[test]
    fn bitwise_operators() {
        assert_eq!(ev("6&3"), "2");
        assert_eq!(ev("6|3"), "7");
        assert_eq!(ev("6^3"), "5");
        assert_eq!(ev("~0"), "-1");
        assert_eq!(ev("1<<4"), "16");
        assert_eq!(ev("16>>2"), "4");
    }

    #[test]
    fn ternary() {
        assert_eq!(ev("1 ? 10 : 20"), "10");
        assert_eq!(ev("0 ? 10 : 20"), "20");
    }

    #[test]
    fn hex_and_octal_literals() {
        assert_eq!(ev("0x10"), "16");
        assert_eq!(ev("010"), "8");
    }

    #[test]
    fn divide_by_zero_errors() {
        assert!(ev_err("1/0").msg.contains("divide by zero"));
        assert!(ev_err("1%0").msg.contains("divide by zero"));
    }

    #[test]
    fn variables_in_expressions() {
        let i = Interp::new();
        i.eval("set i 1").unwrap();
        assert_eq!(expr_string(&i, "$i<2").unwrap(), "1");
    }

    #[test]
    fn commands_in_expressions() {
        let i = Interp::new();
        i.eval("set x 5").unwrap();
        assert_eq!(expr_string(&i, "[set x]*2").unwrap(), "10");
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        let i = Interp::new();
        i.eval("set hit 0").unwrap();
        assert_eq!(expr_string(&i, "0 && [set hit 1]").unwrap(), "0");
        assert_eq!(i.eval("set hit").unwrap(), "0");
        assert_eq!(expr_string(&i, "1 || [set hit 1]").unwrap(), "1");
        assert_eq!(i.eval("set hit").unwrap(), "0");
    }

    #[test]
    fn math_functions() {
        assert_eq!(ev("sqrt(16)"), "4.0");
        assert_eq!(ev("abs(-3)"), "3");
        assert_eq!(ev("int(3.7)"), "3");
        assert_eq!(ev("round(3.5)"), "4");
        assert_eq!(ev("pow(2,10)"), "1024.0");
        assert_eq!(ev("max(1,5,3)"), "5.0");
    }

    #[test]
    fn unknown_function_errors() {
        assert!(ev_err("nosuch(1)").msg.contains("unknown math function"));
    }

    #[test]
    fn boolean_words() {
        let i = Interp::new();
        assert!(expr_bool(&i, "true").unwrap());
        assert!(!expr_bool(&i, "false").unwrap());
        assert!(expr_bool(&i, "on").unwrap());
        assert!(!expr_bool(&i, "off").unwrap());
        assert!(expr_bool(&i, "yes").unwrap());
        assert!(expr_bool(&i, "nonsense").is_err());
    }

    #[test]
    fn quoted_strings_substitute() {
        let i = Interp::new();
        i.eval("set name world").unwrap();
        assert_eq!(expr_string(&i, "\"$name\" == \"world\"").unwrap(), "1");
    }

    #[test]
    fn unary_minus_and_precedence() {
        assert_eq!(ev("-2*3"), "-6");
        assert_eq!(ev("- -5"), "5");
        assert_eq!(ev("2+-3"), "-1");
    }

    #[test]
    fn double_to_string_forms() {
        assert_eq!(double_to_string(4.0), "4.0");
        assert_eq!(double_to_string(0.5), "0.5");
        assert_eq!(double_to_string(f64::INFINITY), "Inf");
    }

    #[test]
    fn parse_number_forms() {
        assert_eq!(parse_number("42"), Some(Value::Int(42)));
        assert_eq!(parse_number("-42"), Some(Value::Int(-42)));
        assert_eq!(parse_number("0x1f"), Some(Value::Int(31)));
        assert_eq!(parse_number("017"), Some(Value::Int(15)));
        assert_eq!(parse_number("3.25"), Some(Value::Double(3.25)));
        assert_eq!(parse_number("1e3"), Some(Value::Double(1000.0)));
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number(" 7 "), Some(Value::Int(7)));
    }

    #[test]
    fn trailing_junk_is_error() {
        assert!(expr_string(&Interp::new(), "1 2").is_err());
    }

    #[test]
    fn comparison_chains_parse_left_assoc() {
        // (1<2) is 1, then 1<3 -> 1
        assert_eq!(ev("1<2<3"), "1");
    }
}
