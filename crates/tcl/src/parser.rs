//! The Tcl command parser.
//!
//! Implements the complete syntax of Figures 1-5 of the paper: commands are
//! fields separated by white space and terminated by newline or `;`; fields
//! may be brace-quoted (verbatim, nestable), double-quoted (substitutions
//! performed), or bare; `$` introduces variable substitution, `[` command
//! substitution, and `\` backslash substitution.
//!
//! Parsing is separated from substitution: [`parse_command`] produces
//! [`Word`]s made of [`Part`]s, and the interpreter performs variable and
//! command substitution on the parts. This mirrors the two conceptual steps
//! of the paper's Section 2 while making each independently testable.

use crate::error::Exception;

/// One substitution-bearing fragment of a word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Part {
    /// Literal text (backslash sequences already decoded).
    Lit(String),
    /// `$name`, `${name}`, or `$name(index)`; the index itself may contain
    /// nested substitutions.
    Var(String, Option<Vec<Part>>),
    /// `[script]` command substitution; the script is kept as source text
    /// and evaluated at substitution time.
    Cmd(String),
}

/// A parsed word: the concatenation of its parts after substitution.
pub type Word = Vec<Part>;

/// Decodes the backslash sequence starting at `bytes[pos]` (which must be
/// `\`). Returns the decoded text and the number of input bytes consumed.
///
/// Supported sequences follow Tcl: `\a \b \f \n \r \t \v`, octal `\ddd`
/// (1-3 digits), hex `\xhh...`, backslash-newline (plus following spaces and
/// tabs) collapsing to a single space, and `\c` for any other character `c`
/// standing for itself.
pub fn backslash(src: &str, pos: usize) -> (String, usize) {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[pos], b'\\');
    let Some(&c) = bytes.get(pos + 1) else {
        return ("\\".to_string(), 1);
    };
    match c {
        b'a' => ("\x07".into(), 2),
        b'b' => ("\x08".into(), 2),
        b'f' => ("\x0c".into(), 2),
        b'n' => ("\n".into(), 2),
        b'r' => ("\r".into(), 2),
        b't' => ("\t".into(), 2),
        b'v' => ("\x0b".into(), 2),
        b'\n' => {
            // Backslash-newline plus following whitespace becomes one space.
            let mut used = 2;
            while pos + used < bytes.len()
                && (bytes[pos + used] == b' ' || bytes[pos + used] == b'\t')
            {
                used += 1;
            }
            (" ".into(), used)
        }
        b'x' => {
            let mut val: u32 = 0;
            let mut used = 2;
            let mut any = false;
            while pos + used < bytes.len() {
                let d = bytes[pos + used];
                let dv = match d {
                    b'0'..=b'9' => d - b'0',
                    b'a'..=b'f' => d - b'a' + 10,
                    b'A'..=b'F' => d - b'A' + 10,
                    _ => break,
                };
                // Tcl keeps only the low byte when more digits are given.
                val = (val << 4 | dv as u32) & 0xff;
                used += 1;
                any = true;
            }
            if any {
                (char::from(val as u8).to_string(), used)
            } else {
                ("x".into(), 2)
            }
        }
        b'0'..=b'7' => {
            let mut val: u32 = 0;
            let mut used = 1;
            while used <= 3 && pos + used < bytes.len() {
                let d = bytes[pos + used];
                if !(b'0'..=b'7').contains(&d) {
                    break;
                }
                val = val * 8 + (d - b'0') as u32;
                used += 1;
            }
            (char::from((val & 0xff) as u8).to_string(), used)
        }
        _ => {
            // Any other character stands for itself; this covers the
            // multi-byte UTF-8 case by copying the full char.
            let ch = src[pos + 1..].chars().next().unwrap();
            (ch.to_string(), 1 + ch.len_utf8())
        }
    }
}

/// Scans a brace-quoted word starting at the `{` at `pos`. Returns the
/// verbatim contents (with backslash-newline collapsed, Tcl's single
/// exception inside braces) and the position just past the closing `}`.
pub fn parse_braces(src: &str, pos: usize) -> Result<(String, usize), Exception> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[pos], b'{');
    let mut depth = 1usize;
    let mut i = pos + 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    let (s, used) = backslash(src, i);
                    out.push_str(&s);
                    i += used;
                } else {
                    // Backslash sequences are *not* decoded inside braces,
                    // but they do shield the following character from brace
                    // counting (`\{` does not open a brace level).
                    out.push('\\');
                    if i + 1 < bytes.len() {
                        let ch = src[i + 1..].chars().next().unwrap();
                        out.push(ch);
                        i += 1 + ch.len_utf8();
                    } else {
                        i += 1;
                    }
                }
            }
            b'{' => {
                depth += 1;
                out.push('{');
                i += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((out, i + 1));
                }
                out.push('}');
                i += 1;
            }
            _ => {
                let ch = src[i..].chars().next().unwrap();
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(Exception::error("missing close-brace"))
}

/// Scans a bracketed command substitution starting at the `[` at `pos`.
/// Returns the script between the brackets and the position just past `]`.
///
/// Bracket nesting must account for braces and quotes inside the nested
/// script so that `[set x "]"]` and `[list {]}]` scan correctly.
pub fn parse_brackets(src: &str, pos: usize) -> Result<(String, usize), Exception> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[pos], b'[');
    let mut depth = 1usize;
    let mut i = pos + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                let (_, used) = backslash(src, i);
                i += used;
            }
            b'{' => {
                let (_, next) = parse_braces(src, i)?;
                i = next;
            }
            b'"' => {
                // Skip a quoted section, honoring backslashes.
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        let (_, used) = backslash(src, i);
                        i += used;
                    } else {
                        i += 1;
                    }
                }
                if i >= bytes.len() {
                    return Err(Exception::error("missing \""));
                }
                i += 1;
            }
            b'[' => {
                depth += 1;
                i += 1;
            }
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((src[pos + 1..i].to_string(), i + 1));
                }
                i += 1;
            }
            _ => {
                i += src[i..].chars().next().unwrap().len_utf8();
            }
        }
    }
    Err(Exception::error("missing close-bracket"))
}

/// True if `c` can appear in a plain (un-braced) variable name.
fn is_var_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Parses a `$` substitution starting at the `$` at `pos`.
///
/// Handles `$name`, `${name}`, and array element `$name(index)` where the
/// index may itself contain `$`, `[`, and `\` substitutions. If the `$` is
/// not followed by a valid name it is treated as a literal dollar sign.
pub fn parse_dollar(src: &str, pos: usize, parts: &mut Vec<Part>) -> Result<usize, Exception> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[pos], b'$');
    let start = pos + 1;
    if bytes.get(start) == Some(&b'{') {
        // ${name}: everything up to the close brace is the name.
        let mut i = start + 1;
        while i < bytes.len() && bytes[i] != b'}' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(Exception::error("missing close-brace for variable name"));
        }
        parts.push(Part::Var(src[start + 1..i].to_string(), None));
        return Ok(i + 1);
    }
    let mut i = start;
    while i < bytes.len() && is_var_char(bytes[i]) {
        i += 1;
    }
    if i == start {
        // Bare `$`: literal.
        push_lit(parts, "$");
        return Ok(start);
    }
    let name = src[start..i].to_string();
    if bytes.get(i) == Some(&b'(') {
        // Array element: scan to the matching `)` collecting index parts.
        let mut idx_parts: Vec<Part> = Vec::new();
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] != b')' {
            match bytes[j] {
                b'$' => j = parse_dollar(src, j, &mut idx_parts)?,
                b'[' => {
                    let (script, next) = parse_brackets(src, j)?;
                    idx_parts.push(Part::Cmd(script));
                    j = next;
                }
                b'\\' => {
                    let (s, used) = backslash(src, j);
                    push_lit(&mut idx_parts, &s);
                    j += used;
                }
                _ => {
                    let ch = src[j..].chars().next().unwrap();
                    push_lit(&mut idx_parts, &ch.to_string());
                    j += ch.len_utf8();
                }
            }
        }
        if j >= bytes.len() {
            return Err(Exception::error(format!(
                "missing ) for array variable \"{name}\""
            )));
        }
        parts.push(Part::Var(name, Some(idx_parts)));
        return Ok(j + 1);
    }
    parts.push(Part::Var(name, None));
    Ok(i)
}

/// Appends literal text, merging with a trailing `Lit` part when possible.
fn push_lit(parts: &mut Vec<Part>, text: &str) {
    if let Some(Part::Lit(s)) = parts.last_mut() {
        s.push_str(text);
    } else {
        parts.push(Part::Lit(text.to_string()));
    }
}

/// Parses the next command from `src` starting at `*pos`.
///
/// Skips leading white space, command separators, and comments. On success
/// advances `*pos` past the command's terminator and returns its words;
/// returns `Ok(None)` when the script is exhausted.
pub fn parse_command(src: &str, pos: &mut usize) -> Result<Option<Vec<Word>>, Exception> {
    let bytes = src.as_bytes();
    let mut i = *pos;

    // Skip separators and white space between commands.
    loop {
        while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b';' | b'\r') {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'\n') {
            let (_, used) = backslash(src, i);
            i += used;
            continue;
        }
        if i < bytes.len() && bytes[i] == b'#' {
            // Comment: runs to the next unescaped newline.
            while i < bytes.len() && bytes[i] != b'\n' {
                if bytes[i] == b'\\' {
                    let (_, used) = backslash(src, i);
                    i += used;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        break;
    }
    if i >= bytes.len() {
        *pos = i;
        return Ok(None);
    }

    let mut words: Vec<Word> = Vec::new();
    loop {
        // Skip white space between words (backslash-newline is white space).
        loop {
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\r') {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'\n') {
                let (_, used) = backslash(src, i);
                i += used;
                continue;
            }
            break;
        }
        if i >= bytes.len() || bytes[i] == b'\n' || bytes[i] == b';' {
            if i < bytes.len() {
                i += 1; // consume the terminator
            }
            break;
        }

        let mut parts: Vec<Part> = Vec::new();
        if bytes[i] == b'{' {
            let (content, next) = parse_braces(src, i)?;
            i = next;
            ensure_word_end(src, i)?;
            parts.push(Part::Lit(content));
        } else if bytes[i] == b'"' {
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                match bytes[i] {
                    b'$' => i = parse_dollar(src, i, &mut parts)?,
                    b'[' => {
                        let (script, next) = parse_brackets(src, i)?;
                        parts.push(Part::Cmd(script));
                        i = next;
                    }
                    b'\\' => {
                        let (s, used) = backslash(src, i);
                        push_lit(&mut parts, &s);
                        i += used;
                    }
                    _ => {
                        let ch = src[i..].chars().next().unwrap();
                        push_lit(&mut parts, &ch.to_string());
                        i += ch.len_utf8();
                    }
                }
            }
            if i >= bytes.len() {
                return Err(Exception::error("missing \""));
            }
            i += 1;
            ensure_word_end(src, i)?;
            if parts.is_empty() {
                parts.push(Part::Lit(String::new()));
            }
        } else {
            // Bare word: runs until white space or command terminator.
            while i < bytes.len() && !matches!(bytes[i], b' ' | b'\t' | b'\n' | b';' | b'\r') {
                match bytes[i] {
                    b'$' => i = parse_dollar(src, i, &mut parts)?,
                    b'[' => {
                        let (script, next) = parse_brackets(src, i)?;
                        parts.push(Part::Cmd(script));
                        i = next;
                    }
                    b'\\' => {
                        if bytes.get(i + 1) == Some(&b'\n') {
                            break; // acts as white space: ends the word
                        }
                        let (s, used) = backslash(src, i);
                        push_lit(&mut parts, &s);
                        i += used;
                    }
                    _ => {
                        let ch = src[i..].chars().next().unwrap();
                        push_lit(&mut parts, &ch.to_string());
                        i += ch.len_utf8();
                    }
                }
            }
            if parts.is_empty() {
                parts.push(Part::Lit(String::new()));
            }
        }
        words.push(parts);
    }

    *pos = i;
    if words.is_empty() {
        // A line that was only a terminator; try again from here.
        return parse_command(src, pos);
    }
    Ok(Some(words))
}

/// After a braced or quoted word, the next character must be white space or
/// a command terminator (Tcl rejects `{a}b`).
fn ensure_word_end(src: &str, pos: usize) -> Result<(), Exception> {
    match src.as_bytes().get(pos) {
        None | Some(b' ' | b'\t' | b'\n' | b';' | b'\r') => Ok(()),
        Some(b'\\') if src.as_bytes().get(pos + 1) == Some(&b'\n') => Ok(()),
        Some(_) => Err(Exception::error(
            "extra characters after close-quote or close-brace",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(src: &str) -> Vec<Vec<Word>> {
        let mut pos = 0;
        let mut out = Vec::new();
        while let Some(cmd) = parse_command(src, &mut pos).unwrap() {
            out.push(cmd);
        }
        out
    }

    fn lit(s: &str) -> Word {
        vec![Part::Lit(s.to_string())]
    }

    #[test]
    fn simple_command_fields() {
        let cmds = parse_all("set a 1000");
        assert_eq!(cmds, vec![vec![lit("set"), lit("a"), lit("1000")]]);
    }

    #[test]
    fn semicolon_and_newline_separate_commands() {
        let cmds = parse_all("print foo; print bar\nprint baz");
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[2], vec![lit("print"), lit("baz")]);
    }

    #[test]
    fn quoted_word_is_one_field() {
        let cmds = parse_all("set msg \"Hello, world\"");
        assert_eq!(cmds[0][2], lit("Hello, world"));
    }

    #[test]
    fn braced_word_is_verbatim() {
        let cmds = parse_all("set x {a b {x1 x2}}");
        assert_eq!(cmds[0][2], lit("a b {x1 x2}"));
    }

    #[test]
    fn braces_suppress_separators_and_substitution() {
        let cmds = parse_all("set x {a; b\n$c [d]}");
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0][2], lit("a; b\n$c [d]"));
    }

    #[test]
    fn dollar_substitution_parses() {
        let cmds = parse_all("print $msg");
        assert_eq!(cmds[0][1], vec![Part::Var("msg".into(), None)]);
    }

    #[test]
    fn braced_variable_name() {
        let cmds = parse_all("print ${a b}x");
        assert_eq!(
            cmds[0][1],
            vec![Part::Var("a b".into(), None), Part::Lit("x".into())]
        );
    }

    #[test]
    fn array_element_with_nested_substitution() {
        let cmds = parse_all("print $a($i)");
        assert_eq!(
            cmds[0][1],
            vec![Part::Var(
                "a".into(),
                Some(vec![Part::Var("i".into(), None)])
            )]
        );
    }

    #[test]
    fn bare_dollar_is_literal() {
        let cmds = parse_all("print a$ b");
        assert_eq!(cmds[0][1], lit("a$"));
    }

    #[test]
    fn command_substitution_parses() {
        let cmds = parse_all("print [list q r $x]");
        assert_eq!(cmds[0][1], vec![Part::Cmd("list q r $x".into())]);
    }

    #[test]
    fn nested_brackets_scan() {
        let cmds = parse_all("set a [x [y z]]");
        assert_eq!(cmds[0][2], vec![Part::Cmd("x [y z]".into())]);
    }

    #[test]
    fn brackets_with_braced_close_bracket() {
        let cmds = parse_all("set a [list {]}]");
        assert_eq!(cmds[0][2], vec![Part::Cmd("list {]}".into())]);
    }

    #[test]
    fn brackets_with_quoted_close_bracket() {
        let cmds = parse_all("set a [set x \"]\"]");
        assert_eq!(cmds[0][2], vec![Part::Cmd("set x \"]\"".into())]);
    }

    #[test]
    fn backslash_sequences_decode() {
        assert_eq!(backslash("\\n", 0), ("\n".into(), 2));
        assert_eq!(backslash("\\t", 0), ("\t".into(), 2));
        assert_eq!(backslash("\\{", 0), ("{".into(), 2));
        assert_eq!(backslash("\\101", 0), ("A".into(), 4));
        assert_eq!(backslash("\\x41", 0), ("A".into(), 4));
        assert_eq!(backslash("\\x", 0), ("x".into(), 2));
    }

    #[test]
    fn backslash_newline_is_whitespace() {
        let cmds = parse_all("set a\\\n   b");
        assert_eq!(cmds[0], vec![lit("set"), lit("a"), lit("b")]);
        assert_eq!(cmds.len(), 1);
    }

    #[test]
    fn backslash_in_word_escapes() {
        let cmds = parse_all("print Hello!\\n");
        assert_eq!(cmds[0][1], lit("Hello!\n"));
    }

    #[test]
    fn escaped_braces_in_quotes() {
        let cmds = parse_all("set msg \"\\{ and \\} are special\"");
        assert_eq!(cmds[0][2], lit("{ and } are special"));
    }

    #[test]
    fn backslash_shields_brace_counting_inside_braces() {
        let cmds = parse_all(r"set a {x \} y}");
        assert_eq!(cmds[0][2], lit(r"x \} y"));
    }

    #[test]
    fn comments_skipped_at_command_position() {
        let cmds = parse_all("# a comment\nset a 1 ;# not a comment here\n");
        // `#` only starts a comment at command position, so the second `#`
        // begins a new command after `;` ... which is itself a comment.
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0][0], lit("set"));
    }

    #[test]
    fn empty_script_yields_none() {
        assert!(parse_all("").is_empty());
        assert!(parse_all("  \n\t; ;\n").is_empty());
    }

    #[test]
    fn missing_close_brace_is_error() {
        let mut pos = 0;
        assert!(parse_command("set a {oops", &mut pos).is_err());
    }

    #[test]
    fn missing_close_bracket_is_error() {
        let mut pos = 0;
        assert!(parse_command("set a [oops", &mut pos).is_err());
    }

    #[test]
    fn missing_close_quote_is_error() {
        let mut pos = 0;
        assert!(parse_command("set a \"oops", &mut pos).is_err());
    }

    #[test]
    fn extra_chars_after_brace_is_error() {
        let mut pos = 0;
        assert!(parse_command("set a {x}y", &mut pos).is_err());
    }

    #[test]
    fn empty_quoted_word_is_empty_literal() {
        let cmds = parse_all("set a \"\"");
        assert_eq!(cmds[0][2], lit(""));
    }

    #[test]
    fn utf8_text_passes_through() {
        let cmds = parse_all("set a héllo");
        assert_eq!(cmds[0][2], lit("héllo"));
    }

    #[test]
    fn figure5_backslash_examples() {
        // `set msg "\{ and \} are special"` — already covered above; the
        // second example: print Hello!\n
        let cmds = parse_all("print Hello!\\n");
        assert_eq!(cmds[0][1], lit("Hello!\n"));
    }

    #[test]
    fn dollar_in_quotes_substitutes() {
        let cmds = parse_all("set msg \"x is $x\"");
        assert_eq!(
            cmds[0][2],
            vec![Part::Lit("x is ".into()), Part::Var("x".into(), None)]
        );
    }
}
