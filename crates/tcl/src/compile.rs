//! The compile-once/execute-many pipeline.
//!
//! `compile` lowers a script string to a [`Program`]: the command boundary
//! parse is done once, each word is either an interned literal or a
//! pre-parsed substitution list, and the hottest builtins (`set`, `if`,
//! `while`, `for`, `foreach`, `expr`) lower to specialized ops that skip
//! generic dispatch entirely. The interpreter caches programs keyed on the
//! script string, so a `bind` body or `-command` script is parsed on its
//! first execution and replayed from the cache afterwards.
//!
//! Compilation is deliberately conservative: any shape the lowering does
//! not recognize — dynamic command names, `then`/`elseif` keywords,
//! redefined builtins — falls back to [`OpKind::Generic`], which performs
//! exactly the substitutions and dispatch of the direct interpreter. A
//! script that fails to parse outright is not compiled at all; the caller
//! re-runs it through the direct evaluator so partial-execution-then-error
//! semantics are preserved byte for byte.

use std::cell::Cell;
use std::rc::Rc;

use crate::error::Exception;
use crate::interp::Interp;
use crate::parser::{parse_command, Part, Word};
use crate::value::{intern, TclValue};

/// Command names eligible for specialized lowering. Registry changes to
/// these names bump the compile epoch so stale specializations are thrown
/// away (see `Interp::bump_compile_epoch`).
pub const SPECIALIZED: &[&str] = &["set", "if", "while", "for", "foreach", "expr"];

/// One pre-substitution word of a compiled command.
pub enum CompiledWord {
    /// A fully literal word: no substitution needed at run time.
    Lit(Rc<TclValue>),
    /// A word with `$`/`[]`/`\` parts, substituted per execution.
    Dyn(Word),
}

/// How one command of a program executes.
pub enum OpKind {
    /// Pre-parsed words, substituted then dispatched like the direct
    /// interpreter. `head_atom` is set when the command name is a literal:
    /// dispatch becomes an index lookup instead of a string hash.
    Generic {
        /// The command's words.
        words: Vec<CompiledWord>,
        /// Interned command-name atom for index dispatch.
        head_atom: Option<u32>,
    },
    /// `set name` / `set name value` with a literal variable name.
    Set {
        /// Variable name (already split from `name(index)` form).
        name: String,
        /// Array index, if the name had `(index)` form.
        index: Option<String>,
        /// The value to assign; `None` reads the variable.
        value: Option<CompiledWord>,
    },
    /// `if {cond} {then}` or `if {cond} {then} else {else}`, all literal.
    If {
        /// Condition expression source.
        cond: String,
        /// Body when true.
        then_body: String,
        /// Body when false (`None`: result is the empty string).
        else_body: Option<String>,
    },
    /// `while {cond} {body}`, both literal.
    While {
        /// Condition expression source.
        cond: String,
        /// Loop body script.
        body: String,
    },
    /// `for {init} {cond} {next} {body}`, all literal.
    For {
        /// Initialization script.
        init: String,
        /// Condition expression source.
        cond: String,
        /// Per-iteration script.
        next: String,
        /// Loop body script.
        body: String,
    },
    /// `foreach var {items} {body}` with a literal, parseable list: the
    /// list is split once at compile time instead of per execution.
    Foreach {
        /// Loop variable name.
        var: String,
        /// Pre-split list items.
        items: Vec<String>,
        /// Loop body script.
        body: String,
    },
    /// `expr {src}` with a single literal argument: evaluates through the
    /// interpreter's compiled-expression cache.
    Expr {
        /// Expression source.
        src: String,
    },
}

/// One compiled command with the source excerpt for error tracebacks.
pub struct CompiledCmd {
    /// The trimmed source text, exactly as the direct interpreter would
    /// report it in `errorInfo`.
    pub source: String,
    /// The execution strategy.
    pub op: OpKind,
}

/// A compiled script: the unit the program cache stores.
pub struct Program {
    /// The commands, in order.
    pub cmds: Vec<CompiledCmd>,
    /// How many times this program has executed (drives the
    /// `tcl_parses_avoided` counter: every command executed on a re-run is
    /// a parse the direct interpreter would have repeated).
    pub runs: Cell<u64>,
}

/// Lowers a script to a program. A parse error aborts compilation — the
/// caller falls back to direct evaluation so leading commands still run
/// before the error surfaces, exactly as the direct interpreter behaves.
pub fn compile(interp: &Interp, script: &str) -> Result<Program, Exception> {
    let mut pos = 0usize;
    let mut cmds = Vec::new();
    loop {
        let start = pos;
        let words = match parse_command(script, &mut pos)? {
            Some(w) => w,
            None => break,
        };
        interp.note_parse();
        let source = script[start..pos].trim().to_string();
        let op = lower(interp, &words);
        cmds.push(CompiledCmd { source, op });
    }
    Ok(Program {
        cmds,
        runs: Cell::new(0),
    })
}

/// The literal text of a word, if it has no substitutions.
fn literal(word: &Word) -> Option<&str> {
    match word.as_slice() {
        [Part::Lit(s)] => Some(s),
        _ => None,
    }
}

fn compiled_word(word: &Word) -> CompiledWord {
    match literal(word) {
        Some(s) => CompiledWord::Lit(intern(s)),
        None => CompiledWord::Dyn(word.clone()),
    }
}

/// Lowers one parsed command to an op. Specialization requires the command
/// name to still be the baseline builtin — a redefined `set` or `while`
/// must go through generic dispatch so the redefinition is honored.
fn lower(interp: &Interp, words: &[Word]) -> OpKind {
    if let Some(head) = words.first().and_then(literal) {
        if SPECIALIZED.contains(&head) && interp.is_baseline_command(head) {
            if let Some(op) = specialize(head, words) {
                return op;
            }
        }
    }
    generic(interp, words)
}

fn generic(interp: &Interp, words: &[Word]) -> OpKind {
    let head_atom = words
        .first()
        .and_then(literal)
        .filter(|s| !s.is_empty())
        .map(|s| interp.intern_atom(s));
    OpKind::Generic {
        words: words.iter().map(compiled_word).collect(),
        head_atom,
    }
}

/// Attempts a specialized lowering; `None` means the shape is unusual
/// (keyword forms, dynamic arguments, wrong arity) and generic dispatch
/// must handle it.
fn specialize(head: &str, words: &[Word]) -> Option<OpKind> {
    let lit = |i: usize| words.get(i).and_then(literal);
    match (head, words.len()) {
        ("set", 2) => {
            let (name, index) = crate::interp::split_var_name(lit(1)?);
            Some(OpKind::Set {
                name,
                index,
                value: None,
            })
        }
        ("set", 3) => {
            let (name, index) = crate::interp::split_var_name(lit(1)?);
            Some(OpKind::Set {
                name,
                index,
                value: Some(compiled_word(&words[2])),
            })
        }
        // Only the unambiguous `if` shapes specialize: the keyworded
        // (`then`/`elseif`) and old-style implicit-else forms stay generic.
        ("if", 3) => {
            let (cond, then_body) = (lit(1)?, lit(2)?);
            if matches!(then_body, "then" | "else" | "elseif") {
                return None;
            }
            Some(OpKind::If {
                cond: cond.to_string(),
                then_body: then_body.to_string(),
                else_body: None,
            })
        }
        ("if", 5) => {
            let (cond, then_body, kw, else_body) = (lit(1)?, lit(2)?, lit(3)?, lit(4)?);
            if kw != "else" || matches!(then_body, "then" | "else" | "elseif") {
                return None;
            }
            Some(OpKind::If {
                cond: cond.to_string(),
                then_body: then_body.to_string(),
                else_body: Some(else_body.to_string()),
            })
        }
        ("while", 3) => Some(OpKind::While {
            cond: lit(1)?.to_string(),
            body: lit(2)?.to_string(),
        }),
        ("for", 5) => Some(OpKind::For {
            init: lit(1)?.to_string(),
            cond: lit(2)?.to_string(),
            next: lit(3)?.to_string(),
            body: lit(4)?.to_string(),
        }),
        ("foreach", 4) => {
            let items = crate::list::parse_list(lit(2)?).ok()?;
            Some(OpKind::Foreach {
                var: lit(1)?.to_string(),
                items,
                body: lit(3)?.to_string(),
            })
        }
        ("expr", 2) => Some(OpKind::Expr {
            src: lit(1)?.to_string(),
        }),
        _ => None,
    }
}
