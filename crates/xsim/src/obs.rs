//! Per-connection protocol observability (the `rtk-obs` layer of xsim).
//!
//! [`ClientStats`](crate::server::ClientStats) keeps the three coarse
//! totals the seed exposed; this module extends per-connection accounting
//! into a structured view: a counter per [`RequestKind`], latency
//! histograms for all requests and for round trips specifically, and a
//! bounded protocol trace (off by default) whose entries record sequence
//! number, request kind, one-way/round-trip, target window, and duration.
//!
//! Everything is always-on-cheap: counters are array bumps, histograms
//! are one bucket increment, and the trace costs nothing until enabled.

use rtk_obs::{Histogram, Ring};

use crate::ids::WindowId;

/// Every protocol request the simulated server understands, mirroring the
/// [`Connection`](crate::connection::Connection) calling surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum RequestKind {
    InternAtom,
    GetAtomName,
    CreateWindow,
    DestroyWindow,
    MapWindow,
    UnmapWindow,
    ConfigureWindow,
    RaiseWindow,
    ReparentWindow,
    SelectInput,
    ChangeWindowAttributes,
    QueryTree,
    GetGeometry,
    GetWindowAttributes,
    ChangeProperty,
    GetProperty,
    DeleteProperty,
    AllocColor,
    FreeColor,
    QueryColor,
    OpenFont,
    QueryFont,
    CreateCursor,
    CreateBitmap,
    FreeBitmap,
    QueryBitmap,
    CopyBitmap,
    CreateGc,
    ChangeGc,
    FreeGc,
    FillRectangle,
    DrawRectangle,
    DrawLine,
    DrawString,
    ClearArea,
    SetSelectionOwner,
    GetSelectionOwner,
    ConvertSelection,
    SendEvent,
    SetInputFocus,
    GetInputFocus,
    SetClip,
    ClearClip,
    CopyArea,
}

impl RequestKind {
    /// Number of request kinds (array sizing).
    pub const COUNT: usize = 44;

    /// All kinds, in declaration order.
    pub const ALL: [RequestKind; RequestKind::COUNT] = [
        RequestKind::InternAtom,
        RequestKind::GetAtomName,
        RequestKind::CreateWindow,
        RequestKind::DestroyWindow,
        RequestKind::MapWindow,
        RequestKind::UnmapWindow,
        RequestKind::ConfigureWindow,
        RequestKind::RaiseWindow,
        RequestKind::ReparentWindow,
        RequestKind::SelectInput,
        RequestKind::ChangeWindowAttributes,
        RequestKind::QueryTree,
        RequestKind::GetGeometry,
        RequestKind::GetWindowAttributes,
        RequestKind::ChangeProperty,
        RequestKind::GetProperty,
        RequestKind::DeleteProperty,
        RequestKind::AllocColor,
        RequestKind::FreeColor,
        RequestKind::QueryColor,
        RequestKind::OpenFont,
        RequestKind::QueryFont,
        RequestKind::CreateCursor,
        RequestKind::CreateBitmap,
        RequestKind::FreeBitmap,
        RequestKind::QueryBitmap,
        RequestKind::CopyBitmap,
        RequestKind::CreateGc,
        RequestKind::ChangeGc,
        RequestKind::FreeGc,
        RequestKind::FillRectangle,
        RequestKind::DrawRectangle,
        RequestKind::DrawLine,
        RequestKind::DrawString,
        RequestKind::ClearArea,
        RequestKind::SetSelectionOwner,
        RequestKind::GetSelectionOwner,
        RequestKind::ConvertSelection,
        RequestKind::SendEvent,
        RequestKind::SetInputFocus,
        RequestKind::GetInputFocus,
        RequestKind::SetClip,
        RequestKind::ClearClip,
        RequestKind::CopyArea,
    ];

    /// The protocol name, used in `obs counters` and JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::InternAtom => "InternAtom",
            RequestKind::GetAtomName => "GetAtomName",
            RequestKind::CreateWindow => "CreateWindow",
            RequestKind::DestroyWindow => "DestroyWindow",
            RequestKind::MapWindow => "MapWindow",
            RequestKind::UnmapWindow => "UnmapWindow",
            RequestKind::ConfigureWindow => "ConfigureWindow",
            RequestKind::RaiseWindow => "RaiseWindow",
            RequestKind::ReparentWindow => "ReparentWindow",
            RequestKind::SelectInput => "SelectInput",
            RequestKind::ChangeWindowAttributes => "ChangeWindowAttributes",
            RequestKind::QueryTree => "QueryTree",
            RequestKind::GetGeometry => "GetGeometry",
            RequestKind::GetWindowAttributes => "GetWindowAttributes",
            RequestKind::ChangeProperty => "ChangeProperty",
            RequestKind::GetProperty => "GetProperty",
            RequestKind::DeleteProperty => "DeleteProperty",
            RequestKind::AllocColor => "AllocColor",
            RequestKind::FreeColor => "FreeColor",
            RequestKind::QueryColor => "QueryColor",
            RequestKind::OpenFont => "OpenFont",
            RequestKind::QueryFont => "QueryFont",
            RequestKind::CreateCursor => "CreateCursor",
            RequestKind::CreateBitmap => "CreateBitmap",
            RequestKind::FreeBitmap => "FreeBitmap",
            RequestKind::QueryBitmap => "QueryBitmap",
            RequestKind::CopyBitmap => "CopyBitmap",
            RequestKind::CreateGc => "CreateGc",
            RequestKind::ChangeGc => "ChangeGc",
            RequestKind::FreeGc => "FreeGc",
            RequestKind::FillRectangle => "FillRectangle",
            RequestKind::DrawRectangle => "DrawRectangle",
            RequestKind::DrawLine => "DrawLine",
            RequestKind::DrawString => "DrawString",
            RequestKind::ClearArea => "ClearArea",
            RequestKind::SetSelectionOwner => "SetSelectionOwner",
            RequestKind::GetSelectionOwner => "GetSelectionOwner",
            RequestKind::ConvertSelection => "ConvertSelection",
            RequestKind::SendEvent => "SendEvent",
            RequestKind::SetInputFocus => "SetInputFocus",
            RequestKind::GetInputFocus => "GetInputFocus",
            RequestKind::SetClip => "SetClip",
            RequestKind::ClearClip => "ClearClip",
            RequestKind::CopyArea => "CopyArea",
        }
    }

    /// Does this request rasterize pixels? Used by the tracer to decide
    /// whether a flushed batch gets a `rasterize` child span.
    pub fn is_drawing(self) -> bool {
        matches!(
            self,
            RequestKind::FillRectangle
                | RequestKind::DrawRectangle
                | RequestKind::DrawLine
                | RequestKind::DrawString
                | RequestKind::ClearArea
                | RequestKind::CopyArea
        )
    }
}

/// One entry in the protocol trace ring.
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry {
    /// Server sequence number (the server clock tick of the request).
    pub seq: u64,
    /// What kind of request this was.
    pub kind: RequestKind,
    /// Did the request require a reply (a full round trip)?
    pub round_trip: bool,
    /// The window the request targeted (`Xid::NONE` for windowless ones).
    pub window: WindowId,
    /// Wall time the request spent in the server, including the synthetic
    /// round-trip cost when configured.
    pub duration_ns: u64,
    /// When a fault fired on this request, its counter name
    /// (`"error.BadWindow"`, `"drop"`, ...); `None` for normal requests.
    pub fault: Option<&'static str>,
}

/// Default trace ring capacity (entries).
pub const TRACE_CAPACITY: usize = 1024;

/// Per-client wire-transport counters. All zero when the in-process
/// oracle transport is active (`RTK_NO_WIRE=1`): every field counts
/// actual framed bytes crossing the byte transport, so "did anything go
/// over the wire" is observable from the counters alone.
#[derive(Debug, Clone, Default)]
pub struct WireStats {
    /// Frames encoded on behalf of this client (requests, control
    /// frames, and the server's response frames).
    pub frames_encoded: u64,
    /// Total encoded bytes, including each frame's length prefix.
    pub bytes_encoded: u64,
    /// Frames decoded (client-side responses and server-side dispatch).
    pub frames_decoded: u64,
    /// Total decoded bytes, including each frame's length prefix.
    pub bytes_decoded: u64,
    /// Buffered-frame batches shipped to the server thread (the wire
    /// analogue of `ClientStats::flushes`).
    pub flushes: u64,
    /// Flush batches the per-client request quota cut short: the
    /// overflow was deferred (never dropped) to keep one hot client
    /// from starving the rest. Counted under both transports — the
    /// quota lives in the shared batch executor.
    pub backpressure_stalls: u64,
    /// Frame-integrity failures detected on this client's stream (bad
    /// CRC, truncation, garbage between frames). Each one kills the
    /// connection — corruption is never silently skipped.
    pub checksum_errors: u64,
    /// Sync-watchdog expiries: control round trips the dispatcher failed
    /// to ack within `RTK_WIRE_DEADLINE_MS`, surfaced to the client as a
    /// dead connection instead of a hang.
    pub watchdog_fires: u64,
    /// Size distribution of encoded frames, in bytes.
    pub frame_bytes: Histogram,
}

impl WireStats {
    /// Did any traffic cross the wire? (False under the in-process
    /// oracle transport.)
    pub fn active(&self) -> bool {
        self.frames_encoded + self.frames_decoded > 0
    }
}

/// Structured observability state for one client connection.
#[derive(Debug, Clone)]
pub struct ClientObs {
    /// Requests issued, by kind.
    pub kind_counts: [u64; RequestKind::COUNT],
    /// Round-trip (reply-bearing) requests issued, by kind; subtracting
    /// from `kind_counts` gives the one-way count per kind.
    pub kind_round_trips: [u64; RequestKind::COUNT],
    /// Latency of every request.
    pub request_ns: Histogram,
    /// Latency of round-trip requests only (the paper's expensive class).
    pub round_trip_ns: Histogram,
    /// Bounded protocol trace, recorded only while `trace_enabled`.
    pub trace: Ring<TraceEntry>,
    /// Is the trace ring recording?
    pub trace_enabled: bool,
    /// Total injected faults observed by this client.
    pub faults_injected: u64,
    /// Injected faults split by kind (see
    /// [`crate::fault::FAULT_KIND_NAMES`]).
    pub fault_counts: [u64; crate::fault::FAULT_KIND_COUNT],
    /// Pixels actually rasterized by this client's drawing requests
    /// (post-clip: pixels outside a window's clip region cost — and
    /// count — nothing).
    pub pixels_drawn: u64,
    /// Damage rectangles recorded against windows this client owns.
    pub damage_rects: u64,
    /// Damage-coalescing steps (contained-drop / overlap-merge /
    /// overflow-collapse) on windows this client owns.
    pub expose_coalesced: u64,
    /// Wire-transport frame/byte counters (all zero under the
    /// in-process oracle transport).
    pub wire: WireStats,
}

impl Default for ClientObs {
    fn default() -> Self {
        ClientObs {
            kind_counts: [0; RequestKind::COUNT],
            kind_round_trips: [0; RequestKind::COUNT],
            request_ns: Histogram::new(),
            round_trip_ns: Histogram::new(),
            trace: Ring::new(TRACE_CAPACITY),
            trace_enabled: false,
            faults_injected: 0,
            fault_counts: [0; crate::fault::FAULT_KIND_COUNT],
            pixels_drawn: 0,
            damage_rects: 0,
            expose_coalesced: 0,
            wire: WireStats::default(),
        }
    }
}

impl ClientObs {
    /// Records one completed request.
    pub fn record(
        &mut self,
        seq: u64,
        kind: RequestKind,
        round_trip: bool,
        window: WindowId,
        duration: std::time::Duration,
    ) {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        self.kind_counts[kind as usize] += 1;
        self.request_ns.record(ns);
        if round_trip {
            self.kind_round_trips[kind as usize] += 1;
            self.round_trip_ns.record(ns);
        }
        if self.trace_enabled {
            self.trace.push(TraceEntry {
                seq,
                kind,
                round_trip,
                window,
                duration_ns: ns,
                fault: None,
            });
        }
    }

    /// Records one injected fault: bumps the total and per-kind counters
    /// and, when tracing, pushes a marked trace entry so a dumped trace
    /// shows exactly where the schedule fired. `kind` is the faulted
    /// request's kind when known (event faults have none and reuse
    /// `SendEvent` as the delivery-path marker).
    pub fn record_fault(
        &mut self,
        seq: u64,
        action: crate::fault::FaultAction,
        kind: Option<RequestKind>,
        window: WindowId,
    ) {
        self.faults_injected += 1;
        self.fault_counts[action.kind_index()] += 1;
        if self.trace_enabled {
            self.trace.push(TraceEntry {
                seq,
                kind: kind.unwrap_or(RequestKind::SendEvent),
                round_trip: false,
                window,
                duration_ns: 0,
                fault: Some(action.kind_name()),
            });
        }
    }

    /// Fault kinds with a non-zero count, as `(name, count)` pairs.
    pub fn fault_kind_counts(&self) -> Vec<(&'static str, u64)> {
        crate::fault::FAULT_KIND_NAMES
            .iter()
            .zip(self.fault_counts.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(name, n)| (*name, *n))
            .collect()
    }

    /// Kinds with a non-zero count, as `(name, count)` pairs.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        RequestKind::ALL
            .iter()
            .filter(|k| self.kind_counts[**k as usize] > 0)
            .map(|k| (k.name(), self.kind_counts[*k as usize]))
            .collect()
    }

    /// Round-trip kinds with a non-zero count, as `(name, count)` pairs.
    pub fn kind_round_trip_counts(&self) -> Vec<(&'static str, u64)> {
        RequestKind::ALL
            .iter()
            .filter(|k| self.kind_round_trips[**k as usize] > 0)
            .map(|k| (k.name(), self.kind_round_trips[*k as usize]))
            .collect()
    }

    /// Total requests recorded (sum over kinds).
    pub fn total_requests(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// Clears counters, histograms, and the trace; keeps the trace toggle.
    pub fn reset(&mut self) {
        let enabled = self.trace_enabled;
        *self = ClientObs::default();
        self.trace_enabled = enabled;
    }

    /// JSON object with the per-kind counters, both histograms, and —
    /// only while the trace ring is recording — the trace contents. An
    /// idle ring used to emit dead `"trace_enabled":false,"trace":[]`
    /// fields into every dump; now the trace block appears exactly when
    /// there is (or could be) something in it.
    pub fn to_json(&self) -> String {
        let mut by_kind = rtk_obs::json::Object::new();
        for (name, count) in self.kind_counts() {
            by_kind.field_u64(name, count);
        }
        let mut by_kind_rt = rtk_obs::json::Object::new();
        for (name, count) in self.kind_round_trip_counts() {
            by_kind_rt.field_u64(name, count);
        }
        let mut by_fault = rtk_obs::json::Object::new();
        for (name, count) in self.fault_kind_counts() {
            by_fault.field_u64(name, count);
        }
        let mut o = rtk_obs::json::Object::new();
        o.field_raw("by_kind", &by_kind.build());
        o.field_raw("by_kind_round_trip", &by_kind_rt.build());
        o.field_u64("faults_injected", self.faults_injected);
        o.field_raw("by_fault", &by_fault.build());
        o.field_u64("pixels_drawn", self.pixels_drawn);
        o.field_u64("damage_rects", self.damage_rects);
        o.field_u64("expose_coalesced", self.expose_coalesced);
        o.field_raw("request_ns", &self.request_ns.to_json());
        o.field_raw("round_trip_ns", &self.round_trip_ns.to_json());
        if self.wire.active() {
            let mut w = rtk_obs::json::Object::new();
            w.field_u64("frames_encoded", self.wire.frames_encoded);
            w.field_u64("bytes_encoded", self.wire.bytes_encoded);
            w.field_u64("frames_decoded", self.wire.frames_decoded);
            w.field_u64("bytes_decoded", self.wire.bytes_decoded);
            w.field_u64("flushes", self.wire.flushes);
            w.field_u64("backpressure_stalls", self.wire.backpressure_stalls);
            w.field_u64("checksum_errors", self.wire.checksum_errors);
            w.field_u64("watchdog_fires", self.wire.watchdog_fires);
            w.field_raw("frame_bytes", &self.wire.frame_bytes.to_json());
            o.field_raw("wire", &w.build());
        }
        if self.trace_enabled {
            let mut trace = rtk_obs::json::Array::new();
            for e in self.trace.iter() {
                let mut t = rtk_obs::json::Object::new();
                t.field_u64("seq", e.seq);
                t.field_str("kind", e.kind.name());
                t.field_bool("round_trip", e.round_trip);
                t.field_u64("window", e.window.0 as u64);
                t.field_u64("duration_ns", e.duration_ns);
                if let Some(fault) = e.fault {
                    t.field_str("fault", fault);
                }
                trace.push_raw(&t.build());
            }
            o.field_bool("trace_enabled", true);
            o.field_u64(
                "trace_dropped",
                self.trace.total_pushed() - self.trace.len() as u64,
            );
            o.field_raw("trace", &trace.build());
        }
        o.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Xid;
    use std::time::Duration;

    #[test]
    fn all_list_matches_count_and_indices() {
        assert_eq!(RequestKind::ALL.len(), RequestKind::COUNT);
        for (i, k) in RequestKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{} out of order", k.name());
        }
    }

    #[test]
    fn record_counts_by_kind_and_latency_class() {
        let mut o = ClientObs::default();
        o.record(
            1,
            RequestKind::CreateWindow,
            false,
            Xid(5),
            Duration::from_micros(2),
        );
        o.record(
            2,
            RequestKind::GetGeometry,
            true,
            Xid(5),
            Duration::from_micros(9),
        );
        assert_eq!(o.total_requests(), 2);
        assert_eq!(
            o.kind_counts(),
            vec![("CreateWindow", 1), ("GetGeometry", 1)]
        );
        assert_eq!(o.kind_round_trip_counts(), vec![("GetGeometry", 1)]);
        assert_eq!(o.request_ns.count(), 2);
        assert_eq!(o.round_trip_ns.count(), 1);
        // Trace off by default: nothing recorded.
        assert!(o.trace.is_empty());
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut o = ClientObs {
            trace_enabled: true,
            ..Default::default()
        };
        o.record(
            7,
            RequestKind::MapWindow,
            false,
            Xid(3),
            Duration::from_nanos(100),
        );
        assert_eq!(o.trace.len(), 1);
        let e = o.trace.iter().next().unwrap();
        assert_eq!(e.seq, 7);
        assert_eq!(e.kind, RequestKind::MapWindow);
        assert_eq!(e.window, Xid(3));
        assert!(!e.round_trip);
    }

    #[test]
    fn reset_clears_but_keeps_trace_toggle() {
        let mut o = ClientObs {
            trace_enabled: true,
            ..Default::default()
        };
        o.record(
            1,
            RequestKind::DrawLine,
            false,
            Xid::NONE,
            Duration::from_nanos(5),
        );
        o.record_fault(
            2,
            crate::fault::FaultAction::DropRequest,
            Some(RequestKind::ClearArea),
            Xid::NONE,
        );
        assert_eq!(o.faults_injected, 1);
        o.reset();
        assert_eq!(o.total_requests(), 0);
        assert!(o.request_ns.is_empty());
        assert!(o.trace.is_empty());
        assert_eq!(o.faults_injected, 0, "fault counters reset too");
        assert!(o.fault_kind_counts().is_empty());
        assert!(o.trace_enabled, "toggle survives reset");
    }

    #[test]
    fn record_fault_counts_splits_and_traces() {
        let mut o = ClientObs {
            trace_enabled: true,
            ..Default::default()
        };
        let kill = crate::fault::FaultAction::KillConnection;
        o.record_fault(9, kill, Some(RequestKind::MapWindow), Xid(4));
        o.record_fault(11, crate::fault::FaultAction::ReorderEvent, None, Xid(4));
        assert_eq!(o.faults_injected, 2);
        assert_eq!(
            o.fault_kind_counts(),
            vec![("reorder", 1), ("kill", 1)],
            "per-kind split"
        );
        let entries: Vec<_> = o.trace.iter().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].fault, Some("kill"));
        assert_eq!(entries[0].kind, RequestKind::MapWindow);
        assert_eq!(entries[1].fault, Some("reorder"));
        let j = o.to_json();
        assert!(rtk_obs::json::is_valid(&j), "{j}");
        assert!(j.contains("\"faults_injected\":2"), "{j}");
        assert!(j.contains("\"by_fault\":{\"reorder\":1,\"kill\":1}"), "{j}");
        assert!(j.contains("\"fault\":\"kill\""), "{j}");
    }

    #[test]
    fn json_is_valid_and_contains_kinds() {
        let mut o = ClientObs {
            trace_enabled: true,
            ..Default::default()
        };
        o.record(
            1,
            RequestKind::InternAtom,
            true,
            Xid::NONE,
            Duration::from_micros(1),
        );
        let j = o.to_json();
        assert!(rtk_obs::json::is_valid(&j), "{j}");
        assert!(j.contains("\"InternAtom\":1"), "{j}");
        assert!(
            j.contains("\"by_kind_round_trip\":{\"InternAtom\":1}"),
            "{j}"
        );
        assert!(j.contains("\"round_trip_ns\""), "{j}");
        assert!(j.contains("\"trace\":[{"), "{j}");
    }
}
