//! The simulated X server: request dispatch, event generation, and
//! compositing.
//!
//! All protocol state lives here: the window tree, atoms, the colormap,
//! fonts, cursors, GCs, selections, the input focus, and the pointer.
//! Requests arrive through [`crate::connection::Connection`] handles; the
//! server queues events per client and counts requests and round trips per
//! client, which is the accounting the paper's Table II and Section 3.3
//! experiments rely on.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::atom::{Atom, AtomTable};
use crate::color::{lookup_color, Colormap, Rgb};
use crate::cursor::CursorTable;
use crate::damage::Rect;
use crate::event::{mask, state, Event, Keysym};
use crate::fault::{FaultAction, FaultPlan, XError};
use crate::font::{FontMetrics, FontTable};
use crate::gc::{GcTable, GcValues};
use crate::ids::{ClientId, CursorId, FontId, GcId, IdAllocator, Pixel, WindowId, Xid};
use crate::obs::{ClientObs, RequestKind};
use crate::render::Surface;
use crate::window::{Window, WindowTree};

/// Per-client protocol statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Total requests issued.
    pub requests: u64,
    /// Requests that required a reply (a full round trip).
    pub round_trips: u64,
    /// Events delivered to this client.
    pub events: u64,
    /// Non-empty output-buffer flushes: each one is a single client→server
    /// write carrying every request queued since the previous flush.
    pub flushes: u64,
    /// Requests that traveled through the output buffer (0 when batching
    /// is disabled via `RTK_NO_BATCH` or [`Server::set_batching`]).
    pub batched_requests: u64,
    /// Largest number of requests carried by one flush.
    pub max_batch: u64,
    /// High-water mark of outstanding pipelined replies (cookies issued
    /// but not yet redeemed).
    pub max_pending_replies: u64,
    /// Pixels actually rasterized on behalf of this client's drawing
    /// requests, after clip rectangles are applied. Blits (CopyArea)
    /// move pixels without rasterizing and do not count.
    pub pixels_drawn: u64,
}

/// Capacity of the per-client output buffer; reaching it forces a flush,
/// like Xlib's fixed-size request buffer.
pub const OUT_BUF_CAPACITY: usize = 256;

/// A buffered request, held in the per-client output buffer until a flush
/// point. Reply-bearing variants carry the sequence number under which
/// their reply is filed for later collection.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum QueuedRequest {
    CreateWindow {
        id: WindowId,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    },
    DestroyWindow {
        id: WindowId,
    },
    MapWindow {
        id: WindowId,
    },
    UnmapWindow {
        id: WindowId,
    },
    ConfigureWindow {
        id: WindowId,
        x: Option<i32>,
        y: Option<i32>,
        width: Option<u32>,
        height: Option<u32>,
        border_width: Option<u32>,
    },
    RaiseWindow {
        id: WindowId,
    },
    ReparentWindow {
        id: WindowId,
        new_parent: WindowId,
        x: i32,
        y: i32,
    },
    SelectInput {
        id: WindowId,
        event_mask: u32,
    },
    SetWindowBackground {
        id: WindowId,
        pixel: Pixel,
    },
    SetWindowBorder {
        id: WindowId,
        pixel: Pixel,
    },
    SetOverrideRedirect {
        id: WindowId,
        on: bool,
    },
    DefineCursor {
        id: WindowId,
        cursor: CursorId,
    },
    ChangeProperty {
        id: WindowId,
        atom: Atom,
        value: String,
    },
    AppendProperty {
        id: WindowId,
        atom: Atom,
        value: String,
    },
    DeleteProperty {
        id: WindowId,
        atom: Atom,
    },
    FreeColor {
        pixel: Pixel,
    },
    CreateBitmap {
        id: crate::bitmap::BitmapId,
        bitmap: crate::bitmap::Bitmap,
    },
    FreeBitmap {
        id: crate::bitmap::BitmapId,
    },
    CopyBitmap {
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        bitmap: crate::bitmap::BitmapId,
    },
    CreateGc {
        id: GcId,
        values: GcValues,
    },
    ChangeGc {
        gc: GcId,
        values: GcValues,
    },
    FreeGc {
        gc: GcId,
    },
    FillRectangle {
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        w: u32,
        h: u32,
    },
    DrawRectangle {
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        w: u32,
        h: u32,
    },
    DrawLine {
        id: WindowId,
        gc: GcId,
        x0: i32,
        y0: i32,
        x1: i32,
        y1: i32,
    },
    DrawString {
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        text: String,
    },
    ClearArea {
        id: WindowId,
        x: i32,
        y: i32,
        w: u32,
        h: u32,
    },
    SetClip {
        id: WindowId,
        rects: Vec<Rect>,
    },
    ClearClip {
        id: WindowId,
    },
    CopyArea {
        id: WindowId,
        src_x: i32,
        src_y: i32,
        w: u32,
        h: u32,
        dst_x: i32,
        dst_y: i32,
    },
    SetSelectionOwner {
        selection: Atom,
        owner: WindowId,
    },
    ConvertSelection {
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    },
    SendSelectionNotify {
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    },
    SetInputFocus {
        id: WindowId,
    },
    // Reply-bearing requests that were pipelined instead of executed
    // synchronously; the reply lands in the per-client reply table.
    InternAtom {
        seq: u64,
        name: String,
    },
    AllocColor {
        seq: u64,
        rgb: Rgb,
    },
    AllocNamedColor {
        seq: u64,
        name: String,
    },
    GetProperty {
        seq: u64,
        id: WindowId,
        atom: Atom,
    },
    GetGeometry {
        seq: u64,
        id: WindowId,
    },
}

impl QueuedRequest {
    fn expects_reply(&self) -> bool {
        matches!(
            self,
            QueuedRequest::InternAtom { .. }
                | QueuedRequest::AllocColor { .. }
                | QueuedRequest::AllocNamedColor { .. }
                | QueuedRequest::GetProperty { .. }
                | QueuedRequest::GetGeometry { .. }
        )
    }

    /// The [`RequestKind`] this buffered request was issued as (used to
    /// label injected faults in the trace ring and in error values).
    fn kind(&self) -> RequestKind {
        match self {
            QueuedRequest::CreateWindow { .. } => RequestKind::CreateWindow,
            QueuedRequest::DestroyWindow { .. } => RequestKind::DestroyWindow,
            QueuedRequest::MapWindow { .. } => RequestKind::MapWindow,
            QueuedRequest::UnmapWindow { .. } => RequestKind::UnmapWindow,
            QueuedRequest::ConfigureWindow { .. } => RequestKind::ConfigureWindow,
            QueuedRequest::RaiseWindow { .. } => RequestKind::RaiseWindow,
            QueuedRequest::ReparentWindow { .. } => RequestKind::ReparentWindow,
            QueuedRequest::SelectInput { .. } => RequestKind::SelectInput,
            QueuedRequest::SetWindowBackground { .. }
            | QueuedRequest::SetWindowBorder { .. }
            | QueuedRequest::SetOverrideRedirect { .. }
            | QueuedRequest::DefineCursor { .. } => RequestKind::ChangeWindowAttributes,
            QueuedRequest::ChangeProperty { .. } | QueuedRequest::AppendProperty { .. } => {
                RequestKind::ChangeProperty
            }
            QueuedRequest::DeleteProperty { .. } => RequestKind::DeleteProperty,
            QueuedRequest::FreeColor { .. } => RequestKind::FreeColor,
            QueuedRequest::CreateBitmap { .. } => RequestKind::CreateBitmap,
            QueuedRequest::FreeBitmap { .. } => RequestKind::FreeBitmap,
            QueuedRequest::CopyBitmap { .. } => RequestKind::CopyBitmap,
            QueuedRequest::CreateGc { .. } => RequestKind::CreateGc,
            QueuedRequest::ChangeGc { .. } => RequestKind::ChangeGc,
            QueuedRequest::FreeGc { .. } => RequestKind::FreeGc,
            QueuedRequest::FillRectangle { .. } => RequestKind::FillRectangle,
            QueuedRequest::DrawRectangle { .. } => RequestKind::DrawRectangle,
            QueuedRequest::DrawLine { .. } => RequestKind::DrawLine,
            QueuedRequest::DrawString { .. } => RequestKind::DrawString,
            QueuedRequest::ClearArea { .. } => RequestKind::ClearArea,
            QueuedRequest::SetClip { .. } => RequestKind::SetClip,
            QueuedRequest::ClearClip { .. } => RequestKind::ClearClip,
            QueuedRequest::CopyArea { .. } => RequestKind::CopyArea,
            QueuedRequest::SetSelectionOwner { .. } => RequestKind::SetSelectionOwner,
            QueuedRequest::ConvertSelection { .. } => RequestKind::ConvertSelection,
            QueuedRequest::SendSelectionNotify { .. } => RequestKind::SendEvent,
            QueuedRequest::SetInputFocus { .. } => RequestKind::SetInputFocus,
            QueuedRequest::InternAtom { .. } => RequestKind::InternAtom,
            QueuedRequest::AllocColor { .. } | QueuedRequest::AllocNamedColor { .. } => {
                RequestKind::AllocColor
            }
            QueuedRequest::GetProperty { .. } => RequestKind::GetProperty,
            QueuedRequest::GetGeometry { .. } => RequestKind::GetGeometry,
        }
    }
}

/// The payload of a collected pipelined reply. Public only because the
/// `FromReply` conversion trait needs it in its signature; not part of the
/// supported API surface.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum ReplyValue {
    Atom(Atom),
    Pixel(Pixel),
    NamedColor(Option<(Pixel, Rgb)>),
    Property(Option<String>),
    Geometry(Option<(i32, i32, u32, u32, u32)>),
    /// An injected X error traveled back instead of a reply.
    Error(XError),
}

/// A synchronous reply-bearing request, as data. The closure-based
/// round-trip methods on [`crate::connection::Connection`] lower to one
/// of these so the request can cross a byte transport; the in-process
/// oracle executes the same value directly. One variant per synchronous
/// protocol operation.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub enum SyncRequest {
    InternAtom { name: String },
    GetAtomName { atom: Atom },
    QueryTree { id: WindowId },
    GetGeometry { id: WindowId },
    IsViewable { id: WindowId },
    GetProperty { id: WindowId, atom: Atom },
    TakeProperty { id: WindowId, atom: Atom },
    AllocNamedColor { name: String },
    AllocColor { rgb: Rgb },
    QueryColor { pixel: Pixel },
    OpenFont { name: String },
    QueryFont { font: FontId },
    CreateCursor { name: String },
    QueryBitmap { id: crate::bitmap::BitmapId },
    GetSelectionOwner { selection: Atom },
    GetInputFocus,
}

impl SyncRequest {
    /// The [`RequestKind`] this request is counted and traced as
    /// (identical to what the closure-based methods used to pass).
    pub(crate) fn kind(&self) -> RequestKind {
        match self {
            SyncRequest::InternAtom { .. } => RequestKind::InternAtom,
            SyncRequest::GetAtomName { .. } => RequestKind::GetAtomName,
            SyncRequest::QueryTree { .. } => RequestKind::QueryTree,
            SyncRequest::GetGeometry { .. } => RequestKind::GetGeometry,
            SyncRequest::IsViewable { .. } => RequestKind::GetWindowAttributes,
            SyncRequest::GetProperty { .. } | SyncRequest::TakeProperty { .. } => {
                RequestKind::GetProperty
            }
            SyncRequest::AllocNamedColor { .. } | SyncRequest::AllocColor { .. } => {
                RequestKind::AllocColor
            }
            SyncRequest::QueryColor { .. } => RequestKind::QueryColor,
            SyncRequest::OpenFont { .. } => RequestKind::OpenFont,
            SyncRequest::QueryFont { .. } => RequestKind::QueryFont,
            SyncRequest::CreateCursor { .. } => RequestKind::CreateCursor,
            SyncRequest::QueryBitmap { .. } => RequestKind::QueryBitmap,
            SyncRequest::GetSelectionOwner { .. } => RequestKind::GetSelectionOwner,
            SyncRequest::GetInputFocus => RequestKind::GetInputFocus,
        }
    }

    /// The window the request targets (`Xid::NONE` for windowless ones).
    pub(crate) fn window(&self) -> WindowId {
        match self {
            SyncRequest::QueryTree { id }
            | SyncRequest::GetGeometry { id }
            | SyncRequest::IsViewable { id }
            | SyncRequest::GetProperty { id, .. }
            | SyncRequest::TakeProperty { id, .. } => *id,
            _ => Xid::NONE,
        }
    }
}

/// The typed result of a [`SyncRequest`], mirroring what the old
/// closure-based round trips returned.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub enum SyncReply {
    Atom(Atom),
    OptString(Option<String>),
    Tree(Option<(WindowId, Vec<WindowId>)>),
    Geometry(Option<(i32, i32, u32, u32, u32)>),
    Bool(bool),
    NamedColor(Option<(Pixel, Rgb)>),
    Pixel(Pixel),
    Rgb(Rgb),
    OptXid(Option<Xid>),
    Metrics(Option<FontMetrics>),
    Size(Option<(u32, u32)>),
    Window(WindowId),
}

#[derive(Debug, Default)]
struct ClientState {
    queue: VecDeque<Event>,
    stats: ClientStats,
    obs: ClientObs,
    /// The Xlib-style output buffer: requests wait here until a flush,
    /// tagged with the sequence number assigned at issue time (the key
    /// the fault plan matches on).
    out_buf: Vec<(u64, QueuedRequest)>,
    /// Executed-but-uncollected pipelined replies, keyed by sequence number.
    replies: HashMap<u64, ReplyValue>,
    /// Cookies issued and not yet redeemed (live pipelining depth).
    pending_replies: u64,
    /// Per-client request sequence counter (the X sequence number).
    next_seq: u64,
    /// Per-client event enqueue counter (the fault plan's event key).
    next_event: u64,
    /// Events held back by an injected delay: `(release_index, event)`.
    delayed: Vec<(u64, Event)>,
    /// Requests a quota-limited flush deferred (never dropped): they
    /// apply ahead of the next flushed batch, in issue order.
    deferred: Vec<(u64, QueuedRequest)>,
    /// Did an injected kill close this connection?
    dead: bool,
    /// The application's causal span tracer, when one is attached: flush
    /// batches, event enqueues, and injected faults record into it so the
    /// server side of the pipeline shares the client's span tree.
    tracer: Option<rtk_obs::Tracer>,
}

/// The selection table entry: who owns a selection.
#[derive(Debug, Clone, Copy)]
struct SelectionOwner {
    window: WindowId,
    client: ClientId,
    since: u64,
}

/// The simulated X server.
pub struct Server {
    tree: WindowTree,
    pub(crate) atoms: AtomTable,
    pub(crate) colormap: Colormap,
    pub(crate) fonts: FontTable,
    pub(crate) cursors: CursorTable,
    pub(crate) gcs: GcTable,
    pub(crate) bitmaps: crate::bitmap::BitmapTable,
    ids: IdAllocator,
    next_client: u32,
    clients: HashMap<ClientId, ClientState>,
    /// Clients with unapplied work (a non-empty output buffer or a
    /// deferred-by-quota remainder): `flush_all` walks only these, in
    /// sorted id order, instead of scanning every connection.
    dirty: std::collections::BTreeSet<ClientId>,
    /// Per-client request quota: the most requests one flushed batch may
    /// apply before the remainder is deferred (backpressure, not loss).
    /// `None` = unlimited (the default; `RTK_CLIENT_QUOTA` overrides).
    quota: Option<usize>,
    /// Window ids handed to clients whose CreateWindow is still buffered.
    pending_windows: HashSet<WindowId>,
    /// Output buffering on/off (off = every request flushes immediately,
    /// reproducing the pre-buffer synchronous transport).
    batching: bool,
    selections: HashMap<Atom, SelectionOwner>,
    focus: WindowId,
    pointer: (i32, i32),
    pointer_window: WindowId,
    buttons: u32,
    modifiers: u32,
    time: u64,
    /// Cumulative count of drawing requests processed (server work proxy).
    pub draw_requests: u64,
    /// Cumulative wall time spent executing requests inside the server —
    /// the "server half" of the paper's Table II row 3 split.
    pub work_time: std::time::Duration,
    /// Synthetic latency charged per round trip, simulating the IPC cost a
    /// real X connection pays (zero by default; benchmarks opt in).
    round_trip_cost: std::time::Duration,
    /// The installed deterministic fault schedule, if any.
    fault_plan: Option<FaultPlan>,
    /// Which client created each live GC — close-down bookkeeping so a
    /// kill can free the dead client's GCs and [`Server::audit`] can
    /// prove none survive it.
    gc_owners: HashMap<GcId, ClientId>,
}

/// Screen dimensions of the simulated display.
pub const SCREEN_WIDTH: u32 = 1024;
/// Screen dimensions of the simulated display.
pub const SCREEN_HEIGHT: u32 = 768;

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// Creates a server with a mapped root window covering the screen.
    pub fn new() -> Server {
        let mut ids = IdAllocator::default();
        let root_id = ids.alloc();
        let mut root = Window::new(
            root_id,
            Xid::NONE,
            ClientId(0),
            0,
            0,
            SCREEN_WIDTH,
            SCREEN_HEIGHT,
            0,
        );
        root.mapped = true;
        root.background = Pixel(1);
        Server {
            tree: WindowTree::with_root(root),
            atoms: AtomTable::new(),
            colormap: Colormap::new(),
            fonts: FontTable::default(),
            cursors: CursorTable::default(),
            gcs: GcTable::default(),
            bitmaps: crate::bitmap::BitmapTable::default(),
            ids,
            next_client: 0,
            clients: HashMap::new(),
            dirty: std::collections::BTreeSet::new(),
            quota: std::env::var("RTK_CLIENT_QUOTA")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|q| *q > 0),
            pending_windows: HashSet::new(),
            batching: std::env::var("RTK_NO_BATCH").map_or(true, |v| v.is_empty() || v == "0"),
            selections: HashMap::new(),
            focus: Xid::NONE,
            pointer: (0, 0),
            pointer_window: root_id,
            buttons: 0,
            modifiers: 0,
            time: 0,
            draw_requests: 0,
            work_time: std::time::Duration::ZERO,
            round_trip_cost: std::time::Duration::ZERO,
            fault_plan: None,
            gc_owners: HashMap::new(),
        }
    }

    // ----- fault injection ------------------------------------------------------

    /// Installs a deterministic fault schedule; replaces any previous one.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Removes the installed fault plan, returning it (with its log).
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Printable description of the installed plan and what has fired —
    /// what a failing chaos run dumps next to its seeds.
    pub fn fault_report(&self) -> String {
        match &self.fault_plan {
            Some(p) => p.describe(),
            None => "no fault plan installed\n".to_string(),
        }
    }

    /// Sets (or clears) the per-client request quota: at most `q`
    /// requests of one client apply per flushed batch; the overflow is
    /// deferred — never dropped — and each deferral bumps the client's
    /// `wire.backpressure_stalls` counter. Reply-bearing requests are
    /// never deferred (a cookie must stay redeemable), so a batch whose
    /// tail carries one applies through it.
    pub fn set_client_quota(&mut self, quota: Option<usize>) {
        self.quota = quota.filter(|q| *q > 0);
    }

    /// The configured per-client request quota, if any.
    pub fn client_quota(&self) -> Option<usize> {
        self.quota
    }

    /// Total quota deferrals recorded against `client` (the
    /// `wire.backpressure_stalls` counter).
    pub fn backpressure_stalls(&self, client: ClientId) -> u64 {
        self.clients
            .get(&client)
            .map_or(0, |c| c.obs.wire.backpressure_stalls)
    }

    /// Number of quota-deferred requests still parked on `client`.
    /// Zero once the backlog has drained — deferral is never loss.
    pub fn deferred_len(&self, client: ClientId) -> usize {
        self.clients.get(&client).map_or(0, |c| c.deferred.len())
    }

    /// Is this client's connection still alive?
    pub fn is_alive(&self, client: ClientId) -> bool {
        self.clients.get(&client).is_some_and(|c| !c.dead)
    }

    /// The last request sequence number assigned to `client` (0 if none).
    /// Fault plans key on sequence numbers; this is the anchor for
    /// "fault the next request" schedules.
    pub fn current_seq(&self, client: ClientId) -> u64 {
        self.clients.get(&client).map_or(0, |c| c.next_seq)
    }

    /// Direct (non-protocol) atom intern for embedders doing post-mortem
    /// maintenance — e.g. scrubbing a dead application's registry entry.
    /// No client is involved and nothing is counted.
    pub fn intern_atom_direct(&mut self, name: &str) -> Atom {
        self.atoms.intern(name)
    }

    /// Kills a client connection: discards its buffers and queues, then
    /// performs X close-down (DestroyAll): every window the client
    /// created is destroyed (with DestroyNotify to the survivors) and its
    /// selections are released. Statistics survive so a post-mortem can
    /// still read the counters.
    pub fn kill_client(&mut self, client: ClientId) {
        let Some(c) = self.clients.get_mut(&client) else {
            return;
        };
        if c.dead {
            return;
        }
        c.dead = true;
        c.out_buf.clear();
        c.deferred.clear();
        c.queue.clear();
        c.delayed.clear();
        c.replies.clear();
        c.pending_replies = 0;
        self.dirty.remove(&client);
        let owned: Vec<WindowId> = self
            .tree
            .iter()
            .filter(|w| w.owner == client && w.id != self.tree.root())
            .map(|w| w.id)
            .collect();
        for w in owned {
            self.destroy_window(w);
        }
        self.selections.retain(|_, o| o.client != client);
        // Close-down also retracts the dead client's interest index
        // entries on surviving windows (a dead connection receives
        // nothing, so this is behavior-invisible — it exists so the
        // post-run audit can prove no dangling interest survives a kill)
        // and frees the GCs it created, like X's DestroyAll close-down.
        for w in self.tree.iter_mut() {
            w.event_masks.remove(&client);
        }
        let owned_gcs: Vec<GcId> = self
            .gc_owners
            .iter()
            .filter(|(_, o)| **o == client)
            .map(|(g, _)| *g)
            .collect();
        for g in owned_gcs {
            self.gcs.free(g);
            self.gc_owners.remove(&g);
        }
    }

    /// Matches (and fires) a request-indexed fault for a buffered request.
    /// Drop/duplicate only apply to one-way requests: dropping a
    /// reply-bearing request would leave its cookie unredeemable, which no
    /// lossy-transport model allows (X guarantees a reply or an error).
    fn fault_for_queued(&mut self, client: ClientId, seq: u64, reply: bool) -> Option<FaultAction> {
        let plan = self.fault_plan.as_mut()?;
        plan.fire(client, seq, |a| match a {
            FaultAction::Error(_) | FaultAction::KillConnection => true,
            FaultAction::DropRequest | FaultAction::DuplicateRequest => !reply,
            FaultAction::DelayEvent(_) | FaultAction::ReorderEvent => false,
            // Byte faults key on encoded-frame indices, not sequence
            // numbers; only the wire transport fires them.
            FaultAction::CorruptByte { .. }
            | FaultAction::TruncateFrame { .. }
            | FaultAction::InjectGarbage { .. }
            | FaultAction::SplitWrite { .. }
            | FaultAction::StallDispatch { .. } => false,
        })
    }

    /// Matches (and fires) a fault for a synchronous round-trip request.
    pub(crate) fn fault_for_round_trip(
        &mut self,
        client: ClientId,
        seq: u64,
    ) -> Option<FaultAction> {
        let plan = self.fault_plan.as_mut()?;
        plan.fire(client, seq, |a| {
            matches!(a, FaultAction::Error(_) | FaultAction::KillConnection)
        })
    }

    /// Matches (and fires) a byte-layer fault for `client`'s
    /// `frame_idx`-th encoded wire frame. Only the wire transport calls
    /// this, so byte faults are strict no-ops under `RTK_NO_WIRE=1`.
    pub(crate) fn fire_byte_fault(
        &mut self,
        client: ClientId,
        frame_idx: u64,
    ) -> Option<FaultAction> {
        let plan = self.fault_plan.as_mut()?;
        let action = plan.fire(client, frame_idx, |a| a.is_byte_fault())?;
        self.record_fault(client, frame_idx, action, None, Xid::NONE);
        Some(action)
    }

    /// Books an injected fault into the client's obs counters/trace.
    pub(crate) fn record_fault(
        &mut self,
        client: ClientId,
        at: u64,
        action: FaultAction,
        kind: Option<RequestKind>,
        window: WindowId,
    ) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.record_fault(at, action, kind, window);
            if let Some(t) = &c.tracer {
                t.instant("fault", action.kind_name(), at);
            }
        }
    }

    /// Attaches a span tracer to one client; subsequent flush batches,
    /// event enqueues, and injected faults on that connection record
    /// spans/instants into it.
    pub fn set_client_tracer(&mut self, client: ClientId, tracer: rtk_obs::Tracer) {
        if let Some(c) = self.clients.get_mut(&client) {
            tracer.set_client(client.0);
            c.tracer = Some(tracer);
        }
    }

    /// Sets the synthetic per-round-trip latency (see the cache-ablation
    /// benchmark: real X requests with replies cost an IPC round trip).
    pub fn set_round_trip_cost(&mut self, cost: std::time::Duration) {
        self.round_trip_cost = cost;
    }

    /// Registers a new client connection.
    pub fn connect(&mut self) -> ClientId {
        self.next_client += 1;
        let id = ClientId(self.next_client);
        self.clients.insert(id, ClientState::default());
        id
    }

    /// The root window.
    pub fn root(&self) -> WindowId {
        self.tree.root()
    }

    /// The current server timestamp.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Statistics for one client.
    pub fn stats(&self, client: ClientId) -> ClientStats {
        self.clients
            .get(&client)
            .map(|c| c.stats)
            .unwrap_or_default()
    }

    /// Resets statistics for all clients (benchmark warm-up boundary):
    /// the coarse [`ClientStats`] — including the flush/batch counters and
    /// the pending-reply gauge — the per-kind counters, the latency
    /// histograms, and the protocol trace (the trace on/off toggle is
    /// preserved), plus the server-wide work counters. Output buffers are
    /// flushed first so the epoch boundary is exact.
    pub fn reset_stats(&mut self) {
        self.flush_all();
        for c in self.clients.values_mut() {
            c.stats = ClientStats::default();
            c.obs.reset();
            if let Some(t) = &c.tracer {
                t.reset_epoch();
            }
        }
        if let Some(p) = self.fault_plan.as_mut() {
            p.clear_log();
        }
        self.draw_requests = 0;
        self.work_time = std::time::Duration::ZERO;
    }

    /// Resets statistics and observability state for one client only
    /// (the Tcl-level `obs reset`), plus the server-wide work counters.
    /// The client's output buffer is flushed first.
    pub fn reset_client_stats(&mut self, client: ClientId) {
        self.flush_client(client);
        if let Some(c) = self.clients.get_mut(&client) {
            c.stats = ClientStats::default();
            c.obs.reset();
            if let Some(t) = &c.tracer {
                t.reset_epoch();
            }
        }
        if let Some(p) = self.fault_plan.as_mut() {
            p.clear_log_for(client.0);
        }
        self.draw_requests = 0;
        self.work_time = std::time::Duration::ZERO;
    }

    // ----- output buffering (the Xlib-style transport) --------------------------

    /// Is output buffering enabled?
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Turns output buffering on or off. Turning it off flushes pending
    /// buffers and makes every subsequent request its own flush (batch of
    /// one), which reproduces the old synchronous transport for
    /// equivalence tests; the `RTK_NO_BATCH` env var sets the initial
    /// state at server creation.
    pub fn set_batching(&mut self, on: bool) {
        if !on {
            self.flush_all();
        }
        self.batching = on;
    }

    /// Allocates the next request sequence number for a client.
    pub(crate) fn next_seq(&mut self, client: ClientId) -> u64 {
        match self.clients.get_mut(&client) {
            Some(c) => {
                c.next_seq += 1;
                c.next_seq
            }
            None => 0,
        }
    }

    /// Accounts for a request at issue time and places it in the client's
    /// output buffer (`None` = the request is discarded, e.g. a
    /// CreateWindow on a dead parent, but still counted). All counters —
    /// `requests`, per-kind, histograms, trace — bump here, at queue time,
    /// so statistics never lag behind issued requests.
    pub(crate) fn enqueue_request(
        &mut self,
        client: ClientId,
        kind: RequestKind,
        round_trip: bool,
        window: WindowId,
        seq: u64,
        q: Option<QueuedRequest>,
    ) {
        let start = std::time::Instant::now();
        let mut flush_now = !self.batching;
        if let Some(q) = q {
            if let Some(c) = self.clients.get_mut(&client) {
                c.out_buf.push((seq, q));
                self.dirty.insert(client);
                if c.out_buf.len() >= OUT_BUF_CAPACITY {
                    flush_now = true;
                }
            }
        }
        self.note_issue(client, kind, round_trip, window, seq, start);
        if flush_now {
            self.flush_client(client);
        }
    }

    /// The issue-time accounting half of [`Server::enqueue_request`]:
    /// bumps `requests`/`batched_requests`/round-trip gauges and records
    /// the obs entry, without touching any output buffer. The wire
    /// transport calls this directly — its requests are buffered as
    /// encoded frames outside the server — so both transports bump
    /// exactly the same counters at exactly the same point.
    pub(crate) fn note_issue(
        &mut self,
        client: ClientId,
        kind: RequestKind,
        round_trip: bool,
        window: WindowId,
        seq: u64,
        start: std::time::Instant,
    ) {
        let batching = self.batching;
        if let Some(c) = self.clients.get_mut(&client) {
            c.stats.requests += 1;
            if batching {
                c.stats.batched_requests += 1;
            }
            if round_trip {
                c.stats.round_trips += 1;
                c.pending_replies += 1;
                c.stats.max_pending_replies = c.stats.max_pending_replies.max(c.pending_replies);
            }
            c.obs.record(seq, kind, round_trip, window, start.elapsed());
        }
    }

    /// Flushes one client's output buffer: executes every queued request
    /// in issue order. A single synthetic round-trip cost is charged if
    /// the batch carried any reply-bearing request (the pipelined replies
    /// all travel back in one blocking wait).
    pub fn flush_client(&mut self, client: ClientId) {
        let buf = match self.clients.get_mut(&client) {
            Some(c) if !c.out_buf.is_empty() || !c.deferred.is_empty() => {
                std::mem::take(&mut c.out_buf)
            }
            _ => return,
        };
        self.apply_batch(client, buf);
    }

    /// Executes one flushed batch of requests in issue order: the shared
    /// core of [`Server::flush_client`] (in-process transport) and the
    /// wire dispatcher (which decodes a shipped frame buffer into the
    /// same `(seq, request)` list). Fault dispatch, the flush/rasterize
    /// spans, and every counter live here, so both transports apply
    /// batches with byte-identical semantics.
    pub(crate) fn apply_batch(&mut self, client: ClientId, buf: Vec<(u64, QueuedRequest)>) {
        self.apply_batch_inner(client, buf, true);
    }

    /// [`Server::apply_batch`] with the quota optionally bypassed: drain
    /// points (a client's own round trip, display observation) must apply
    /// everything regardless of backpressure.
    fn apply_batch_inner(
        &mut self,
        client: ClientId,
        mut buf: Vec<(u64, QueuedRequest)>,
        enforce_quota: bool,
    ) {
        // Deferred requests re-apply first, in issue order, ahead of the
        // newly flushed batch.
        if let Some(c) = self.clients.get_mut(&client) {
            if !c.deferred.is_empty() {
                let mut merged = std::mem::take(&mut c.deferred);
                merged.append(&mut buf);
                buf = merged;
            }
        }
        self.dirty.remove(&client);
        if buf.is_empty() {
            return;
        }
        if enforce_quota {
            if let Some(quota) = self.quota {
                if buf.len() > quota {
                    // Never defer past a reply-bearing request: its
                    // cookie must stay redeemable, so the split lands
                    // after the last one in the batch.
                    let last_reply = buf.iter().rposition(|(_, q)| q.expects_reply());
                    let split = last_reply.map_or(quota, |i| quota.max(i + 1));
                    if split < buf.len() {
                        let rest = buf.split_off(split);
                        if let Some(c) = self.clients.get_mut(&client) {
                            c.deferred = rest;
                            c.obs.wire.backpressure_stalls += 1;
                            self.dirty.insert(client);
                        }
                    }
                }
            }
        }
        let tracer = self.clients.get(&client).and_then(|c| c.tracer.clone());
        let n = buf.len() as u64;
        // The whole batch becomes one "flush" span keyed on its first
        // sequence number; a batch carrying drawing requests gets one
        // "rasterize" child covering the server-side pixel work. The
        // guards hold a clone of the tracer handle, so span bookkeeping
        // never borrows `self` during the apply loop below — fault
        // instants recorded mid-loop parent on these spans naturally.
        let first_seq = buf.first().map_or(0, |(s, _)| *s);
        let last_seq = buf.last().map_or(0, |(s, _)| *s);
        let draws = buf.iter().filter(|(_, q)| q.kind().is_drawing()).count();
        let _flush_span = tracer
            .as_ref()
            .map(|t| t.begin("flush", format!("seq {first_seq}..{last_seq}"), first_seq));
        let _raster_span = if draws > 0 {
            tracer
                .as_ref()
                .map(|t| t.begin("rasterize", format!("{draws} drawing requests"), first_seq))
        } else {
            None
        };
        let mut any_reply = false;
        let mut killed = false;
        let work_start = std::time::Instant::now();
        for (seq, q) in buf {
            self.time += 1;
            match self.fault_for_queued(client, seq, q.expects_reply()) {
                Some(FaultAction::KillConnection) => {
                    // The connection dies mid-flush: this request and the
                    // rest of the batch never reach the server.
                    self.record_fault(
                        client,
                        seq,
                        FaultAction::KillConnection,
                        Some(q.kind()),
                        Xid::NONE,
                    );
                    killed = true;
                    break;
                }
                Some(FaultAction::Error(code)) => {
                    // The request fails instead of executing. A pipelined
                    // reply-bearing request carries the error back under
                    // its cookie; a one-way fails asynchronously (the
                    // default Xlib handler would print it and carry on).
                    self.record_fault(
                        client,
                        seq,
                        FaultAction::Error(code),
                        Some(q.kind()),
                        Xid::NONE,
                    );
                    if q.expects_reply() {
                        any_reply = true;
                        let err = XError {
                            code,
                            seq,
                            kind: Some(q.kind()),
                        };
                        self.store_reply(client, seq, ReplyValue::Error(err));
                    }
                }
                Some(FaultAction::DropRequest) => {
                    self.record_fault(
                        client,
                        seq,
                        FaultAction::DropRequest,
                        Some(q.kind()),
                        Xid::NONE,
                    );
                }
                Some(FaultAction::DuplicateRequest) => {
                    self.record_fault(
                        client,
                        seq,
                        FaultAction::DuplicateRequest,
                        Some(q.kind()),
                        Xid::NONE,
                    );
                    self.apply_queued(client, q.clone());
                    self.apply_queued(client, q);
                }
                _ => {
                    any_reply |= q.expects_reply();
                    self.apply_queued(client, q);
                }
            }
        }
        self.work_time += work_start.elapsed();
        if any_reply {
            self.charge_round_trip_cost();
        }
        if let Some(c) = self.clients.get_mut(&client) {
            c.stats.flushes += 1;
            c.stats.max_batch = c.stats.max_batch.max(n);
        }
        if killed {
            self.kill_client(client);
        }
    }

    /// Flushes every dirty client's output buffer in client-id order (the
    /// order is fixed so request interleaving — and therefore every
    /// counter — is deterministic run to run). Only clients with buffered
    /// or deferred work are visited, so a fleet of idle connections costs
    /// nothing per flush. Quota-deferred remainders stay deferred — each
    /// pass applies at most one quota's worth per client, which is the
    /// backpressure that keeps one hot client from starving the rest.
    pub fn flush_all(&mut self) {
        // BTreeSet iteration is already sorted by client id.
        let ids: Vec<ClientId> = self.dirty.iter().copied().collect();
        for id in ids {
            self.flush_client(id);
        }
    }

    /// Applies everything `client` has buffered or deferred, ignoring the
    /// quota — the drain point before the client's own round trip
    /// executes (its synchronous request must observe all its earlier
    /// one-ways, in order).
    fn drain_client(&mut self, client: ClientId) {
        let buf = match self.clients.get_mut(&client) {
            Some(c) if !c.out_buf.is_empty() || !c.deferred.is_empty() => {
                std::mem::take(&mut c.out_buf)
            }
            _ => return,
        };
        self.apply_batch_inner(client, buf, false);
    }

    /// Drains every client completely, quota ignored — the "user observes
    /// the display" path: a screenshot must show the effect of every
    /// request already issued, deferred or not.
    pub fn drain_all(&mut self) {
        let ids: Vec<ClientId> = self.dirty.iter().copied().collect();
        for id in ids {
            self.drain_client(id);
        }
    }

    /// Executes one buffered request. Reply-bearing variants file their
    /// result in the client's reply table under their sequence number.
    fn apply_queued(&mut self, client: ClientId, q: QueuedRequest) {
        match q {
            QueuedRequest::CreateWindow {
                id,
                parent,
                x,
                y,
                width,
                height,
                border_width,
            } => {
                self.pending_windows.remove(&id);
                self.create_window_with_id(client, id, parent, x, y, width, height, border_width);
            }
            QueuedRequest::DestroyWindow { id } => self.destroy_window(id),
            QueuedRequest::MapWindow { id } => self.map_window(id),
            QueuedRequest::UnmapWindow { id } => self.unmap_window(id),
            QueuedRequest::ConfigureWindow {
                id,
                x,
                y,
                width,
                height,
                border_width,
            } => self.configure_window(id, x, y, width, height, border_width),
            QueuedRequest::RaiseWindow { id } => self.raise_window(id),
            QueuedRequest::ReparentWindow {
                id,
                new_parent,
                x,
                y,
            } => self.reparent_window(id, new_parent, x, y),
            QueuedRequest::SelectInput { id, event_mask } => {
                self.select_input(client, id, event_mask)
            }
            QueuedRequest::SetWindowBackground { id, pixel } => {
                self.set_window_background(id, pixel)
            }
            QueuedRequest::SetWindowBorder { id, pixel } => self.set_window_border(id, pixel),
            QueuedRequest::SetOverrideRedirect { id, on } => self.set_override_redirect(id, on),
            QueuedRequest::DefineCursor { id, cursor } => self.define_cursor(id, cursor),
            QueuedRequest::ChangeProperty { id, atom, value } => {
                self.change_property(id, atom, value)
            }
            QueuedRequest::AppendProperty { id, atom, value } => {
                self.append_property(id, atom, value)
            }
            QueuedRequest::DeleteProperty { id, atom } => self.delete_property(id, atom),
            QueuedRequest::FreeColor { pixel } => self.colormap.free(pixel),
            QueuedRequest::CreateBitmap { id, bitmap } => self.bitmaps.create_with_id(id, bitmap),
            QueuedRequest::FreeBitmap { id } => self.bitmaps.free(id),
            QueuedRequest::CopyBitmap {
                id,
                gc,
                x,
                y,
                bitmap,
            } => {
                self.copy_bitmap(id, gc, x, y, bitmap);
                self.drain_pixels(client, id);
            }
            QueuedRequest::CreateGc { id, values } => {
                self.gcs.create_with_id(id, values);
                self.gc_owners.insert(id, client);
            }
            QueuedRequest::ChangeGc { gc, values } => {
                self.gcs.change(gc, values);
            }
            QueuedRequest::FreeGc { gc } => {
                self.gcs.free(gc);
                self.gc_owners.remove(&gc);
            }
            QueuedRequest::FillRectangle { id, gc, x, y, w, h } => {
                self.fill_rectangle(id, gc, x, y, w, h);
                self.drain_pixels(client, id);
            }
            QueuedRequest::DrawRectangle { id, gc, x, y, w, h } => {
                self.draw_rectangle(id, gc, x, y, w, h);
                self.drain_pixels(client, id);
            }
            QueuedRequest::DrawLine {
                id,
                gc,
                x0,
                y0,
                x1,
                y1,
            } => {
                self.draw_line(id, gc, x0, y0, x1, y1);
                self.drain_pixels(client, id);
            }
            QueuedRequest::DrawString { id, gc, x, y, text } => {
                self.draw_string(id, gc, x, y, &text);
                self.drain_pixels(client, id);
            }
            QueuedRequest::ClearArea { id, x, y, w, h } => {
                self.clear_area(id, x, y, w, h);
                self.drain_pixels(client, id);
            }
            QueuedRequest::SetClip { id, rects } => self.set_clip(id, rects),
            QueuedRequest::ClearClip { id } => self.clear_clip(id),
            QueuedRequest::CopyArea {
                id,
                src_x,
                src_y,
                w,
                h,
                dst_x,
                dst_y,
            } => self.copy_area(id, src_x, src_y, w, h, dst_x, dst_y),
            QueuedRequest::SetSelectionOwner { selection, owner } => {
                self.set_selection_owner(client, selection, owner)
            }
            QueuedRequest::ConvertSelection {
                requestor,
                selection,
                target,
                property,
            } => self.convert_selection(requestor, selection, target, property),
            QueuedRequest::SendSelectionNotify {
                requestor,
                selection,
                target,
                property,
            } => self.send_selection_notify(requestor, selection, target, property),
            QueuedRequest::SetInputFocus { id } => self.set_input_focus(id),
            QueuedRequest::InternAtom { seq, name } => {
                let v = ReplyValue::Atom(self.atoms.intern(&name));
                self.store_reply(client, seq, v);
            }
            QueuedRequest::AllocColor { seq, rgb } => {
                let v = ReplyValue::Pixel(self.colormap.alloc(rgb));
                self.store_reply(client, seq, v);
            }
            QueuedRequest::AllocNamedColor { seq, name } => {
                let v = ReplyValue::NamedColor(self.alloc_named_color(&name));
                self.store_reply(client, seq, v);
            }
            QueuedRequest::GetProperty { seq, id, atom } => {
                let v = ReplyValue::Property(self.get_property(id, atom));
                self.store_reply(client, seq, v);
            }
            QueuedRequest::GetGeometry { seq, id } => {
                let v = ReplyValue::Geometry(self.get_geometry(id));
                self.store_reply(client, seq, v);
            }
        }
    }

    /// Drains the post-clip rasterized-pixel count accumulated on a
    /// window's surface and attributes it to the client whose drawing
    /// request just executed.
    fn drain_pixels(&mut self, client: ClientId, id: WindowId) {
        let drawn = match self.tree.get_mut(id) {
            Some(w) => w.surface.take_pixels_drawn(),
            None => return,
        };
        if drawn == 0 {
            return;
        }
        if let Some(c) = self.clients.get_mut(&client) {
            c.stats.pixels_drawn += drawn;
            c.obs.pixels_drawn += drawn;
        }
    }

    fn store_reply(&mut self, client: ClientId, seq: u64, v: ReplyValue) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.replies.insert(seq, v);
        }
    }

    /// Has the reply for `seq` been executed and filed?
    pub(crate) fn has_reply(&self, client: ClientId, seq: u64) -> bool {
        self.clients
            .get(&client)
            .is_some_and(|c| c.replies.contains_key(&seq))
    }

    /// Removes and returns the reply filed under `seq`.
    pub(crate) fn take_reply(&mut self, client: ClientId, seq: u64) -> Option<ReplyValue> {
        let c = self.clients.get_mut(&client)?;
        let v = c.replies.remove(&seq);
        if v.is_some() {
            c.pending_replies = c.pending_replies.saturating_sub(1);
        }
        v
    }

    /// Does this window id name a live window or one whose CreateWindow
    /// is still sitting in an output buffer?
    pub(crate) fn window_exists_or_pending(&self, id: WindowId) -> bool {
        self.tree.get(id).is_some() || self.pending_windows.contains(&id)
    }

    /// Hands out a window id ahead of the buffered CreateWindow that will
    /// use it (client-side XID allocation, as in real X).
    pub(crate) fn reserve_window_id(&mut self) -> WindowId {
        let id = self.ids.alloc();
        self.pending_windows.insert(id);
        id
    }

    /// Structured observability state for one client.
    pub fn client_obs(&self, client: ClientId) -> Option<&ClientObs> {
        self.clients.get(&client).map(|c| &c.obs)
    }

    /// Mutable observability state for one client (trace toggling).
    pub fn client_obs_mut(&mut self, client: ClientId) -> Option<&mut ClientObs> {
        self.clients.get_mut(&client).map(|c| &mut c.obs)
    }

    /// Records the structured trace/histogram entry for a completed
    /// request; called by [`crate::connection::Connection`] with the
    /// measured duration after the request body ran.
    pub(crate) fn record_request(
        &mut self,
        client: ClientId,
        seq: u64,
        kind: RequestKind,
        round_trip: bool,
        window: WindowId,
        duration: std::time::Duration,
    ) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.record(seq, kind, round_trip, window, duration);
        }
    }

    /// Busy-waits the synthetic IPC latency of one blocking round trip
    /// (busy, not sleeping: the simulated cost must not depend on the
    /// scheduler's sleep granularity).
    fn charge_round_trip_cost(&self) {
        if self.round_trip_cost.is_zero() {
            return;
        }
        let start = std::time::Instant::now();
        while start.elapsed() < self.round_trip_cost {
            std::hint::spin_loop();
        }
    }

    pub(crate) fn note_request(&mut self, client: ClientId, round_trip: bool) {
        self.time += 1;
        if round_trip {
            self.charge_round_trip_cost();
        }
        if let Some(c) = self.clients.get_mut(&client) {
            c.stats.requests += 1;
            if round_trip {
                c.stats.round_trips += 1;
            }
        }
    }

    /// Executes one synchronous reply-bearing request end to end: flush
    /// every output buffer (a blocked client has, by definition, already
    /// written out its queue), allocate the sequence number, dispatch any
    /// injected error/kill fault, and run the request body. Both
    /// transports call this — the in-process oracle directly, the wire
    /// dispatcher after decoding a Sync frame (having flushed the wire
    /// buffers first, so the internal `flush_all` sees empty queues) —
    /// which is what keeps sequence numbers, fault firings, and counters
    /// byte-identical across transports.
    pub(crate) fn execute_round_trip(
        &mut self,
        client: ClientId,
        req: &SyncRequest,
    ) -> Result<SyncReply, XError> {
        self.flush_all();
        // The round trip must observe every request this client already
        // issued, so its own quota-deferred remainder (if any) drains
        // fully — backpressure only ever holds back one-way traffic.
        self.drain_client(client);
        // The flush may have executed an injected kill for this client.
        if !self.is_alive(client) {
            return Err(XError::dead(0));
        }
        let start = std::time::Instant::now();
        let kind = req.kind();
        let window = req.window();
        let seq = self.next_seq(client);
        self.note_request(client, true);
        if let Some(action) = self.fault_for_round_trip(client, seq) {
            // The request went out and an error (or the connection's
            // death) came back: it costs the round trip either way.
            self.record_fault(client, seq, action, Some(kind), window);
            self.record_request(client, seq, kind, true, window, start.elapsed());
            return match action {
                FaultAction::KillConnection => {
                    self.kill_client(client);
                    Err(XError::dead(seq))
                }
                FaultAction::Error(code) => Err(XError {
                    code,
                    seq,
                    kind: Some(kind),
                }),
                _ => unreachable!("fault_for_round_trip filters to error/kill"),
            };
        }
        let work_start = std::time::Instant::now();
        let r = self.apply_sync(req);
        let end = std::time::Instant::now();
        self.work_time += end - work_start;
        self.record_request(client, seq, kind, true, window, end - start);
        Ok(r)
    }

    /// The request body of each [`SyncRequest`] (the code the old
    /// closure-based round trips inlined at their call sites).
    fn apply_sync(&mut self, req: &SyncRequest) -> SyncReply {
        match req {
            SyncRequest::InternAtom { name } => SyncReply::Atom(self.atoms.intern(name)),
            SyncRequest::GetAtomName { atom } => {
                SyncReply::OptString(self.atoms.name(*atom).map(str::to_string))
            }
            SyncRequest::QueryTree { id } => SyncReply::Tree(self.query_tree(*id)),
            SyncRequest::GetGeometry { id } => SyncReply::Geometry(self.get_geometry(*id)),
            SyncRequest::IsViewable { id } => SyncReply::Bool(self.is_viewable(*id)),
            SyncRequest::GetProperty { id, atom } => {
                SyncReply::OptString(self.get_property(*id, *atom))
            }
            SyncRequest::TakeProperty { id, atom } => {
                // X's GetProperty with delete=True: the read and the
                // delete are one request, so a concurrent append can
                // never land between them and be destroyed unread.
                let value = self.get_property(*id, *atom);
                self.delete_property(*id, *atom);
                SyncReply::OptString(value)
            }
            SyncRequest::AllocNamedColor { name } => {
                SyncReply::NamedColor(self.alloc_named_color(name))
            }
            SyncRequest::AllocColor { rgb } => SyncReply::Pixel(self.colormap.alloc(*rgb)),
            SyncRequest::QueryColor { pixel } => SyncReply::Rgb(self.colormap.rgb(*pixel)),
            SyncRequest::OpenFont { name } => SyncReply::OptXid(self.open_font(name)),
            SyncRequest::QueryFont { font } => SyncReply::Metrics(self.fonts.metrics(*font)),
            SyncRequest::CreateCursor { name } => SyncReply::OptXid(self.cursors.create(name)),
            SyncRequest::QueryBitmap { id } => {
                SyncReply::Size(self.bitmaps.get(*id).map(|b| (b.width, b.height)))
            }
            SyncRequest::GetSelectionOwner { selection } => {
                SyncReply::Window(self.get_selection_owner(*selection))
            }
            SyncRequest::GetInputFocus => SyncReply::Window(self.get_input_focus()),
        }
    }

    // ----- wire-transport counters ----------------------------------------------

    /// Counts one frame encoded on behalf of `client` (`bytes` includes
    /// the length prefix).
    pub(crate) fn note_wire_encode(&mut self, client: ClientId, bytes: usize) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.wire.frames_encoded += 1;
            c.obs.wire.bytes_encoded += bytes as u64;
            c.obs.wire.frame_bytes.record(bytes as u64);
        }
    }

    /// Counts one frame decoded on behalf of `client`.
    pub(crate) fn note_wire_decode(&mut self, client: ClientId, bytes: usize) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.wire.frames_decoded += 1;
            c.obs.wire.bytes_decoded += bytes as u64;
        }
    }

    /// Counts one shipped wire batch (the wire analogue of a non-empty
    /// buffer flush).
    pub(crate) fn note_wire_flush(&mut self, client: ClientId) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.wire.flushes += 1;
        }
    }

    /// Counts a detected frame-integrity failure (bad CRC, truncation,
    /// garbage) on `client`'s stream — always followed by a kill.
    pub(crate) fn note_checksum_error(&mut self, client: ClientId) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.wire.checksum_errors += 1;
        }
    }

    /// Counts a sync-watchdog expiry: the dispatcher failed to ack
    /// `client`'s control frame within `RTK_WIRE_DEADLINE_MS`.
    pub(crate) fn note_watchdog_fire(&mut self, client: ClientId) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.obs.wire.watchdog_fires += 1;
        }
    }

    // ----- event delivery -----------------------------------------------------

    fn enqueue(&mut self, client: ClientId, event: Event) {
        let (idx, tracer) = match self.clients.get_mut(&client) {
            Some(c) if !c.dead => {
                c.next_event += 1;
                (c.next_event, c.tracer.clone())
            }
            _ => return, // a dead connection receives nothing
        };
        // The enqueue is an instant keyed on the event index (the same
        // key the fault plan fires on); it parents on whatever span is
        // open — e.g. the flush that generated an Expose.
        if let Some(t) = &tracer {
            t.instant("event", event.name(), idx);
        }
        // ICCCM guard: before this event can be queued, any held event due
        // by now — or targeting the same window — must go first, so
        // per-window order is never violated by an injected delay.
        self.release_delayed(client, Some(event.window()), idx);
        let action = self.fault_plan.as_mut().and_then(|p| {
            p.fire(client, idx, |a| {
                matches!(a, FaultAction::DelayEvent(_) | FaultAction::ReorderEvent)
            })
        });
        if let Some(a) = action {
            self.record_fault(client, idx, a, None, event.window());
        }
        let Some(c) = self.clients.get_mut(&client) else {
            return;
        };
        c.stats.events += 1;
        match action {
            Some(FaultAction::DelayEvent(hold)) => {
                c.delayed.push((idx + u64::from(hold.max(1)), event));
            }
            Some(FaultAction::ReorderEvent) => {
                // Swap with the previously queued event, but only when the
                // two target different windows (per-window order holds).
                let swap = c
                    .queue
                    .back()
                    .is_some_and(|prev| prev.window() != event.window());
                if swap {
                    let prev = c.queue.pop_back().unwrap();
                    c.queue.push_back(event);
                    c.queue.push_back(prev);
                } else {
                    c.queue.push_back(event);
                }
            }
            _ => c.queue.push_back(event),
        }
    }

    /// Moves held-back events into the delivery queue: everything whose
    /// release index has passed, everything targeting `window` (the
    /// same-window ordering guard), or — when `window` is `None` — every
    /// held event (a blocking poll: nothing is ever lost to a delay).
    fn release_delayed(&mut self, client: ClientId, window: Option<WindowId>, now: u64) {
        let Some(c) = self.clients.get_mut(&client) else {
            return;
        };
        if c.delayed.is_empty() {
            return;
        }
        let mut kept = Vec::with_capacity(c.delayed.len());
        for (release_at, ev) in c.delayed.drain(..) {
            let due = release_at <= now || window.map_or(true, |w| ev.window() == w);
            if due {
                c.queue.push_back(ev);
            } else {
                kept.push((release_at, ev));
            }
        }
        c.delayed = kept;
    }

    /// Delivers `event` to every client that selected its mask bit on the
    /// event window; maskless (selection) events go to the window's owner.
    fn deliver(&mut self, event: Event) {
        let window = event.window();
        match event.mask_bit() {
            None => {
                if let Some(w) = self.tree.get(window) {
                    let owner = w.owner;
                    self.enqueue(owner, event);
                }
            }
            Some(bit) => {
                let Some(w) = self.tree.get(window) else {
                    return;
                };
                let targets: Vec<ClientId> = w
                    .event_masks
                    .iter()
                    .filter(|(_, m)| *m & bit != 0)
                    .map(|(c, _)| *c)
                    .collect();
                for c in targets {
                    self.enqueue(c, event.clone());
                }
            }
        }
    }

    /// Delivers a structure event to the window itself and, as a
    /// substructure event, to its parent.
    fn deliver_structure(&mut self, event: Event) {
        let window = event.window();
        self.deliver(event.clone());
        let Some(w) = self.tree.get(window) else {
            return;
        };
        let parent = w.parent;
        if parent.is_none() {
            return;
        }
        let Some(p) = self.tree.get(parent) else {
            return;
        };
        let targets: Vec<ClientId> = p
            .event_masks
            .iter()
            .filter(|(_, m)| *m & mask::SUBSTRUCTURE_NOTIFY != 0)
            .map(|(c, _)| *c)
            .collect();
        for c in targets {
            self.enqueue(c, event.clone());
        }
    }

    /// Finds the window (starting at `start` and walking up) on which some
    /// client selected `bit`; returns it, or `None` if nobody cares.
    fn propagation_target(&self, start: WindowId, bit: u32) -> Option<WindowId> {
        for w in self.tree.ancestors(start) {
            if let Some(win) = self.tree.get(w) {
                if win.any_mask() & bit != 0 {
                    return Some(w);
                }
            }
        }
        None
    }

    /// Next queued event for a client. A blocking poll is a release
    /// point for delayed events: the simulated network may hold an event
    /// back, but never loses it.
    pub fn poll_event(&mut self, client: ClientId) -> Option<Event> {
        self.release_delayed(client, None, u64::MAX);
        self.clients.get_mut(&client)?.queue.pop_front()
    }

    /// Number of queued events for a client (held-back delayed events
    /// count: they are guaranteed to arrive by the next poll).
    pub fn pending(&self, client: ClientId) -> usize {
        self.clients
            .get(&client)
            .map(|c| c.queue.len() + c.delayed.len())
            .unwrap_or(0)
    }

    // ----- window requests ------------------------------------------------------

    /// Creates a window. The window starts unmapped.
    #[allow(clippy::too_many_arguments)]
    pub fn create_window(
        &mut self,
        client: ClientId,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Option<WindowId> {
        self.tree.get(parent)?;
        let id = self.ids.alloc();
        self.create_window_with_id(client, id, parent, x, y, width, height, border_width);
        Some(id)
    }

    /// Creates a window under a pre-reserved id (the buffered-transport
    /// path: the client already holds `id`). Dropped silently if the
    /// parent vanished before the buffer flushed, matching the X error
    /// semantics for a stale parent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn create_window_with_id(
        &mut self,
        client: ClientId,
        id: WindowId,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) {
        if self.tree.get(parent).is_none() {
            return;
        }
        let mut w = Window::new(id, parent, client, x, y, width, height, border_width);
        let bg = self.colormap.rgb(w.background);
        w.surface.clear(bg);
        self.tree.insert(w);
    }

    /// Destroys a window and its subtree, generating DestroyNotify.
    ///
    /// Delivery is O(interested clients), not O(all clients): each
    /// window's saved event masks are its interest index, captured before
    /// removal, and the event goes only to clients that selected
    /// StructureNotify on that window — plus its owner, who always hears
    /// about its own window's destruction. A client that cares about a
    /// peer's window (the `send` machinery watching a peer's comm window)
    /// registers interest with SelectInput like any other event.
    pub fn destroy_window(&mut self, id: WindowId) {
        if id == self.tree.root() || self.tree.get(id).is_none() {
            return;
        }
        // Capture each doomed window's interest set before removal — once
        // the windows are gone, so are their saved masks.
        let doomed = self.tree.subtree(id);
        let mut interest: Vec<(WindowId, Vec<ClientId>)> = Vec::with_capacity(doomed.len());
        for w in doomed {
            let Some(win) = self.tree.get(w) else {
                continue;
            };
            // BTreeSet: deterministic client order, owner deduplicated
            // against its own StructureNotify selection.
            let mut who: std::collections::BTreeSet<ClientId> = win
                .event_masks
                .iter()
                .filter(|(_, m)| *m & mask::STRUCTURE_NOTIFY != 0)
                .map(|(c, _)| *c)
                .collect();
            who.insert(win.owner);
            interest.push((w, who.into_iter().collect()));
        }
        let removed = self.tree.remove_subtree(id);
        for w in &removed {
            // Release any selections owned by the window.
            self.selections.retain(|_, o| o.window != *w);
            if self.focus == *w {
                self.focus = Xid::NONE;
            }
        }
        for (w, who) in interest {
            for c in who {
                self.enqueue(c, Event::DestroyNotify { window: w });
            }
        }
        self.refresh_pointer_window();
    }

    /// Maps a window, generating MapNotify and Expose as appropriate.
    pub fn map_window(&mut self, id: WindowId) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        if w.mapped {
            return;
        }
        w.mapped = true;
        self.deliver_structure(Event::MapNotify { window: id });
        if self.tree.viewable(id) {
            self.expose_subtree(id);
        }
        self.refresh_pointer_window();
    }

    /// Unmaps a window, generating UnmapNotify.
    pub fn unmap_window(&mut self, id: WindowId) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        if !w.mapped {
            return;
        }
        w.mapped = false;
        self.deliver_structure(Event::UnmapNotify { window: id });
        self.refresh_pointer_window();
    }

    /// Generates Expose for `id` and all its viewable descendants. The
    /// whole area of each window is damaged (any finer pending damage
    /// coalesces away into it) and flushed as a count-sequenced Expose
    /// batch — with no prior damage this degenerates to one full-area
    /// Expose with `count == 0`, the classic map/resize behavior.
    fn expose_subtree(&mut self, id: WindowId) {
        let mut stack = vec![id];
        while let Some(w) = stack.pop() {
            if !self.tree.viewable(w) {
                continue;
            }
            let (width, height, children) = {
                let win = self.tree.get(w).unwrap();
                (win.width, win.height, win.children.clone())
            };
            self.damage_window(w, Rect::new(0, 0, width, height));
            self.flush_damage(w);
            stack.extend(children);
        }
    }

    /// Records damage on a window: the rect is clamped to the window's
    /// interior and coalesced into its pending-damage list. The damage
    /// is not delivered until [`Server::flush_damage`]. Counted on the
    /// owner's observability state.
    pub fn damage_window(&mut self, id: WindowId, rect: Rect) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        let bounds = Rect::new(0, 0, w.width, w.height);
        let Some(clamped) = rect.intersect(&bounds) else {
            return;
        };
        let coalesced = w.damage.add(clamped);
        let owner = w.owner;
        if let Some(c) = self.clients.get_mut(&owner) {
            c.obs.damage_rects += 1;
            c.obs.expose_coalesced += coalesced;
        }
    }

    /// Delivers a viewable window's pending damage as a sequence of
    /// Expose events with X11 `count` semantics: each event's `count`
    /// is the number of Expose events still to come for the window in
    /// this batch (N−1, N−2, …, 0). A window with no pending damage —
    /// or one that is not viewable — delivers nothing; damage on an
    /// unviewable window stays pending until it next becomes viewable.
    pub fn flush_damage(&mut self, id: WindowId) {
        if !self.tree.viewable(id) {
            return;
        }
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        let rects = w.damage.take();
        let n = rects.len();
        for (i, r) in rects.into_iter().enumerate() {
            self.deliver(Event::Expose {
                window: id,
                x: r.x,
                y: r.y,
                width: r.w,
                height: r.h,
                count: (n - 1 - i) as u32,
            });
        }
    }

    /// Moves/resizes a window; generates ConfigureNotify and, when the size
    /// changed, clears the surface to the background and exposes.
    pub fn configure_window(
        &mut self,
        id: WindowId,
        x: Option<i32>,
        y: Option<i32>,
        width: Option<u32>,
        height: Option<u32>,
        border_width: Option<u32>,
    ) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        let new_w = width.unwrap_or(w.width).max(1);
        let new_h = height.unwrap_or(w.height).max(1);
        let resized = new_w != w.width || new_h != w.height;
        w.x = x.unwrap_or(w.x);
        w.y = y.unwrap_or(w.y);
        w.width = new_w;
        w.height = new_h;
        w.border_width = border_width.unwrap_or(w.border_width);
        let (nx, ny, bw, bg) = (w.x, w.y, w.border_width, w.background);
        if resized {
            let bg_rgb = self.colormap.rgb(bg);
            let w = self.tree.get_mut(id).unwrap();
            w.surface = Surface::new(new_w, new_h, bg_rgb);
        }
        self.deliver_structure(Event::ConfigureNotify {
            window: id,
            x: nx,
            y: ny,
            width: new_w,
            height: new_h,
            border_width: bw,
        });
        if resized && self.tree.viewable(id) {
            self.expose_subtree(id);
        }
        self.refresh_pointer_window();
    }

    /// Reparents a window: unlinks it from its old parent and makes it the
    /// topmost child of `new_parent` at `(x, y)` (Tk uses this to hang
    /// menus off the root window so they can extend beyond their logical
    /// parent).
    pub fn reparent_window(&mut self, id: WindowId, new_parent: WindowId, x: i32, y: i32) {
        if id == self.tree.root() || self.tree.get(new_parent).is_none() {
            return;
        }
        let Some(w) = self.tree.get(id) else { return };
        let old_parent = w.parent;
        if let Some(p) = self.tree.get_mut(old_parent) {
            p.children.retain(|c| *c != id);
        }
        if let Some(p) = self.tree.get_mut(new_parent) {
            p.children.push(id);
        }
        if let Some(w) = self.tree.get_mut(id) {
            w.parent = new_parent;
            w.x = x;
            w.y = y;
        }
        self.refresh_pointer_window();
    }

    /// Raises a window to the top of its siblings.
    pub fn raise_window(&mut self, id: WindowId) {
        let Some(w) = self.tree.get(id) else { return };
        let parent = w.parent;
        if let Some(p) = self.tree.get_mut(parent) {
            p.children.retain(|c| *c != id);
            p.children.push(id);
        }
        if self.tree.viewable(id) {
            self.expose_subtree(id);
        }
        self.refresh_pointer_window();
    }

    /// Sets a client's event mask on a window.
    pub fn select_input(&mut self, client: ClientId, id: WindowId, event_mask: u32) {
        if let Some(w) = self.tree.get_mut(id) {
            if event_mask == 0 {
                w.event_masks.remove(&client);
            } else {
                w.event_masks.insert(client, event_mask);
            }
        }
    }

    /// Sets window attributes that affect rendering.
    pub fn set_window_background(&mut self, id: WindowId, pixel: Pixel) {
        if let Some(w) = self.tree.get_mut(id) {
            w.background = pixel;
        }
    }

    /// Sets the border pixel.
    pub fn set_window_border(&mut self, id: WindowId, pixel: Pixel) {
        if let Some(w) = self.tree.get_mut(id) {
            w.border_pixel = pixel;
        }
    }

    /// Sets override-redirect (popups).
    pub fn set_override_redirect(&mut self, id: WindowId, on: bool) {
        if let Some(w) = self.tree.get_mut(id) {
            w.override_redirect = on;
        }
    }

    /// Attaches a cursor to a window.
    pub fn define_cursor(&mut self, id: WindowId, cursor: CursorId) {
        if let Some(w) = self.tree.get_mut(id) {
            w.cursor = cursor;
        }
    }

    /// Parent and children (bottom-to-top) of a window.
    pub fn query_tree(&self, id: WindowId) -> Option<(WindowId, Vec<WindowId>)> {
        self.tree.get(id).map(|w| (w.parent, w.children.clone()))
    }

    /// Geometry of a window.
    pub fn get_geometry(&self, id: WindowId) -> Option<(i32, i32, u32, u32, u32)> {
        self.tree
            .get(id)
            .map(|w| (w.x, w.y, w.width, w.height, w.border_width))
    }

    /// Is the window viewable (mapped with all ancestors mapped)?
    pub fn is_viewable(&self, id: WindowId) -> bool {
        self.tree.viewable(id)
    }

    // ----- properties -------------------------------------------------------------

    /// Sets a property, generating PropertyNotify.
    pub fn change_property(&mut self, id: WindowId, atom: Atom, value: String) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        w.properties.insert(atom, value);
        let time = self.time;
        self.deliver(Event::PropertyNotify {
            window: id,
            atom,
            deleted: false,
            time,
        });
    }

    /// Appends one line to a property atomically (`PropModeAppend`, ICCCM):
    /// the concatenation happens server-side, so concurrent appenders can
    /// never lose each other's data to a get/change race. An existing
    /// non-empty value gets a `\n` separator first. Generates PropertyNotify.
    pub fn append_property(&mut self, id: WindowId, atom: Atom, value: String) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        let slot = w.properties.entry(atom).or_default();
        if !slot.is_empty() {
            slot.push('\n');
        }
        slot.push_str(&value);
        let time = self.time;
        self.deliver(Event::PropertyNotify {
            window: id,
            atom,
            deleted: false,
            time,
        });
    }

    /// Reads a property.
    pub fn get_property(&self, id: WindowId, atom: Atom) -> Option<String> {
        self.tree.get(id)?.properties.get(&atom).cloned()
    }

    /// Deletes a property, generating PropertyNotify (deleted).
    pub fn delete_property(&mut self, id: WindowId, atom: Atom) {
        let Some(w) = self.tree.get_mut(id) else {
            return;
        };
        if w.properties.remove(&atom).is_some() {
            let time = self.time;
            self.deliver(Event::PropertyNotify {
                window: id,
                atom,
                deleted: true,
                time,
            });
        }
    }

    // ----- selections ----------------------------------------------------------------

    /// Makes `window` the owner of `selection`; the previous owner gets
    /// SelectionClear (the ICCCM handshake of Section 3.6).
    pub fn set_selection_owner(&mut self, client: ClientId, selection: Atom, window: WindowId) {
        let time = self.time;
        if let Some(prev) = self.selections.get(&selection).copied() {
            if prev.window != window {
                self.deliver(Event::SelectionClear {
                    window: prev.window,
                    selection,
                    time,
                });
            }
        }
        if window.is_none() {
            self.selections.remove(&selection);
        } else {
            self.selections.insert(
                selection,
                SelectionOwner {
                    window,
                    client,
                    since: time,
                },
            );
        }
    }

    /// Current owner window of a selection.
    pub fn get_selection_owner(&self, selection: Atom) -> WindowId {
        self.selections
            .get(&selection)
            .map(|o| o.window)
            .unwrap_or(Xid::NONE)
    }

    /// Asks the owner of `selection` to convert it to `target` and store
    /// the result in `property` on `requestor`. If there is no owner the
    /// requestor immediately gets a refusal SelectionNotify.
    pub fn convert_selection(
        &mut self,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    ) {
        let time = self.time;
        match self.selections.get(&selection).copied() {
            Some(owner) => {
                let ev = Event::SelectionRequest {
                    owner: owner.window,
                    requestor,
                    selection,
                    target,
                    property,
                    time,
                };
                self.enqueue(owner.client, ev);
            }
            None => {
                self.deliver(Event::SelectionNotify {
                    requestor,
                    selection,
                    target,
                    property: Atom::NONE,
                    time,
                });
            }
        }
    }

    /// Sent by a selection owner after servicing a SelectionRequest.
    pub fn send_selection_notify(
        &mut self,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    ) {
        let time = self.time;
        self.deliver(Event::SelectionNotify {
            requestor,
            selection,
            target,
            property,
            time,
        });
    }

    /// Timestamp when the selection was acquired (tests/ICCCM ordering).
    pub fn selection_since(&self, selection: Atom) -> Option<u64> {
        self.selections.get(&selection).map(|o| o.since)
    }

    // ----- focus ------------------------------------------------------------------------

    /// Sets the input focus, generating FocusOut/FocusIn.
    pub fn set_input_focus(&mut self, id: WindowId) {
        if self.focus == id {
            return;
        }
        let old = self.focus;
        self.focus = id;
        if !old.is_none() && self.tree.get(old).is_some() {
            self.deliver(Event::FocusOut { window: old });
        }
        if !id.is_none() && self.tree.get(id).is_some() {
            self.deliver(Event::FocusIn { window: id });
        }
    }

    /// The focus window (`NONE` = pointer-driven).
    pub fn get_input_focus(&self) -> WindowId {
        self.focus
    }

    // ----- drawing ---------------------------------------------------------------------

    fn gc_color(&self, gc: GcId) -> (Rgb, GcValues) {
        let values = self.gcs.get(gc).unwrap_or_default();
        (self.colormap.rgb(values.foreground), values)
    }

    /// Fills a rectangle in window coordinates.
    pub fn fill_rectangle(&mut self, id: WindowId, gc: GcId, x: i32, y: i32, w: u32, h: u32) {
        self.draw_requests += 1;
        let (color, _) = self.gc_color(gc);
        if let Some(win) = self.tree.get_mut(id) {
            win.surface.fill_rect(x, y, w, h, color);
        }
    }

    /// Draws a rectangle outline.
    pub fn draw_rectangle(&mut self, id: WindowId, gc: GcId, x: i32, y: i32, w: u32, h: u32) {
        self.draw_requests += 1;
        let (color, values) = self.gc_color(gc);
        if let Some(win) = self.tree.get_mut(id) {
            win.surface
                .draw_rect(x, y, w, h, values.line_width.max(1), color);
        }
    }

    /// Draws a line.
    pub fn draw_line(&mut self, id: WindowId, gc: GcId, x0: i32, y0: i32, x1: i32, y1: i32) {
        self.draw_requests += 1;
        let (color, values) = self.gc_color(gc);
        if let Some(win) = self.tree.get_mut(id) {
            win.surface
                .draw_line(x0, y0, x1, y1, values.line_width.max(1), color);
        }
    }

    /// Draws text with the GC's font, baseline at `(x, y)`.
    pub fn draw_string(&mut self, id: WindowId, gc: GcId, x: i32, y: i32, text: &str) {
        self.draw_requests += 1;
        let (color, values) = self.gc_color(gc);
        let metrics = self.fonts.metrics(values.font).unwrap_or(FontMetrics {
            char_width: 6,
            ascent: 10,
            descent: 3,
        });
        if let Some(win) = self.tree.get_mut(id) {
            win.surface.draw_text(x, y, text, metrics, color);
        }
    }

    /// Draws a bitmap at `(x, y)`: set bits in the GC foreground.
    pub fn copy_bitmap(
        &mut self,
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        bitmap: crate::bitmap::BitmapId,
    ) {
        self.draw_requests += 1;
        let (color, _) = self.gc_color(gc);
        let Some(bm) = self.bitmaps.get(bitmap).cloned() else {
            return;
        };
        let Some(win) = self.tree.get_mut(id) else {
            return;
        };
        for by in 0..bm.height {
            for bx in 0..bm.width {
                if bm.get(bx, by) {
                    win.surface.put_pixel(x + bx as i32, y + by as i32, color);
                }
            }
        }
    }

    /// Clears an area to the window background (whole window when w/h are
    /// 0). Goes through `fill_rect` so an installed clip applies and the
    /// rasterized pixels count; a full-window request still clears the
    /// recorded text overlay even when the clip narrows the raster.
    pub fn clear_area(&mut self, id: WindowId, x: i32, y: i32, w: u32, h: u32) {
        self.draw_requests += 1;
        let Some(win) = self.tree.get(id) else {
            return;
        };
        let bg = self.colormap.rgb(win.background);
        let (w, h) = (
            if w == 0 { win.width } else { w },
            if h == 0 { win.height } else { h },
        );
        let win = self.tree.get_mut(id).unwrap();
        win.surface.fill_rect(x, y, w, h, bg);
    }

    /// Installs a clip-rectangle list on a window's surface: subsequent
    /// drawing rasterizes (and counts) only inside the union of the
    /// rects. An empty list means unclipped — X's "no clip mask".
    pub fn set_clip(&mut self, id: WindowId, rects: Vec<Rect>) {
        if let Some(w) = self.tree.get_mut(id) {
            w.surface.set_clip(rects);
        }
    }

    /// Removes the clip from a window's surface.
    pub fn clear_clip(&mut self, id: WindowId) {
        if let Some(w) = self.tree.get_mut(id) {
            w.surface.clear_clip();
        }
    }

    /// Copies a region within one window (XCopyArea with the same
    /// drawable as source and destination). Moved pixels are not
    /// re-rasterized, so nothing counts toward `pixels_drawn`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_area(
        &mut self,
        id: WindowId,
        src_x: i32,
        src_y: i32,
        w: u32,
        h: u32,
        dst_x: i32,
        dst_y: i32,
    ) {
        self.draw_requests += 1;
        if let Some(win) = self.tree.get_mut(id) {
            win.surface.copy_within(src_x, src_y, w, h, dst_x, dst_y);
        }
    }

    // ----- input synthesis (the test/driver interface) -------------------------------------

    /// Recomputes which window the pointer is in, generating Enter/Leave.
    fn refresh_pointer_window(&mut self) {
        let (x, y) = self.pointer;
        let new = self.tree.window_at(x, y);
        if new == self.pointer_window {
            return;
        }
        let old = self.pointer_window;
        self.pointer_window = new;
        let time = self.time;
        let st = self.buttons | self.modifiers;
        if self.tree.get(old).is_some() {
            let (ax, ay) = self.tree.abs_pos(old);
            self.deliver(Event::LeaveNotify {
                window: old,
                x: x - ax,
                y: y - ay,
                state: st,
                time,
            });
        }
        let (ax, ay) = self.tree.abs_pos(new);
        self.deliver(Event::EnterNotify {
            window: new,
            x: x - ax,
            y: y - ay,
            state: st,
            time,
        });
    }

    /// Moves the pointer to root coordinates, generating crossing and
    /// motion events.
    pub fn warp_pointer(&mut self, x: i32, y: i32) {
        self.time += 1;
        self.pointer = (x, y);
        self.refresh_pointer_window();
        // Motion propagates from the deepest window upward.
        let deepest = self.pointer_window;
        if let Some(target) = self.propagation_target(deepest, mask::POINTER_MOTION) {
            let (ax, ay) = self.tree.abs_pos(target);
            let time = self.time;
            let st = self.buttons | self.modifiers;
            self.deliver(Event::MotionNotify {
                window: target,
                x: x - ax,
                y: y - ay,
                x_root: x,
                y_root: y,
                state: st,
                time,
            });
        }
    }

    /// Current pointer position in root coordinates.
    pub fn pointer(&self) -> (i32, i32) {
        self.pointer
    }

    /// Presses a mouse button at the current pointer position.
    pub fn press_button(&mut self, button: u8) {
        self.time += 1;
        let (x, y) = self.pointer;
        let st = self.buttons | self.modifiers;
        self.buttons |= state::BUTTON1 << (button.saturating_sub(1).min(2));
        let deepest = self.pointer_window;
        if let Some(target) = self.propagation_target(deepest, mask::BUTTON_PRESS) {
            let (ax, ay) = self.tree.abs_pos(target);
            let time = self.time;
            self.deliver(Event::ButtonPress {
                window: target,
                button,
                x: x - ax,
                y: y - ay,
                x_root: x,
                y_root: y,
                state: st,
                time,
            });
        }
    }

    /// Releases a mouse button.
    pub fn release_button(&mut self, button: u8) {
        self.time += 1;
        let (x, y) = self.pointer;
        self.buttons &= !(state::BUTTON1 << (button.saturating_sub(1).min(2)));
        let st = self.buttons | self.modifiers;
        let deepest = self.pointer_window;
        if let Some(target) = self.propagation_target(deepest, mask::BUTTON_RELEASE) {
            let (ax, ay) = self.tree.abs_pos(target);
            let time = self.time;
            self.deliver(Event::ButtonRelease {
                window: target,
                button,
                x: x - ax,
                y: y - ay,
                x_root: x,
                y_root: y,
                state: st,
                time,
            });
        }
    }

    /// Sets the logical modifier state used for subsequent key events.
    pub fn set_modifiers(&mut self, modifiers: u32) {
        self.modifiers = modifiers;
    }

    /// Presses (and releases) a key. Key events go to the focus window if
    /// one is set, otherwise to the window under the pointer; either way
    /// they propagate upward to a selecting window.
    pub fn press_key(&mut self, keysym: Keysym) {
        self.time += 1;
        let start = if self.focus.is_none() || self.tree.get(self.focus).is_none() {
            self.pointer_window
        } else {
            self.focus
        };
        let st = self.buttons | self.modifiers;
        let (x, y) = self.pointer;
        if let Some(target) = self.propagation_target(start, mask::KEY_PRESS) {
            let (ax, ay) = self.tree.abs_pos(target);
            let time = self.time;
            self.deliver(Event::KeyPress {
                window: target,
                keysym: keysym.clone(),
                x: x - ax,
                y: y - ay,
                state: st,
                time,
            });
        }
        if let Some(target) = self.propagation_target(start, mask::KEY_RELEASE) {
            let (ax, ay) = self.tree.abs_pos(target);
            let time = self.time;
            self.deliver(Event::KeyRelease {
                window: target,
                keysym,
                x: x - ax,
                y: y - ay,
                state: st,
                time,
            });
        }
    }

    // ----- compositing ------------------------------------------------------------------

    /// Composites the visible window tree into a single screen image.
    pub fn compose_screen(&self) -> Surface {
        let root = self.tree.root();
        let rw = self.tree.get(root).unwrap();
        let mut screen = Surface::new(rw.width, rw.height, self.colormap.rgb(rw.background));
        self.compose_into(&mut screen, root);
        screen
    }

    fn compose_into(&self, screen: &mut Surface, id: WindowId) {
        let Some(w) = self.tree.get(id) else {
            return;
        };
        if !self.tree.viewable(id) {
            return;
        }
        let (ax, ay) = self.tree.abs_pos(id);
        if w.border_width > 0 {
            let b = w.border_width;
            screen.draw_rect(
                ax - b as i32,
                ay - b as i32,
                w.width + 2 * b,
                w.height + 2 * b,
                b,
                self.colormap.rgb(w.border_pixel),
            );
        }
        screen.blit(&w.surface, ax, ay);
        for &c in &w.children {
            self.compose_into(screen, c);
        }
    }

    /// Renders an ASCII-art screen dump: window frames become box-drawing
    /// characters and drawn text appears at its character cell. Used for
    /// the Figure 10 reproduction and debugging.
    pub fn ascii_dump(&self) -> String {
        const CELL_W: i32 = 6;
        const CELL_H: i32 = 8;
        let root = self.tree.root();
        let rw = self.tree.get(root).unwrap();
        let cols = (rw.width as i32 / CELL_W) as usize;
        let rows = (rw.height as i32 / CELL_H) as usize;
        let mut grid = vec![vec![' '; cols]; rows];
        let mut order: Vec<WindowId> = Vec::new();
        self.paint_order(root, &mut order);
        let mut any_min_col = cols;
        let mut any_max_col = 0usize;
        let mut any_min_row = rows;
        let mut any_max_row = 0usize;
        for id in order {
            let w = self.tree.get(id).unwrap();
            if id == root {
                continue;
            }
            let (ax, ay) = self.tree.abs_pos(id);
            let c0 = (ax / CELL_W).max(0) as usize;
            let r0 = (ay / CELL_H).max(0) as usize;
            let c1 = (((ax + w.width as i32) / CELL_W) as usize).min(cols.saturating_sub(1));
            let r1 = (((ay + w.height as i32) / CELL_H) as usize).min(rows.saturating_sub(1));
            if c0 >= cols || r0 >= rows || c1 <= c0 || r1 <= r0 {
                continue;
            }
            any_min_col = any_min_col.min(c0);
            any_max_col = any_max_col.max(c1);
            any_min_row = any_min_row.min(r0);
            any_max_row = any_max_row.max(r1);
            for r in [r0, r1] {
                for cell in grid[r][c0..=c1].iter_mut() {
                    *cell = '-';
                }
            }
            for row in grid.iter_mut().take(r1 + 1).skip(r0) {
                row[c0] = '|';
                row[c1] = '|';
            }
            grid[r0][c0] = '+';
            grid[r0][c1] = '+';
            grid[r1][c0] = '+';
            grid[r1][c1] = '+';
            // Interior: clear, then text overlay.
            for row in grid.iter_mut().take(r1).skip(r0 + 1) {
                for cell in row.iter_mut().take(c1).skip(c0 + 1) {
                    *cell = ' ';
                }
            }
            for (tx, ty, text) in &w.surface.texts {
                let tc = ((ax + tx) / CELL_W) as usize;
                // Clamp the text row into the box interior so that short
                // widgets (a one-line button) still show their label.
                let tr =
                    (((ay + ty) / CELL_H) as usize).clamp(r0 + 1, r1.saturating_sub(1).max(r0 + 1));
                if tr >= rows || tr >= r1 {
                    continue;
                }
                // Shift text starting at the border inward one cell.
                let start_col = tc.max(c0 + 1);
                for (n, ch) in text.chars().enumerate() {
                    let col = start_col + n;
                    if col < cols && col < c1 {
                        grid[tr][col] = ch;
                    }
                }
            }
        }
        if any_max_col <= any_min_col {
            return String::new();
        }
        let mut out = String::new();
        for row in grid.iter().take(any_max_row + 1).skip(any_min_row) {
            let line: String = row[any_min_col..=any_max_col].iter().collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    fn paint_order(&self, id: WindowId, out: &mut Vec<WindowId>) {
        if !self.tree.viewable(id) {
            return;
        }
        out.push(id);
        if let Some(w) = self.tree.get(id) {
            for &c in &w.children {
                self.paint_order(c, out);
            }
        }
    }

    // ----- resource helpers used by Connection ------------------------------------------------

    pub(crate) fn alloc_named_color(&mut self, name: &str) -> Option<(Pixel, Rgb)> {
        let rgb = lookup_color(name)?;
        Some((self.colormap.alloc(rgb), rgb))
    }

    pub(crate) fn open_font(&mut self, name: &str) -> Option<FontId> {
        self.fonts.open(name)
    }

    /// Direct read access for tests: a window's surface.
    pub fn window_surface(&self, id: WindowId) -> Option<&Surface> {
        self.tree.get(id).map(|w| &w.surface)
    }

    /// Number of live windows including the root.
    pub fn window_count(&self) -> usize {
        self.tree.len()
    }

    // ----- post-run resource audit ------------------------------------------------

    /// The post-run resource reckoning: checks every reclamation
    /// invariant the kill/teardown paths promise and returns one line
    /// per violation (empty = clean). Call at quiescence — after a final
    /// dispatch/flush — since live clients may legitimately hold
    /// deferred work mid-run. The chaos harnesses run this after every
    /// run; Tcl exposes it as `obs audit`.
    ///
    /// Invariants:
    /// * no window, window interest entry (saved event mask), selection,
    ///   or GC is owned by a dead client;
    /// * dead clients hold no buffered requests, queued or delayed
    ///   events, parked replies, or dirty-set membership;
    /// * no live client has a quota-deferred remainder (deferral is
    ///   backpressure, never loss — at quiescence it must have drained);
    /// * every `send` registry shard on the root window references only
    ///   existing comm windows owned by live clients;
    /// * dead clients' span tracers have no open spans.
    pub fn audit(&self) -> Vec<String> {
        let mut v = Vec::new();
        let root = self.tree.root();
        for w in self.tree.iter() {
            if w.id != root && !self.is_alive(w.owner) {
                v.push(format!(
                    "window {} owned by dead client {}",
                    w.id.0, w.owner.0
                ));
            }
            for c in w.event_masks.keys() {
                if !self.is_alive(*c) {
                    v.push(format!(
                        "window {} holds an interest entry for dead client {}",
                        w.id.0, c.0
                    ));
                }
            }
        }
        for (atom, owner) in &self.selections {
            if !self.is_alive(owner.client) {
                v.push(format!(
                    "selection {} owned by dead client {}",
                    self.atoms.name(*atom).unwrap_or("?"),
                    owner.client.0
                ));
            }
        }
        for (gc, owner) in &self.gc_owners {
            if !self.is_alive(*owner) {
                v.push(format!("gc {} owned by dead client {}", gc.0, owner.0));
            }
        }
        for (id, c) in &self.clients {
            if c.dead {
                if !c.out_buf.is_empty() {
                    v.push(format!(
                        "dead client {} still buffers {} requests",
                        id.0,
                        c.out_buf.len()
                    ));
                }
                if !c.deferred.is_empty() {
                    v.push(format!(
                        "dead client {} still holds {} quota-deferred requests",
                        id.0,
                        c.deferred.len()
                    ));
                }
                if !c.queue.is_empty() || !c.delayed.is_empty() {
                    v.push(format!(
                        "dead client {} still has queued events ({} queued, {} delayed)",
                        id.0,
                        c.queue.len(),
                        c.delayed.len()
                    ));
                }
                if !c.replies.is_empty() || c.pending_replies != 0 {
                    v.push(format!(
                        "dead client {} still has {} parked / {} pending replies",
                        id.0,
                        c.replies.len(),
                        c.pending_replies
                    ));
                }
                if self.dirty.contains(id) {
                    v.push(format!("dead client {} is still in the dirty set", id.0));
                }
                if let Some(t) = &c.tracer {
                    let open = t.open_count();
                    if open > 0 {
                        v.push(format!("dead client {} has {open} unclosed spans", id.0));
                    }
                }
            } else if !c.deferred.is_empty() {
                v.push(format!(
                    "live client {} still holds {} quota-deferred requests at quiescence",
                    id.0,
                    c.deferred.len()
                ));
            }
        }
        if let Some(rw) = self.tree.get(root) {
            for (atom, value) in &rw.properties {
                let Some(name) = self.atoms.name(*atom) else {
                    continue;
                };
                if name != "InterpRegistry" && !name.starts_with("InterpRegistry.") {
                    continue;
                }
                for item in split_braced_list(value) {
                    let pair = split_braced_list(&item);
                    let (Some(app), Some(xid)) = (pair.first(), pair.get(1)) else {
                        v.push(format!(
                            "registry shard {name} has malformed entry {item:?}"
                        ));
                        continue;
                    };
                    let Ok(raw) = xid.parse::<u32>() else {
                        v.push(format!(
                            "registry shard {name} has malformed entry {item:?}"
                        ));
                        continue;
                    };
                    match self.tree.get(Xid(raw)) {
                        None => v.push(format!(
                            "registry shard {name} entry \"{app}\" references missing window {raw}"
                        )),
                        Some(w) if !self.is_alive(w.owner) => v.push(format!(
                            "registry shard {name} entry \"{app}\" references window {raw} \
                             of dead client {}",
                            w.owner.0
                        )),
                        Some(_) => {}
                    }
                }
            }
        }
        v.sort();
        v
    }

    /// Number of distinct colormap cells (cache ablation metric).
    pub fn colormap_cells(&self) -> usize {
        self.colormap.cell_count()
    }
}

/// Minimal Tcl-list splitter for [`Server::audit`]'s registry check:
/// top-level items separated by whitespace, one brace layer stripped.
/// Registry values are written by `tcl::format_list`; this subset covers
/// its output for registry entries (app names and decimal window ids
/// never need backslash quoting).
fn split_braced_list(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    let mut in_item = false;
    for ch in s.chars() {
        match ch {
            '{' => {
                if depth > 0 {
                    cur.push(ch);
                }
                depth += 1;
                in_item = true;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth > 0 {
                    cur.push(ch);
                } else {
                    out.push(std::mem::take(&mut cur));
                    in_item = false;
                }
            }
            c if c.is_whitespace() && depth == 0 => {
                if in_item {
                    out.push(std::mem::take(&mut cur));
                    in_item = false;
                }
            }
            c => {
                cur.push(c);
                in_item = true;
            }
        }
    }
    if in_item {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Server, ClientId) {
        let mut s = Server::new();
        let c = s.connect();
        (s, c)
    }

    #[test]
    fn create_and_map_generates_expose() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 10, 10, 100, 50, 1).unwrap();
        s.select_input(c, w, mask::EXPOSURE | mask::STRUCTURE_NOTIFY);
        s.map_window(w);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events.iter().any(|e| matches!(e, Event::MapNotify { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::Expose { .. })));
    }

    #[test]
    fn unmapped_window_gets_no_expose() {
        let (mut s, c) = setup();
        let root = s.root();
        let parent = s.create_window(c, root, 0, 0, 100, 100, 0).unwrap();
        let child = s.create_window(c, parent, 0, 0, 50, 50, 0).unwrap();
        s.select_input(c, child, mask::EXPOSURE);
        s.map_window(child); // parent still unmapped: not viewable
        assert_eq!(s.pending(c), 0);
        s.map_window(parent); // now the child becomes viewable
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Expose { window, .. } if *window == child)));
    }

    #[test]
    fn configure_resize_exposes_and_notifies() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        s.select_input(c, w, mask::EXPOSURE | mask::STRUCTURE_NOTIFY);
        s.map_window(w);
        while s.poll_event(c).is_some() {}
        s.configure_window(w, Some(5), None, Some(80), Some(60), None);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::ConfigureNotify {
                x: 5,
                width: 80,
                height: 60,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(e, Event::Expose { .. })));
        assert_eq!(s.get_geometry(w).unwrap(), (5, 0, 80, 60, 0));
    }

    #[test]
    fn destroy_notifies_and_removes() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        let kid = s.create_window(c, w, 0, 0, 10, 10, 0).unwrap();
        s.destroy_window(w);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        let destroyed: Vec<WindowId> = events
            .iter()
            .filter_map(|e| match e {
                Event::DestroyNotify { window } => Some(*window),
                _ => None,
            })
            .collect();
        assert_eq!(destroyed, vec![kid, w]);
        assert!(s.get_geometry(w).is_none());
    }

    #[test]
    fn enter_leave_on_pointer_motion() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 100, 100, 50, 50, 0).unwrap();
        s.select_input(c, w, mask::ENTER_WINDOW | mask::LEAVE_WINDOW);
        s.map_window(w);
        s.warp_pointer(125, 125);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::EnterNotify { window, .. } if *window == w)));
        s.warp_pointer(10, 10);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::LeaveNotify { window, .. } if *window == w)));
    }

    #[test]
    fn button_press_propagates_to_selecting_ancestor() {
        let (mut s, c) = setup();
        let root = s.root();
        let parent = s.create_window(c, root, 0, 0, 200, 200, 0).unwrap();
        let child = s.create_window(c, parent, 50, 50, 100, 100, 0).unwrap();
        s.select_input(c, parent, mask::BUTTON_PRESS);
        s.map_window(parent);
        s.map_window(child);
        s.warp_pointer(75, 75); // inside child
        s.press_button(1);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        let press = events
            .iter()
            .find_map(|e| match e {
                Event::ButtonPress { window, x, y, .. } => Some((*window, *x, *y)),
                _ => None,
            })
            .expect("press delivered");
        assert_eq!(press, (parent, 75, 75)); // coordinates relative to parent
    }

    #[test]
    fn key_goes_to_focus_window() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        s.select_input(c, w, mask::KEY_PRESS);
        s.map_window(w);
        s.set_input_focus(w);
        s.press_key(Keysym::from_char('a'));
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events.iter().any(
            |e| matches!(e, Event::KeyPress { window, keysym, .. } if *window == w && keysym.name == "a")
        ));
    }

    #[test]
    fn property_roundtrip_and_notify() {
        let (mut s, c) = setup();
        let root = s.root();
        s.select_input(c, root, mask::PROPERTY_CHANGE);
        let atom = s.atoms.intern("MY_PROP");
        s.change_property(root, atom, "hello".into());
        assert_eq!(s.get_property(root, atom), Some("hello".into()));
        let ev = s.poll_event(c).unwrap();
        assert!(matches!(ev, Event::PropertyNotify { deleted: false, .. }));
        s.delete_property(root, atom);
        assert_eq!(s.get_property(root, atom), None);
        let ev = s.poll_event(c).unwrap();
        assert!(matches!(ev, Event::PropertyNotify { deleted: true, .. }));
    }

    #[test]
    fn append_property_concatenates_with_newline_and_notifies() {
        let (mut s, c) = setup();
        let root = s.root();
        s.select_input(c, root, mask::PROPERTY_CHANGE);
        let atom = s.atoms.intern("QUEUE");
        s.append_property(root, atom, "first".into());
        assert_eq!(s.get_property(root, atom), Some("first".into()));
        s.append_property(root, atom, "second".into());
        assert_eq!(s.get_property(root, atom), Some("first\nsecond".into()));
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::PropertyNotify { deleted: false, .. }))
                .count(),
            2
        );
        // Appending to a missing window is a no-op, not a crash.
        s.append_property(Xid(0xdead), atom, "lost".into());
    }

    #[test]
    fn selection_handshake() {
        let mut s = Server::new();
        let c1 = s.connect();
        let c2 = s.connect();
        let root = s.root();
        let w1 = s.create_window(c1, root, 0, 0, 10, 10, 0).unwrap();
        let w2 = s.create_window(c2, root, 20, 0, 10, 10, 0).unwrap();
        let primary = s.atoms.intern("PRIMARY");
        let string = s.atoms.intern("STRING");
        let prop = s.atoms.intern("RESULT");

        s.set_selection_owner(c1, primary, w1);
        assert_eq!(s.get_selection_owner(primary), w1);

        // c2 requests conversion; c1 gets SelectionRequest.
        s.convert_selection(w2, primary, string, prop);
        let req = s.poll_event(c1).unwrap();
        assert!(matches!(req, Event::SelectionRequest { .. }));

        // c1 services it.
        s.change_property(w2, prop, "the selection".into());
        s.send_selection_notify(w2, primary, string, prop);
        let notify = std::iter::from_fn(|| s.poll_event(c2))
            .find(|e| matches!(e, Event::SelectionNotify { .. }))
            .unwrap();
        if let Event::SelectionNotify { property, .. } = notify {
            assert_eq!(s.get_property(w2, property), Some("the selection".into()));
        }

        // New owner: old owner gets SelectionClear.
        s.set_selection_owner(c2, primary, w2);
        let clear = std::iter::from_fn(|| s.poll_event(c1))
            .find(|e| matches!(e, Event::SelectionClear { .. }))
            .unwrap();
        assert_eq!(clear.window(), w1);
    }

    #[test]
    fn convert_with_no_owner_refuses() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 10, 10, 0).unwrap();
        let sel = s.atoms.intern("PRIMARY");
        let tgt = s.atoms.intern("STRING");
        let prop = s.atoms.intern("R");
        s.convert_selection(w, sel, tgt, prop);
        let ev = s.poll_event(c).unwrap();
        assert!(matches!(
            ev,
            Event::SelectionNotify {
                property: Atom::NONE,
                ..
            }
        ));
    }

    #[test]
    fn focus_events() {
        let (mut s, c) = setup();
        let root = s.root();
        let a = s.create_window(c, root, 0, 0, 10, 10, 0).unwrap();
        let b = s.create_window(c, root, 20, 0, 10, 10, 0).unwrap();
        s.select_input(c, a, mask::FOCUS_CHANGE);
        s.select_input(c, b, mask::FOCUS_CHANGE);
        s.set_input_focus(a);
        s.set_input_focus(b);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::FocusIn { window } if *window == a)));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::FocusOut { window } if *window == a)));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::FocusIn { window } if *window == b)));
    }

    #[test]
    fn drawing_affects_surface_and_compose() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 10, 10, 50, 50, 0).unwrap();
        s.map_window(w);
        let red = s.alloc_named_color("red").unwrap().0;
        let gc = s.gcs.create(GcValues {
            foreground: red,
            ..Default::default()
        });
        s.fill_rectangle(w, gc, 0, 0, 50, 50);
        let screen = s.compose_screen();
        assert_eq!(screen.pixel(10, 10), Rgb::new(255, 0, 0));
        assert_eq!(screen.pixel(9, 9), Rgb::new(255, 255, 255));
        assert_eq!(s.draw_requests, 1);
    }

    #[test]
    fn stats_count_requests_and_round_trips() {
        let (mut s, c) = setup();
        s.note_request(c, false);
        s.note_request(c, true);
        let st = s.stats(c);
        assert_eq!(st.requests, 2);
        assert_eq!(st.round_trips, 1);
        s.reset_stats();
        assert_eq!(s.stats(c), ClientStats::default());
    }

    #[test]
    fn raise_window_changes_stacking() {
        let (mut s, c) = setup();
        let root = s.root();
        let a = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        let b = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        s.map_window(a);
        s.map_window(b);
        s.warp_pointer(25, 25);
        // b was created later so it is on top.
        assert_eq!(s.query_tree(root).unwrap().1, vec![a, b]);
        s.raise_window(a);
        assert_eq!(s.query_tree(root).unwrap().1, vec![b, a]);
    }

    #[test]
    fn reparent_moves_window_to_new_parent() {
        let (mut s, c) = setup();
        let root = s.root();
        let a = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        let w = s.create_window(c, a, 5, 5, 10, 10, 0).unwrap();
        s.reparent_window(w, root, 200, 100);
        let (parent, _) = s.query_tree(w).unwrap();
        assert_eq!(parent, root);
        assert_eq!(s.get_geometry(w).unwrap(), (200, 100, 10, 10, 0));
        assert!(!s.query_tree(a).unwrap().1.contains(&w));
        assert!(s.query_tree(root).unwrap().1.contains(&w));
    }

    #[test]
    fn reparented_window_is_hit_by_pointer() {
        let (mut s, c) = setup();
        let root = s.root();
        let a = s.create_window(c, root, 0, 0, 20, 20, 0).unwrap();
        let menu = s.create_window(c, a, 0, 0, 40, 40, 0).unwrap();
        s.map_window(a);
        s.reparent_window(menu, root, 300, 300);
        s.map_window(menu);
        // The point is far outside `a`, but inside the reparented window.
        assert_eq!(s.tree.window_at(310, 310), menu);
    }

    #[test]
    fn reparent_rejects_root_and_unknown_parents() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 10, 10, 0).unwrap();
        s.reparent_window(root, w, 0, 0); // no-op
        assert_eq!(s.query_tree(root).unwrap().0, Xid::NONE);
        s.reparent_window(w, Xid(9999), 0, 0); // no-op
        assert_eq!(s.query_tree(w).unwrap().0, root);
    }

    #[test]
    fn compose_draws_borders() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 10, 10, 20, 20, 2).unwrap();
        let red = s.alloc_named_color("red").unwrap().0;
        s.set_window_border(w, red);
        s.map_window(w);
        let screen = s.compose_screen();
        // The window is at (10,10) with border 2, so its interior origin
        // is (12,12) and the border ring covers (10,10) and (11,11).
        assert_eq!(screen.pixel(10, 10), Rgb::new(255, 0, 0));
        assert_eq!(screen.pixel(11, 11), Rgb::new(255, 0, 0));
        assert_ne!(screen.pixel(9, 9), Rgb::new(255, 0, 0));
    }

    #[test]
    fn unmapped_windows_are_not_composited() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        let red = s.alloc_named_color("red").unwrap().0;
        s.set_window_background(w, red);
        s.map_window(w);
        s.clear_area(w, 0, 0, 0, 0);
        assert_eq!(s.compose_screen().pixel(5, 5), Rgb::new(255, 0, 0));
        s.unmap_window(w);
        assert_eq!(s.compose_screen().pixel(5, 5), Rgb::new(255, 255, 255));
    }

    fn exposes(events: &[Event]) -> Vec<(i32, i32, u32, u32, u32)> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Expose {
                    x,
                    y,
                    width,
                    height,
                    count,
                    ..
                } => Some((*x, *y, *width, *height, *count)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn expose_count_sequences_damage_rects() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 100, 100, 0).unwrap();
        s.select_input(c, w, mask::EXPOSURE);
        s.map_window(w);
        // Map with no prior damage: one full-area Expose, count 0 — the
        // shape every count == 0 waiter in the toolkit relies on.
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert_eq!(exposes(&events), vec![(0, 0, 100, 100, 0)]);

        // Two disjoint damage rects flush as a batch whose counts step
        // down to 0 (X11 Expose sequencing).
        s.damage_window(w, Rect::new(5, 5, 10, 10));
        s.damage_window(w, Rect::new(40, 40, 10, 10));
        s.flush_damage(w);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        let batch = exposes(&events);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].4, 1);
        assert_eq!(batch[1].4, 0);
    }

    #[test]
    fn map_coalesces_pending_damage_into_full_expose() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 80, 60, 0).unwrap();
        s.select_input(c, w, mask::EXPOSURE);
        // Damage before the window is viewable stays pending...
        s.damage_window(w, Rect::new(3, 3, 5, 5));
        s.flush_damage(w); // not viewable: delivers nothing
        assert_eq!(s.pending(c), 0);
        // ...and mapping swallows it into the full-area Expose.
        s.map_window(w);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert_eq!(exposes(&events), vec![(0, 0, 80, 60, 0)]);
    }

    #[test]
    fn damage_clamps_to_window_and_counts_on_owner() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 0, 0, 50, 50, 0).unwrap();
        s.select_input(c, w, mask::EXPOSURE);
        s.map_window(w);
        while s.poll_event(c).is_some() {}
        // Out-of-bounds damage is dropped; straddling damage is clamped.
        s.damage_window(w, Rect::new(100, 100, 10, 10));
        s.damage_window(w, Rect::new(40, 40, 20, 20));
        s.flush_damage(w);
        let events: Vec<Event> = std::iter::from_fn(|| s.poll_event(c)).collect();
        assert_eq!(exposes(&events), vec![(40, 40, 10, 10, 0)]);
        let obs = s.client_obs(c).unwrap();
        assert!(obs.damage_rects >= 1);
    }

    #[test]
    fn ascii_dump_shows_boxes_and_text() {
        let (mut s, c) = setup();
        let root = s.root();
        let w = s.create_window(c, root, 16, 32, 200, 100, 1).unwrap();
        s.map_window(w);
        let font = s.open_font("fixed").unwrap();
        let gc = s.gcs.create(GcValues {
            font,
            ..Default::default()
        });
        s.draw_string(w, gc, 40, 50, "Hello");
        let dump = s.ascii_dump();
        assert!(dump.contains('+'), "dump:\n{dump}");
        assert!(dump.contains("Hello"), "dump:\n{dump}");
    }
}
