//! Window records and tree operations.
//!
//! Windows form a tree rooted at the screen's root window. Each window has
//! a position relative to its parent, a size, a border, a background, a
//! per-client event mask, properties, and (when viewable) a backing
//! surface that clients draw into.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::damage::DamageList;
use crate::ids::{ClientId, CursorId, Pixel, WindowId, Xid};
use crate::render::Surface;

/// One window's server-side state.
#[derive(Debug)]
pub struct Window {
    /// This window's id.
    pub id: WindowId,
    /// Parent window (`NONE` for the root).
    pub parent: WindowId,
    /// Children in stacking order, bottom to top.
    pub children: Vec<WindowId>,
    /// Position relative to the parent's origin.
    pub x: i32,
    /// Position relative to the parent's origin.
    pub y: i32,
    /// Interior width (excludes border).
    pub width: u32,
    /// Interior height (excludes border).
    pub height: u32,
    /// Border width.
    pub border_width: u32,
    /// Background pixel, painted on clear/expose.
    pub background: Pixel,
    /// Border pixel.
    pub border_pixel: Pixel,
    /// Is this window mapped?
    pub mapped: bool,
    /// Bypass the window manager (menus, override-redirect popups).
    pub override_redirect: bool,
    /// Cursor displayed over this window (`NONE` inherits the parent's).
    pub cursor: CursorId,
    /// Event selections, per client.
    pub event_masks: HashMap<ClientId, u32>,
    /// Properties attached to this window.
    pub properties: HashMap<Atom, String>,
    /// Backing pixels.
    pub surface: Surface,
    /// Pending damage: areas awaiting Expose delivery, coalesced.
    pub damage: DamageList,
    /// The client that created the window.
    pub owner: ClientId,
}

impl Window {
    /// Creates a window record with defaults matching `CreateWindow`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: WindowId,
        parent: WindowId,
        owner: ClientId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Window {
        Window {
            id,
            parent,
            children: Vec::new(),
            x,
            y,
            width: width.max(1),
            height: height.max(1),
            border_width,
            background: Pixel(1),
            border_pixel: Pixel(0),
            mapped: false,
            override_redirect: false,
            cursor: Xid::NONE,
            event_masks: HashMap::new(),
            properties: HashMap::new(),
            surface: Surface::new(
                width.max(1),
                height.max(1),
                crate::color::Rgb::new(255, 255, 255),
            ),
            damage: DamageList::new(),
            owner,
        }
    }

    /// The union of all clients' event masks on this window.
    pub fn any_mask(&self) -> u32 {
        self.event_masks.values().fold(0, |a, m| a | m)
    }
}

/// The window tree: storage plus pure tree queries. The server wraps this
/// with event generation and rendering.
#[derive(Debug, Default)]
pub struct WindowTree {
    windows: HashMap<WindowId, Window>,
    root: WindowId,
}

impl WindowTree {
    /// Creates a tree whose root is `root` (already constructed).
    pub fn with_root(root: Window) -> WindowTree {
        let id = root.id;
        let mut windows = HashMap::new();
        windows.insert(id, root);
        WindowTree { windows, root: id }
    }

    /// The root window id.
    pub fn root(&self) -> WindowId {
        self.root
    }

    /// Immutable access to a window.
    pub fn get(&self, id: WindowId) -> Option<&Window> {
        self.windows.get(&id)
    }

    /// Mutable access to a window.
    pub fn get_mut(&mut self, id: WindowId) -> Option<&mut Window> {
        self.windows.get_mut(&id)
    }

    /// Inserts a new window and links it as the topmost child of its parent.
    pub fn insert(&mut self, window: Window) {
        let id = window.id;
        let parent = window.parent;
        self.windows.insert(id, window);
        if let Some(p) = self.windows.get_mut(&parent) {
            p.children.push(id);
        }
    }

    /// Removes `id` and its whole subtree; returns the removed ids
    /// (depth-first, children before parents).
    pub fn remove_subtree(&mut self, id: WindowId) -> Vec<WindowId> {
        let mut removed = Vec::new();
        self.collect_subtree(id, &mut removed);
        // Children first so DestroyNotify order matches X.
        removed.reverse();
        for w in &removed {
            self.windows.remove(w);
        }
        // Unlink from the parent.
        for w in self.windows.values_mut() {
            w.children.retain(|c| c != &id);
        }
        removed
    }

    /// The ids [`WindowTree::remove_subtree`] would remove, in the same
    /// order (children before parents), without removing anything — for
    /// callers that must capture per-window state (saved event masks)
    /// before the windows are gone.
    pub fn subtree(&self, id: WindowId) -> Vec<WindowId> {
        let mut ids = Vec::new();
        self.collect_subtree(id, &mut ids);
        ids.reverse();
        ids
    }

    fn collect_subtree(&self, id: WindowId, out: &mut Vec<WindowId>) {
        out.push(id);
        if let Some(w) = self.windows.get(&id) {
            for &c in &w.children {
                self.collect_subtree(c, out);
            }
        }
    }

    /// Number of live windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.windows.len() <= 1
    }

    /// Absolute (root-relative) coordinates of a window's interior origin.
    pub fn abs_pos(&self, id: WindowId) -> (i32, i32) {
        let mut x = 0;
        let mut y = 0;
        let mut cur = id;
        while let Some(w) = self.windows.get(&cur) {
            x += w.x + w.border_width as i32;
            y += w.y + w.border_width as i32;
            if w.parent.is_none() {
                // The root's own offset is zero; undo the border add.
                x -= w.x + w.border_width as i32;
                y -= w.y + w.border_width as i32;
                break;
            }
            cur = w.parent;
        }
        (x, y)
    }

    /// Is the window and all of its ancestors mapped?
    pub fn viewable(&self, id: WindowId) -> bool {
        let mut cur = id;
        loop {
            let Some(w) = self.windows.get(&cur) else {
                return false;
            };
            if !w.mapped {
                return false;
            }
            if w.parent.is_none() {
                return true;
            }
            cur = w.parent;
        }
    }

    /// The deepest viewable window containing the root-relative point.
    pub fn window_at(&self, x: i32, y: i32) -> WindowId {
        let mut cur = self.root;
        'descend: loop {
            let w = &self.windows[&cur];
            let (ax, ay) = self.abs_pos(cur);
            // Children are bottom-to-top; topmost match wins.
            for &child in w.children.iter().rev() {
                let c = &self.windows[&child];
                if !c.mapped {
                    continue;
                }
                let cx = ax + c.x;
                let cy = ay + c.y;
                let cw = (c.width + 2 * c.border_width) as i32;
                let ch = (c.height + 2 * c.border_width) as i32;
                if x >= cx && x < cx + cw && y >= cy && y < cy + ch {
                    cur = child;
                    continue 'descend;
                }
            }
            return cur;
        }
    }

    /// The chain of ancestors from `id` up to and including the root.
    pub fn ancestors(&self, id: WindowId) -> Vec<WindowId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(w) = self.windows.get(&cur) {
            out.push(cur);
            if w.parent.is_none() {
                break;
            }
            cur = w.parent;
        }
        out
    }

    /// Iterates over all windows (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Window> {
        self.windows.values()
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Window> {
        self.windows.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Xid;

    fn tree() -> WindowTree {
        let root = Window::new(Xid(1), Xid::NONE, ClientId(0), 0, 0, 800, 600, 0);
        let mut t = WindowTree::with_root(root);
        let mut a = Window::new(Xid(2), Xid(1), ClientId(1), 10, 20, 100, 50, 1);
        a.mapped = true;
        t.insert(a);
        let mut b = Window::new(Xid(3), Xid(2), ClientId(1), 5, 5, 20, 20, 0);
        b.mapped = true;
        t.insert(b);
        t.get_mut(Xid(1)).unwrap().mapped = true;
        t
    }

    #[test]
    fn insert_links_children() {
        let t = tree();
        assert_eq!(t.get(Xid(1)).unwrap().children, vec![Xid(2)]);
        assert_eq!(t.get(Xid(2)).unwrap().children, vec![Xid(3)]);
    }

    #[test]
    fn abs_pos_accumulates_borders() {
        let t = tree();
        // Window 2 at (10,20) with border 1: interior at (11,21).
        assert_eq!(t.abs_pos(Xid(2)), (11, 21));
        // Window 3 at (5,5) inside that: (16,26).
        assert_eq!(t.abs_pos(Xid(3)), (16, 26));
    }

    #[test]
    fn viewable_requires_mapped_chain() {
        let mut t = tree();
        assert!(t.viewable(Xid(3)));
        t.get_mut(Xid(2)).unwrap().mapped = false;
        assert!(!t.viewable(Xid(3)));
        assert!(!t.viewable(Xid(99)));
    }

    #[test]
    fn window_at_finds_deepest() {
        let t = tree();
        assert_eq!(t.window_at(17, 27), Xid(3));
        assert_eq!(t.window_at(12, 22), Xid(2));
        assert_eq!(t.window_at(500, 500), Xid(1));
    }

    #[test]
    fn window_at_honors_stacking() {
        let mut t = tree();
        // A sibling of window 2 covering the same area, added later (on top).
        let mut c = Window::new(Xid(4), Xid(1), ClientId(1), 10, 20, 100, 50, 1);
        c.mapped = true;
        t.insert(c);
        assert_eq!(t.window_at(17, 27), Xid(4));
    }

    #[test]
    fn remove_subtree_removes_descendants() {
        let mut t = tree();
        let removed = t.remove_subtree(Xid(2));
        assert_eq!(removed, vec![Xid(3), Xid(2)]);
        assert!(t.get(Xid(2)).is_none());
        assert!(t.get(Xid(3)).is_none());
        assert!(t.get(Xid(1)).unwrap().children.is_empty());
    }

    #[test]
    fn ancestors_chain() {
        let t = tree();
        assert_eq!(t.ancestors(Xid(3)), vec![Xid(3), Xid(2), Xid(1)]);
    }
}
