//! Client-side handles: [`Display`] (the shared server) and [`Connection`]
//! (one client's protocol endpoint).
//!
//! A `Connection` mirrors Xlib's calling surface, including its buffered
//! transport: one-way requests are queued in a per-client output buffer
//! and only reach the server at a *flush point* — an explicit [`flush`],
//! the buffer filling, a synchronous reply-bearing request, or blocking
//! for events. Reply-bearing requests can also be *pipelined*: the
//! `send_*` methods queue the request and return a sequence-numbered
//! [`Cookie`] that is redeemed later with [`wait`], so several replies
//! travel back in one blocking wait. The counters power the Table II
//! client/server split and the Section 3.3 cache-ablation experiment.
//!
//! Everything below the calling surface goes through a [`Transport`]:
//! either the in-process path (the server behind a `RefCell`, kept as
//! the semantics oracle under `RTK_NO_WIRE=1`) or the framed wire path
//! (`crate::wire`), which encodes every request into length-prefixed
//! byte frames and runs the server on its own thread. Both transports
//! share the server's issue-time accounting, so counters, fault keying,
//! and replies are byte-identical across them — see docs/PROTOCOL.md.
//!
//! [`flush`]: Connection::flush
//! [`wait`]: Connection::wait

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::rc::Rc;

use crate::atom::Atom;
use crate::color::Rgb;
use crate::event::{Event, Keysym};
use crate::fault::{XError, XErrorCode};
use crate::font::FontMetrics;
use crate::gc::GcValues;
use crate::ids::{ClientId, CursorId, FontId, GcId, Pixel, WindowId, Xid};
use crate::obs::{ClientObs, RequestKind, TraceEntry, WireStats};
use crate::render::Surface;
use crate::server::{ClientStats, QueuedRequest, ReplyValue, Server, SyncReply, SyncRequest};
use crate::wire::{WireHandle, WireTransport};

/// What redeeming a cookie produced at the transport level.
pub(crate) enum WaitReply {
    /// A reply (or stored error) was filed under the sequence number.
    Reply(ReplyValue),
    /// No reply exists; `alive` distinguishes a dead connection from a
    /// double redeem.
    NoReply { alive: bool },
}

/// The transport boundary between the Xlib-shaped calling surface and
/// the server. Object-safe on purpose: a [`Display`] holds a
/// `Rc<dyn Transport>` and swaps implementations with
/// [`Display::set_wire`]. Closure-taking methods use `&mut dyn FnMut`
/// so both the `RefCell` path and the mutex-guarded wire path can run
/// them against `&mut Server`.
pub(crate) trait Transport {
    fn connect(&self) -> ClientId;
    fn is_wire(&self) -> bool;
    fn wire_handle(&self) -> Option<WireHandle> {
        None
    }
    /// Runs `f` against the server WITHOUT flushing (internal state
    /// inspection that must not disturb the buffered transport).
    fn peek(&self, f: &mut dyn FnMut(&mut Server));
    /// Flushes every client's output buffer, then runs `f` — the "user
    /// observes the display" path.
    fn sync(&self, f: &mut dyn FnMut(&mut Server));
    fn flush_client(&self, client: ClientId);
    fn set_batching(&self, on: bool);
    fn reset_obs(&self, client: ClientId);
    /// Reconfigures the sync-watchdog deadline (ms). The in-process
    /// oracle has no dispatcher to wedge, so the default is a no-op.
    fn set_wire_deadline(&self, _ms: u64) {}
    /// The client's position on the byte-fault timeline: how many frames
    /// it has encoded onto the wire (the per-client index [`FaultPlan`]
    /// byte faults key on). Always 0 on the in-process oracle, which
    /// ships no frames.
    fn frame_timeline(&self, _client: ClientId) -> u64 {
        0
    }
    fn one_way(&self, client: ClientId, kind: RequestKind, window: WindowId, q: QueuedRequest);
    fn pipelined(
        &self,
        client: ClientId,
        kind: RequestKind,
        window: WindowId,
        make: &mut dyn FnMut(u64) -> QueuedRequest,
    ) -> u64;
    fn round_trip(&self, client: ClientId, req: SyncRequest) -> Result<SyncReply, XError>;
    #[allow(clippy::too_many_arguments)]
    fn create_window(
        &self,
        client: ClientId,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Result<WindowId, XError>;
    fn create_gc(&self, client: ClientId, values: GcValues) -> GcId;
    fn create_bitmap(
        &self,
        client: ClientId,
        bitmap: crate::bitmap::Bitmap,
    ) -> crate::bitmap::BitmapId;
    fn wait_reply(&self, client: ClientId, seq: u64) -> WaitReply;
    fn poll_event(&self, client: ClientId) -> Option<Event>;
    fn pending(&self, client: ClientId) -> usize;
}

/// The in-process transport: the server lives behind a `RefCell` on this
/// thread and every call is a direct function call. This is the
/// semantics oracle the wire transport is differentially tested against.
pub(crate) struct LocalTransport {
    server: Rc<RefCell<Server>>,
}

impl LocalTransport {
    fn new() -> LocalTransport {
        LocalTransport {
            server: Rc::new(RefCell::new(Server::new())),
        }
    }
}

impl Transport for LocalTransport {
    fn connect(&self) -> ClientId {
        self.server.borrow_mut().connect()
    }

    fn is_wire(&self) -> bool {
        false
    }

    fn peek(&self, f: &mut dyn FnMut(&mut Server)) {
        f(&mut self.server.borrow_mut());
    }

    fn sync(&self, f: &mut dyn FnMut(&mut Server)) {
        let mut s = self.server.borrow_mut();
        // The observation path drains quota-deferred work too: the user
        // always sees the effect of every request already issued.
        s.drain_all();
        f(&mut s);
    }

    fn flush_client(&self, client: ClientId) {
        self.server.borrow_mut().flush_client(client);
    }

    fn set_batching(&self, on: bool) {
        self.server.borrow_mut().set_batching(on);
    }

    fn reset_obs(&self, client: ClientId) {
        self.server.borrow_mut().reset_client_stats(client);
    }

    fn one_way(&self, client: ClientId, kind: RequestKind, window: WindowId, q: QueuedRequest) {
        let mut s = self.server.borrow_mut();
        if !s.is_alive(client) {
            return;
        }
        let seq = s.next_seq(client);
        s.enqueue_request(client, kind, false, window, seq, Some(q));
    }

    fn pipelined(
        &self,
        client: ClientId,
        kind: RequestKind,
        window: WindowId,
        make: &mut dyn FnMut(u64) -> QueuedRequest,
    ) -> u64 {
        let mut s = self.server.borrow_mut();
        let seq = s.next_seq(client);
        if s.is_alive(client) {
            let q = make(seq);
            s.enqueue_request(client, kind, true, window, seq, Some(q));
        }
        seq
    }

    fn round_trip(&self, client: ClientId, req: SyncRequest) -> Result<SyncReply, XError> {
        self.server.borrow_mut().execute_round_trip(client, &req)
    }

    fn create_window(
        &self,
        client: ClientId,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Result<WindowId, XError> {
        let mut s = self.server.borrow_mut();
        if !s.is_alive(client) {
            return Err(XError::dead(0));
        }
        let seq = s.next_seq(client);
        if !s.window_exists_or_pending(parent) {
            // Still counted (the server would answer with an error); no
            // id is handed out and nothing is queued.
            s.enqueue_request(client, RequestKind::CreateWindow, false, parent, seq, None);
            return Err(XError {
                code: XErrorCode::BadWindow,
                seq,
                kind: Some(RequestKind::CreateWindow),
            });
        }
        let id = s.reserve_window_id();
        s.enqueue_request(
            client,
            RequestKind::CreateWindow,
            false,
            parent,
            seq,
            Some(QueuedRequest::CreateWindow {
                id,
                parent,
                x,
                y,
                width,
                height,
                border_width,
            }),
        );
        Ok(id)
    }

    fn create_gc(&self, client: ClientId, values: GcValues) -> GcId {
        let mut s = self.server.borrow_mut();
        let id = s.gcs.reserve();
        if !s.is_alive(client) {
            return id;
        }
        let seq = s.next_seq(client);
        s.enqueue_request(
            client,
            RequestKind::CreateGc,
            false,
            Xid::NONE,
            seq,
            Some(QueuedRequest::CreateGc { id, values }),
        );
        id
    }

    fn create_bitmap(
        &self,
        client: ClientId,
        bitmap: crate::bitmap::Bitmap,
    ) -> crate::bitmap::BitmapId {
        let mut s = self.server.borrow_mut();
        let id = s.bitmaps.reserve();
        if !s.is_alive(client) {
            return id;
        }
        let seq = s.next_seq(client);
        s.enqueue_request(
            client,
            RequestKind::CreateBitmap,
            false,
            Xid::NONE,
            seq,
            Some(QueuedRequest::CreateBitmap { id, bitmap }),
        );
        id
    }

    fn wait_reply(&self, client: ClientId, seq: u64) -> WaitReply {
        let mut s = self.server.borrow_mut();
        if !s.has_reply(client, seq) {
            s.flush_all();
        }
        match s.take_reply(client, seq) {
            Some(v) => WaitReply::Reply(v),
            None => WaitReply::NoReply {
                alive: s.is_alive(client),
            },
        }
    }

    fn poll_event(&self, client: ClientId) -> Option<Event> {
        let mut s = self.server.borrow_mut();
        s.flush_all();
        s.poll_event(client)
    }

    fn pending(&self, client: ClientId) -> usize {
        let mut s = self.server.borrow_mut();
        s.flush_all();
        s.pending(client)
    }
}

/// A simulated display: the shared server plus a factory for connections.
///
/// Cloning a `Display` yields another handle to the same server, the way
/// several processes share one physical display. Every accessor that
/// observes server state (screenshots, direct server access, input
/// synthesis) first flushes all clients' output buffers, so the "user"
/// always sees the effect of every request already issued.
///
/// The display speaks the framed wire protocol by default (the server on
/// its own thread); set `RTK_NO_WIRE=1` or call [`Display::set_wire`]
/// before the first connection to use the in-process oracle instead.
#[derive(Clone)]
pub struct Display {
    transport: Rc<RefCell<Rc<dyn Transport>>>,
    connected: Rc<Cell<bool>>,
}

impl Default for Display {
    fn default() -> Self {
        Self::new()
    }
}

fn wire_default() -> bool {
    std::env::var("RTK_NO_WIRE").map_or(true, |v| v.is_empty() || v == "0")
}

fn make_transport(wire: bool) -> Rc<dyn Transport> {
    if wire {
        Rc::new(WireTransport::new())
    } else {
        Rc::new(LocalTransport::new())
    }
}

impl Display {
    /// Opens a fresh simulated display.
    pub fn new() -> Display {
        Display {
            transport: Rc::new(RefCell::new(make_transport(wire_default()))),
            connected: Rc::new(Cell::new(false)),
        }
    }

    /// Builds a display handle attached to an already-running wire
    /// server (from [`Display::wire_handle`] on another thread). Each
    /// thread builds its own `Display` this way; the server and all
    /// protocol state are shared.
    pub fn from_wire(handle: &WireHandle) -> Display {
        let t: Rc<dyn Transport> = Rc::new(WireTransport::from_handle(handle));
        Display {
            transport: Rc::new(RefCell::new(t)),
            connected: Rc::new(Cell::new(false)),
        }
    }

    /// Is this display using the framed wire transport?
    pub fn wire(&self) -> bool {
        self.transport.borrow().is_wire()
    }

    /// Selects the transport: `true` for the framed wire path, `false`
    /// for the in-process oracle. Must be called before the first
    /// connection (the existing server is discarded).
    pub fn set_wire(&self, wire: bool) {
        if wire == self.wire() {
            return;
        }
        assert!(
            !self.connected.get(),
            "Display::set_wire must be called before the first connection"
        );
        *self.transport.borrow_mut() = make_transport(wire);
    }

    /// A `Send + Sync` handle to the wire server, for sharing one
    /// display across threads. `None` on the in-process transport.
    pub fn wire_handle(&self) -> Option<WireHandle> {
        self.transport.borrow().wire_handle()
    }

    fn transport(&self) -> Rc<dyn Transport> {
        self.transport.borrow().clone()
    }

    /// Connects a new client.
    pub fn connect(&self) -> Connection {
        self.connected.set(true);
        let transport = self.transport();
        let client = transport.connect();
        Connection { transport, client }
    }

    /// Reconfigures the wire sync-watchdog deadline at runtime, in
    /// milliseconds (`RTK_WIRE_DEADLINE_MS` sets the startup value;
    /// chaos harnesses shrink it so injected stalls trip it quickly).
    /// No-op on the in-process oracle transport.
    pub fn set_wire_deadline(&self, ms: u64) {
        self.transport().set_wire_deadline(ms);
    }

    /// Runs `f` with direct access to the server (test assertions,
    /// compositing, statistics). Pending output buffers are flushed first.
    pub fn with_server<R>(&self, f: impl FnOnce(&mut Server) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.transport()
            .sync(&mut |s| out = Some(f.take().expect("sync closure runs once")(s)));
        out.expect("transport sync must run the closure")
    }

    /// Runs `f` with direct access to the server WITHOUT flushing —
    /// for tests that assert on what has (not) reached the server yet.
    #[doc(hidden)]
    pub fn peek_server<R>(&self, f: impl FnOnce(&mut Server) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.transport()
            .peek(&mut |s| out = Some(f.take().expect("peek closure runs once")(s)));
        out.expect("transport peek must run the closure")
    }

    /// Composites the current screen contents (after flushing).
    pub fn screenshot(&self) -> Surface {
        self.with_server(|s| s.compose_screen())
    }

    /// ASCII rendering of the screen (Figure 10-style dumps).
    pub fn ascii_dump(&self) -> String {
        self.with_server(|s| s.ascii_dump())
    }

    // --- input synthesis (the "user") ---

    /// Moves the pointer, generating crossing/motion events.
    pub fn move_pointer(&self, x: i32, y: i32) {
        self.with_server(|s| s.warp_pointer(x, y));
    }

    /// Presses then releases a mouse button at the current position.
    pub fn click(&self, button: u8) {
        self.with_server(|s| {
            s.press_button(button);
            s.release_button(button);
        });
    }

    /// Presses a mouse button (no release).
    pub fn press_button(&self, button: u8) {
        self.with_server(|s| s.press_button(button));
    }

    /// Releases a mouse button.
    pub fn release_button(&self, button: u8) {
        self.with_server(|s| s.release_button(button));
    }

    /// Types a single character key.
    pub fn type_char(&self, c: char) {
        self.with_server(|s| s.press_key(Keysym::from_char(c)));
    }

    /// Types a whole string.
    pub fn type_string(&self, text: &str) {
        for c in text.chars() {
            self.type_char(c);
        }
    }

    /// Presses a named key (`"Escape"`, `"Return"`, ...).
    pub fn press_key(&self, name: &str) {
        self.with_server(|s| s.press_key(Keysym::named(name)));
    }

    /// Sets the modifier state for subsequent input (see [`crate::event::state`]).
    pub fn set_modifiers(&self, modifiers: u32) {
        self.peek_server(|s| s.set_modifiers(modifiers));
    }
}

/// A handle to a pipelined reply-bearing request: proof that the request
/// was queued, carrying the sequence number its reply is filed under.
/// Redeem it with [`Connection::wait`]; redeeming blocks (flushes) only if
/// the reply has not already traveled back with an earlier flush.
#[derive(Debug, Clone, Copy)]
#[must_use = "a cookie must be redeemed with Connection::wait"]
pub struct Cookie<T> {
    seq: u64,
    _reply: PhantomData<fn() -> T>,
}

impl<T> Cookie<T> {
    fn new(seq: u64) -> Cookie<T> {
        Cookie {
            seq,
            _reply: PhantomData,
        }
    }

    /// The request's sequence number (replies arrive in this order).
    pub fn sequence(&self) -> u64 {
        self.seq
    }
}

/// Conversion from the wire-level reply payload to the typed result a
/// cookie promises. Implemented for exactly the types the `send_*`
/// methods return cookies for.
pub trait FromReply: Sized {
    #[doc(hidden)]
    fn from_reply(v: ReplyValue) -> Option<Self>;
}

impl FromReply for Atom {
    fn from_reply(v: ReplyValue) -> Option<Self> {
        match v {
            ReplyValue::Atom(a) => Some(a),
            _ => None,
        }
    }
}

impl FromReply for Pixel {
    fn from_reply(v: ReplyValue) -> Option<Self> {
        match v {
            ReplyValue::Pixel(p) => Some(p),
            _ => None,
        }
    }
}

impl FromReply for Option<(Pixel, Rgb)> {
    fn from_reply(v: ReplyValue) -> Option<Self> {
        match v {
            ReplyValue::NamedColor(c) => Some(c),
            _ => None,
        }
    }
}

impl FromReply for Option<String> {
    fn from_reply(v: ReplyValue) -> Option<Self> {
        match v {
            ReplyValue::Property(p) => Some(p),
            _ => None,
        }
    }
}

/// A window's geometry reply: `(x, y, width, height, border_width)`.
pub type Geometry = (i32, i32, u32, u32, u32);

impl FromReply for Option<Geometry> {
    fn from_reply(v: ReplyValue) -> Option<Self> {
        match v {
            ReplyValue::Geometry(g) => Some(g),
            _ => None,
        }
    }
}

/// One client's connection to the display.
#[derive(Clone)]
pub struct Connection {
    transport: Rc<dyn Transport>,
    client: ClientId,
}

impl Connection {
    /// This connection's client id.
    pub fn client_id(&self) -> ClientId {
        self.client
    }

    /// Runs `f` against the server without flushing.
    fn peek<R>(&self, f: impl FnOnce(&mut Server) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.transport
            .peek(&mut |s| out = Some(f.take().expect("peek closure runs once")(s)));
        out.expect("transport peek must run the closure")
    }

    /// The root window.
    pub fn root(&self) -> WindowId {
        self.peek(|s| s.root())
    }

    /// Protocol statistics for this client. Counters bump at request
    /// *issue* time, so they are current even with requests still queued.
    pub fn stats(&self) -> ClientStats {
        self.peek(|s| s.stats(self.client))
    }

    /// Runs `f` over this client's structured observability state.
    pub fn with_obs<R>(&self, f: impl FnOnce(&ClientObs) -> R) -> Option<R> {
        let mut f = Some(f);
        self.peek(|s| {
            s.client_obs(self.client)
                .map(|o| f.take().expect("obs closure runs once")(o))
        })
    }

    /// Snapshot of this client's wire-transport frame/byte counters.
    /// All zero under the in-process oracle transport (`RTK_NO_WIRE=1`),
    /// so callers can tell from the counters alone whether any traffic
    /// actually crossed the framed byte transport.
    pub fn wire_stats(&self) -> WireStats {
        self.with_obs(|o| o.wire.clone()).unwrap_or_default()
    }

    /// This client's byte-fault timeline position: how many frames it
    /// has encoded onto the wire so far (the per-client index that
    /// [`FaultPlan`] byte faults key on). 0 on the in-process oracle.
    /// Chaos harnesses use it to drive the timeline past a plan's last
    /// plotted fault before auditing.
    pub fn wire_frame_timeline(&self) -> u64 {
        self.transport.frame_timeline(self.client)
    }

    /// Flushes this client's pending requests, then runs the server's
    /// post-run resource-leak audit ([`Server::audit`]). Empty = clean.
    pub fn audit(&self) -> Vec<String> {
        let mut out = None;
        self.transport.sync(&mut |s| out = Some(s.audit()));
        out.expect("transport sync must run the closure")
    }

    /// Per-request-kind counts, non-zero kinds only.
    pub fn obs_kind_counts(&self) -> Vec<(&'static str, u64)> {
        self.with_obs(|o| o.kind_counts()).unwrap_or_default()
    }

    /// Per-request-kind round-trip counts, non-zero kinds only.
    pub fn obs_kind_round_trip_counts(&self) -> Vec<(&'static str, u64)> {
        self.with_obs(|o| o.kind_round_trip_counts())
            .unwrap_or_default()
    }

    /// Snapshot of the all-requests latency histogram.
    pub fn obs_request_histogram(&self) -> rtk_obs::Histogram {
        self.with_obs(|o| o.request_ns.clone()).unwrap_or_default()
    }

    /// Snapshot of the round-trip latency histogram.
    pub fn obs_round_trip_histogram(&self) -> rtk_obs::Histogram {
        self.with_obs(|o| o.round_trip_ns.clone())
            .unwrap_or_default()
    }

    /// The most recent `n` trace entries (oldest first).
    pub fn obs_trace(&self, n: usize) -> Vec<TraceEntry> {
        self.with_obs(|o| o.trace.last_n(n).into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Enables or disables protocol tracing for this client. The trace
    /// ring stays allocated either way; disabled tracing skips the push.
    pub fn obs_set_trace(&self, on: bool) {
        self.peek(|s| {
            if let Some(o) = s.client_obs_mut(self.client) {
                o.trace_enabled = on;
            }
        });
    }

    /// Is protocol tracing enabled for this client?
    pub fn obs_trace_enabled(&self) -> bool {
        self.with_obs(|o| o.trace_enabled).unwrap_or(false)
    }

    /// Resets this client's counters, histograms, and trace (but not the
    /// trace-enabled flag), along with its `ClientStats` view. The output
    /// buffer is flushed first so the reset is an exact epoch boundary.
    /// An attached span tracer starts a new epoch at the same boundary.
    pub fn reset_obs(&self) {
        self.transport.reset_obs(self.client);
    }

    /// Attaches a span tracer to this connection: flush batches, event
    /// enqueues, and injected faults record into it, stamped with this
    /// client's id. The toolkit shares the same tracer for its own spans,
    /// so client- and server-side records form one tree.
    pub fn set_tracer(&self, tracer: rtk_obs::Tracer) {
        let mut tracer = Some(tracer);
        self.peek(|s| s.set_client_tracer(self.client, tracer.take().expect("tracer set once")));
    }

    /// JSON object describing this client's protocol observability state.
    pub fn obs_json(&self) -> String {
        self.with_obs(|o| o.to_json())
            .unwrap_or_else(|| "{}".into())
    }

    // --- the buffered transport ---

    /// Flushes this connection's output buffer (Xlib's `XFlush`).
    pub fn flush(&self) {
        self.transport.flush_client(self.client);
    }

    /// Is output buffering enabled on the shared display?
    pub fn batching(&self) -> bool {
        self.peek(|s| s.batching())
    }

    /// Turns output buffering on or off for the whole display (the
    /// `RTK_NO_BATCH` env var sets the initial state). Turning it off
    /// flushes pending buffers and reproduces the synchronous transport.
    pub fn set_batching(&self, on: bool) {
        self.transport.set_batching(on);
    }

    /// The last request sequence number this connection was assigned
    /// (0 before the first request) — the anchor for fault schedules that
    /// target "the next request".
    pub fn sequence(&self) -> u64 {
        self.peek(|s| s.current_seq(self.client))
    }

    /// Is this connection still alive? (An injected kill marks it dead;
    /// after that, one-way requests are silently discarded — the write
    /// side of a broken socket — and reply-bearing requests return
    /// [`XError`] with `ConnectionDead`.)
    pub fn alive(&self) -> bool {
        self.peek(|s| s.is_alive(self.client))
    }

    /// Queues a one-way request in the output buffer, accounting for it
    /// at issue time. On a dead connection the request is discarded.
    fn one_way(&self, kind: RequestKind, window: WindowId, q: QueuedRequest) {
        self.transport.one_way(self.client, kind, window, q);
    }

    /// Queues a pipelined reply-bearing request; the returned sequence
    /// number is the cookie's claim ticket. On a dead connection nothing
    /// is queued and redeeming the cookie reports the death.
    fn pipelined(
        &self,
        kind: RequestKind,
        window: WindowId,
        make: impl FnOnce(u64) -> QueuedRequest,
    ) -> u64 {
        let mut make = Some(make);
        self.transport
            .pipelined(self.client, kind, window, &mut |seq| {
                make.take().expect("pipelined make runs once")(seq)
            })
    }

    /// Runs a synchronous reply-bearing request through the transport:
    /// every output buffer is flushed (a blocked client has, by
    /// definition, already written out its queue), then the server
    /// executes and records the request.
    fn round_trip(&self, req: SyncRequest) -> Result<SyncReply, XError> {
        self.transport.round_trip(self.client, req)
    }

    /// Redeems a cookie: blocks (flushes) if the reply has not already
    /// been executed, then returns the typed result. An injected error on
    /// the pipelined request — or the connection dying before the reply
    /// traveled back — surfaces here, where Xlib would deliver it.
    pub fn wait<T: FromReply>(&self, cookie: Cookie<T>) -> Result<T, XError> {
        match self.transport.wait_reply(self.client, cookie.seq) {
            WaitReply::Reply(ReplyValue::Error(e)) => Err(e),
            WaitReply::Reply(v) => {
                Ok(T::from_reply(v).expect("reply payload does not match cookie type"))
            }
            WaitReply::NoReply { alive: false } => Err(XError::dead(cookie.seq)),
            WaitReply::NoReply { alive: true } => {
                panic!("no reply filed for cookie (double wait?)")
            }
        }
    }

    // --- atoms ---

    /// Interns an atom (round trip).
    pub fn intern_atom(&self, name: &str) -> Result<Atom, XError> {
        match self.round_trip(SyncRequest::InternAtom {
            name: name.to_string(),
        })? {
            SyncReply::Atom(a) => Ok(a),
            _ => unreachable!("InternAtom answers with an atom"),
        }
    }

    /// Interns an atom without blocking (pipelined).
    pub fn send_intern_atom(&self, name: &str) -> Cookie<Atom> {
        Cookie::new(self.pipelined(RequestKind::InternAtom, Xid::NONE, |seq| {
            QueuedRequest::InternAtom {
                seq,
                name: name.to_string(),
            }
        }))
    }

    /// Gets an atom's name (round trip).
    pub fn atom_name(&self, atom: Atom) -> Result<Option<String>, XError> {
        match self.round_trip(SyncRequest::GetAtomName { atom })? {
            SyncReply::OptString(s) => Ok(s),
            _ => unreachable!("GetAtomName answers with an optional string"),
        }
    }

    // --- windows ---

    /// Creates an (unmapped) window. The id is allocated client-side and
    /// returned immediately; the CreateWindow itself is buffered. A stale
    /// parent is the `BadWindow` the real server would answer with; a
    /// dead connection reports `ConnectionDead`.
    pub fn create_window(
        &self,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Result<WindowId, XError> {
        self.transport
            .create_window(self.client, parent, x, y, width, height, border_width)
    }

    /// Destroys a window and its descendants.
    pub fn destroy_window(&self, id: WindowId) {
        self.one_way(
            RequestKind::DestroyWindow,
            id,
            QueuedRequest::DestroyWindow { id },
        );
    }

    /// Maps a window.
    pub fn map_window(&self, id: WindowId) {
        self.one_way(RequestKind::MapWindow, id, QueuedRequest::MapWindow { id });
    }

    /// Unmaps a window.
    pub fn unmap_window(&self, id: WindowId) {
        self.one_way(
            RequestKind::UnmapWindow,
            id,
            QueuedRequest::UnmapWindow { id },
        );
    }

    /// Moves/resizes a window.
    pub fn configure_window(
        &self,
        id: WindowId,
        x: Option<i32>,
        y: Option<i32>,
        width: Option<u32>,
        height: Option<u32>,
        border_width: Option<u32>,
    ) {
        self.one_way(
            RequestKind::ConfigureWindow,
            id,
            QueuedRequest::ConfigureWindow {
                id,
                x,
                y,
                width,
                height,
                border_width,
            },
        );
    }

    /// Raises a window above its siblings.
    pub fn raise_window(&self, id: WindowId) {
        self.one_way(
            RequestKind::RaiseWindow,
            id,
            QueuedRequest::RaiseWindow { id },
        );
    }

    /// Reparents a window to a new parent at the given position.
    pub fn reparent_window(&self, id: WindowId, new_parent: WindowId, x: i32, y: i32) {
        self.one_way(
            RequestKind::ReparentWindow,
            id,
            QueuedRequest::ReparentWindow {
                id,
                new_parent,
                x,
                y,
            },
        );
    }

    /// Selects the events this client wants from a window.
    pub fn select_input(&self, id: WindowId, event_mask: u32) {
        self.one_way(
            RequestKind::SelectInput,
            id,
            QueuedRequest::SelectInput { id, event_mask },
        );
    }

    /// Sets the window background pixel.
    pub fn set_window_background(&self, id: WindowId, pixel: Pixel) {
        self.one_way(
            RequestKind::ChangeWindowAttributes,
            id,
            QueuedRequest::SetWindowBackground { id, pixel },
        );
    }

    /// Sets the window border pixel.
    pub fn set_window_border(&self, id: WindowId, pixel: Pixel) {
        self.one_way(
            RequestKind::ChangeWindowAttributes,
            id,
            QueuedRequest::SetWindowBorder { id, pixel },
        );
    }

    /// Marks a window override-redirect (popup menus).
    pub fn set_override_redirect(&self, id: WindowId, on: bool) {
        self.one_way(
            RequestKind::ChangeWindowAttributes,
            id,
            QueuedRequest::SetOverrideRedirect { id, on },
        );
    }

    /// Attaches a cursor to a window.
    pub fn define_cursor(&self, id: WindowId, cursor: CursorId) {
        self.one_way(
            RequestKind::ChangeWindowAttributes,
            id,
            QueuedRequest::DefineCursor { id, cursor },
        );
    }

    /// Queries parent and children (round trip).
    pub fn query_tree(&self, id: WindowId) -> Result<Option<(WindowId, Vec<WindowId>)>, XError> {
        match self.round_trip(SyncRequest::QueryTree { id })? {
            SyncReply::Tree(t) => Ok(t),
            _ => unreachable!("QueryTree answers with a tree"),
        }
    }

    /// Queries geometry (round trip).
    pub fn get_geometry(&self, id: WindowId) -> Result<Option<Geometry>, XError> {
        match self.round_trip(SyncRequest::GetGeometry { id })? {
            SyncReply::Geometry(g) => Ok(g),
            _ => unreachable!("GetGeometry answers with a geometry"),
        }
    }

    /// Queries geometry without blocking (pipelined).
    pub fn send_get_geometry(&self, id: WindowId) -> Cookie<Option<Geometry>> {
        Cookie::new(self.pipelined(RequestKind::GetGeometry, id, |seq| {
            QueuedRequest::GetGeometry { seq, id }
        }))
    }

    /// Is the window viewable? (round trip)
    pub fn is_viewable(&self, id: WindowId) -> Result<bool, XError> {
        match self.round_trip(SyncRequest::IsViewable { id })? {
            SyncReply::Bool(v) => Ok(v),
            _ => unreachable!("IsViewable answers with a bool"),
        }
    }

    // --- properties ---

    /// Sets a property.
    pub fn change_property(&self, id: WindowId, atom: Atom, value: &str) {
        self.one_way(
            RequestKind::ChangeProperty,
            id,
            QueuedRequest::ChangeProperty {
                id,
                atom,
                value: value.to_string(),
            },
        );
    }

    /// Appends one line to a property atomically (`PropModeAppend`): the
    /// server does the concatenation, so the append is a single one-way
    /// request — no read-modify-write round trip, and no lost update when
    /// several clients append to the same property.
    pub fn append_property(&self, id: WindowId, atom: Atom, value: &str) {
        self.one_way(
            RequestKind::ChangeProperty,
            id,
            QueuedRequest::AppendProperty {
                id,
                atom,
                value: value.to_string(),
            },
        );
    }

    /// Reads a property (round trip).
    pub fn get_property(&self, id: WindowId, atom: Atom) -> Result<Option<String>, XError> {
        match self.round_trip(SyncRequest::GetProperty { id, atom })? {
            SyncReply::OptString(s) => Ok(s),
            _ => unreachable!("GetProperty answers with an optional string"),
        }
    }

    /// Reads AND deletes a property in one round trip — X's
    /// `XGetWindowProperty` with `delete=True`. Atomic at the server, so
    /// a concurrent append from another client can never land between
    /// the read and the delete and be destroyed unread.
    pub fn take_property(&self, id: WindowId, atom: Atom) -> Result<Option<String>, XError> {
        match self.round_trip(SyncRequest::TakeProperty { id, atom })? {
            SyncReply::OptString(s) => Ok(s),
            _ => unreachable!("TakeProperty answers with an optional string"),
        }
    }

    /// Reads a property without blocking (pipelined).
    pub fn send_get_property(&self, id: WindowId, atom: Atom) -> Cookie<Option<String>> {
        Cookie::new(self.pipelined(RequestKind::GetProperty, id, |seq| {
            QueuedRequest::GetProperty { seq, id, atom }
        }))
    }

    /// Deletes a property.
    pub fn delete_property(&self, id: WindowId, atom: Atom) {
        self.one_way(
            RequestKind::DeleteProperty,
            id,
            QueuedRequest::DeleteProperty { id, atom },
        );
    }

    // --- colors, fonts, cursors, GCs ---

    /// Allocates a named color (round trip), returning pixel and RGB.
    pub fn alloc_named_color(&self, name: &str) -> Result<Option<(Pixel, Rgb)>, XError> {
        match self.round_trip(SyncRequest::AllocNamedColor {
            name: name.to_string(),
        })? {
            SyncReply::NamedColor(c) => Ok(c),
            _ => unreachable!("AllocNamedColor answers with a named color"),
        }
    }

    /// Allocates a named color without blocking (pipelined).
    pub fn send_alloc_named_color(&self, name: &str) -> Cookie<Option<(Pixel, Rgb)>> {
        Cookie::new(self.pipelined(RequestKind::AllocColor, Xid::NONE, |seq| {
            QueuedRequest::AllocNamedColor {
                seq,
                name: name.to_string(),
            }
        }))
    }

    /// Allocates an RGB color (round trip).
    pub fn alloc_color(&self, rgb: Rgb) -> Result<Pixel, XError> {
        match self.round_trip(SyncRequest::AllocColor { rgb })? {
            SyncReply::Pixel(p) => Ok(p),
            _ => unreachable!("AllocColor answers with a pixel"),
        }
    }

    /// Allocates an RGB color without blocking (pipelined).
    pub fn send_alloc_color(&self, rgb: Rgb) -> Cookie<Pixel> {
        Cookie::new(self.pipelined(RequestKind::AllocColor, Xid::NONE, |seq| {
            QueuedRequest::AllocColor { seq, rgb }
        }))
    }

    /// Frees one reference to a pixel.
    pub fn free_color(&self, pixel: Pixel) {
        self.one_way(
            RequestKind::FreeColor,
            Xid::NONE,
            QueuedRequest::FreeColor { pixel },
        );
    }

    /// Looks up the RGB stored in a pixel (round trip).
    pub fn query_color(&self, pixel: Pixel) -> Result<Rgb, XError> {
        match self.round_trip(SyncRequest::QueryColor { pixel })? {
            SyncReply::Rgb(rgb) => Ok(rgb),
            _ => unreachable!("QueryColor answers with an rgb"),
        }
    }

    /// Opens a font (round trip).
    pub fn open_font(&self, name: &str) -> Result<Option<FontId>, XError> {
        match self.round_trip(SyncRequest::OpenFont {
            name: name.to_string(),
        })? {
            SyncReply::OptXid(x) => Ok(x),
            _ => unreachable!("OpenFont answers with an optional id"),
        }
    }

    /// Queries font metrics (round trip).
    pub fn font_metrics(&self, font: FontId) -> Result<Option<FontMetrics>, XError> {
        match self.round_trip(SyncRequest::QueryFont { font })? {
            SyncReply::Metrics(m) => Ok(m),
            _ => unreachable!("QueryFont answers with metrics"),
        }
    }

    /// Creates a cursor from the cursor font (round trip).
    pub fn create_cursor(&self, name: &str) -> Result<Option<CursorId>, XError> {
        match self.round_trip(SyncRequest::CreateCursor {
            name: name.to_string(),
        })? {
            SyncReply::OptXid(x) => Ok(x),
            _ => unreachable!("CreateCursor answers with an optional id"),
        }
    }

    /// Uploads a bitmap to the server. The id is allocated client-side;
    /// the upload itself is buffered.
    pub fn create_bitmap(&self, bitmap: crate::bitmap::Bitmap) -> crate::bitmap::BitmapId {
        self.transport.create_bitmap(self.client, bitmap)
    }

    /// Frees a bitmap.
    pub fn free_bitmap(&self, id: crate::bitmap::BitmapId) {
        self.one_way(
            RequestKind::FreeBitmap,
            Xid::NONE,
            QueuedRequest::FreeBitmap { id },
        );
    }

    /// Dimensions of an uploaded bitmap (round trip).
    pub fn bitmap_size(&self, id: crate::bitmap::BitmapId) -> Result<Option<(u32, u32)>, XError> {
        match self.round_trip(SyncRequest::QueryBitmap { id })? {
            SyncReply::Size(s) => Ok(s),
            _ => unreachable!("QueryBitmap answers with a size"),
        }
    }

    /// Draws a bitmap's set bits in the GC foreground at `(x, y)`.
    pub fn copy_bitmap(
        &self,
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        bitmap: crate::bitmap::BitmapId,
    ) {
        self.one_way(
            RequestKind::CopyBitmap,
            id,
            QueuedRequest::CopyBitmap {
                id,
                gc,
                x,
                y,
                bitmap,
            },
        );
    }

    /// Creates a GC. The id is allocated client-side; the CreateGc itself
    /// is buffered.
    pub fn create_gc(&self, values: GcValues) -> GcId {
        self.transport.create_gc(self.client, values)
    }

    /// Changes a GC.
    pub fn change_gc(&self, gc: GcId, values: GcValues) {
        self.one_way(
            RequestKind::ChangeGc,
            Xid::NONE,
            QueuedRequest::ChangeGc { gc, values },
        );
    }

    /// Frees a GC.
    pub fn free_gc(&self, gc: GcId) {
        self.one_way(RequestKind::FreeGc, Xid::NONE, QueuedRequest::FreeGc { gc });
    }

    // --- drawing ---

    /// Fills a rectangle in window coordinates.
    pub fn fill_rectangle(&self, id: WindowId, gc: GcId, x: i32, y: i32, w: u32, h: u32) {
        self.one_way(
            RequestKind::FillRectangle,
            id,
            QueuedRequest::FillRectangle { id, gc, x, y, w, h },
        );
    }

    /// Draws a rectangle outline.
    pub fn draw_rectangle(&self, id: WindowId, gc: GcId, x: i32, y: i32, w: u32, h: u32) {
        self.one_way(
            RequestKind::DrawRectangle,
            id,
            QueuedRequest::DrawRectangle { id, gc, x, y, w, h },
        );
    }

    /// Draws a line.
    pub fn draw_line(&self, id: WindowId, gc: GcId, x0: i32, y0: i32, x1: i32, y1: i32) {
        self.one_way(
            RequestKind::DrawLine,
            id,
            QueuedRequest::DrawLine {
                id,
                gc,
                x0,
                y0,
                x1,
                y1,
            },
        );
    }

    /// Draws a string, baseline at `(x, y)`.
    pub fn draw_string(&self, id: WindowId, gc: GcId, x: i32, y: i32, text: &str) {
        self.one_way(
            RequestKind::DrawString,
            id,
            QueuedRequest::DrawString {
                id,
                gc,
                x,
                y,
                text: text.to_string(),
            },
        );
    }

    /// Clears an area to the window background (0 size = whole window).
    pub fn clear_area(&self, id: WindowId, x: i32, y: i32, w: u32, h: u32) {
        self.one_way(
            RequestKind::ClearArea,
            id,
            QueuedRequest::ClearArea { id, x, y, w, h },
        );
    }

    /// Installs a clip-rectangle list on a window: subsequent drawing
    /// rasterizes only inside the union of the rects. An empty list means
    /// unclipped (X's "no clip mask"), so redraw code can send the same
    /// request stream whether or not it has damage to narrow to.
    pub fn set_clip(&self, id: WindowId, rects: Vec<crate::damage::Rect>) {
        self.one_way(
            RequestKind::SetClip,
            id,
            QueuedRequest::SetClip { id, rects },
        );
    }

    /// Removes the clip installed by [`Connection::set_clip`].
    pub fn clear_clip(&self, id: WindowId) {
        self.one_way(RequestKind::ClearClip, id, QueuedRequest::ClearClip { id });
    }

    /// Copies a region within one window (XCopyArea, same drawable as
    /// source and destination) — the scroll blit. Moved pixels are not
    /// re-rasterized and do not count toward `pixels_drawn`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_area(
        &self,
        id: WindowId,
        src_x: i32,
        src_y: i32,
        w: u32,
        h: u32,
        dst_x: i32,
        dst_y: i32,
    ) {
        self.one_way(
            RequestKind::CopyArea,
            id,
            QueuedRequest::CopyArea {
                id,
                src_x,
                src_y,
                w,
                h,
                dst_x,
                dst_y,
            },
        );
    }

    // --- selections ---

    /// Claims selection ownership.
    pub fn set_selection_owner(&self, selection: Atom, owner: WindowId) {
        self.one_way(
            RequestKind::SetSelectionOwner,
            owner,
            QueuedRequest::SetSelectionOwner { selection, owner },
        );
    }

    /// Queries the selection owner (round trip).
    pub fn get_selection_owner(&self, selection: Atom) -> Result<WindowId, XError> {
        match self.round_trip(SyncRequest::GetSelectionOwner { selection })? {
            SyncReply::Window(w) => Ok(w),
            _ => unreachable!("GetSelectionOwner answers with a window"),
        }
    }

    /// Requests conversion of a selection into a property on `requestor`.
    pub fn convert_selection(
        &self,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    ) {
        self.one_way(
            RequestKind::ConvertSelection,
            requestor,
            QueuedRequest::ConvertSelection {
                requestor,
                selection,
                target,
                property,
            },
        );
    }

    /// Replies to a SelectionRequest after storing the converted value.
    pub fn send_selection_notify(
        &self,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    ) {
        self.one_way(
            RequestKind::SendEvent,
            requestor,
            QueuedRequest::SendSelectionNotify {
                requestor,
                selection,
                target,
                property,
            },
        );
    }

    // --- focus ---

    /// Assigns the input focus.
    pub fn set_input_focus(&self, id: WindowId) {
        self.one_way(
            RequestKind::SetInputFocus,
            id,
            QueuedRequest::SetInputFocus { id },
        );
    }

    /// Queries the input focus (round trip).
    pub fn get_input_focus(&self) -> Result<WindowId, XError> {
        match self.round_trip(SyncRequest::GetInputFocus)? {
            SyncReply::Window(w) => Ok(w),
            _ => unreachable!("GetInputFocus answers with a window"),
        }
    }

    // --- events ---

    /// Takes the next queued event, if any. Like `XPending`/`XNextEvent`,
    /// checking for events is a flush point: all output buffers are
    /// written out before looking at the queue.
    pub fn poll_event(&self) -> Option<Event> {
        self.transport.poll_event(self.client)
    }

    /// Number of queued events (flushes first, like `XPending`).
    pub fn pending(&self) -> usize {
        self.transport.pending(self.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::mask;
    use crate::server::OUT_BUF_CAPACITY;

    #[test]
    fn connection_counts_round_trips() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // one-way
        c.map_window(w); // one-way
        let _ = c.get_geometry(w); // round trip
        let _ = c.intern_atom("X"); // round trip
        let st = c.stats();
        assert_eq!(st.requests, 4);
        assert_eq!(st.round_trips, 2);
    }

    #[test]
    fn clip_narrows_rasterization_and_pixel_accounting() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 40, 40, 0).unwrap();
        c.map_window(w);
        let gc = c.create_gc(GcValues::default());
        c.fill_rectangle(w, gc, 0, 0, 40, 40);
        c.flush();
        let full = c.stats().pixels_drawn;
        assert_eq!(full, 1600);
        // The same fill under a clip rasterizes (and counts) only the
        // clipped area.
        c.set_clip(w, vec![crate::damage::Rect::new(0, 0, 10, 10)]);
        c.fill_rectangle(w, gc, 0, 0, 40, 40);
        c.clear_clip(w);
        c.flush();
        assert_eq!(c.stats().pixels_drawn, full + 100);
        // A blit moves pixels without rasterizing: counts nothing.
        c.copy_area(w, 0, 0, 20, 20, 20, 20);
        c.flush();
        assert_eq!(c.stats().pixels_drawn, full + 100);
    }

    #[test]
    fn one_ways_batch_until_a_flush_point() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        c.map_window(w);
        // Nothing has reached the server yet: the window id is reserved
        // client-side but the CreateWindow is still in the buffer.
        assert!(d.peek_server(|s| s.get_geometry(w).is_none()));
        c.flush();
        assert_eq!(
            d.peek_server(|s| s.get_geometry(w)),
            Some((0, 0, 10, 10, 0))
        );
        let st = c.stats();
        assert_eq!(st.requests, 2);
        assert_eq!(st.batched_requests, 2);
        assert_eq!(st.flushes, 1);
        assert_eq!(st.max_batch, 2);
    }

    #[test]
    fn buffer_full_forces_a_flush() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        c.flush();
        for _ in 0..OUT_BUF_CAPACITY {
            c.clear_area(w, 0, 0, 1, 1);
        }
        let st = c.stats();
        assert_eq!(st.flushes, 2, "capacity flush after the explicit one");
        assert_eq!(st.max_batch, OUT_BUF_CAPACITY as u64);
    }

    #[test]
    fn replies_arrive_in_sequence_order_without_reordering_one_ways() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        let a = c.intern_atom("A").unwrap();
        // Interleave one-way writes with pipelined reads. Each read's
        // reply must observe exactly the writes queued before it — if a
        // one-way were reordered past a later reply-bearing request, the
        // earlier read would see the later value.
        c.change_property(w, a, "first");
        let p1 = c.send_get_property(w, a);
        c.change_property(w, a, "second");
        let p2 = c.send_get_property(w, a);
        c.change_property(w, a, "third");
        let g = c.send_get_geometry(w);
        assert!(p1.sequence() < p2.sequence());
        assert!(p2.sequence() < g.sequence());
        assert_eq!(c.wait(p1).unwrap(), Some("first".to_string()));
        assert_eq!(c.wait(p2).unwrap(), Some("second".to_string()));
        assert_eq!(c.wait(g).unwrap(), Some((0, 0, 10, 10, 0)));
        // And the final state is the last write.
        assert_eq!(c.get_property(w, a).unwrap(), Some("third".to_string()));
        let st = c.stats();
        assert!(st.max_pending_replies >= 3, "{st:?}");
    }

    #[test]
    fn cookies_can_be_redeemed_out_of_order() {
        let d = Display::new();
        let c = d.connect();
        let a1 = c.send_intern_atom("ONE");
        let a2 = c.send_intern_atom("TWO");
        let two = c.wait(a2).unwrap();
        let one = c.wait(a1).unwrap();
        assert_ne!(one, two);
        // One blocking flush carried both replies.
        assert_eq!(c.stats().flushes, 1);
        assert_eq!(c.stats().round_trips, 2);
    }

    #[test]
    fn disabling_batching_restores_the_synchronous_transport() {
        let d = Display::new();
        let c = d.connect();
        c.set_batching(false);
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        c.map_window(w);
        // Executed immediately: no flush needed to observe the window.
        assert!(d.peek_server(|s| s.get_geometry(w).is_some()));
        let st = c.stats();
        assert_eq!(st.requests, 2);
        assert_eq!(st.flushes, 2, "every request is its own flush");
        assert_eq!(st.batched_requests, 0);
        assert_eq!(st.max_batch, 1);
    }

    #[test]
    fn two_clients_share_one_display() {
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        assert_ne!(c1.client_id(), c2.client_id());
        assert_eq!(c1.root(), c2.root());
        let atom = c1.intern_atom("SHARED").unwrap();
        c1.change_property(c1.root(), atom, "from c1");
        assert_eq!(
            c2.get_property(c2.root(), atom).unwrap(),
            Some("from c1".into())
        );
    }

    #[test]
    fn events_are_per_client() {
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        let w = c1.create_window(c1.root(), 0, 0, 20, 20, 0).unwrap();
        c1.select_input(w, mask::STRUCTURE_NOTIFY);
        c1.map_window(w);
        assert!(c1.pending() > 0);
        assert_eq!(c2.pending(), 0);
    }

    #[test]
    fn driver_click_reaches_selecting_client() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 10, 10, 100, 100, 0).unwrap();
        c.select_input(w, mask::BUTTON_PRESS | mask::BUTTON_RELEASE);
        c.map_window(w);
        d.move_pointer(50, 50);
        d.click(1);
        let events: Vec<Event> = std::iter::from_fn(|| c.poll_event()).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ButtonPress { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ButtonRelease { .. })));
    }

    #[test]
    fn color_sharing_across_clients() {
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        let (p1, rgb) = c1.alloc_named_color("MediumSeaGreen").unwrap().unwrap();
        let (p2, _) = c2.alloc_named_color("mediumseagreen").unwrap().unwrap();
        assert_eq!(p1, p2);
        assert_eq!(rgb, Rgb::new(60, 179, 113));
    }

    #[test]
    fn obs_counts_agree_with_client_stats() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.map_window(w);
        c.get_geometry(w).unwrap();
        c.intern_atom("WM_NAME").unwrap();

        let stats = c.stats();
        let kinds = c.obs_kind_counts();
        let total: u64 = kinds.iter().map(|(_, n)| n).sum();
        assert_eq!(total, stats.requests);
        let rt_total: u64 = c.obs_kind_round_trip_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(rt_total, stats.round_trips);
        assert_eq!(c.obs_request_histogram().count(), stats.requests);
        assert_eq!(c.obs_round_trip_histogram().count(), stats.round_trips);
        assert!(kinds.contains(&("CreateWindow", 1)), "{kinds:?}");
        assert!(kinds.contains(&("MapWindow", 1)), "{kinds:?}");
    }

    #[test]
    fn trace_is_off_by_default_and_bounded() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.map_window(w);
        assert!(!c.obs_trace_enabled());
        assert!(c.obs_trace(10).is_empty());

        c.obs_set_trace(true);
        c.get_geometry(w).unwrap();
        c.unmap_window(w);
        let trace = c.obs_trace(10);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, crate::obs::RequestKind::GetGeometry);
        assert!(trace[0].round_trip);
        assert_eq!(trace[0].window, w);
        assert_eq!(trace[1].kind, crate::obs::RequestKind::UnmapWindow);
        assert!(trace[0].seq < trace[1].seq);
    }

    #[test]
    fn reset_obs_clears_everything_but_keeps_trace_flag() {
        let d = Display::new();
        let c = d.connect();
        c.obs_set_trace(true);
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.get_geometry(w).unwrap();
        assert!(c.stats().requests > 0);
        assert!(!c.obs_trace(10).is_empty());

        c.reset_obs();
        let stats = c.stats();
        assert_eq!(stats, ClientStats::default(), "all counters zeroed");
        assert!(c.obs_kind_counts().is_empty());
        assert!(c.obs_request_histogram().is_empty());
        assert!(c.obs_round_trip_histogram().is_empty());
        assert!(c.obs_trace(10).is_empty());
        assert!(c.obs_trace_enabled(), "trace flag must survive reset");

        // And the counters start again from zero, deterministically.
        c.map_window(w);
        assert_eq!(c.stats().requests, 1);
        assert_eq!(c.obs_kind_counts(), vec![("MapWindow", 1)]);
    }

    #[test]
    fn reset_obs_flushes_so_epochs_are_exact() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        // Buffer still holds the CreateWindow; reset must flush it so the
        // new epoch starts with an empty buffer and zeroed counters.
        c.reset_obs();
        assert_eq!(c.stats(), ClientStats::default());
        // The window exists (the buffered create was executed, not lost).
        assert!(d.peek_server(|s| s.get_geometry(w).is_some()));
    }

    #[test]
    fn server_reset_stats_covers_obs_state() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.get_geometry(w).unwrap();
        d.with_server(|s| s.reset_stats());
        assert_eq!(c.stats().requests, 0);
        assert_eq!(c.stats().flushes, 0);
        assert!(c.obs_kind_counts().is_empty());
        assert!(c.obs_request_histogram().is_empty());
    }

    // --- fault injection ---

    use crate::fault::{FaultPlan, XErrorCode};

    #[test]
    fn error_fault_on_round_trip_surfaces_as_err() {
        let d = Display::new();
        let c = d.connect();
        d.with_server(|s| {
            s.install_fault_plan(FaultPlan::default().error_at(0, 1, XErrorCode::BadAtom))
        });
        let err = c.intern_atom("WM_NAME").unwrap_err();
        assert_eq!(err.code, XErrorCode::BadAtom);
        assert_eq!(err.seq, 1);
        assert_eq!(err.kind, Some(RequestKind::InternAtom));
        // The connection is intact; a retry (next seq, no matching spec)
        // succeeds, and the fault is visible in the counters.
        c.intern_atom("WM_NAME").unwrap();
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("error.BadAtom", 1)]);
    }

    #[test]
    fn error_fault_on_pipelined_request_arrives_at_wait() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
        d.with_server(|s| {
            s.install_fault_plan(FaultPlan::default().error_at(0, 2, XErrorCode::BadWindow))
        });
        let cookie = c.send_get_geometry(w); // seq 2, faulted at flush
        let ok = c.send_get_geometry(w); // seq 3, unharmed
        let err = c.wait(cookie).unwrap_err();
        assert_eq!(err.code, XErrorCode::BadWindow);
        assert_eq!(err.seq, 2);
        assert_eq!(c.wait(ok).unwrap(), Some((0, 0, 10, 10, 0)));
    }

    #[test]
    fn drop_fault_suppresses_a_one_way_request() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().drop_at(0, 2)));
        c.map_window(w); // seq 2, dropped at flush
        c.flush();
        assert!(
            !d.with_server(|s| s.is_viewable(w)),
            "dropped MapWindow must not execute"
        );
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("drop", 1)]);
    }

    #[test]
    fn duplicate_fault_applies_a_one_way_twice() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
        let a = c.intern_atom("P").unwrap(); // seq 2
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().duplicate_at(0, 3)));
        c.change_property(w, a, "twice"); // seq 3, applied twice (idempotent)
        c.flush();
        assert_eq!(c.get_property(w, a).unwrap(), Some("twice".to_string()));
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("duplicate", 1)]);
    }

    #[test]
    fn append_property_is_atomic_across_clients() {
        // Two clients append to the same property with their one-ways
        // interleaved in their output buffers; the server-side append
        // keeps every line (the get+change emulation would lose one).
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        let a = c1.intern_atom("QUEUE").unwrap();
        let root = c1.root();
        c1.append_property(root, a, "from-c1");
        c2.append_property(root, a, "from-c2");
        c1.append_property(root, a, "again-c1");
        c1.flush();
        c2.flush();
        let value = c1.get_property(root, a).unwrap().unwrap();
        let lines: Vec<&str> = value.lines().collect();
        assert_eq!(lines.len(), 3, "{value:?}");
        for want in ["from-c1", "from-c2", "again-c1"] {
            assert!(lines.contains(&want), "{value:?}");
        }
    }

    #[test]
    fn duplicate_fault_doubles_an_appended_line() {
        // A duplicated AppendProperty is NOT idempotent: the line lands
        // twice. The tk send layer's serial dedup is what restores
        // at-most-once semantics on top of this.
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
        let a = c.intern_atom("P").unwrap(); // seq 2
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().duplicate_at(0, 3)));
        c.append_property(w, a, "line"); // seq 3, applied twice
        c.flush();
        assert_eq!(
            c.get_property(w, a).unwrap(),
            Some("line\nline".to_string())
        );
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("duplicate", 1)]);
    }

    #[test]
    fn delayed_event_is_never_lost() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        c.select_input(w, mask::STRUCTURE_NOTIFY);
        c.flush();
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().delay_at(0, 1, 3)));
        c.map_window(w); // MapNotify is event index 1: delayed
        let events: Vec<Event> = std::iter::from_fn(|| c.poll_event()).collect();
        assert!(
            events.iter().any(|e| matches!(e, Event::MapNotify { .. })),
            "a blocking poll releases delayed events: {events:?}"
        );
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("delay", 1)]);
    }

    #[test]
    fn delayed_event_released_by_later_same_window_event() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        c.select_input(w, mask::STRUCTURE_NOTIFY);
        c.flush();
        // Hold the MapNotify far beyond the horizon; the UnmapNotify on the
        // same window must still flush it out first (ICCCM ordering).
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().delay_at(0, 1, 1000)));
        c.map_window(w);
        c.unmap_window(w);
        let events: Vec<Event> = std::iter::from_fn(|| c.poll_event()).collect();
        let map_pos = events
            .iter()
            .position(|e| matches!(e, Event::MapNotify { .. }));
        let unmap_pos = events
            .iter()
            .position(|e| matches!(e, Event::UnmapNotify { .. }));
        assert!(map_pos.is_some() && unmap_pos.is_some(), "{events:?}");
        assert!(
            map_pos < unmap_pos,
            "same-window ordering must hold: {events:?}"
        );
    }

    #[test]
    fn reorder_fault_swaps_events_on_different_windows_only() {
        let d = Display::new();
        let c = d.connect();
        let w1 = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap();
        let w2 = c.create_window(c.root(), 20, 0, 10, 10, 0).unwrap();
        c.select_input(w1, mask::STRUCTURE_NOTIFY);
        c.select_input(w2, mask::STRUCTURE_NOTIFY);
        c.flush();
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().reorder_at(0, 2)));
        c.map_window(w1); // event 1
        c.map_window(w2); // event 2: swapped in front of event 1
        let events: Vec<Event> = std::iter::from_fn(|| c.poll_event()).collect();
        let windows: Vec<WindowId> = events.iter().map(Event::window).collect();
        assert_eq!(windows, vec![w2, w1], "{events:?}");
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("reorder", 1)]);
    }

    #[test]
    fn kill_fault_tears_down_the_connection_mid_flush() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
        c.flush();
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().kill_at(0, 2)));
        c.map_window(w); // seq 2: the kill
        c.clear_area(w, 0, 0, 1, 1); // seq 3: discarded with the batch
        let err = c.get_geometry(w).unwrap_err();
        assert_eq!(err.code, XErrorCode::ConnectionDead);
        assert!(!c.alive());
        // The server reclaimed the client's windows.
        assert!(d.with_server(|s| s.get_geometry(w).is_none()));
        // Post-mortem observability survives the kill.
        let faults = c.with_obs(|o| o.fault_kind_counts()).unwrap();
        assert_eq!(faults, vec![("kill", 1)]);
        // Later traffic is silently discarded / fails fast.
        c.map_window(w);
        assert!(c.create_window(c.root(), 0, 0, 5, 5, 0).is_err());
        assert!(c.intern_atom("X").is_err());
        assert!(c.poll_event().is_none());
    }

    #[test]
    fn dead_connection_fails_pending_cookies() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
        c.flush();
        d.with_server(|s| s.install_fault_plan(FaultPlan::default().kill_at(0, 2)));
        let cookie = c.send_get_geometry(w); // seq 2: killed before reply
        let err = c.wait(cookie).unwrap_err();
        assert_eq!(err.code, XErrorCode::ConnectionDead);
    }

    #[test]
    fn reset_stats_clears_fault_counters_and_fired_log() {
        let d = Display::new();
        let c = d.connect();
        d.with_server(|s| {
            s.install_fault_plan(FaultPlan::default().error_at(0, 1, XErrorCode::BadValue))
        });
        c.intern_atom("A").unwrap_err();
        assert_eq!(c.with_obs(|o| o.faults_injected).unwrap(), 1);
        assert_eq!(
            d.with_server(|s| s.fault_plan().map_or(0, |p| p.fired_log().len())),
            1
        );
        d.with_server(|s| s.reset_stats());
        assert_eq!(c.with_obs(|o| o.faults_injected).unwrap(), 0);
        assert_eq!(
            d.with_server(|s| s.fault_plan().map_or(0, |p| p.fired_log().len())),
            0,
            "fired log starts a new epoch"
        );
        // The consumed-spec markers survive: a spec fires at most once ever.
        assert!(d.with_server(|s| s.fault_report().contains("[fired]")));
    }

    #[test]
    fn fault_keying_is_identical_batched_and_unbatched() {
        // The same plan must hit the same request in both transports,
        // because faults key on the per-client sequence number assigned at
        // issue time, not on flush boundaries.
        let run = |batching: bool| {
            let d = Display::new();
            let c = d.connect();
            c.set_batching(batching);
            d.with_server(|s| s.install_fault_plan(FaultPlan::default().drop_at(0, 2)));
            let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // seq 1
            c.map_window(w); // seq 2: dropped
            c.flush();
            d.with_server(|s| s.is_viewable(w))
        };
        assert_eq!(run(true), run(false));
        assert!(!run(true));
    }
}
