//! Client-side handles: [`Display`] (the shared server) and [`Connection`]
//! (one client's protocol endpoint).
//!
//! A `Connection` mirrors Xlib's calling surface. Methods that return data
//! from the server are counted as *round trips*; fire-and-forget requests
//! are one-way. The counts power the Table II client/server split and the
//! Section 3.3 cache-ablation experiment.

use std::cell::RefCell;
use std::rc::Rc;

use crate::atom::Atom;
use crate::color::Rgb;
use crate::event::{Event, Keysym};
use crate::font::FontMetrics;
use crate::gc::GcValues;
use crate::ids::{ClientId, CursorId, FontId, GcId, Pixel, WindowId, Xid};
use crate::obs::{ClientObs, RequestKind, TraceEntry};
use crate::render::Surface;
use crate::server::{ClientStats, Server};

/// A simulated display: the shared server plus a factory for connections.
///
/// Cloning a `Display` yields another handle to the same server, the way
/// several processes share one physical display.
#[derive(Clone)]
pub struct Display {
    server: Rc<RefCell<Server>>,
}

impl Default for Display {
    fn default() -> Self {
        Self::new()
    }
}

impl Display {
    /// Opens a fresh simulated display.
    pub fn new() -> Display {
        Display {
            server: Rc::new(RefCell::new(Server::new())),
        }
    }

    /// Connects a new client.
    pub fn connect(&self) -> Connection {
        let client = self.server.borrow_mut().connect();
        Connection {
            server: self.server.clone(),
            client,
        }
    }

    /// Runs `f` with direct access to the server (test assertions,
    /// compositing, statistics).
    pub fn with_server<R>(&self, f: impl FnOnce(&mut Server) -> R) -> R {
        f(&mut self.server.borrow_mut())
    }

    /// Composites the current screen contents.
    pub fn screenshot(&self) -> Surface {
        self.server.borrow().compose_screen()
    }

    /// ASCII rendering of the screen (Figure 10-style dumps).
    pub fn ascii_dump(&self) -> String {
        self.server.borrow().ascii_dump()
    }

    // --- input synthesis (the "user") ---

    /// Moves the pointer, generating crossing/motion events.
    pub fn move_pointer(&self, x: i32, y: i32) {
        self.server.borrow_mut().warp_pointer(x, y);
    }

    /// Presses then releases a mouse button at the current position.
    pub fn click(&self, button: u8) {
        let mut s = self.server.borrow_mut();
        s.press_button(button);
        s.release_button(button);
    }

    /// Presses a mouse button (no release).
    pub fn press_button(&self, button: u8) {
        self.server.borrow_mut().press_button(button);
    }

    /// Releases a mouse button.
    pub fn release_button(&self, button: u8) {
        self.server.borrow_mut().release_button(button);
    }

    /// Types a single character key.
    pub fn type_char(&self, c: char) {
        self.server.borrow_mut().press_key(Keysym::from_char(c));
    }

    /// Types a whole string.
    pub fn type_string(&self, text: &str) {
        for c in text.chars() {
            self.type_char(c);
        }
    }

    /// Presses a named key (`"Escape"`, `"Return"`, ...).
    pub fn press_key(&self, name: &str) {
        self.server.borrow_mut().press_key(Keysym::named(name));
    }

    /// Sets the modifier state for subsequent input (see [`crate::event::state`]).
    pub fn set_modifiers(&self, modifiers: u32) {
        self.server.borrow_mut().set_modifiers(modifiers);
    }
}

/// One client's connection to the display.
#[derive(Clone)]
pub struct Connection {
    server: Rc<RefCell<Server>>,
    client: ClientId,
}

impl Connection {
    /// This connection's client id.
    pub fn client_id(&self) -> ClientId {
        self.client
    }

    /// The root window.
    pub fn root(&self) -> WindowId {
        self.server.borrow().root()
    }

    /// Protocol statistics for this client.
    pub fn stats(&self) -> ClientStats {
        self.server.borrow().stats(self.client)
    }

    /// Runs `f` over this client's structured observability state.
    pub fn with_obs<R>(&self, f: impl FnOnce(&ClientObs) -> R) -> Option<R> {
        self.server.borrow().client_obs(self.client).map(f)
    }

    /// Per-request-kind counts, non-zero kinds only.
    pub fn obs_kind_counts(&self) -> Vec<(&'static str, u64)> {
        self.with_obs(|o| o.kind_counts()).unwrap_or_default()
    }

    /// Snapshot of the all-requests latency histogram.
    pub fn obs_request_histogram(&self) -> rtk_obs::Histogram {
        self.with_obs(|o| o.request_ns.clone()).unwrap_or_default()
    }

    /// Snapshot of the round-trip latency histogram.
    pub fn obs_round_trip_histogram(&self) -> rtk_obs::Histogram {
        self.with_obs(|o| o.round_trip_ns.clone())
            .unwrap_or_default()
    }

    /// The most recent `n` trace entries (oldest first).
    pub fn obs_trace(&self, n: usize) -> Vec<TraceEntry> {
        self.with_obs(|o| o.trace.last_n(n).into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Enables or disables protocol tracing for this client. The trace
    /// ring stays allocated either way; disabled tracing skips the push.
    pub fn obs_set_trace(&self, on: bool) {
        let mut s = self.server.borrow_mut();
        if let Some(o) = s.client_obs_mut(self.client) {
            o.trace_enabled = on;
        }
    }

    /// Is protocol tracing enabled for this client?
    pub fn obs_trace_enabled(&self) -> bool {
        self.with_obs(|o| o.trace_enabled).unwrap_or(false)
    }

    /// Resets this client's counters, histograms, and trace (but not the
    /// trace-enabled flag), along with its `ClientStats` view.
    pub fn reset_obs(&self) {
        self.server.borrow_mut().reset_client_stats(self.client);
    }

    /// JSON object describing this client's protocol observability state.
    pub fn obs_json(&self) -> String {
        self.with_obs(|o| o.to_json())
            .unwrap_or_else(|| "{}".into())
    }

    /// Runs one protocol request: counts it, times it, and records the
    /// structured observability entry. The request latency includes the
    /// synthetic round-trip cost (charged inside `note_request`), while
    /// `work_time` only accumulates the server's own execution time.
    fn request<R>(
        &self,
        kind: RequestKind,
        window: WindowId,
        round_trip: bool,
        f: impl FnOnce(&mut Server) -> R,
    ) -> R {
        let mut s = self.server.borrow_mut();
        let start = std::time::Instant::now();
        s.note_request(self.client, round_trip);
        let work_start = std::time::Instant::now();
        let r = f(&mut s);
        let end = std::time::Instant::now();
        s.work_time += end - work_start;
        s.record_request(self.client, kind, round_trip, window, end - start);
        r
    }

    fn one_way<R>(
        &self,
        kind: RequestKind,
        window: WindowId,
        f: impl FnOnce(&mut Server) -> R,
    ) -> R {
        self.request(kind, window, false, f)
    }

    fn round_trip<R>(
        &self,
        kind: RequestKind,
        window: WindowId,
        f: impl FnOnce(&mut Server) -> R,
    ) -> R {
        self.request(kind, window, true, f)
    }

    // --- atoms ---

    /// Interns an atom (round trip).
    pub fn intern_atom(&self, name: &str) -> Atom {
        self.round_trip(RequestKind::InternAtom, Xid::NONE, |s| s.atoms.intern(name))
    }

    /// Gets an atom's name (round trip).
    pub fn atom_name(&self, atom: Atom) -> Option<String> {
        self.round_trip(RequestKind::GetAtomName, Xid::NONE, |s| {
            s.atoms.name(atom).map(str::to_string)
        })
    }

    // --- windows ---

    /// Creates an (unmapped) window.
    pub fn create_window(
        &self,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Option<WindowId> {
        self.one_way(RequestKind::CreateWindow, parent, |s| {
            s.create_window(self.client, parent, x, y, width, height, border_width)
        })
    }

    /// Destroys a window and its descendants.
    pub fn destroy_window(&self, id: WindowId) {
        self.one_way(RequestKind::DestroyWindow, id, |s| s.destroy_window(id));
    }

    /// Maps a window.
    pub fn map_window(&self, id: WindowId) {
        self.one_way(RequestKind::MapWindow, id, |s| s.map_window(id));
    }

    /// Unmaps a window.
    pub fn unmap_window(&self, id: WindowId) {
        self.one_way(RequestKind::UnmapWindow, id, |s| s.unmap_window(id));
    }

    /// Moves/resizes a window.
    pub fn configure_window(
        &self,
        id: WindowId,
        x: Option<i32>,
        y: Option<i32>,
        width: Option<u32>,
        height: Option<u32>,
        border_width: Option<u32>,
    ) {
        self.one_way(RequestKind::ConfigureWindow, id, |s| {
            s.configure_window(id, x, y, width, height, border_width)
        });
    }

    /// Raises a window above its siblings.
    pub fn raise_window(&self, id: WindowId) {
        self.one_way(RequestKind::RaiseWindow, id, |s| s.raise_window(id));
    }

    /// Reparents a window to a new parent at the given position.
    pub fn reparent_window(&self, id: WindowId, new_parent: WindowId, x: i32, y: i32) {
        self.one_way(RequestKind::ReparentWindow, id, |s| {
            s.reparent_window(id, new_parent, x, y)
        });
    }

    /// Selects the events this client wants from a window.
    pub fn select_input(&self, id: WindowId, event_mask: u32) {
        self.one_way(RequestKind::SelectInput, id, |s| {
            s.select_input(self.client, id, event_mask)
        });
    }

    /// Sets the window background pixel.
    pub fn set_window_background(&self, id: WindowId, pixel: Pixel) {
        self.one_way(RequestKind::ChangeWindowAttributes, id, |s| {
            s.set_window_background(id, pixel)
        });
    }

    /// Sets the window border pixel.
    pub fn set_window_border(&self, id: WindowId, pixel: Pixel) {
        self.one_way(RequestKind::ChangeWindowAttributes, id, |s| {
            s.set_window_border(id, pixel)
        });
    }

    /// Marks a window override-redirect (popup menus).
    pub fn set_override_redirect(&self, id: WindowId, on: bool) {
        self.one_way(RequestKind::ChangeWindowAttributes, id, |s| {
            s.set_override_redirect(id, on)
        });
    }

    /// Attaches a cursor to a window.
    pub fn define_cursor(&self, id: WindowId, cursor: CursorId) {
        self.one_way(RequestKind::ChangeWindowAttributes, id, |s| {
            s.define_cursor(id, cursor)
        });
    }

    /// Queries parent and children (round trip).
    pub fn query_tree(&self, id: WindowId) -> Option<(WindowId, Vec<WindowId>)> {
        self.round_trip(RequestKind::QueryTree, id, |s| s.query_tree(id))
    }

    /// Queries geometry (round trip).
    pub fn get_geometry(&self, id: WindowId) -> Option<(i32, i32, u32, u32, u32)> {
        self.round_trip(RequestKind::GetGeometry, id, |s| s.get_geometry(id))
    }

    /// Is the window viewable? (round trip)
    pub fn is_viewable(&self, id: WindowId) -> bool {
        self.round_trip(RequestKind::GetWindowAttributes, id, |s| s.is_viewable(id))
    }

    // --- properties ---

    /// Sets a property.
    pub fn change_property(&self, id: WindowId, atom: Atom, value: &str) {
        self.one_way(RequestKind::ChangeProperty, id, |s| {
            s.change_property(id, atom, value.to_string())
        });
    }

    /// Reads a property (round trip).
    pub fn get_property(&self, id: WindowId, atom: Atom) -> Option<String> {
        self.round_trip(RequestKind::GetProperty, id, |s| s.get_property(id, atom))
    }

    /// Deletes a property.
    pub fn delete_property(&self, id: WindowId, atom: Atom) {
        self.one_way(RequestKind::DeleteProperty, id, |s| {
            s.delete_property(id, atom)
        });
    }

    // --- colors, fonts, cursors, GCs ---

    /// Allocates a named color (round trip), returning pixel and RGB.
    pub fn alloc_named_color(&self, name: &str) -> Option<(Pixel, Rgb)> {
        self.round_trip(RequestKind::AllocColor, Xid::NONE, |s| {
            s.alloc_named_color(name)
        })
    }

    /// Allocates an RGB color (round trip).
    pub fn alloc_color(&self, rgb: Rgb) -> Pixel {
        self.round_trip(RequestKind::AllocColor, Xid::NONE, |s| {
            s.colormap.alloc(rgb)
        })
    }

    /// Frees one reference to a pixel.
    pub fn free_color(&self, pixel: Pixel) {
        self.one_way(RequestKind::FreeColor, Xid::NONE, |s| {
            s.colormap.free(pixel)
        });
    }

    /// Looks up the RGB stored in a pixel (round trip).
    pub fn query_color(&self, pixel: Pixel) -> Rgb {
        self.round_trip(RequestKind::QueryColor, Xid::NONE, |s| {
            s.colormap.rgb(pixel)
        })
    }

    /// Opens a font (round trip).
    pub fn open_font(&self, name: &str) -> Option<FontId> {
        self.round_trip(RequestKind::OpenFont, Xid::NONE, |s| s.open_font(name))
    }

    /// Queries font metrics (round trip).
    pub fn font_metrics(&self, font: FontId) -> Option<FontMetrics> {
        self.round_trip(RequestKind::QueryFont, Xid::NONE, |s| s.fonts.metrics(font))
    }

    /// Creates a cursor from the cursor font (round trip).
    pub fn create_cursor(&self, name: &str) -> Option<CursorId> {
        self.round_trip(RequestKind::CreateCursor, Xid::NONE, |s| {
            s.cursors.create(name)
        })
    }

    /// Uploads a bitmap to the server.
    pub fn create_bitmap(&self, bitmap: crate::bitmap::Bitmap) -> crate::bitmap::BitmapId {
        self.one_way(RequestKind::CreateBitmap, Xid::NONE, |s| {
            s.bitmaps.create(bitmap)
        })
    }

    /// Frees a bitmap.
    pub fn free_bitmap(&self, id: crate::bitmap::BitmapId) {
        self.one_way(RequestKind::FreeBitmap, Xid::NONE, |s| s.bitmaps.free(id));
    }

    /// Dimensions of an uploaded bitmap (round trip).
    pub fn bitmap_size(&self, id: crate::bitmap::BitmapId) -> Option<(u32, u32)> {
        self.round_trip(RequestKind::QueryBitmap, Xid::NONE, |s| {
            s.bitmaps.get(id).map(|b| (b.width, b.height))
        })
    }

    /// Draws a bitmap's set bits in the GC foreground at `(x, y)`.
    pub fn copy_bitmap(
        &self,
        id: WindowId,
        gc: GcId,
        x: i32,
        y: i32,
        bitmap: crate::bitmap::BitmapId,
    ) {
        self.one_way(RequestKind::CopyBitmap, id, |s| {
            s.copy_bitmap(id, gc, x, y, bitmap)
        });
    }

    /// Creates a GC.
    pub fn create_gc(&self, values: GcValues) -> GcId {
        self.one_way(RequestKind::CreateGc, Xid::NONE, |s| s.gcs.create(values))
    }

    /// Changes a GC.
    pub fn change_gc(&self, gc: GcId, values: GcValues) {
        self.one_way(RequestKind::ChangeGc, Xid::NONE, |s| {
            s.gcs.change(gc, values);
        });
    }

    /// Frees a GC.
    pub fn free_gc(&self, gc: GcId) {
        self.one_way(RequestKind::FreeGc, Xid::NONE, |s| s.gcs.free(gc));
    }

    // --- drawing ---

    /// Fills a rectangle in window coordinates.
    pub fn fill_rectangle(&self, id: WindowId, gc: GcId, x: i32, y: i32, w: u32, h: u32) {
        self.one_way(RequestKind::FillRectangle, id, |s| {
            s.fill_rectangle(id, gc, x, y, w, h)
        });
    }

    /// Draws a rectangle outline.
    pub fn draw_rectangle(&self, id: WindowId, gc: GcId, x: i32, y: i32, w: u32, h: u32) {
        self.one_way(RequestKind::DrawRectangle, id, |s| {
            s.draw_rectangle(id, gc, x, y, w, h)
        });
    }

    /// Draws a line.
    pub fn draw_line(&self, id: WindowId, gc: GcId, x0: i32, y0: i32, x1: i32, y1: i32) {
        self.one_way(RequestKind::DrawLine, id, |s| {
            s.draw_line(id, gc, x0, y0, x1, y1)
        });
    }

    /// Draws a string, baseline at `(x, y)`.
    pub fn draw_string(&self, id: WindowId, gc: GcId, x: i32, y: i32, text: &str) {
        self.one_way(RequestKind::DrawString, id, |s| {
            s.draw_string(id, gc, x, y, text)
        });
    }

    /// Clears an area to the window background (0 size = whole window).
    pub fn clear_area(&self, id: WindowId, x: i32, y: i32, w: u32, h: u32) {
        self.one_way(RequestKind::ClearArea, id, |s| s.clear_area(id, x, y, w, h));
    }

    // --- selections ---

    /// Claims selection ownership.
    pub fn set_selection_owner(&self, selection: Atom, owner: WindowId) {
        self.one_way(RequestKind::SetSelectionOwner, owner, |s| {
            s.set_selection_owner(self.client, selection, owner)
        });
    }

    /// Queries the selection owner (round trip).
    pub fn get_selection_owner(&self, selection: Atom) -> WindowId {
        self.round_trip(RequestKind::GetSelectionOwner, Xid::NONE, |s| {
            s.get_selection_owner(selection)
        })
    }

    /// Requests conversion of a selection into a property on `requestor`.
    pub fn convert_selection(
        &self,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    ) {
        self.one_way(RequestKind::ConvertSelection, requestor, |s| {
            s.convert_selection(requestor, selection, target, property)
        });
    }

    /// Replies to a SelectionRequest after storing the converted value.
    pub fn send_selection_notify(
        &self,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
    ) {
        self.one_way(RequestKind::SendEvent, requestor, |s| {
            s.send_selection_notify(requestor, selection, target, property)
        });
    }

    // --- focus ---

    /// Assigns the input focus.
    pub fn set_input_focus(&self, id: WindowId) {
        self.one_way(RequestKind::SetInputFocus, id, |s| s.set_input_focus(id));
    }

    /// Queries the input focus (round trip).
    pub fn get_input_focus(&self) -> WindowId {
        self.round_trip(RequestKind::GetInputFocus, Xid::NONE, |s| {
            s.get_input_focus()
        })
    }

    // --- events ---

    /// Takes the next queued event, if any.
    pub fn poll_event(&self) -> Option<Event> {
        self.server.borrow_mut().poll_event(self.client)
    }

    /// Number of queued events.
    pub fn pending(&self) -> usize {
        self.server.borrow().pending(self.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::mask;

    #[test]
    fn connection_counts_round_trips() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 10, 10, 0).unwrap(); // one-way
        c.map_window(w); // one-way
        let _ = c.get_geometry(w); // round trip
        let _ = c.intern_atom("X"); // round trip
        let st = c.stats();
        assert_eq!(st.requests, 4);
        assert_eq!(st.round_trips, 2);
    }

    #[test]
    fn two_clients_share_one_display() {
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        assert_ne!(c1.client_id(), c2.client_id());
        assert_eq!(c1.root(), c2.root());
        let atom = c1.intern_atom("SHARED");
        c1.change_property(c1.root(), atom, "from c1");
        assert_eq!(c2.get_property(c2.root(), atom), Some("from c1".into()));
    }

    #[test]
    fn events_are_per_client() {
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        let w = c1.create_window(c1.root(), 0, 0, 20, 20, 0).unwrap();
        c1.select_input(w, mask::STRUCTURE_NOTIFY);
        c1.map_window(w);
        assert!(c1.pending() > 0);
        assert_eq!(c2.pending(), 0);
    }

    #[test]
    fn driver_click_reaches_selecting_client() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 10, 10, 100, 100, 0).unwrap();
        c.select_input(w, mask::BUTTON_PRESS | mask::BUTTON_RELEASE);
        c.map_window(w);
        d.move_pointer(50, 50);
        d.click(1);
        let events: Vec<Event> = std::iter::from_fn(|| c.poll_event()).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ButtonPress { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ButtonRelease { .. })));
    }

    #[test]
    fn color_sharing_across_clients() {
        let d = Display::new();
        let c1 = d.connect();
        let c2 = d.connect();
        let (p1, rgb) = c1.alloc_named_color("MediumSeaGreen").unwrap();
        let (p2, _) = c2.alloc_named_color("mediumseagreen").unwrap();
        assert_eq!(p1, p2);
        assert_eq!(rgb, Rgb::new(60, 179, 113));
    }

    #[test]
    fn obs_counts_agree_with_client_stats() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.map_window(w);
        c.get_geometry(w);
        c.intern_atom("WM_NAME");

        let stats = c.stats();
        let kinds = c.obs_kind_counts();
        let total: u64 = kinds.iter().map(|(_, n)| n).sum();
        assert_eq!(total, stats.requests);
        assert_eq!(c.obs_request_histogram().count(), stats.requests);
        assert_eq!(c.obs_round_trip_histogram().count(), stats.round_trips);
        assert!(kinds.contains(&("CreateWindow", 1)), "{kinds:?}");
        assert!(kinds.contains(&("MapWindow", 1)), "{kinds:?}");
    }

    #[test]
    fn trace_is_off_by_default_and_bounded() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.map_window(w);
        assert!(!c.obs_trace_enabled());
        assert!(c.obs_trace(10).is_empty());

        c.obs_set_trace(true);
        c.get_geometry(w);
        c.unmap_window(w);
        let trace = c.obs_trace(10);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, crate::obs::RequestKind::GetGeometry);
        assert!(trace[0].round_trip);
        assert_eq!(trace[0].window, w);
        assert_eq!(trace[1].kind, crate::obs::RequestKind::UnmapWindow);
        assert!(trace[0].seq < trace[1].seq);
    }

    #[test]
    fn reset_obs_clears_everything_but_keeps_trace_flag() {
        let d = Display::new();
        let c = d.connect();
        c.obs_set_trace(true);
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.get_geometry(w);
        assert!(c.stats().requests > 0);
        assert!(!c.obs_trace(10).is_empty());

        c.reset_obs();
        let stats = c.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.round_trips, 0);
        assert!(c.obs_kind_counts().is_empty());
        assert!(c.obs_request_histogram().is_empty());
        assert!(c.obs_round_trip_histogram().is_empty());
        assert!(c.obs_trace(10).is_empty());
        assert!(c.obs_trace_enabled(), "trace flag must survive reset");

        // And the counters start again from zero, deterministically.
        c.map_window(w);
        assert_eq!(c.stats().requests, 1);
        assert_eq!(c.obs_kind_counts(), vec![("MapWindow", 1)]);
    }

    #[test]
    fn server_reset_stats_covers_obs_state() {
        let d = Display::new();
        let c = d.connect();
        let w = c.create_window(c.root(), 0, 0, 50, 50, 1).unwrap();
        c.get_geometry(w);
        d.with_server(|s| s.reset_stats());
        assert_eq!(c.stats().requests, 0);
        assert!(c.obs_kind_counts().is_empty());
        assert!(c.obs_request_histogram().is_empty());
    }
}
