//! # xsim — a simulated X11 server
//!
//! The substrate beneath the `tk` crate: an in-process X11 server faithful
//! to the protocol concepts Tk depends on — the window tree, atoms and
//! properties, event masks and propagation, graphics contexts, named
//! colors with a shared colormap, server-side fonts, the cursor font,
//! ICCCM selection ownership and conversion, input focus, and a pixel
//! framebuffer.
//!
//! This crate substitutes for the real X display the paper ran against
//! (see DESIGN.md): every request goes through a protocol-shaped
//! [`Connection`] which counts requests and round trips per client, so the
//! experiments about server traffic (resource caches, the client/server
//! time split of Table II) remain meaningful.
//!
//! # Examples
//!
//! ```
//! use xsim::{Display, event::mask};
//!
//! let display = Display::new();
//! let conn = display.connect();
//! let win = conn.create_window(conn.root(), 10, 10, 100, 50, 1).unwrap();
//! conn.select_input(win, mask::EXPOSURE | mask::BUTTON_PRESS);
//! conn.map_window(win);
//!
//! // The "user" clicks inside the window:
//! display.move_pointer(40, 30);
//! display.click(1);
//! let events: Vec<_> = std::iter::from_fn(|| conn.poll_event()).collect();
//! assert!(events.iter().any(|e| matches!(e, xsim::Event::ButtonPress { .. })));
//! ```

pub mod atom;
pub mod bitmap;
pub mod color;
pub mod connection;
pub mod cursor;
pub mod damage;
pub mod event;
pub mod fault;
pub mod font;
pub mod gc;
pub mod ids;
pub mod obs;
pub mod render;
pub mod rng;
pub mod server;
pub mod window;
pub mod wire;

pub use atom::Atom;
pub use bitmap::{Bitmap, BitmapId};
pub use color::{lookup_color, Rgb};
pub use connection::{Connection, Cookie, Display, FromReply, Geometry};
pub use damage::{DamageList, Rect};
pub use event::{Event, Keysym};
pub use fault::{FaultAction, FaultPlan, FaultSpec, FiredFault, XError, XErrorCode};
pub use font::FontMetrics;
pub use gc::GcValues;
pub use ids::{ClientId, CursorId, FontId, GcId, Pixel, WindowId, Xid};
pub use obs::{ClientObs, RequestKind, TraceEntry, WireStats};
pub use render::Surface;
pub use rng::XorShift;
pub use server::{ClientStats, Server, OUT_BUF_CAPACITY, SCREEN_HEIGHT, SCREEN_WIDTH};
pub use wire::WireHandle;
