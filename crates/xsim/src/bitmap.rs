//! Bitmaps: two-color images in the X11 XBM format.
//!
//! Tk's resource cache names bitmaps textually — `@star` for a bitmap
//! stored in a file named `star` (Section 3.3) — and widgets display them
//! with the foreground/background pixels of a GC.

use std::collections::HashMap;

use crate::ids::{IdAllocator, Xid};

/// A bitmap id.
pub type BitmapId = Xid;

/// A parsed bitmap: `width * height` bits, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    bits: Vec<bool>,
}

impl Bitmap {
    /// Builds a bitmap from a bit vector (must be `width * height` long).
    pub fn new(width: u32, height: u32, bits: Vec<bool>) -> Option<Bitmap> {
        if bits.len() != (width * height) as usize {
            return None;
        }
        Some(Bitmap {
            width,
            height,
            bits,
        })
    }

    /// Is the bit at `(x, y)` set?
    pub fn get(&self, x: u32, y: u32) -> bool {
        if x >= self.width || y >= self.height {
            return false;
        }
        self.bits[(y * self.width + x) as usize]
    }

    /// Number of set bits (for tests).
    pub fn popcount(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Parses X11 XBM source text:
    ///
    /// ```text
    /// #define star_width 8
    /// #define star_height 8
    /// static char star_bits[] = { 0x18, 0x18, 0xff, ... };
    /// ```
    ///
    /// Bits are LSB-first within each byte; rows are padded to whole bytes.
    pub fn parse_xbm(text: &str) -> Option<Bitmap> {
        let mut width: Option<u32> = None;
        let mut height: Option<u32> = None;
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("#define") {
                let mut parts = rest.split_whitespace();
                let name = parts.next()?;
                let value = parts.next()?;
                if name.ends_with("_width") {
                    width = value.parse().ok();
                } else if name.ends_with("_height") {
                    height = value.parse().ok();
                }
            }
        }
        let (width, height) = (width?, height?);
        // Collect every 0x.. byte in the bits array.
        let body = text.split('{').nth(1)?.split('}').next()?;
        let mut bytes = Vec::new();
        for tok in body.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let v = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
                u8::from_str_radix(hex, 16).ok()?
            } else {
                tok.parse::<u8>().ok()?
            };
            bytes.push(v);
        }
        let row_bytes = width.div_ceil(8) as usize;
        if bytes.len() < row_bytes * height as usize {
            return None;
        }
        let mut bits = Vec::with_capacity((width * height) as usize);
        for y in 0..height as usize {
            for x in 0..width as usize {
                let byte = bytes[y * row_bytes + x / 8];
                bits.push(byte & (1 << (x % 8)) != 0);
            }
        }
        Bitmap::new(width, height, bits)
    }
}

/// Built-in bitmaps, named like Tk's (`gray50`, `gray25`, ...).
pub fn builtin(name: &str) -> Option<Bitmap> {
    let checker = |mod2: u32| -> Bitmap {
        let bits = (0..16 * 16)
            .map(|i| {
                let (x, y) = (i % 16, i / 16);
                (x + y) % mod2 == 0
            })
            .collect();
        Bitmap::new(16, 16, bits).unwrap()
    };
    match name {
        "gray50" => Some(checker(2)),
        "gray25" => {
            let bits = (0..16 * 16)
                .map(|i| {
                    let (x, y) = (i % 16, i / 16);
                    x % 2 == 0 && y % 2 == 0
                })
                .collect();
            Bitmap::new(16, 16, bits)
        }
        "black" => Bitmap::new(16, 16, vec![true; 256]),
        "white" => Bitmap::new(16, 16, vec![false; 256]),
        _ => None,
    }
}

/// The server-side bitmap table.
#[derive(Debug, Default)]
pub struct BitmapTable {
    ids: IdAllocator,
    bitmaps: HashMap<BitmapId, Bitmap>,
}

impl BitmapTable {
    /// Stores a bitmap and returns its id.
    pub fn create(&mut self, bitmap: Bitmap) -> BitmapId {
        let id = self.ids.alloc();
        self.bitmaps.insert(id, bitmap);
        id
    }

    /// Hands out an id for a CreateBitmap still sitting in an output
    /// buffer (client-side XID allocation).
    pub fn reserve(&mut self) -> BitmapId {
        self.ids.alloc()
    }

    /// Stores a bitmap under a pre-reserved id (the buffered-transport path).
    pub fn create_with_id(&mut self, id: BitmapId, bitmap: Bitmap) {
        self.bitmaps.insert(id, bitmap);
    }

    /// Looks a bitmap up.
    pub fn get(&self, id: BitmapId) -> Option<&Bitmap> {
        self.bitmaps.get(&id)
    }

    /// Frees a bitmap.
    pub fn free(&mut self, id: BitmapId) {
        self.bitmaps.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAR_XBM: &str = "
#define star_width 8
#define star_height 5
static char star_bits[] = {
   0x18, 0x18, 0xff, 0x3c, 0x24};
";

    #[test]
    fn parses_xbm() {
        let b = Bitmap::parse_xbm(STAR_XBM).unwrap();
        assert_eq!((b.width, b.height), (8, 5));
        // 0x18 = 00011000: bits 3 and 4 set (LSB first).
        assert!(b.get(3, 0));
        assert!(b.get(4, 0));
        assert!(!b.get(0, 0));
        // 0xff: the whole third row.
        assert!((0..8).all(|x| b.get(x, 2)));
    }

    #[test]
    fn xbm_rejects_garbage() {
        assert!(Bitmap::parse_xbm("not a bitmap").is_none());
        assert!(Bitmap::parse_xbm("#define x_width 8\n#define x_height 8\n{0x01}").is_none());
    }

    #[test]
    fn builtin_bitmaps() {
        let g50 = builtin("gray50").unwrap();
        assert_eq!(g50.popcount(), 128);
        let g25 = builtin("gray25").unwrap();
        assert_eq!(g25.popcount(), 64);
        assert!(builtin("nope").is_none());
    }

    #[test]
    fn table_stores_and_frees() {
        let mut t = BitmapTable::default();
        let id = t.create(builtin("black").unwrap());
        assert_eq!(t.get(id).unwrap().popcount(), 256);
        t.free(id);
        assert!(t.get(id).is_none());
    }

    #[test]
    fn out_of_range_get_is_false() {
        let b = builtin("black").unwrap();
        assert!(!b.get(99, 0));
        assert!(!b.get(0, 99));
    }
}
