//! The cursor font: named mouse cursors.
//!
//! X11 cursors come from a special "cursor font" with entries like
//! `arrow`, `coffee_mug` (the paper's example), and `watch`. The server
//! validates names and hands out cursor ids; appearance is not simulated
//! beyond identity.

use std::collections::HashMap;

use crate::ids::{CursorId, IdAllocator};

/// The standard X11 cursor-font glyph names (subset).
pub const CURSOR_NAMES: &[&str] = &[
    "X_cursor",
    "arrow",
    "based_arrow_down",
    "based_arrow_up",
    "boat",
    "bogosity",
    "bottom_left_corner",
    "bottom_right_corner",
    "bottom_side",
    "bottom_tee",
    "box_spiral",
    "center_ptr",
    "circle",
    "clock",
    "coffee_mug",
    "cross",
    "cross_reverse",
    "crosshair",
    "diamond_cross",
    "dot",
    "dotbox",
    "double_arrow",
    "draft_large",
    "draft_small",
    "draped_box",
    "exchange",
    "fleur",
    "gobbler",
    "gumby",
    "hand1",
    "hand2",
    "heart",
    "icon",
    "iron_cross",
    "left_ptr",
    "left_side",
    "left_tee",
    "leftbutton",
    "ll_angle",
    "lr_angle",
    "man",
    "middlebutton",
    "mouse",
    "pencil",
    "pirate",
    "plus",
    "question_arrow",
    "right_ptr",
    "right_side",
    "right_tee",
    "rightbutton",
    "rtl_logo",
    "sailboat",
    "sb_down_arrow",
    "sb_h_double_arrow",
    "sb_left_arrow",
    "sb_right_arrow",
    "sb_up_arrow",
    "sb_v_double_arrow",
    "shuttle",
    "sizing",
    "spider",
    "spraycan",
    "star",
    "target",
    "tcross",
    "top_left_arrow",
    "top_left_corner",
    "top_right_corner",
    "top_side",
    "top_tee",
    "trek",
    "ul_angle",
    "umbrella",
    "ur_angle",
    "watch",
    "xterm",
];

/// The server-side cursor table.
#[derive(Debug, Default)]
pub struct CursorTable {
    ids: IdAllocator,
    by_name: HashMap<String, CursorId>,
    names: HashMap<CursorId, String>,
}

impl CursorTable {
    /// Creates (or reuses) a cursor for a valid glyph name.
    pub fn create(&mut self, name: &str) -> Option<CursorId> {
        if let Some(&id) = self.by_name.get(name) {
            return Some(id);
        }
        if !CURSOR_NAMES.contains(&name) {
            return None;
        }
        let id = self.ids.alloc();
        self.by_name.insert(name.to_string(), id);
        self.names.insert(id, name.to_string());
        Some(id)
    }

    /// The glyph name of a cursor.
    pub fn name(&self, id: CursorId) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_cursor_names_resolve() {
        let mut t = CursorTable::default();
        let c = t.create("coffee_mug").unwrap();
        assert_eq!(t.name(c), Some("coffee_mug"));
        assert_eq!(t.create("coffee_mug"), Some(c));
    }

    #[test]
    fn unknown_cursor_rejected() {
        let mut t = CursorTable::default();
        assert_eq!(t.create("no_such_cursor"), None);
    }
}
