//! A tiny deterministic PRNG (xorshift64*), shared by the fault planner
//! and the benchmark/fuzz harnesses so every seeded run is reproducible
//! without external dependencies.

/// xorshift64* generator. Deterministic, seedable, and good enough for
/// workload shuffling and fault-plan generation (not cryptography).
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a seed; a zero seed is remapped to a fixed
    /// odd constant so the state never sticks at zero.
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(5, 5), 5);
        let v = r.range(3, 9);
        assert!((3..9).contains(&v));
    }
}
