//! Damage regions: dirty-rectangle lists with coalescing.
//!
//! A [`DamageList`] accumulates the rectangles of a window that need
//! repainting. Rectangles contained in an already-recorded rect are
//! dropped, overlapping rects are merged into their bounding box (with
//! cascading re-merge, so the list is always pairwise disjoint), and a
//! list that grows past [`DamageList::MAX_RECTS`] collapses into a single
//! bounding box. The same type backs the server's Expose coalescing and
//! the toolkit's pending-redraw damage (see docs/RENDERING.md).

/// An axis-aligned rectangle: position plus size, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: i32, y: i32, w: u32, h: u32) -> Rect {
        Rect { x, y, w, h }
    }

    /// Is the rectangle zero-area?
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Exclusive right edge.
    pub fn right(&self) -> i32 {
        self.x + self.w as i32
    }

    /// Exclusive bottom edge.
    pub fn bottom(&self) -> i32 {
        self.y + self.h as i32
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Does `self` fully contain `other`?
    pub fn contains(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.x <= other.x
            && self.y <= other.y
            && self.right() >= other.right()
            && self.bottom() >= other.bottom()
    }

    /// Do the rectangles share at least one pixel?
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// The intersection, or `None` if the rectangles are disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, (x1 - x0) as u32, (y1 - y0) as u32))
        } else {
            None
        }
    }

    /// The bounding box of both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.right().max(other.right());
        let y1 = self.bottom().max(other.bottom());
        Rect::new(x0, y0, (x1 - x0) as u32, (y1 - y0) as u32)
    }

    /// Expands the rectangle by `pad` pixels on every side (clamping the
    /// origin at the requested amount even when it goes negative).
    pub fn expand(&self, pad: i32) -> Rect {
        let w = (self.w as i64 + 2 * pad as i64).max(0) as u32;
        let h = (self.h as i64 + 2 * pad as i64).max(0) as u32;
        Rect::new(self.x - pad, self.y - pad, w, h)
    }

    /// Does the rectangle cover the whole `width` x `height` area?
    pub fn covers(&self, width: u32, height: u32) -> bool {
        self.contains(&Rect::new(0, 0, width, height))
    }
}

/// A coalescing list of damage rectangles. Invariant: the stored rects
/// are pairwise disjoint (overlap triggers a bounding-box merge), so a
/// rasterizer clipping to the list never writes — or counts — a pixel
/// twice.
#[derive(Debug, Clone, Default)]
pub struct DamageList {
    rects: Vec<Rect>,
}

impl DamageList {
    /// Lists longer than this collapse into one bounding box.
    pub const MAX_RECTS: usize = 8;

    /// Creates an empty list.
    pub fn new() -> DamageList {
        DamageList::default()
    }

    /// No damage recorded?
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of rects currently held.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// The recorded rects (pairwise disjoint).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Adds a rect, coalescing. Returns the number of coalescing steps
    /// performed (contained-drop, overlap-merge, or overflow-collapse —
    /// each counts one), which feeds the `expose_coalesced` counter.
    pub fn add(&mut self, rect: Rect) -> u64 {
        if rect.is_empty() {
            return 0;
        }
        let mut coalesced = 0;
        // Contained in an existing rect: nothing new to record.
        if self.rects.iter().any(|r| r.contains(&rect)) {
            return 1;
        }
        // Merge with every overlapping rect, cascading: the merged
        // bounding box may overlap rects that the original did not.
        let mut merged = rect;
        loop {
            let mut grew = false;
            self.rects.retain(|r| {
                if merged.overlaps(r) || merged.contains(r) {
                    merged = merged.union(r);
                    coalesced += 1;
                    grew = true;
                    false
                } else {
                    true
                }
            });
            if !grew {
                break;
            }
        }
        self.rects.push(merged);
        if self.rects.len() > Self::MAX_RECTS {
            let all = self
                .rects
                .drain(..)
                .reduce(|a, b| a.union(&b))
                .expect("list was non-empty");
            self.rects.push(all);
            coalesced += 1;
        }
        coalesced
    }

    /// Takes the recorded rects, leaving the list empty.
    pub fn take(&mut self) -> Vec<Rect> {
        std::mem::take(&mut self.rects)
    }

    /// Drops all recorded damage.
    pub fn clear(&mut self) {
        self.rects.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        assert!(a.contains(&Rect::new(2, 2, 3, 3)));
        assert!(!a.contains(&b));
        // Touching edges share no pixel.
        assert!(!a.overlaps(&Rect::new(10, 0, 5, 5)));
        assert_eq!(a.intersect(&Rect::new(10, 0, 5, 5)), None);
    }

    #[test]
    fn empty_rects_are_inert() {
        let e = Rect::new(3, 3, 0, 5);
        let a = Rect::new(0, 0, 10, 10);
        assert!(e.is_empty());
        assert!(!a.overlaps(&e));
        assert!(!a.contains(&e));
        assert_eq!(a.union(&e), a);
        let mut l = DamageList::new();
        assert_eq!(l.add(e), 0);
        assert!(l.is_empty());
    }

    #[test]
    fn expand_and_covers() {
        let r = Rect::new(5, 5, 10, 10);
        assert_eq!(r.expand(2), Rect::new(3, 3, 14, 14));
        assert!(Rect::new(0, 0, 20, 20).covers(20, 20));
        assert!(Rect::new(-1, -1, 30, 30).covers(20, 20));
        assert!(!Rect::new(0, 0, 19, 20).covers(20, 20));
    }

    #[test]
    fn disjoint_rects_accumulate() {
        let mut l = DamageList::new();
        assert_eq!(l.add(Rect::new(0, 0, 5, 5)), 0);
        assert_eq!(l.add(Rect::new(20, 20, 5, 5)), 0);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn contained_rect_is_dropped() {
        let mut l = DamageList::new();
        l.add(Rect::new(0, 0, 20, 20));
        assert_eq!(l.add(Rect::new(5, 5, 3, 3)), 1);
        assert_eq!(l.rects(), &[Rect::new(0, 0, 20, 20)]);
    }

    #[test]
    fn overlapping_rects_merge_into_bounding_box() {
        let mut l = DamageList::new();
        l.add(Rect::new(0, 0, 10, 10));
        assert_eq!(l.add(Rect::new(5, 5, 10, 10)), 1);
        assert_eq!(l.rects(), &[Rect::new(0, 0, 15, 15)]);
    }

    #[test]
    fn merge_cascades_until_disjoint() {
        let mut l = DamageList::new();
        l.add(Rect::new(0, 0, 4, 4));
        l.add(Rect::new(10, 0, 4, 4));
        // Bridges both: one rect remains.
        assert!(l.add(Rect::new(2, 0, 10, 4)) >= 2);
        assert_eq!(l.rects(), &[Rect::new(0, 0, 14, 4)]);
    }

    #[test]
    fn overflow_collapses_to_bounding_box() {
        let mut l = DamageList::new();
        for i in 0..=DamageList::MAX_RECTS as i32 {
            l.add(Rect::new(i * 10, 0, 5, 5));
        }
        assert_eq!(l.len(), 1);
        let r = l.rects()[0];
        assert_eq!(r.x, 0);
        assert_eq!(r.right(), DamageList::MAX_RECTS as i32 * 10 + 5);
    }

    #[test]
    fn list_invariant_pairwise_disjoint() {
        let mut l = DamageList::new();
        let mut rng = crate::rng::XorShift::new(99);
        for _ in 0..200 {
            l.add(Rect::new(
                rng.below(60) as i32,
                rng.below(60) as i32,
                rng.range(1, 20) as u32,
                rng.range(1, 20) as u32,
            ));
            for (i, a) in l.rects().iter().enumerate() {
                for b in &l.rects()[i + 1..] {
                    assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
                }
            }
        }
    }

    #[test]
    fn take_empties_the_list() {
        let mut l = DamageList::new();
        l.add(Rect::new(0, 0, 5, 5));
        let rects = l.take();
        assert_eq!(rects.len(), 1);
        assert!(l.is_empty());
    }
}
