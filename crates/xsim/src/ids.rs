//! X resource identifiers.
//!
//! Every server-side resource (window, graphics context, font, cursor) is
//! named by a 32-bit XID, exactly as in the X11 protocol. A single
//! allocator hands out unique ids; unlike real X we do not partition the id
//! space per client because all clients are in-process.

/// A generic X resource identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Xid(pub u32);

impl Xid {
    /// The reserved "none" id.
    pub const NONE: Xid = Xid(0);

    /// Is this the none id?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Xid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A window id (alias of [`Xid`] for readability in signatures).
pub type WindowId = Xid;

/// A graphics-context id.
pub type GcId = Xid;

/// A font id.
pub type FontId = Xid;

/// A cursor id.
pub type CursorId = Xid;

/// A pixel value in the (pseudo-color) colormap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pixel(pub u32);

/// A connected client's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// Monotonic id allocator.
#[derive(Debug, Default)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// Creates an allocator whose first id is `first`.
    pub fn starting_at(first: u32) -> IdAllocator {
        IdAllocator { next: first }
    }

    /// Returns a fresh id.
    pub fn alloc(&mut self) -> Xid {
        self.next += 1;
        Xid(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut a = IdAllocator::default();
        let x = a.alloc();
        let y = a.alloc();
        assert_ne!(x, y);
        assert!(y > x);
    }

    #[test]
    fn none_is_zero() {
        assert!(Xid::NONE.is_none());
        let mut a = IdAllocator::default();
        assert!(!a.alloc().is_none());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Xid(255).to_string(), "0xff");
    }
}
