//! The framed wire protocol and the threaded wire transport.
//!
//! Every request, reply, event, and error has a defined byte encoding so
//! the protocol can cross a real transport boundary instead of a Rust
//! function call. A frame is
//!
//! ```text
//! [u32 len LE][u8 version][u8 frame_type][u16 opcode LE][u64 seq LE][u32 crc LE][payload]
//! ```
//!
//! where `len` counts everything after itself (header + payload). The
//! header is versioned ([`WIRE_VERSION`]) so a peer speaking a different
//! revision is rejected with [`WireError::BadVersion`] instead of
//! misparsing, and carries a CRC32 of the header fields plus the payload
//! so a flipped byte anywhere in the frame surfaces as
//! [`WireError::Checksum`] instead of a misparse. [`FrameReader`]
//! reassembles frames from arbitrary read chunks, so the decoder never
//! assumes a write boundary survived the transport, and bounds its
//! reassembly buffer at [`MAX_FRAME_LEN`] + header so a hostile length
//! prefix or garbage flood cannot grow memory without limit.
//!
//! The transport half runs the [`Server`] on its own dispatcher thread:
//! clients encode request frames into per-client byte buffers and ship
//! small control frames (flush, sync, reply take, event poll) through a
//! FIFO inbox, blocking on a condvar until the dispatcher acknowledges
//! the ticket. Acks are synchronous, which is what keeps counters, fault
//! firings, and span shapes byte-identical to the in-process transport:
//! both transports bump the same issue-time accounting under the same
//! lock, and a flush applies the same decoded batch through
//! [`Server::apply_batch`]. See docs/PROTOCOL.md.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::atom::Atom;
use crate::bitmap::{Bitmap, BitmapId};
use crate::color::Rgb;
use crate::connection::{Transport, WaitReply};
use crate::damage::Rect;
use crate::event::{Event, Keysym};
use crate::fault::{FaultAction, XError, XErrorCode};
use crate::font::FontMetrics;
use crate::gc::GcValues;
use crate::ids::{ClientId, Pixel, WindowId, Xid};
use crate::obs::RequestKind;
use crate::server::{QueuedRequest, ReplyValue, Server, SyncReply, SyncRequest, OUT_BUF_CAPACITY};

/// Protocol revision carried in every frame header. Version 2 added the
/// CRC32 trailer field to the header; a version-1 peer is rejected with
/// [`WireError::BadVersion`] (there is no negotiation — both ends of the
/// simulated transport always speak the current revision).
pub const WIRE_VERSION: u8 = 2;
/// Bytes between the length prefix and the payload: version, frame type,
/// opcode, sequence number, CRC32.
pub const HEADER_LEN: usize = 16;
/// Offset of the CRC field within the header (after `seq`).
const CRC_OFFSET: usize = 12;
/// Upper bound on `len`; anything larger is rejected before allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;
/// Upper bound on unconsumed bytes a [`FrameReader`] will buffer: one
/// maximal frame plus its length prefix. Growth past this is rejected by
/// [`FrameReader::push`] before any allocation happens.
pub const MAX_BUFFERED: usize = 4 + MAX_FRAME_LEN as usize;

/// CRC32 (IEEE, reflected, polynomial 0xEDB88320) lookup table, built at
/// compile time — the same function zlib and PNG use, hand-rolled so the
/// wire layer stays zero-dependency.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Feeds `bytes` into a running CRC32 state (init [`CRC32_INIT`],
/// finalize by XOR with `0xFFFF_FFFF`).
fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC32_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// CRC32 of a v2 frame: the 12 header bytes before the CRC field
/// (version, frame type, opcode, seq) followed by the payload. The
/// length prefix is excluded — it is validated structurally — and the
/// CRC field itself is obviously excluded.
fn frame_crc(header_pre_crc: &[u8], payload: &[u8]) -> u32 {
    let state = crc32_update(CRC32_INIT, header_pre_crc);
    crc32_update(state, payload) ^ 0xFFFF_FFFF
}

// Frame types. Requests flow client -> server; replies, events, and
// errors flow back; FLUSH/SYNC/TAKE/POLL/PENDING are transport control.
pub const FT_REQUEST: u8 = 1;
pub const FT_SYNC: u8 = 2;
pub const FT_SYNC_REPLY: u8 = 3;
pub const FT_COOKIE_REPLY: u8 = 4;
pub const FT_NO_REPLY: u8 = 5;
pub const FT_EVENT: u8 = 6;
pub const FT_NO_EVENT: u8 = 7;
pub const FT_ERROR: u8 = 8;
pub const FT_TAKE_REPLY: u8 = 9;
pub const FT_POLL_EVENT: u8 = 10;
pub const FT_PENDING: u8 = 11;
pub const FT_PENDING_COUNT: u8 = 12;
pub const FT_FLUSH_CLIENT: u8 = 13;
pub const FT_FLUSH_ALL: u8 = 14;

/// A decode failure. Every malformed input maps to a structured error —
/// the decoder never panics and never reads out of bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame (only surfaced by explicit EOF
    /// checks; [`FrameReader::next_frame`] returns `Ok(None)` and waits).
    Truncated,
    /// The frame header carries an unknown protocol version.
    BadVersion(u8),
    /// The frame type byte is outside the defined range.
    BadFrameType(u8),
    /// The opcode is not defined for this frame type.
    BadOpcode(u16),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The frame's CRC32 does not match its contents: the bytes were
    /// corrupted somewhere between encode and decode.
    Checksum,
    /// The payload does not parse as the opcode's layout.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::BadOpcode(o) => write!(f, "unknown opcode {o}"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds limit"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ----- primitive writers (little-endian throughout) -----

fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_i32(b: &mut Vec<u8>, v: i32) {
    put_u32(b, v as u32);
}
fn put_bool(b: &mut Vec<u8>, v: bool) {
    b.push(v as u8);
}
fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}
fn put_opt_i32(b: &mut Vec<u8>, v: Option<i32>) {
    match v {
        None => b.push(0),
        Some(x) => {
            b.push(1);
            put_i32(b, x);
        }
    }
}
fn put_opt_u32(b: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => b.push(0),
        Some(x) => {
            b.push(1);
            put_u32(b, x);
        }
    }
}
fn put_gc(b: &mut Vec<u8>, g: &GcValues) {
    put_u32(b, g.foreground.0);
    put_u32(b, g.background.0);
    put_u32(b, g.line_width);
    put_u32(b, g.font.0);
}
fn put_rect(b: &mut Vec<u8>, r: &Rect) {
    put_i32(b, r.x);
    put_i32(b, r.y);
    put_u32(b, r.w);
    put_u32(b, r.h);
}
fn put_rects(b: &mut Vec<u8>, rects: &[Rect]) {
    put_u32(b, rects.len() as u32);
    for r in rects {
        put_rect(b, r);
    }
}
fn put_bitmap(b: &mut Vec<u8>, bm: &Bitmap) {
    put_u32(b, bm.width);
    put_u32(b, bm.height);
    for y in 0..bm.height {
        for x in 0..bm.width {
            b.push(bm.get(x, y) as u8);
        }
    }
}
fn put_keysym(b: &mut Vec<u8>, k: &Keysym) {
    put_str(b, &k.name);
    match k.ch {
        None => b.push(0),
        Some(c) => {
            b.push(1);
            put_u32(b, c as u32);
        }
    }
}
fn put_error(b: &mut Vec<u8>, e: &XError) {
    let code = match e.code {
        XErrorCode::BadWindow => 1u8,
        XErrorCode::BadAtom => 2,
        XErrorCode::BadValue => 3,
        XErrorCode::BadAlloc => 4,
        XErrorCode::ConnectionDead => 5,
    };
    b.push(code);
    put_u64(b, e.seq);
    match e.kind {
        None => b.push(0),
        Some(k) => {
            b.push(1);
            put_u16(b, k as u16);
        }
    }
}

// ----- bounds-checked payload reader -----

struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.b.len() - self.pos < n {
            return Err(WireError::Malformed("short payload"));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bad bool")),
        }
    }
    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::Malformed("invalid utf-8"))
    }
    fn ch(&mut self) -> Result<char, WireError> {
        char::from_u32(self.u32()?).ok_or(WireError::Malformed("bad char"))
    }
    fn opt_i32(&mut self) -> Result<Option<i32>, WireError> {
        match self.bool()? {
            false => Ok(None),
            true => Ok(Some(self.i32()?)),
        }
    }
    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.bool()? {
            false => Ok(None),
            true => Ok(Some(self.u32()?)),
        }
    }
    fn xid(&mut self) -> Result<Xid, WireError> {
        Ok(Xid(self.u32()?))
    }
    fn atom(&mut self) -> Result<Atom, WireError> {
        Ok(Atom(self.u32()?))
    }
    fn pixel(&mut self) -> Result<Pixel, WireError> {
        Ok(Pixel(self.u32()?))
    }
    fn rgb(&mut self) -> Result<Rgb, WireError> {
        let s = self.take(3)?;
        Ok(Rgb::new(s[0], s[1], s[2]))
    }
    fn gc(&mut self) -> Result<GcValues, WireError> {
        Ok(GcValues {
            foreground: self.pixel()?,
            background: self.pixel()?,
            line_width: self.u32()?,
            font: self.xid()?,
        })
    }
    fn rect(&mut self) -> Result<Rect, WireError> {
        Ok(Rect::new(
            self.i32()?,
            self.i32()?,
            self.u32()?,
            self.u32()?,
        ))
    }
    fn rects(&mut self) -> Result<Vec<Rect>, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(16) > self.b.len() - self.pos {
            return Err(WireError::Malformed("rect count exceeds payload"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.rect()?);
        }
        Ok(v)
    }
    fn bitmap(&mut self) -> Result<Bitmap, WireError> {
        let w = self.u32()?;
        let h = self.u32()?;
        let n = (w as u64).saturating_mul(h as u64);
        if n > MAX_FRAME_LEN as u64 {
            return Err(WireError::Malformed("bitmap too large"));
        }
        let raw = self.take(n as usize)?;
        let mut bits = Vec::with_capacity(n as usize);
        for &byte in raw {
            match byte {
                0 => bits.push(false),
                1 => bits.push(true),
                _ => return Err(WireError::Malformed("bad bitmap bit")),
            }
        }
        Bitmap::new(w, h, bits).ok_or(WireError::Malformed("bitmap size mismatch"))
    }
    fn keysym(&mut self) -> Result<Keysym, WireError> {
        let name = self.string()?;
        let ch = match self.bool()? {
            false => None,
            true => Some(self.ch()?),
        };
        Ok(Keysym { name, ch })
    }
    fn error(&mut self) -> Result<XError, WireError> {
        let code = match self.u8()? {
            1 => XErrorCode::BadWindow,
            2 => XErrorCode::BadAtom,
            3 => XErrorCode::BadValue,
            4 => XErrorCode::BadAlloc,
            5 => XErrorCode::ConnectionDead,
            _ => return Err(WireError::Malformed("bad error code")),
        };
        let seq = self.u64()?;
        let kind = match self.bool()? {
            false => None,
            true => {
                let i = self.u16()? as usize;
                Some(
                    *RequestKind::ALL
                        .get(i)
                        .ok_or(WireError::Malformed("bad request kind"))?,
                )
            }
        };
        Ok(XError { code, seq, kind })
    }

    /// Asserts the payload was consumed exactly.
    fn done(self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

// ----- frames -----

/// One decoded frame: header fields plus the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    pub frame_type: u8,
    pub opcode: u16,
    pub seq: u64,
    pub payload: Vec<u8>,
}

impl RawFrame {
    /// Total encoded size including the length prefix.
    pub fn wire_len(&self) -> usize {
        4 + HEADER_LEN + self.payload.len()
    }
}

/// Encodes one frame: length prefix, versioned header with CRC32 of
/// header fields + payload, payload.
pub fn frame(frame_type: u8, opcode: u16, seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = (HEADER_LEN + payload.len()) as u32;
    debug_assert!(len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    let mut b = Vec::with_capacity(4 + len as usize);
    put_u32(&mut b, len);
    b.push(WIRE_VERSION);
    b.push(frame_type);
    put_u16(&mut b, opcode);
    put_u64(&mut b, seq);
    let crc = frame_crc(&b[4..4 + CRC_OFFSET], payload);
    put_u32(&mut b, crc);
    b.extend_from_slice(payload);
    b
}

/// Incremental frame reassembly over arbitrary read chunks. Feed bytes
/// with [`push`](FrameReader::push); [`next_frame`](FrameReader::next_frame)
/// yields a frame once one is complete, `Ok(None)` while data is partial,
/// and a [`WireError`] for malformed input.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Buffers a read chunk for reassembly. Rejects growth past
    /// [`MAX_BUFFERED`] unconsumed bytes *before* copying anything: a
    /// hostile length prefix that never completes, or a flood of garbage
    /// that never parses, cannot grow memory past one maximal frame.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), WireError> {
        self.compact_now();
        let unconsumed = self.buf.len() - self.pos;
        if unconsumed + chunk.len() > MAX_BUFFERED {
            return Err(WireError::Oversized(
                (unconsumed + chunk.len()).min(u32::MAX as usize) as u32,
            ));
        }
        self.buf.extend_from_slice(chunk);
        Ok(())
    }

    /// Unconsumed bytes sitting in the reassembly buffer — nonzero after
    /// a drain means a partial (or corrupt) frame is still pending.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn next_frame(&mut self) -> Result<Option<RawFrame>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let at = self.pos;
        let len = u32::from_le_bytes(self.buf[at..at + 4].try_into().unwrap());
        if (len as usize) < HEADER_LEN {
            // A length too short for its own header is byte damage, not a
            // protocol disagreement: no valid encoder emits it.
            return Err(WireError::Checksum);
        }
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(len));
        }
        if avail < 4 + len as usize {
            self.compact();
            return Ok(None);
        }
        let start = at + 4;
        let version = self.buf[start];
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let stored = u32::from_le_bytes(
            self.buf[start + CRC_OFFSET..start + CRC_OFFSET + 4]
                .try_into()
                .unwrap(),
        );
        let computed = frame_crc(
            &self.buf[start..start + CRC_OFFSET],
            &self.buf[start + HEADER_LEN..start + len as usize],
        );
        if stored != computed {
            return Err(WireError::Checksum);
        }
        // Past the CRC the bytes are authentic, so an out-of-range frame
        // type is a genuine protocol disagreement, not corruption.
        let frame_type = self.buf[start + 1];
        if !(FT_REQUEST..=FT_FLUSH_ALL).contains(&frame_type) {
            return Err(WireError::BadFrameType(frame_type));
        }
        let opcode = u16::from_le_bytes(self.buf[start + 2..start + 4].try_into().unwrap());
        let seq = u64::from_le_bytes(self.buf[start + 4..start + 12].try_into().unwrap());
        let payload = self.buf[start + HEADER_LEN..start + len as usize].to_vec();
        self.pos = start + len as usize;
        Ok(Some(RawFrame {
            frame_type,
            opcode,
            seq,
            payload,
        }))
    }

    fn compact(&mut self) {
        if self.pos > 4096 {
            self.compact_now();
        }
    }

    fn compact_now(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

// ----- request codec -----
//
// Opcodes follow `QueuedRequest` declaration order, 1-based. The
// reply-bearing variants (35..=39) do not serialize their embedded
// sequence number; it is reconstructed from the frame header.

/// Encodes a buffered request into `(opcode, payload)`.
pub(crate) fn encode_request(q: &QueuedRequest) -> (u16, Vec<u8>) {
    use QueuedRequest as Q;
    let mut b = Vec::new();
    let op = match q {
        Q::CreateWindow {
            id,
            parent,
            x,
            y,
            width,
            height,
            border_width,
        } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, parent.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *width);
            put_u32(&mut b, *height);
            put_u32(&mut b, *border_width);
            1
        }
        Q::DestroyWindow { id } => {
            put_u32(&mut b, id.0);
            2
        }
        Q::MapWindow { id } => {
            put_u32(&mut b, id.0);
            3
        }
        Q::UnmapWindow { id } => {
            put_u32(&mut b, id.0);
            4
        }
        Q::ConfigureWindow {
            id,
            x,
            y,
            width,
            height,
            border_width,
        } => {
            put_u32(&mut b, id.0);
            put_opt_i32(&mut b, *x);
            put_opt_i32(&mut b, *y);
            put_opt_u32(&mut b, *width);
            put_opt_u32(&mut b, *height);
            put_opt_u32(&mut b, *border_width);
            5
        }
        Q::RaiseWindow { id } => {
            put_u32(&mut b, id.0);
            6
        }
        Q::ReparentWindow {
            id,
            new_parent,
            x,
            y,
        } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, new_parent.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            7
        }
        Q::SelectInput { id, event_mask } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, *event_mask);
            8
        }
        Q::SetWindowBackground { id, pixel } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, pixel.0);
            9
        }
        Q::SetWindowBorder { id, pixel } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, pixel.0);
            10
        }
        Q::SetOverrideRedirect { id, on } => {
            put_u32(&mut b, id.0);
            put_bool(&mut b, *on);
            11
        }
        Q::DefineCursor { id, cursor } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, cursor.0);
            12
        }
        Q::ChangeProperty { id, atom, value } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, atom.0);
            put_str(&mut b, value);
            13
        }
        Q::AppendProperty { id, atom, value } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, atom.0);
            put_str(&mut b, value);
            14
        }
        Q::DeleteProperty { id, atom } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, atom.0);
            15
        }
        Q::FreeColor { pixel } => {
            put_u32(&mut b, pixel.0);
            16
        }
        Q::CreateBitmap { id, bitmap } => {
            put_u32(&mut b, id.0);
            put_bitmap(&mut b, bitmap);
            17
        }
        Q::FreeBitmap { id } => {
            put_u32(&mut b, id.0);
            18
        }
        Q::CopyBitmap {
            id,
            gc,
            x,
            y,
            bitmap,
        } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, gc.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, bitmap.0);
            19
        }
        Q::CreateGc { id, values } => {
            put_u32(&mut b, id.0);
            put_gc(&mut b, values);
            20
        }
        Q::ChangeGc { gc, values } => {
            put_u32(&mut b, gc.0);
            put_gc(&mut b, values);
            21
        }
        Q::FreeGc { gc } => {
            put_u32(&mut b, gc.0);
            22
        }
        Q::FillRectangle { id, gc, x, y, w, h } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, gc.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *w);
            put_u32(&mut b, *h);
            23
        }
        Q::DrawRectangle { id, gc, x, y, w, h } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, gc.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *w);
            put_u32(&mut b, *h);
            24
        }
        Q::DrawLine {
            id,
            gc,
            x0,
            y0,
            x1,
            y1,
        } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, gc.0);
            put_i32(&mut b, *x0);
            put_i32(&mut b, *y0);
            put_i32(&mut b, *x1);
            put_i32(&mut b, *y1);
            25
        }
        Q::DrawString { id, gc, x, y, text } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, gc.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_str(&mut b, text);
            26
        }
        Q::ClearArea { id, x, y, w, h } => {
            put_u32(&mut b, id.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *w);
            put_u32(&mut b, *h);
            27
        }
        Q::SetClip { id, rects } => {
            put_u32(&mut b, id.0);
            put_rects(&mut b, rects);
            28
        }
        Q::ClearClip { id } => {
            put_u32(&mut b, id.0);
            29
        }
        Q::CopyArea {
            id,
            src_x,
            src_y,
            w,
            h,
            dst_x,
            dst_y,
        } => {
            put_u32(&mut b, id.0);
            put_i32(&mut b, *src_x);
            put_i32(&mut b, *src_y);
            put_u32(&mut b, *w);
            put_u32(&mut b, *h);
            put_i32(&mut b, *dst_x);
            put_i32(&mut b, *dst_y);
            30
        }
        Q::SetSelectionOwner { selection, owner } => {
            put_u32(&mut b, selection.0);
            put_u32(&mut b, owner.0);
            31
        }
        Q::ConvertSelection {
            requestor,
            selection,
            target,
            property,
        } => {
            put_u32(&mut b, requestor.0);
            put_u32(&mut b, selection.0);
            put_u32(&mut b, target.0);
            put_u32(&mut b, property.0);
            32
        }
        Q::SendSelectionNotify {
            requestor,
            selection,
            target,
            property,
        } => {
            put_u32(&mut b, requestor.0);
            put_u32(&mut b, selection.0);
            put_u32(&mut b, target.0);
            put_u32(&mut b, property.0);
            33
        }
        Q::SetInputFocus { id } => {
            put_u32(&mut b, id.0);
            34
        }
        Q::InternAtom { seq: _, name } => {
            put_str(&mut b, name);
            35
        }
        Q::AllocColor { seq: _, rgb } => {
            b.push(rgb.r);
            b.push(rgb.g);
            b.push(rgb.b);
            36
        }
        Q::AllocNamedColor { seq: _, name } => {
            put_str(&mut b, name);
            37
        }
        Q::GetProperty { seq: _, id, atom } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, atom.0);
            38
        }
        Q::GetGeometry { seq: _, id } => {
            put_u32(&mut b, id.0);
            39
        }
    };
    (op, b)
}

/// Decodes a request frame payload; `seq` comes from the frame header.
pub(crate) fn decode_request(
    opcode: u16,
    seq: u64,
    payload: &[u8],
) -> Result<QueuedRequest, WireError> {
    use QueuedRequest as Q;
    let mut r = Rd::new(payload);
    let q = match opcode {
        1 => Q::CreateWindow {
            id: r.xid()?,
            parent: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            width: r.u32()?,
            height: r.u32()?,
            border_width: r.u32()?,
        },
        2 => Q::DestroyWindow { id: r.xid()? },
        3 => Q::MapWindow { id: r.xid()? },
        4 => Q::UnmapWindow { id: r.xid()? },
        5 => Q::ConfigureWindow {
            id: r.xid()?,
            x: r.opt_i32()?,
            y: r.opt_i32()?,
            width: r.opt_u32()?,
            height: r.opt_u32()?,
            border_width: r.opt_u32()?,
        },
        6 => Q::RaiseWindow { id: r.xid()? },
        7 => Q::ReparentWindow {
            id: r.xid()?,
            new_parent: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
        },
        8 => Q::SelectInput {
            id: r.xid()?,
            event_mask: r.u32()?,
        },
        9 => Q::SetWindowBackground {
            id: r.xid()?,
            pixel: r.pixel()?,
        },
        10 => Q::SetWindowBorder {
            id: r.xid()?,
            pixel: r.pixel()?,
        },
        11 => Q::SetOverrideRedirect {
            id: r.xid()?,
            on: r.bool()?,
        },
        12 => Q::DefineCursor {
            id: r.xid()?,
            cursor: r.xid()?,
        },
        13 => Q::ChangeProperty {
            id: r.xid()?,
            atom: r.atom()?,
            value: r.string()?,
        },
        14 => Q::AppendProperty {
            id: r.xid()?,
            atom: r.atom()?,
            value: r.string()?,
        },
        15 => Q::DeleteProperty {
            id: r.xid()?,
            atom: r.atom()?,
        },
        16 => Q::FreeColor { pixel: r.pixel()? },
        17 => Q::CreateBitmap {
            id: r.xid()?,
            bitmap: r.bitmap()?,
        },
        18 => Q::FreeBitmap { id: r.xid()? },
        19 => Q::CopyBitmap {
            id: r.xid()?,
            gc: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            bitmap: r.xid()?,
        },
        20 => Q::CreateGc {
            id: r.xid()?,
            values: r.gc()?,
        },
        21 => Q::ChangeGc {
            gc: r.xid()?,
            values: r.gc()?,
        },
        22 => Q::FreeGc { gc: r.xid()? },
        23 => Q::FillRectangle {
            id: r.xid()?,
            gc: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            w: r.u32()?,
            h: r.u32()?,
        },
        24 => Q::DrawRectangle {
            id: r.xid()?,
            gc: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            w: r.u32()?,
            h: r.u32()?,
        },
        25 => Q::DrawLine {
            id: r.xid()?,
            gc: r.xid()?,
            x0: r.i32()?,
            y0: r.i32()?,
            x1: r.i32()?,
            y1: r.i32()?,
        },
        26 => Q::DrawString {
            id: r.xid()?,
            gc: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            text: r.string()?,
        },
        27 => Q::ClearArea {
            id: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            w: r.u32()?,
            h: r.u32()?,
        },
        28 => Q::SetClip {
            id: r.xid()?,
            rects: r.rects()?,
        },
        29 => Q::ClearClip { id: r.xid()? },
        30 => Q::CopyArea {
            id: r.xid()?,
            src_x: r.i32()?,
            src_y: r.i32()?,
            w: r.u32()?,
            h: r.u32()?,
            dst_x: r.i32()?,
            dst_y: r.i32()?,
        },
        31 => Q::SetSelectionOwner {
            selection: r.atom()?,
            owner: r.xid()?,
        },
        32 => Q::ConvertSelection {
            requestor: r.xid()?,
            selection: r.atom()?,
            target: r.atom()?,
            property: r.atom()?,
        },
        33 => Q::SendSelectionNotify {
            requestor: r.xid()?,
            selection: r.atom()?,
            target: r.atom()?,
            property: r.atom()?,
        },
        34 => Q::SetInputFocus { id: r.xid()? },
        35 => Q::InternAtom {
            seq,
            name: r.string()?,
        },
        36 => Q::AllocColor { seq, rgb: r.rgb()? },
        37 => Q::AllocNamedColor {
            seq,
            name: r.string()?,
        },
        38 => Q::GetProperty {
            seq,
            id: r.xid()?,
            atom: r.atom()?,
        },
        39 => Q::GetGeometry { seq, id: r.xid()? },
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(q)
}

// ----- synchronous round-trip codec -----

/// Encodes a synchronous request into `(opcode, payload)`.
pub(crate) fn encode_sync_request(req: &SyncRequest) -> (u16, Vec<u8>) {
    use SyncRequest as S;
    let mut b = Vec::new();
    let op = match req {
        S::InternAtom { name } => {
            put_str(&mut b, name);
            1
        }
        S::GetAtomName { atom } => {
            put_u32(&mut b, atom.0);
            2
        }
        S::QueryTree { id } => {
            put_u32(&mut b, id.0);
            3
        }
        S::GetGeometry { id } => {
            put_u32(&mut b, id.0);
            4
        }
        S::IsViewable { id } => {
            put_u32(&mut b, id.0);
            5
        }
        S::GetProperty { id, atom } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, atom.0);
            6
        }
        S::AllocNamedColor { name } => {
            put_str(&mut b, name);
            7
        }
        S::AllocColor { rgb } => {
            b.push(rgb.r);
            b.push(rgb.g);
            b.push(rgb.b);
            8
        }
        S::QueryColor { pixel } => {
            put_u32(&mut b, pixel.0);
            9
        }
        S::OpenFont { name } => {
            put_str(&mut b, name);
            10
        }
        S::QueryFont { font } => {
            put_u32(&mut b, font.0);
            11
        }
        S::CreateCursor { name } => {
            put_str(&mut b, name);
            12
        }
        S::QueryBitmap { id } => {
            put_u32(&mut b, id.0);
            13
        }
        S::GetSelectionOwner { selection } => {
            put_u32(&mut b, selection.0);
            14
        }
        S::GetInputFocus => 15,
        S::TakeProperty { id, atom } => {
            put_u32(&mut b, id.0);
            put_u32(&mut b, atom.0);
            16
        }
    };
    (op, b)
}

pub(crate) fn decode_sync_request(opcode: u16, payload: &[u8]) -> Result<SyncRequest, WireError> {
    use SyncRequest as S;
    let mut r = Rd::new(payload);
    let req = match opcode {
        1 => S::InternAtom { name: r.string()? },
        2 => S::GetAtomName { atom: r.atom()? },
        3 => S::QueryTree { id: r.xid()? },
        4 => S::GetGeometry { id: r.xid()? },
        5 => S::IsViewable { id: r.xid()? },
        6 => S::GetProperty {
            id: r.xid()?,
            atom: r.atom()?,
        },
        7 => S::AllocNamedColor { name: r.string()? },
        8 => S::AllocColor { rgb: r.rgb()? },
        9 => S::QueryColor { pixel: r.pixel()? },
        10 => S::OpenFont { name: r.string()? },
        11 => S::QueryFont { font: r.xid()? },
        12 => S::CreateCursor { name: r.string()? },
        13 => S::QueryBitmap { id: r.xid()? },
        14 => S::GetSelectionOwner {
            selection: r.atom()?,
        },
        15 => S::GetInputFocus,
        16 => S::TakeProperty {
            id: r.xid()?,
            atom: r.atom()?,
        },
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(req)
}

/// Encodes a synchronous reply into `(opcode, payload)`.
pub(crate) fn encode_sync_reply(reply: &SyncReply) -> (u16, Vec<u8>) {
    use SyncReply as R;
    let mut b = Vec::new();
    let op = match reply {
        R::Atom(a) => {
            put_u32(&mut b, a.0);
            1
        }
        R::OptString(s) => {
            match s {
                None => b.push(0),
                Some(s) => {
                    b.push(1);
                    put_str(&mut b, s);
                }
            }
            2
        }
        R::Tree(t) => {
            match t {
                None => b.push(0),
                Some((parent, children)) => {
                    b.push(1);
                    put_u32(&mut b, parent.0);
                    put_u32(&mut b, children.len() as u32);
                    for c in children {
                        put_u32(&mut b, c.0);
                    }
                }
            }
            3
        }
        R::Geometry(g) => {
            match g {
                None => b.push(0),
                Some((x, y, w, h, bw)) => {
                    b.push(1);
                    put_i32(&mut b, *x);
                    put_i32(&mut b, *y);
                    put_u32(&mut b, *w);
                    put_u32(&mut b, *h);
                    put_u32(&mut b, *bw);
                }
            }
            4
        }
        R::Bool(v) => {
            put_bool(&mut b, *v);
            5
        }
        R::NamedColor(c) => {
            match c {
                None => b.push(0),
                Some((pixel, rgb)) => {
                    b.push(1);
                    put_u32(&mut b, pixel.0);
                    b.push(rgb.r);
                    b.push(rgb.g);
                    b.push(rgb.b);
                }
            }
            6
        }
        R::Pixel(p) => {
            put_u32(&mut b, p.0);
            7
        }
        R::Rgb(rgb) => {
            b.push(rgb.r);
            b.push(rgb.g);
            b.push(rgb.b);
            8
        }
        R::OptXid(x) => {
            match x {
                None => b.push(0),
                Some(x) => {
                    b.push(1);
                    put_u32(&mut b, x.0);
                }
            }
            9
        }
        R::Metrics(m) => {
            match m {
                None => b.push(0),
                Some(m) => {
                    b.push(1);
                    put_u32(&mut b, m.char_width);
                    put_u32(&mut b, m.ascent);
                    put_u32(&mut b, m.descent);
                }
            }
            10
        }
        R::Size(s) => {
            match s {
                None => b.push(0),
                Some((w, h)) => {
                    b.push(1);
                    put_u32(&mut b, *w);
                    put_u32(&mut b, *h);
                }
            }
            11
        }
        R::Window(w) => {
            put_u32(&mut b, w.0);
            12
        }
    };
    (op, b)
}

pub(crate) fn decode_sync_reply(opcode: u16, payload: &[u8]) -> Result<SyncReply, WireError> {
    use SyncReply as R;
    let mut r = Rd::new(payload);
    let reply = match opcode {
        1 => R::Atom(r.atom()?),
        2 => R::OptString(match r.bool()? {
            false => None,
            true => Some(r.string()?),
        }),
        3 => R::Tree(match r.bool()? {
            false => None,
            true => {
                let parent = r.xid()?;
                let n = r.u32()? as usize;
                if n.saturating_mul(4) > payload.len() {
                    return Err(WireError::Malformed("child count exceeds payload"));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(r.xid()?);
                }
                Some((parent, children))
            }
        }),
        4 => R::Geometry(match r.bool()? {
            false => None,
            true => Some((r.i32()?, r.i32()?, r.u32()?, r.u32()?, r.u32()?)),
        }),
        5 => R::Bool(r.bool()?),
        6 => R::NamedColor(match r.bool()? {
            false => None,
            true => Some((r.pixel()?, r.rgb()?)),
        }),
        7 => R::Pixel(r.pixel()?),
        8 => R::Rgb(r.rgb()?),
        9 => R::OptXid(match r.bool()? {
            false => None,
            true => Some(r.xid()?),
        }),
        10 => R::Metrics(match r.bool()? {
            false => None,
            true => Some(FontMetrics {
                char_width: r.u32()?,
                ascent: r.u32()?,
                descent: r.u32()?,
            }),
        }),
        11 => R::Size(match r.bool()? {
            false => None,
            true => Some((r.u32()?, r.u32()?)),
        }),
        12 => R::Window(r.xid()?),
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(reply)
}

// ----- pipelined reply codec -----

/// Encodes a collected pipelined reply into `(opcode, payload)`.
pub(crate) fn encode_reply_value(v: &ReplyValue) -> (u16, Vec<u8>) {
    use ReplyValue as V;
    let mut b = Vec::new();
    let op = match v {
        V::Atom(a) => {
            put_u32(&mut b, a.0);
            1
        }
        V::Pixel(p) => {
            put_u32(&mut b, p.0);
            2
        }
        V::NamedColor(c) => {
            match c {
                None => b.push(0),
                Some((pixel, rgb)) => {
                    b.push(1);
                    put_u32(&mut b, pixel.0);
                    b.push(rgb.r);
                    b.push(rgb.g);
                    b.push(rgb.b);
                }
            }
            3
        }
        V::Property(p) => {
            match p {
                None => b.push(0),
                Some(s) => {
                    b.push(1);
                    put_str(&mut b, s);
                }
            }
            4
        }
        V::Geometry(g) => {
            match g {
                None => b.push(0),
                Some((x, y, w, h, bw)) => {
                    b.push(1);
                    put_i32(&mut b, *x);
                    put_i32(&mut b, *y);
                    put_u32(&mut b, *w);
                    put_u32(&mut b, *h);
                    put_u32(&mut b, *bw);
                }
            }
            5
        }
        V::Error(e) => {
            put_error(&mut b, e);
            6
        }
    };
    (op, b)
}

pub(crate) fn decode_reply_value(opcode: u16, payload: &[u8]) -> Result<ReplyValue, WireError> {
    use ReplyValue as V;
    let mut r = Rd::new(payload);
    let v = match opcode {
        1 => V::Atom(r.atom()?),
        2 => V::Pixel(r.pixel()?),
        3 => V::NamedColor(match r.bool()? {
            false => None,
            true => Some((r.pixel()?, r.rgb()?)),
        }),
        4 => V::Property(match r.bool()? {
            false => None,
            true => Some(r.string()?),
        }),
        5 => V::Geometry(match r.bool()? {
            false => None,
            true => Some((r.i32()?, r.i32()?, r.u32()?, r.u32()?, r.u32()?)),
        }),
        6 => V::Error(r.error()?),
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(v)
}

// ----- event codec -----

/// Encodes an event into `(opcode, payload)`. Opcodes follow `Event`
/// declaration order, 1-based.
pub(crate) fn encode_event(ev: &Event) -> (u16, Vec<u8>) {
    use Event as E;
    let mut b = Vec::new();
    let op = match ev {
        E::Expose {
            window,
            x,
            y,
            width,
            height,
            count,
        } => {
            put_u32(&mut b, window.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *width);
            put_u32(&mut b, *height);
            put_u32(&mut b, *count);
            1
        }
        E::ConfigureNotify {
            window,
            x,
            y,
            width,
            height,
            border_width,
        } => {
            put_u32(&mut b, window.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *width);
            put_u32(&mut b, *height);
            put_u32(&mut b, *border_width);
            2
        }
        E::MapNotify { window } => {
            put_u32(&mut b, window.0);
            3
        }
        E::UnmapNotify { window } => {
            put_u32(&mut b, window.0);
            4
        }
        E::DestroyNotify { window } => {
            put_u32(&mut b, window.0);
            5
        }
        E::EnterNotify {
            window,
            x,
            y,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            6
        }
        E::LeaveNotify {
            window,
            x,
            y,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            7
        }
        E::MotionNotify {
            window,
            x,
            y,
            x_root,
            y_root,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_i32(&mut b, *x_root);
            put_i32(&mut b, *y_root);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            8
        }
        E::ButtonPress {
            window,
            button,
            x,
            y,
            x_root,
            y_root,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            b.push(*button);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_i32(&mut b, *x_root);
            put_i32(&mut b, *y_root);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            9
        }
        E::ButtonRelease {
            window,
            button,
            x,
            y,
            x_root,
            y_root,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            b.push(*button);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_i32(&mut b, *x_root);
            put_i32(&mut b, *y_root);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            10
        }
        E::KeyPress {
            window,
            keysym,
            x,
            y,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_keysym(&mut b, keysym);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            11
        }
        E::KeyRelease {
            window,
            keysym,
            x,
            y,
            state,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_keysym(&mut b, keysym);
            put_i32(&mut b, *x);
            put_i32(&mut b, *y);
            put_u32(&mut b, *state);
            put_u64(&mut b, *time);
            12
        }
        E::PropertyNotify {
            window,
            atom,
            deleted,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_u32(&mut b, atom.0);
            put_bool(&mut b, *deleted);
            put_u64(&mut b, *time);
            13
        }
        E::SelectionClear {
            window,
            selection,
            time,
        } => {
            put_u32(&mut b, window.0);
            put_u32(&mut b, selection.0);
            put_u64(&mut b, *time);
            14
        }
        E::SelectionRequest {
            owner,
            requestor,
            selection,
            target,
            property,
            time,
        } => {
            put_u32(&mut b, owner.0);
            put_u32(&mut b, requestor.0);
            put_u32(&mut b, selection.0);
            put_u32(&mut b, target.0);
            put_u32(&mut b, property.0);
            put_u64(&mut b, *time);
            15
        }
        E::SelectionNotify {
            requestor,
            selection,
            target,
            property,
            time,
        } => {
            put_u32(&mut b, requestor.0);
            put_u32(&mut b, selection.0);
            put_u32(&mut b, target.0);
            put_u32(&mut b, property.0);
            put_u64(&mut b, *time);
            16
        }
        E::FocusIn { window } => {
            put_u32(&mut b, window.0);
            17
        }
        E::FocusOut { window } => {
            put_u32(&mut b, window.0);
            18
        }
    };
    (op, b)
}

pub(crate) fn decode_event(opcode: u16, payload: &[u8]) -> Result<Event, WireError> {
    use Event as E;
    let mut r = Rd::new(payload);
    let ev = match opcode {
        1 => E::Expose {
            window: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            width: r.u32()?,
            height: r.u32()?,
            count: r.u32()?,
        },
        2 => E::ConfigureNotify {
            window: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            width: r.u32()?,
            height: r.u32()?,
            border_width: r.u32()?,
        },
        3 => E::MapNotify { window: r.xid()? },
        4 => E::UnmapNotify { window: r.xid()? },
        5 => E::DestroyNotify { window: r.xid()? },
        6 => E::EnterNotify {
            window: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        7 => E::LeaveNotify {
            window: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        8 => E::MotionNotify {
            window: r.xid()?,
            x: r.i32()?,
            y: r.i32()?,
            x_root: r.i32()?,
            y_root: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        9 => E::ButtonPress {
            window: r.xid()?,
            button: r.u8()?,
            x: r.i32()?,
            y: r.i32()?,
            x_root: r.i32()?,
            y_root: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        10 => E::ButtonRelease {
            window: r.xid()?,
            button: r.u8()?,
            x: r.i32()?,
            y: r.i32()?,
            x_root: r.i32()?,
            y_root: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        11 => E::KeyPress {
            window: r.xid()?,
            keysym: r.keysym()?,
            x: r.i32()?,
            y: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        12 => E::KeyRelease {
            window: r.xid()?,
            keysym: r.keysym()?,
            x: r.i32()?,
            y: r.i32()?,
            state: r.u32()?,
            time: r.u64()?,
        },
        13 => E::PropertyNotify {
            window: r.xid()?,
            atom: r.atom()?,
            deleted: r.bool()?,
            time: r.u64()?,
        },
        14 => E::SelectionClear {
            window: r.xid()?,
            selection: r.atom()?,
            time: r.u64()?,
        },
        15 => E::SelectionRequest {
            owner: r.xid()?,
            requestor: r.xid()?,
            selection: r.atom()?,
            target: r.atom()?,
            property: r.atom()?,
            time: r.u64()?,
        },
        16 => E::SelectionNotify {
            requestor: r.xid()?,
            selection: r.atom()?,
            target: r.atom()?,
            property: r.atom()?,
            time: r.u64()?,
        },
        17 => E::FocusIn { window: r.xid()? },
        18 => E::FocusOut { window: r.xid()? },
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(ev)
}

/// Encodes an error frame body.
pub(crate) fn encode_error_payload(e: &XError) -> Vec<u8> {
    let mut b = Vec::new();
    put_error(&mut b, e);
    b
}

pub(crate) fn decode_error(payload: &[u8]) -> Result<XError, WireError> {
    let mut r = Rd::new(payload);
    let e = r.error()?;
    r.done()?;
    Ok(e)
}

// ----- the threaded wire server -----

/// One client's encoded-but-unflushed request frames.
#[derive(Debug, Default)]
struct ClientBuf {
    bytes: Vec<u8>,
    frames: usize,
}

/// A control frame in flight to the dispatcher, with its ack ticket.
struct WireMsg {
    ticket: u64,
    client: ClientId,
    bytes: Vec<u8>,
    /// Injected dispatcher stall (×10 ms of wall clock) before this
    /// message is handled — the `StallDispatch` byte fault. Zero in
    /// fault-free runs.
    stall: u32,
}

/// Everything behind the wire mutex: the server itself, the per-client
/// output buffers (BTreeMap so flush-all walks clients in id order, the
/// same order as [`Server::flush_all`]), the dispatcher inbox, and the
/// per-client response bytes.
pub(crate) struct WireState {
    pub(crate) server: Server,
    bufs: BTreeMap<u32, ClientBuf>,
    inbox: VecDeque<WireMsg>,
    outbox: HashMap<u32, Vec<u8>>,
    shipped: u64,
    processed: u64,
    shutdown: bool,
    /// Per-client count of encoded frames — the timeline byte faults key
    /// on (`FaultSpec::at` for a byte action is a 1-based index into this
    /// stream). Counted identically whether or not a plan is installed.
    frame_seq: HashMap<u32, u64>,
    /// Dispatcher stalls armed by a `StallDispatch` fault that fired on a
    /// data frame; attached to the client's next shipped control frame.
    pending_stalls: HashMap<u32, u32>,
    /// Tickets whose waiting client gave up (watchdog expiry). When the
    /// dispatcher eventually processes one, its response bytes are
    /// discarded instead of leaking in the outbox forever.
    abandoned: std::collections::HashSet<u64>,
    /// Wall-clock watchdog for sync waits (`RTK_WIRE_DEADLINE_MS`): a
    /// control frame unacked past this deadline means the dispatcher is
    /// wedged, and the waiting client gets a clean dead connection
    /// instead of a hang.
    deadline: Duration,
}

pub(crate) struct WireShared {
    pub(crate) state: Mutex<WireState>,
    pub(crate) cond: Condvar,
}

/// The dispatcher loop: pops control frames in FIFO order, dispatches
/// them against the server, and acks the ticket. Every message is acked
/// even if dispatch did nothing (e.g. the client died mid-flush), so a
/// waiting client can never hang.
fn run_server(shared: Arc<WireShared>) {
    let mut st = shared.state.lock().unwrap();
    loop {
        while st.inbox.is_empty() && !st.shutdown {
            st = shared.cond.wait(st).unwrap();
        }
        let Some(msg) = st.inbox.pop_front() else {
            return; // empty inbox + shutdown
        };
        if msg.stall > 0 {
            // An injected dispatcher stall: sleep off the lock in short
            // slices so shutdown (and the client's watchdog) stay
            // responsive. Long stalls are exactly how the chaos harness
            // proves a wedged dispatcher cannot hang a sync wait.
            let mut remaining_ms = (msg.stall as u64).saturating_mul(10);
            drop(st);
            while remaining_ms > 0 {
                let slice = remaining_ms.min(10);
                std::thread::sleep(Duration::from_millis(slice));
                remaining_ms -= slice;
                if shared.state.lock().unwrap().shutdown {
                    break;
                }
            }
            st = shared.state.lock().unwrap();
            if st.shutdown && st.inbox.is_empty() {
                return;
            }
        }
        dispatch(&mut st, msg.client, &msg.bytes);
        st.processed = msg.ticket;
        if st.abandoned.remove(&msg.ticket) {
            // The shipper's watchdog expired while this message sat in
            // the inbox; nobody will ever read the response.
            st.outbox.remove(&msg.client.0);
        }
        shared.cond.notify_all();
    }
}

/// The server's reaction to unrecoverable byte damage on `client`'s
/// stream: count it, kill the connection (X's response to a protocol
/// violation), and drop its wire-side buffers. Client id 0 is the
/// transport's own control channel, not a connection — never killed.
fn wire_corruption(st: &mut WireState, client: ClientId) {
    st.server.note_checksum_error(client);
    if client.0 != 0 {
        st.server.kill_client(client);
    }
    st.bufs.remove(&client.0);
    st.outbox.remove(&client.0);
}

fn dispatch(st: &mut WireState, client: ClientId, bytes: &[u8]) {
    let mut fr = FrameReader::new();
    if fr.push(bytes).is_err() {
        wire_corruption(st, client);
        return;
    }
    loop {
        let f = match fr.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => {
                wire_corruption(st, client);
                return;
            }
        };
        st.server.note_wire_decode(client, f.wire_len());
        match f.frame_type {
            FT_FLUSH_CLIENT => flush_buffered(st, client.0),
            FT_FLUSH_ALL => {
                // The observation / batching-off path: decode everything
                // and drain quota-deferred remainders too, so the user
                // sees the effect of every request already issued.
                flush_all_buffered(st);
                st.server.drain_all();
            }
            FT_SYNC => {
                flush_all_buffered(st);
                let resp = match decode_sync_request(f.opcode, &f.payload) {
                    Ok(req) => match st.server.execute_round_trip(client, &req) {
                        Ok(reply) => {
                            let (op, payload) = encode_sync_reply(&reply);
                            frame(FT_SYNC_REPLY, op, f.seq, &payload)
                        }
                        Err(e) => frame(FT_ERROR, 0, e.seq, &encode_error_payload(&e)),
                    },
                    Err(_) => {
                        let e = XError {
                            code: XErrorCode::BadValue,
                            seq: f.seq,
                            kind: None,
                        };
                        frame(FT_ERROR, 0, f.seq, &encode_error_payload(&e))
                    }
                };
                respond(st, client, resp);
            }
            FT_TAKE_REPLY => {
                if !st.server.has_reply(client, f.seq) {
                    flush_all_buffered(st);
                }
                let resp = match st.server.take_reply(client, f.seq) {
                    Some(v) => {
                        let (op, payload) = encode_reply_value(&v);
                        frame(FT_COOKIE_REPLY, op, f.seq, &payload)
                    }
                    None => {
                        let alive = st.server.is_alive(client);
                        frame(FT_NO_REPLY, 0, f.seq, &[alive as u8])
                    }
                };
                respond(st, client, resp);
            }
            FT_POLL_EVENT => {
                flush_all_buffered(st);
                let resp = match st.server.poll_event(client) {
                    Some(ev) => {
                        let (op, payload) = encode_event(&ev);
                        frame(FT_EVENT, op, 0, &payload)
                    }
                    None => frame(FT_NO_EVENT, 0, 0, &[]),
                };
                respond(st, client, resp);
            }
            FT_PENDING => {
                flush_all_buffered(st);
                let n = st.server.pending(client);
                respond(st, client, frame(FT_PENDING_COUNT, 0, n as u64, &[]));
            }
            _ => {} // data frames never arrive via the inbox
        }
    }
    if fr.pending() > 0 {
        // A partial frame at the end of a control message is truncation
        // damage: control frames are shipped whole, so leftover bytes
        // can only mean the stream is broken.
        wire_corruption(st, client);
    }
}

/// Queues response bytes for the client that shipped the control frame.
fn respond(st: &mut WireState, client: ClientId, bytes: Vec<u8>) {
    st.server.note_wire_encode(client, bytes.len());
    st.outbox
        .entry(client.0)
        .or_default()
        .extend_from_slice(&bytes);
}

/// Decodes one client's buffered request frames and applies them as a
/// single batch — the wire-side mirror of [`Server::flush_client`].
fn flush_buffered(st: &mut WireState, raw: u32) {
    let Some(buf) = st.bufs.get_mut(&raw) else {
        return;
    };
    if buf.frames == 0 {
        // No new frames, but a quota-deferred remainder may be waiting
        // server-side; a flush is its chance to apply one more chunk.
        st.server.flush_client(ClientId(raw));
        return;
    }
    let bytes = std::mem::take(&mut buf.bytes);
    buf.frames = 0;
    let client = ClientId(raw);
    let mut fr = FrameReader::new();
    let mut corrupt = fr.push(&bytes).is_err();
    let mut batch = Vec::new();
    while !corrupt {
        let f = match fr.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => {
                corrupt = true;
                break;
            }
        };
        st.server.note_wire_decode(client, f.wire_len());
        match decode_request(f.opcode, f.seq, &f.payload) {
            Ok(q) => batch.push((f.seq, q)),
            Err(_) => {
                corrupt = true;
                break;
            }
        }
    }
    // A partial trailing frame means truncation damage: data frames are
    // buffered whole, so a flush must consume every byte.
    if !corrupt && fr.pending() > 0 {
        corrupt = true;
    }
    st.server.note_wire_flush(client);
    // Frames ahead of the damage still decoded cleanly and still apply —
    // the stream was good up to that point.
    st.server.apply_batch(client, batch);
    if corrupt {
        wire_corruption(st, client);
    }
}

/// Flushes every client's wire buffer in client-id order (the same order
/// [`Server::flush_all`] uses for in-process buffers).
fn flush_all_buffered(st: &mut WireState) {
    let ids: Vec<u32> = st.bufs.keys().copied().collect();
    for id in ids {
        flush_buffered(st, id);
    }
    // Clients with deferred-but-unbuffered work (quota backpressure) get
    // their next chunk applied here too, in sorted id order.
    st.server.flush_all();
}

/// Owns the dispatcher thread; dropping it shuts the thread down.
pub(crate) struct ServerJoin {
    shared: Arc<WireShared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for ServerJoin {
    fn drop(&mut self) {
        {
            let mut st = match self.shared.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            st.shutdown = true;
            self.shared.cond.notify_all();
        }
        let handle = match self.handle.lock() {
            Ok(mut g) => g.take(),
            Err(mut p) => p.get_mut().take(),
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// A `Send + Sync` handle to a running wire server. Clone it into other
/// threads and rebuild per-thread [`Display`](crate::Display)s with
/// [`Display::from_wire`](crate::Display::from_wire) — that is how
/// several `TkApp`s, each on its own thread, share one display.
#[derive(Clone)]
pub struct WireHandle {
    pub(crate) shared: Arc<WireShared>,
    pub(crate) join: Arc<ServerJoin>,
}

/// The wire transport: byte frames to a server on its own thread.
pub(crate) struct WireTransport {
    shared: Arc<WireShared>,
    join: Arc<ServerJoin>,
}

/// Default sync-watchdog deadline when `RTK_WIRE_DEADLINE_MS` is unset.
pub const DEFAULT_WIRE_DEADLINE_MS: u64 = 5000;

/// The configured watchdog deadline: `RTK_WIRE_DEADLINE_MS` (clamped to
/// at least 1 ms), or 5000 ms.
fn wire_deadline_from_env() -> Duration {
    let ms = std::env::var("RTK_WIRE_DEADLINE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_WIRE_DEADLINE_MS)
        .max(1);
    Duration::from_millis(ms)
}

impl WireTransport {
    /// Starts a fresh server on its own dispatcher thread.
    pub(crate) fn new() -> WireTransport {
        let shared = Arc::new(WireShared {
            state: Mutex::new(WireState {
                server: Server::new(),
                bufs: BTreeMap::new(),
                inbox: VecDeque::new(),
                outbox: HashMap::new(),
                shipped: 0,
                processed: 0,
                shutdown: false,
                frame_seq: HashMap::new(),
                pending_stalls: HashMap::new(),
                abandoned: std::collections::HashSet::new(),
                deadline: wire_deadline_from_env(),
            }),
            cond: Condvar::new(),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("xsim-wire-server".into())
            .spawn(move || run_server(thread_shared))
            .expect("spawn wire server thread");
        let join = Arc::new(ServerJoin {
            shared: shared.clone(),
            handle: Mutex::new(Some(handle)),
        });
        WireTransport { shared, join }
    }

    /// Attaches to an already-running wire server.
    pub(crate) fn from_handle(h: &WireHandle) -> WireTransport {
        WireTransport {
            shared: h.shared.clone(),
            join: h.join.clone(),
        }
    }

    pub(crate) fn handle(&self) -> WireHandle {
        WireHandle {
            shared: self.shared.clone(),
            join: self.join.clone(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WireState> {
        self.shared.state.lock().unwrap()
    }

    /// Fires any byte fault scheduled for `client`'s next encoded frame
    /// and applies it to `bytes` in place. Returns the split point for a
    /// `SplitWrite` (the frame goes out as two writes), arming any
    /// `StallDispatch` in `pending_stalls` for the next ship. The frame
    /// counter advances on every encoded frame, plan or no plan, so a
    /// fault's timeline index is independent of the plan's own contents.
    fn apply_byte_fault(
        st: &mut WireState,
        client: ClientId,
        bytes: &mut Vec<u8>,
    ) -> Option<usize> {
        let counter = st.frame_seq.entry(client.0).or_insert(0);
        *counter += 1;
        let idx = *counter;
        let action = st.server.fire_byte_fault(client, idx)?;
        match action {
            FaultAction::CorruptByte { offset, xor } => {
                if !bytes.is_empty() {
                    let off = offset as usize % bytes.len();
                    bytes[off] ^= xor;
                }
                None
            }
            FaultAction::TruncateFrame { keep } => {
                let keep = keep as usize % bytes.len().max(1);
                bytes.truncate(keep);
                None
            }
            FaultAction::InjectGarbage { bytes: n } => {
                // Seed-derived line noise, deterministic per (client, idx).
                let mut r = crate::rng::XorShift::new(
                    (u64::from(client.0) << 32 | idx) ^ 0x6A_5B_4C_3D_2E_1F,
                );
                for _ in 0..n {
                    bytes.push(r.below(256) as u8);
                }
                None
            }
            FaultAction::SplitWrite { at } => Some(at as usize % bytes.len().max(1)),
            FaultAction::StallDispatch { ticks } => {
                st.pending_stalls
                    .entry(client.0)
                    .and_modify(|t| *t += ticks)
                    .or_insert(ticks);
                None
            }
            _ => None, // fire_byte_fault only returns byte faults
        }
    }

    /// Ships a control frame through the inbox and blocks until the
    /// dispatcher acks its ticket; returns the reacquired lock and any
    /// response bytes. The synchronous ack is what makes wire-mode
    /// accounting and fault timing indistinguishable from the in-process
    /// transport.
    fn ship_locked<'a>(
        &'a self,
        mut st: MutexGuard<'a, WireState>,
        client: ClientId,
        mut bytes: Vec<u8>,
    ) -> (MutexGuard<'a, WireState>, Vec<u8>) {
        // Control frames ride the same byte stream as data frames, so
        // they share the per-client frame timeline and take byte faults
        // too (a corrupted sync request is damage the server must survive).
        Self::apply_byte_fault(&mut st, client, &mut bytes);
        let stall = st.pending_stalls.remove(&client.0).unwrap_or(0);
        st.server.note_wire_encode(client, bytes.len());
        st.shipped += 1;
        let ticket = st.shipped;
        st.inbox.push_back(WireMsg {
            ticket,
            client,
            bytes,
            stall,
        });
        self.shared.cond.notify_all();
        let deadline = st.deadline;
        let start = Instant::now();
        while st.processed < ticket && !st.shutdown {
            let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                break;
            };
            let (guard, _) = self.shared.cond.wait_timeout(st, remaining).unwrap();
            st = guard;
        }
        if st.processed < ticket && !st.shutdown {
            // Watchdog: the dispatcher failed to ack within the deadline.
            // Tear the connection down cleanly — the client sees
            // ConnectionDead, never a hang. Client 0 is the transport's
            // own control channel; its callers get an empty response but
            // no connection is killed.
            st.server.note_watchdog_fire(client);
            if client.0 != 0 {
                st.server.kill_client(client);
            }
            st.bufs.remove(&client.0);
            st.outbox.remove(&client.0);
            st.abandoned.insert(ticket);
            return (st, Vec::new());
        }
        let resp = st.outbox.remove(&client.0).unwrap_or_default();
        (st, resp)
    }

    /// Encodes a request frame into the client's wire buffer; returns
    /// whether the buffer hit capacity (a forced flush point).
    fn push_request(
        &self,
        st: &mut WireState,
        client: ClientId,
        seq: u64,
        q: &QueuedRequest,
    ) -> bool {
        let (op, payload) = encode_request(q);
        let mut bytes = frame(FT_REQUEST, op, seq, &payload);
        let split = Self::apply_byte_fault(st, client, &mut bytes);
        st.server.note_wire_encode(client, bytes.len());
        let buf = st.bufs.entry(client.0).or_default();
        match split {
            // A split write lands as two appends to the same stream —
            // byte-identical once buffered, which is exactly the
            // invariant SplitWrite exists to witness.
            Some(at) => {
                let at = at.min(bytes.len());
                buf.bytes.extend_from_slice(&bytes[..at]);
                buf.bytes.extend_from_slice(&bytes[at..]);
            }
            None => buf.bytes.extend_from_slice(&bytes),
        }
        buf.frames += 1;
        buf.frames >= OUT_BUF_CAPACITY
    }

    /// Decodes the single response frame a control round trip produced.
    /// `None` means the connection is gone: the watchdog expired (empty
    /// response), the server shut down, or the response bytes failed
    /// integrity checks — callers surface a dead connection, never panic.
    fn take_response(&self, st: &mut WireState, client: ClientId, resp: &[u8]) -> Option<RawFrame> {
        let mut fr = FrameReader::new();
        if fr.push(resp).is_err() {
            return None;
        }
        let f = fr.next_frame().ok().flatten()?;
        st.server.note_wire_decode(client, f.wire_len());
        Some(f)
    }

    fn buffered_frames(st: &WireState, client: ClientId) -> usize {
        st.bufs.get(&client.0).map_or(0, |b| b.frames)
    }
}

impl Transport for WireTransport {
    fn connect(&self) -> ClientId {
        self.lock().server.connect()
    }

    fn is_wire(&self) -> bool {
        true
    }

    fn wire_handle(&self) -> Option<WireHandle> {
        Some(self.handle())
    }

    fn peek(&self, f: &mut dyn FnMut(&mut Server)) {
        f(&mut self.lock().server);
    }

    fn frame_timeline(&self, client: ClientId) -> u64 {
        self.lock().frame_seq.get(&client.0).copied().unwrap_or(0)
    }

    fn sync(&self, f: &mut dyn FnMut(&mut Server)) {
        let st = self.lock();
        let bytes = frame(FT_FLUSH_ALL, 0, 0, &[]);
        let (mut st, _) = self.ship_locked(st, ClientId(0), bytes);
        f(&mut st.server);
    }

    fn flush_client(&self, client: ClientId) {
        let st = self.lock();
        if Self::buffered_frames(&st, client) == 0 {
            return;
        }
        let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
        let _ = self.ship_locked(st, client, bytes);
    }

    fn set_batching(&self, on: bool) {
        if on {
            self.lock().server.set_batching(true);
        } else {
            // Turning batching off is a flush point for everyone, like
            // Server::set_batching's internal flush_all.
            let st = self.lock();
            let bytes = frame(FT_FLUSH_ALL, 0, 0, &[]);
            let (mut st, _) = self.ship_locked(st, ClientId(0), bytes);
            st.server.set_batching(false);
        }
    }

    fn reset_obs(&self, client: ClientId) {
        let mut st = self.lock();
        if Self::buffered_frames(&st, client) > 0 {
            let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
            let (returned, _) = self.ship_locked(st, client, bytes);
            st = returned;
        }
        st.server.reset_client_stats(client);
    }

    fn one_way(&self, client: ClientId, kind: RequestKind, window: WindowId, q: QueuedRequest) {
        let mut st = self.lock();
        if !st.server.is_alive(client) {
            return;
        }
        let seq = st.server.next_seq(client);
        let start = Instant::now();
        let full = self.push_request(&mut st, client, seq, &q);
        st.server
            .note_issue(client, kind, false, window, seq, start);
        if !st.server.batching() || full {
            let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
            let _ = self.ship_locked(st, client, bytes);
        }
    }

    fn pipelined(
        &self,
        client: ClientId,
        kind: RequestKind,
        window: WindowId,
        make: &mut dyn FnMut(u64) -> QueuedRequest,
    ) -> u64 {
        let mut st = self.lock();
        let seq = st.server.next_seq(client);
        if st.server.is_alive(client) {
            let q = make(seq);
            let start = Instant::now();
            let full = self.push_request(&mut st, client, seq, &q);
            st.server.note_issue(client, kind, true, window, seq, start);
            if !st.server.batching() || full {
                let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
                let _ = self.ship_locked(st, client, bytes);
            }
        }
        seq
    }

    fn round_trip(&self, client: ClientId, req: SyncRequest) -> Result<SyncReply, XError> {
        let (op, payload) = encode_sync_request(&req);
        let bytes = frame(FT_SYNC, op, 0, &payload);
        let st = self.lock();
        let (mut st, resp) = self.ship_locked(st, client, bytes);
        let Some(f) = self.take_response(&mut st, client, &resp) else {
            return Err(XError::dead(0));
        };
        match f.frame_type {
            FT_SYNC_REPLY => decode_sync_reply(f.opcode, &f.payload).map_err(|_| XError::dead(0)),
            FT_ERROR => Err(decode_error(&f.payload).unwrap_or(XError::dead(0))),
            _ => Err(XError::dead(0)),
        }
    }

    fn create_window(
        &self,
        client: ClientId,
        parent: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Result<WindowId, XError> {
        let mut st = self.lock();
        if !st.server.is_alive(client) {
            return Err(XError::dead(0));
        }
        let seq = st.server.next_seq(client);
        if !st.server.window_exists_or_pending(parent) {
            // Counted like the in-process path (the server would answer
            // with an error); no id handed out, nothing queued.
            let start = Instant::now();
            st.server
                .note_issue(client, RequestKind::CreateWindow, false, parent, seq, start);
            if !st.server.batching() && Self::buffered_frames(&st, client) > 0 {
                let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
                let _ = self.ship_locked(st, client, bytes);
            }
            return Err(XError {
                code: XErrorCode::BadWindow,
                seq,
                kind: Some(RequestKind::CreateWindow),
            });
        }
        let id = st.server.reserve_window_id();
        let start = Instant::now();
        let full = self.push_request(
            &mut st,
            client,
            seq,
            &QueuedRequest::CreateWindow {
                id,
                parent,
                x,
                y,
                width,
                height,
                border_width,
            },
        );
        st.server
            .note_issue(client, RequestKind::CreateWindow, false, parent, seq, start);
        if !st.server.batching() || full {
            let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
            let _ = self.ship_locked(st, client, bytes);
        }
        Ok(id)
    }

    fn create_gc(&self, client: ClientId, values: GcValues) -> crate::ids::GcId {
        let mut st = self.lock();
        let id = st.server.gcs.reserve();
        if !st.server.is_alive(client) {
            return id;
        }
        let seq = st.server.next_seq(client);
        let start = Instant::now();
        let full = self.push_request(
            &mut st,
            client,
            seq,
            &QueuedRequest::CreateGc { id, values },
        );
        st.server
            .note_issue(client, RequestKind::CreateGc, false, Xid::NONE, seq, start);
        if !st.server.batching() || full {
            let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
            let _ = self.ship_locked(st, client, bytes);
        }
        id
    }

    fn create_bitmap(&self, client: ClientId, bitmap: Bitmap) -> BitmapId {
        let mut st = self.lock();
        let id = st.server.bitmaps.reserve();
        if !st.server.is_alive(client) {
            return id;
        }
        let seq = st.server.next_seq(client);
        let start = Instant::now();
        let full = self.push_request(
            &mut st,
            client,
            seq,
            &QueuedRequest::CreateBitmap { id, bitmap },
        );
        st.server.note_issue(
            client,
            RequestKind::CreateBitmap,
            false,
            Xid::NONE,
            seq,
            start,
        );
        if !st.server.batching() || full {
            let bytes = frame(FT_FLUSH_CLIENT, 0, 0, &[]);
            let _ = self.ship_locked(st, client, bytes);
        }
        id
    }

    fn wait_reply(&self, client: ClientId, seq: u64) -> WaitReply {
        let bytes = frame(FT_TAKE_REPLY, 0, seq, &[]);
        let st = self.lock();
        let (mut st, resp) = self.ship_locked(st, client, bytes);
        let Some(f) = self.take_response(&mut st, client, &resp) else {
            return WaitReply::NoReply { alive: false };
        };
        match f.frame_type {
            FT_COOKIE_REPLY => match decode_reply_value(f.opcode, &f.payload) {
                Ok(v) => WaitReply::Reply(v),
                Err(_) => WaitReply::NoReply { alive: false },
            },
            FT_NO_REPLY => WaitReply::NoReply {
                alive: f.payload.first().is_some_and(|&b| b == 1),
            },
            _ => WaitReply::NoReply { alive: false },
        }
    }

    fn poll_event(&self, client: ClientId) -> Option<Event> {
        let bytes = frame(FT_POLL_EVENT, 0, 0, &[]);
        let st = self.lock();
        let (mut st, resp) = self.ship_locked(st, client, bytes);
        let f = self.take_response(&mut st, client, &resp)?;
        match f.frame_type {
            FT_EVENT => decode_event(f.opcode, &f.payload).ok(),
            _ => None,
        }
    }

    fn pending(&self, client: ClientId) -> usize {
        let bytes = frame(FT_PENDING, 0, 0, &[]);
        let st = self.lock();
        let (mut st, resp) = self.ship_locked(st, client, bytes);
        match self.take_response(&mut st, client, &resp) {
            Some(f) if f.frame_type == FT_PENDING_COUNT => f.seq as usize,
            _ => 0,
        }
    }

    fn set_wire_deadline(&self, ms: u64) {
        self.lock().deadline = Duration::from_millis(ms.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift;

    fn rxid(r: &mut XorShift) -> Xid {
        Xid(r.below(1 << 20) as u32)
    }
    fn ratom(r: &mut XorShift) -> Atom {
        Atom(r.below(1 << 16) as u32)
    }
    fn rpixel(r: &mut XorShift) -> Pixel {
        Pixel(r.below(1 << 24) as u32)
    }
    fn ri32(r: &mut XorShift) -> i32 {
        r.next_u64() as i32
    }
    fn ru32(r: &mut XorShift) -> u32 {
        r.below(1 << 30) as u32
    }
    fn rstr(r: &mut XorShift) -> String {
        let n = r.below(24) as usize;
        (0..n)
            .map(|_| char::from_u32(r.range(0x20, 0x24FF) as u32).unwrap_or('x'))
            .collect()
    }
    fn rrgb(r: &mut XorShift) -> Rgb {
        Rgb::new(r.below(256) as u8, r.below(256) as u8, r.below(256) as u8)
    }
    fn rgcv(r: &mut XorShift) -> GcValues {
        GcValues {
            foreground: rpixel(r),
            background: rpixel(r),
            line_width: r.below(8) as u32,
            font: rxid(r),
        }
    }
    fn rbitmap(r: &mut XorShift) -> Bitmap {
        let w = r.range(1, 9) as u32;
        let h = r.range(1, 9) as u32;
        let bits = (0..(w * h) as usize).map(|_| r.below(2) == 1).collect();
        Bitmap::new(w, h, bits).unwrap()
    }
    fn rkeysym(r: &mut XorShift) -> Keysym {
        if r.below(2) == 0 {
            Keysym::from_char(char::from_u32(r.range(0x21, 0x7E) as u32).unwrap())
        } else {
            Keysym::named("Escape")
        }
    }
    fn ropt_i32(r: &mut XorShift) -> Option<i32> {
        (r.below(2) == 1).then(|| ri32(r))
    }
    fn ropt_u32(r: &mut XorShift) -> Option<u32> {
        (r.below(2) == 1).then(|| ru32(r))
    }

    /// A random request of the given opcode (1..=39).
    fn rand_request(op: u16, r: &mut XorShift, seq: u64) -> QueuedRequest {
        use QueuedRequest as Q;
        match op {
            1 => Q::CreateWindow {
                id: rxid(r),
                parent: rxid(r),
                x: ri32(r),
                y: ri32(r),
                width: ru32(r),
                height: ru32(r),
                border_width: ru32(r),
            },
            2 => Q::DestroyWindow { id: rxid(r) },
            3 => Q::MapWindow { id: rxid(r) },
            4 => Q::UnmapWindow { id: rxid(r) },
            5 => Q::ConfigureWindow {
                id: rxid(r),
                x: ropt_i32(r),
                y: ropt_i32(r),
                width: ropt_u32(r),
                height: ropt_u32(r),
                border_width: ropt_u32(r),
            },
            6 => Q::RaiseWindow { id: rxid(r) },
            7 => Q::ReparentWindow {
                id: rxid(r),
                new_parent: rxid(r),
                x: ri32(r),
                y: ri32(r),
            },
            8 => Q::SelectInput {
                id: rxid(r),
                event_mask: ru32(r),
            },
            9 => Q::SetWindowBackground {
                id: rxid(r),
                pixel: rpixel(r),
            },
            10 => Q::SetWindowBorder {
                id: rxid(r),
                pixel: rpixel(r),
            },
            11 => Q::SetOverrideRedirect {
                id: rxid(r),
                on: r.below(2) == 1,
            },
            12 => Q::DefineCursor {
                id: rxid(r),
                cursor: rxid(r),
            },
            13 => Q::ChangeProperty {
                id: rxid(r),
                atom: ratom(r),
                value: rstr(r),
            },
            14 => Q::AppendProperty {
                id: rxid(r),
                atom: ratom(r),
                value: rstr(r),
            },
            15 => Q::DeleteProperty {
                id: rxid(r),
                atom: ratom(r),
            },
            16 => Q::FreeColor { pixel: rpixel(r) },
            17 => Q::CreateBitmap {
                id: rxid(r),
                bitmap: rbitmap(r),
            },
            18 => Q::FreeBitmap { id: rxid(r) },
            19 => Q::CopyBitmap {
                id: rxid(r),
                gc: rxid(r),
                x: ri32(r),
                y: ri32(r),
                bitmap: rxid(r),
            },
            20 => Q::CreateGc {
                id: rxid(r),
                values: rgcv(r),
            },
            21 => Q::ChangeGc {
                gc: rxid(r),
                values: rgcv(r),
            },
            22 => Q::FreeGc { gc: rxid(r) },
            23 => Q::FillRectangle {
                id: rxid(r),
                gc: rxid(r),
                x: ri32(r),
                y: ri32(r),
                w: ru32(r),
                h: ru32(r),
            },
            24 => Q::DrawRectangle {
                id: rxid(r),
                gc: rxid(r),
                x: ri32(r),
                y: ri32(r),
                w: ru32(r),
                h: ru32(r),
            },
            25 => Q::DrawLine {
                id: rxid(r),
                gc: rxid(r),
                x0: ri32(r),
                y0: ri32(r),
                x1: ri32(r),
                y1: ri32(r),
            },
            26 => Q::DrawString {
                id: rxid(r),
                gc: rxid(r),
                x: ri32(r),
                y: ri32(r),
                text: rstr(r),
            },
            27 => Q::ClearArea {
                id: rxid(r),
                x: ri32(r),
                y: ri32(r),
                w: ru32(r),
                h: ru32(r),
            },
            28 => Q::SetClip {
                id: rxid(r),
                rects: (0..r.below(5) as usize)
                    .map(|_| Rect::new(ri32(r), ri32(r), ru32(r), ru32(r)))
                    .collect(),
            },
            29 => Q::ClearClip { id: rxid(r) },
            30 => Q::CopyArea {
                id: rxid(r),
                src_x: ri32(r),
                src_y: ri32(r),
                w: ru32(r),
                h: ru32(r),
                dst_x: ri32(r),
                dst_y: ri32(r),
            },
            31 => Q::SetSelectionOwner {
                selection: ratom(r),
                owner: rxid(r),
            },
            32 => Q::ConvertSelection {
                requestor: rxid(r),
                selection: ratom(r),
                target: ratom(r),
                property: ratom(r),
            },
            33 => Q::SendSelectionNotify {
                requestor: rxid(r),
                selection: ratom(r),
                target: ratom(r),
                property: ratom(r),
            },
            34 => Q::SetInputFocus { id: rxid(r) },
            35 => Q::InternAtom { seq, name: rstr(r) },
            36 => Q::AllocColor { seq, rgb: rrgb(r) },
            37 => Q::AllocNamedColor { seq, name: rstr(r) },
            38 => Q::GetProperty {
                seq,
                id: rxid(r),
                atom: ratom(r),
            },
            39 => Q::GetGeometry { seq, id: rxid(r) },
            _ => unreachable!(),
        }
    }

    fn rand_sync_request(op: u16, r: &mut XorShift) -> SyncRequest {
        use SyncRequest as S;
        match op {
            1 => S::InternAtom { name: rstr(r) },
            2 => S::GetAtomName { atom: ratom(r) },
            3 => S::QueryTree { id: rxid(r) },
            4 => S::GetGeometry { id: rxid(r) },
            5 => S::IsViewable { id: rxid(r) },
            6 => S::GetProperty {
                id: rxid(r),
                atom: ratom(r),
            },
            7 => S::AllocNamedColor { name: rstr(r) },
            8 => S::AllocColor { rgb: rrgb(r) },
            9 => S::QueryColor { pixel: rpixel(r) },
            10 => S::OpenFont { name: rstr(r) },
            11 => S::QueryFont { font: rxid(r) },
            12 => S::CreateCursor { name: rstr(r) },
            13 => S::QueryBitmap { id: rxid(r) },
            14 => S::GetSelectionOwner {
                selection: ratom(r),
            },
            15 => S::GetInputFocus,
            16 => S::TakeProperty {
                id: rxid(r),
                atom: ratom(r),
            },
            _ => unreachable!(),
        }
    }

    fn rand_sync_reply(op: u16, r: &mut XorShift) -> SyncReply {
        use SyncReply as R;
        let some = r.below(2) == 1;
        match op {
            1 => R::Atom(ratom(r)),
            2 => R::OptString(some.then(|| rstr(r))),
            3 => R::Tree(
                some.then(|| (rxid(r), (0..r.below(6) as usize).map(|_| rxid(r)).collect())),
            ),
            4 => R::Geometry(some.then(|| (ri32(r), ri32(r), ru32(r), ru32(r), ru32(r)))),
            5 => R::Bool(some),
            6 => R::NamedColor(some.then(|| (rpixel(r), rrgb(r)))),
            7 => R::Pixel(rpixel(r)),
            8 => R::Rgb(rrgb(r)),
            9 => R::OptXid(some.then(|| rxid(r))),
            10 => R::Metrics(some.then(|| FontMetrics {
                char_width: ru32(r),
                ascent: ru32(r),
                descent: ru32(r),
            })),
            11 => R::Size(some.then(|| (ru32(r), ru32(r)))),
            12 => R::Window(rxid(r)),
            _ => unreachable!(),
        }
    }

    fn rand_error(r: &mut XorShift) -> XError {
        let code = match r.below(5) {
            0 => XErrorCode::BadWindow,
            1 => XErrorCode::BadAtom,
            2 => XErrorCode::BadValue,
            3 => XErrorCode::BadAlloc,
            _ => XErrorCode::ConnectionDead,
        };
        let kind = (r.below(2) == 1)
            .then(|| RequestKind::ALL[r.below(RequestKind::ALL.len() as u64) as usize]);
        XError {
            code,
            seq: r.next_u64(),
            kind,
        }
    }

    fn rand_reply_value(op: u16, r: &mut XorShift) -> ReplyValue {
        use ReplyValue as V;
        let some = r.below(2) == 1;
        match op {
            1 => V::Atom(ratom(r)),
            2 => V::Pixel(rpixel(r)),
            3 => V::NamedColor(some.then(|| (rpixel(r), rrgb(r)))),
            4 => V::Property(some.then(|| rstr(r))),
            5 => V::Geometry(some.then(|| (ri32(r), ri32(r), ru32(r), ru32(r), ru32(r)))),
            6 => V::Error(rand_error(r)),
            _ => unreachable!(),
        }
    }

    fn rand_event(op: u16, r: &mut XorShift) -> Event {
        use Event as E;
        match op {
            1 => E::Expose {
                window: rxid(r),
                x: ri32(r),
                y: ri32(r),
                width: ru32(r),
                height: ru32(r),
                count: r.below(8) as u32,
            },
            2 => E::ConfigureNotify {
                window: rxid(r),
                x: ri32(r),
                y: ri32(r),
                width: ru32(r),
                height: ru32(r),
                border_width: ru32(r),
            },
            3 => E::MapNotify { window: rxid(r) },
            4 => E::UnmapNotify { window: rxid(r) },
            5 => E::DestroyNotify { window: rxid(r) },
            6 => E::EnterNotify {
                window: rxid(r),
                x: ri32(r),
                y: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            7 => E::LeaveNotify {
                window: rxid(r),
                x: ri32(r),
                y: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            8 => E::MotionNotify {
                window: rxid(r),
                x: ri32(r),
                y: ri32(r),
                x_root: ri32(r),
                y_root: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            9 => E::ButtonPress {
                window: rxid(r),
                button: r.below(5) as u8,
                x: ri32(r),
                y: ri32(r),
                x_root: ri32(r),
                y_root: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            10 => E::ButtonRelease {
                window: rxid(r),
                button: r.below(5) as u8,
                x: ri32(r),
                y: ri32(r),
                x_root: ri32(r),
                y_root: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            11 => E::KeyPress {
                window: rxid(r),
                keysym: rkeysym(r),
                x: ri32(r),
                y: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            12 => E::KeyRelease {
                window: rxid(r),
                keysym: rkeysym(r),
                x: ri32(r),
                y: ri32(r),
                state: ru32(r),
                time: r.next_u64(),
            },
            13 => E::PropertyNotify {
                window: rxid(r),
                atom: ratom(r),
                deleted: r.below(2) == 1,
                time: r.next_u64(),
            },
            14 => E::SelectionClear {
                window: rxid(r),
                selection: ratom(r),
                time: r.next_u64(),
            },
            15 => E::SelectionRequest {
                owner: rxid(r),
                requestor: rxid(r),
                selection: ratom(r),
                target: ratom(r),
                property: ratom(r),
                time: r.next_u64(),
            },
            16 => E::SelectionNotify {
                requestor: rxid(r),
                selection: ratom(r),
                target: ratom(r),
                property: ratom(r),
                time: r.next_u64(),
            },
            17 => E::FocusIn { window: rxid(r) },
            18 => E::FocusOut { window: rxid(r) },
            _ => unreachable!(),
        }
    }

    /// Encodes through a frame and decodes back via a FrameReader.
    fn frame_round_trip(ft: u8, op: u16, seq: u64, payload: &[u8]) -> RawFrame {
        let bytes = frame(ft, op, seq, payload);
        let mut fr = FrameReader::new();
        fr.push(&bytes).unwrap();
        let f = fr.next_frame().unwrap().unwrap();
        assert!(fr.next_frame().unwrap().is_none(), "exactly one frame");
        assert_eq!(f.wire_len(), bytes.len());
        f
    }

    #[test]
    fn every_request_kind_round_trips() {
        let mut r = XorShift::new(0x517e_5eed);
        for op in 1..=39u16 {
            for _ in 0..25 {
                let seq = r.next_u64();
                let q = rand_request(op, &mut r, seq);
                let (enc_op, payload) = encode_request(&q);
                assert_eq!(enc_op, op, "opcode table mismatch for {q:?}");
                let f = frame_round_trip(FT_REQUEST, enc_op, seq, &payload);
                let back = decode_request(f.opcode, f.seq, &f.payload).unwrap();
                assert_eq!(format!("{q:?}"), format!("{back:?}"));
            }
        }
    }

    #[test]
    fn every_sync_request_and_reply_round_trips() {
        let mut r = XorShift::new(0x57ee1);
        for op in 1..=16u16 {
            for _ in 0..25 {
                let req = rand_sync_request(op, &mut r);
                let (enc_op, payload) = encode_sync_request(&req);
                assert_eq!(enc_op, op);
                let f = frame_round_trip(FT_SYNC, enc_op, 0, &payload);
                let back = decode_sync_request(f.opcode, &f.payload).unwrap();
                assert_eq!(format!("{req:?}"), format!("{back:?}"));
            }
        }
        for op in 1..=12u16 {
            for _ in 0..25 {
                let reply = rand_sync_reply(op, &mut r);
                let (enc_op, payload) = encode_sync_reply(&reply);
                assert_eq!(enc_op, op);
                let f = frame_round_trip(FT_SYNC_REPLY, enc_op, 0, &payload);
                let back = decode_sync_reply(f.opcode, &f.payload).unwrap();
                assert_eq!(format!("{reply:?}"), format!("{back:?}"));
            }
        }
    }

    #[test]
    fn every_reply_value_event_and_error_round_trips() {
        let mut r = XorShift::new(0xeeee);
        for op in 1..=6u16 {
            for _ in 0..25 {
                let v = rand_reply_value(op, &mut r);
                let (enc_op, payload) = encode_reply_value(&v);
                assert_eq!(enc_op, op);
                let f = frame_round_trip(FT_COOKIE_REPLY, enc_op, 7, &payload);
                let back = decode_reply_value(f.opcode, &f.payload).unwrap();
                assert_eq!(format!("{v:?}"), format!("{back:?}"));
            }
        }
        for op in 1..=18u16 {
            for _ in 0..25 {
                let ev = rand_event(op, &mut r);
                let (enc_op, payload) = encode_event(&ev);
                assert_eq!(enc_op, op);
                let f = frame_round_trip(FT_EVENT, enc_op, 0, &payload);
                let back = decode_event(f.opcode, &f.payload).unwrap();
                assert_eq!(format!("{ev:?}"), format!("{back:?}"));
            }
        }
        for _ in 0..200 {
            let e = rand_error(&mut r);
            let payload = encode_error_payload(&e);
            let f = frame_round_trip(FT_ERROR, 0, e.seq, &payload);
            let back = decode_error(&f.payload).unwrap();
            assert_eq!(format!("{e:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncated_frames_wait_instead_of_erroring() {
        let mut r = XorShift::new(0x70c4);
        let q = rand_request(26, &mut r, 9); // DrawString: variable length
        let (op, payload) = encode_request(&q);
        let bytes = frame(FT_REQUEST, op, 9, &payload);
        for cut in 0..bytes.len() {
            let mut fr = FrameReader::new();
            fr.push(&bytes[..cut]).unwrap();
            assert_eq!(fr.next_frame().unwrap(), None, "cut at {cut}");
            // Feeding the remainder completes the frame.
            fr.push(&bytes[cut..]).unwrap();
            let f = fr.next_frame().unwrap().unwrap();
            assert_eq!(
                format!("{:?}", decode_request(f.opcode, f.seq, &f.payload).unwrap()),
                format!("{q:?}")
            );
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_with_clean_errors() {
        // Bad version (checked before the CRC so a version-negotiation
        // mismatch is reported as such, not as corruption).
        let mut bytes = frame(FT_REQUEST, 3, 1, &[7, 0, 0, 0]);
        bytes[4] = 99;
        let mut fr = FrameReader::new();
        fr.push(&bytes).unwrap();
        assert_eq!(fr.next_frame(), Err(WireError::BadVersion(99)));

        // A flipped frame-type byte is caught by the CRC, which covers
        // the whole header: checksum, not a misparse.
        let mut bytes = frame(FT_REQUEST, 3, 1, &[7, 0, 0, 0]);
        bytes[5] = 200;
        let mut fr = FrameReader::new();
        fr.push(&bytes).unwrap();
        assert_eq!(fr.next_frame(), Err(WireError::Checksum));

        // A genuinely bad frame type behind a valid CRC (a buggy or
        // hostile encoder, not line noise).
        let mut bytes = frame(FT_REQUEST, 3, 1, &[7, 0, 0, 0]);
        bytes[5] = 200;
        let crc = frame_crc(&bytes[4..4 + CRC_OFFSET], &bytes[4 + HEADER_LEN..]);
        bytes[4 + CRC_OFFSET..4 + HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        let mut fr = FrameReader::new();
        fr.push(&bytes).unwrap();
        assert_eq!(fr.next_frame(), Err(WireError::BadFrameType(200)));

        // Length shorter than the header: no valid encoder emits it, so
        // it is byte damage by definition.
        let mut fr = FrameReader::new();
        fr.push(&3u32.to_le_bytes()).unwrap();
        fr.push(&[0; 16]).unwrap();
        assert_eq!(fr.next_frame(), Err(WireError::Checksum));

        // Oversized length prefix: rejected before any allocation.
        let mut fr = FrameReader::new();
        fr.push(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
        assert_eq!(
            fr.next_frame(),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );

        // Unknown opcode inside a well-formed frame.
        assert_eq!(
            decode_request(999, 1, &[]).err(),
            Some(WireError::BadOpcode(999))
        );
        assert_eq!(decode_sync_request(99, &[]), Err(WireError::BadOpcode(99)));
        assert!(matches!(
            decode_event(99, &[]),
            Err(WireError::BadOpcode(99))
        ));

        // Short payload, trailing bytes, and bad tags all map to Malformed.
        assert!(matches!(
            decode_request(1, 1, &[0, 0]),
            Err(WireError::Malformed(_))
        ));
        let (op, mut payload) = encode_request(&QueuedRequest::MapWindow { id: Xid(5) });
        payload.push(0);
        assert_eq!(
            decode_request(op, 1, &payload).err(),
            Some(WireError::Malformed("trailing bytes"))
        );
        assert!(matches!(
            decode_error(&[77, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(WireError::Malformed(_))
        ));
        // A corrupt bool/Option tag.
        let (op, mut payload) = encode_request(&QueuedRequest::SetOverrideRedirect {
            id: Xid(5),
            on: true,
        });
        *payload.last_mut().unwrap() = 9;
        assert!(matches!(
            decode_request(op, 1, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn split_read_reassembly_across_arbitrary_chunks() {
        let mut r = XorShift::new(0x4242);
        // Build a stream of random frames of every opcode.
        let mut stream = Vec::new();
        let mut originals = Vec::new();
        for i in 0..200u64 {
            let op = r.range(1, 40) as u16;
            let q = rand_request(op, &mut r, i);
            let (enc_op, payload) = encode_request(&q);
            stream.extend_from_slice(&frame(FT_REQUEST, enc_op, i, &payload));
            originals.push(q);
        }
        // Feed it in random-size chunks; every frame must come back, in
        // order, regardless of where the chunk boundaries fall.
        let mut fr = FrameReader::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = (r.range(1, 37) as usize).min(stream.len() - pos);
            fr.push(&stream[pos..pos + n]).unwrap();
            pos += n;
            while let Some(f) = fr.next_frame().unwrap() {
                decoded.push(decode_request(f.opcode, f.seq, &f.payload).unwrap());
            }
        }
        assert_eq!(decoded.len(), originals.len());
        for (a, b) in originals.iter().zip(decoded.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn oversized_bitmap_is_rejected_not_allocated() {
        // Claim a gigantic bitmap inside a tiny payload: the decoder must
        // bail out on the dimension check, not try to allocate.
        let mut payload = Vec::new();
        put_u32(&mut payload, 5); // id
        put_u32(&mut payload, 1 << 16); // width
        put_u32(&mut payload, 1 << 16); // height
        assert!(matches!(
            decode_request(17, 1, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    /// Property: flipping ANY single byte of a v2 frame is detected.
    /// The decode either fails structurally (`BadVersion` on the version
    /// byte, `Oversized`/`Checksum` on the length prefix) or fails the
    /// CRC — it must never hand back a frame. The only non-error outcome
    /// allowed is a length prefix corrupted *upward*, which reads as an
    /// incomplete frame (`Ok(None)`) and starves rather than misparses.
    #[test]
    fn any_single_byte_corruption_is_detected() {
        let mut r = XorShift::new(0xC4C_5EED);
        let mut cases = 0usize;
        for i in 0..60u64 {
            let op = r.range(1, 40) as u16;
            let q = rand_request(op, &mut r, i);
            let (enc_op, payload) = encode_request(&q);
            let clean = frame(FT_REQUEST, enc_op, i, &payload);
            for offset in 0..clean.len() {
                let xor = 1 + r.below(255) as u8;
                let mut bytes = clean.clone();
                bytes[offset] ^= xor;
                let mut fr = FrameReader::new();
                fr.push(&bytes).unwrap();
                match fr.next_frame() {
                    Err(WireError::Checksum)
                    | Err(WireError::BadVersion(_))
                    | Err(WireError::Oversized(_))
                    | Err(WireError::BadFrameType(_)) => {}
                    Ok(None) => assert!(
                        offset < 4,
                        "only an inflated length prefix may starve \
                         (offset {offset}, xor {xor:#04x})"
                    ),
                    other => panic!(
                        "corruption at offset {offset} xor {xor:#04x} \
                         survived decode: {other:?}"
                    ),
                }
                cases += 1;
            }
        }
        assert!(cases >= 500, "property must cover >=500 cases, ran {cases}");
    }

    /// Property: splitting the byte stream at EVERY boundary yields the
    /// same frames as a whole-buffer decode — write boundaries are
    /// invisible to the reader (the invariant `SplitWrite` leans on).
    #[test]
    fn split_at_every_boundary_matches_whole_buffer_decode() {
        let mut r = XorShift::new(0x5117);
        let mut stream = Vec::new();
        for i in 0..5u64 {
            let op = r.range(1, 40) as u16;
            let q = rand_request(op, &mut r, i);
            let (enc_op, payload) = encode_request(&q);
            stream.extend_from_slice(&frame(FT_REQUEST, enc_op, i, &payload));
        }
        let decode_all = |chunks: &[&[u8]]| -> Vec<(u16, u64, Vec<u8>)> {
            let mut fr = FrameReader::new();
            let mut out = Vec::new();
            for c in chunks {
                fr.push(c).unwrap();
                while let Some(f) = fr.next_frame().unwrap() {
                    out.push((f.opcode, f.seq, f.payload.clone()));
                }
            }
            out
        };
        let whole = decode_all(&[&stream]);
        assert!(whole.len() == 5);
        for cut in 0..=stream.len() {
            let split = decode_all(&[&stream[..cut], &stream[cut..]]);
            assert_eq!(split, whole, "split at {cut} diverged");
        }
    }

    /// The reassembly buffer is bounded: a 1 GiB-claiming length prefix
    /// is rejected structurally before any allocation, and a garbage
    /// flood that never completes a frame is refused once it would grow
    /// the buffer past `MAX_BUFFERED`.
    #[test]
    fn push_is_bounded_against_hostile_prefixes_and_floods() {
        // 1 GiB length claim: Oversized, no buffering of the payload.
        let mut fr = FrameReader::new();
        fr.push(&(1u32 << 30).to_le_bytes()).unwrap();
        assert_eq!(fr.next_frame(), Err(WireError::Oversized(1 << 30)));

        // Garbage flood under a maximal (but legal) length prefix: the
        // reader buffers up to the bound, then refuses further growth.
        let mut fr = FrameReader::new();
        fr.push(&MAX_FRAME_LEN.to_le_bytes()).unwrap();
        let chunk = vec![0xAB_u8; 64 * 1024];
        let mut rejected = false;
        for _ in 0..((MAX_BUFFERED / chunk.len()) + 2) {
            match fr.push(&chunk) {
                Ok(()) => assert!(fr.pending() <= MAX_BUFFERED),
                Err(WireError::Oversized(claim)) => {
                    assert!(claim as usize > MAX_BUFFERED);
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected push error: {e:?}"),
            }
        }
        assert!(rejected, "flood was never refused");
        assert!(fr.pending() <= MAX_BUFFERED);
    }

    /// The CRC table and update function match the reference IEEE 802.3
    /// CRC-32 check value ("123456789" -> 0xCBF43926).
    #[test]
    fn crc32_matches_reference_check_value() {
        let crc = crc32_update(CRC32_INIT, b"123456789") ^ 0xFFFF_FFFF;
        assert_eq!(crc, 0xCBF4_3926);
    }
}
