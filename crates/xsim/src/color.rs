//! The color database and a shared pseudo-color colormap.
//!
//! Colors are named by the textual names of X11's `rgb.txt` (the paper's
//! `MediumSeaGreen` example) or by `#rgb`/`#rrggbb` hex strings. The
//! colormap allocates *pixel values* for RGB triples; identical colors
//! share a pixel with a reference count, which is what makes Tk's
//! color cache effective at cutting server traffic (Section 3.3).

use std::collections::HashMap;

use crate::ids::Pixel;

/// An RGB color, 8 bits per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rgb {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Rgb {
    /// Builds an RGB triple.
    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// Packs into `0x00RRGGBB` for framebuffer storage.
    pub fn packed(self) -> u32 {
        (self.r as u32) << 16 | (self.g as u32) << 8 | self.b as u32
    }

    /// Unpacks from `0x00RRGGBB`.
    pub fn from_packed(v: u32) -> Rgb {
        Rgb::new((v >> 16) as u8, (v >> 8) as u8, v as u8)
    }
}

/// A subset of X11's rgb.txt covering the names Tk's widgets and the
/// paper's examples use, plus the standard primaries and grays.
const NAMED_COLORS: &[(&str, Rgb)] = &[
    ("black", Rgb::new(0, 0, 0)),
    ("white", Rgb::new(255, 255, 255)),
    ("red", Rgb::new(255, 0, 0)),
    ("green", Rgb::new(0, 255, 0)),
    ("blue", Rgb::new(0, 0, 255)),
    ("yellow", Rgb::new(255, 255, 0)),
    ("cyan", Rgb::new(0, 255, 255)),
    ("magenta", Rgb::new(255, 0, 255)),
    ("orange", Rgb::new(255, 165, 0)),
    ("purple", Rgb::new(160, 32, 240)),
    ("brown", Rgb::new(165, 42, 42)),
    ("pink", Rgb::new(255, 192, 203)),
    ("gray", Rgb::new(190, 190, 190)),
    ("grey", Rgb::new(190, 190, 190)),
    ("lightgray", Rgb::new(211, 211, 211)),
    ("lightgrey", Rgb::new(211, 211, 211)),
    ("darkgray", Rgb::new(169, 169, 169)),
    ("darkgrey", Rgb::new(169, 169, 169)),
    ("dimgray", Rgb::new(105, 105, 105)),
    ("gainsboro", Rgb::new(220, 220, 220)),
    ("gray25", Rgb::new(64, 64, 64)),
    ("gray50", Rgb::new(127, 127, 127)),
    ("gray75", Rgb::new(191, 191, 191)),
    ("gray90", Rgb::new(229, 229, 229)),
    ("navy", Rgb::new(0, 0, 128)),
    ("navyblue", Rgb::new(0, 0, 128)),
    ("skyblue", Rgb::new(135, 206, 235)),
    ("lightblue", Rgb::new(173, 216, 230)),
    ("steelblue", Rgb::new(70, 130, 180)),
    ("lightsteelblue", Rgb::new(176, 196, 222)),
    ("royalblue", Rgb::new(65, 105, 225)),
    ("dodgerblue", Rgb::new(30, 144, 255)),
    ("cornflowerblue", Rgb::new(100, 149, 237)),
    ("cadetblue", Rgb::new(95, 158, 160)),
    ("midnightblue", Rgb::new(25, 25, 112)),
    ("darkgreen", Rgb::new(0, 100, 0)),
    ("forestgreen", Rgb::new(34, 139, 34)),
    ("seagreen", Rgb::new(46, 139, 87)),
    ("mediumseagreen", Rgb::new(60, 179, 113)),
    ("darkseagreen", Rgb::new(143, 188, 143)),
    ("lightseagreen", Rgb::new(32, 178, 170)),
    ("springgreen", Rgb::new(0, 255, 127)),
    ("palegreen", Rgb::new(152, 251, 152)),
    ("limegreen", Rgb::new(50, 205, 50)),
    ("yellowgreen", Rgb::new(154, 205, 50)),
    ("olivedrab", Rgb::new(107, 142, 35)),
    ("darkolivegreen", Rgb::new(85, 107, 47)),
    ("khaki", Rgb::new(240, 230, 140)),
    ("gold", Rgb::new(255, 215, 0)),
    ("goldenrod", Rgb::new(218, 165, 32)),
    ("darkgoldenrod", Rgb::new(184, 134, 11)),
    ("salmon", Rgb::new(250, 128, 114)),
    ("lightsalmon", Rgb::new(255, 160, 122)),
    ("coral", Rgb::new(255, 127, 80)),
    ("tomato", Rgb::new(255, 99, 71)),
    ("orangered", Rgb::new(255, 69, 0)),
    ("darkorange", Rgb::new(255, 140, 0)),
    ("firebrick", Rgb::new(178, 34, 34)),
    ("indianred", Rgb::new(205, 92, 92)),
    ("darkred", Rgb::new(139, 0, 0)),
    ("maroon", Rgb::new(176, 48, 96)),
    ("hotpink", Rgb::new(255, 105, 180)),
    ("deeppink", Rgb::new(255, 20, 147)),
    ("palepink1", Rgb::new(255, 224, 229)), // Tk example in Section 4
    ("lightpink", Rgb::new(255, 182, 193)),
    ("violet", Rgb::new(238, 130, 238)),
    ("violetred", Rgb::new(208, 32, 144)),
    ("plum", Rgb::new(221, 160, 221)),
    ("orchid", Rgb::new(218, 112, 214)),
    ("mediumorchid", Rgb::new(186, 85, 211)),
    ("darkorchid", Rgb::new(153, 50, 204)),
    ("blueviolet", Rgb::new(138, 43, 226)),
    ("mediumpurple", Rgb::new(147, 112, 219)),
    ("thistle", Rgb::new(216, 191, 216)),
    ("lavender", Rgb::new(230, 230, 250)),
    ("beige", Rgb::new(245, 245, 220)),
    ("bisque", Rgb::new(255, 228, 196)),
    ("bisque1", Rgb::new(255, 228, 196)),
    ("bisque2", Rgb::new(238, 213, 183)),
    ("bisque3", Rgb::new(205, 183, 158)),
    ("wheat", Rgb::new(245, 222, 179)),
    ("tan", Rgb::new(210, 180, 140)),
    ("chocolate", Rgb::new(210, 105, 30)),
    ("sienna", Rgb::new(160, 82, 45)),
    ("peru", Rgb::new(205, 133, 63)),
    ("burlywood", Rgb::new(222, 184, 135)),
    ("sandybrown", Rgb::new(244, 164, 96)),
    ("ivory", Rgb::new(255, 255, 240)),
    ("linen", Rgb::new(250, 240, 230)),
    ("seashell", Rgb::new(255, 245, 238)),
    ("snow", Rgb::new(255, 250, 250)),
    ("floralwhite", Rgb::new(255, 250, 240)),
    ("ghostwhite", Rgb::new(248, 248, 255)),
    ("whitesmoke", Rgb::new(245, 245, 245)),
    ("antiquewhite", Rgb::new(250, 235, 215)),
    ("papayawhip", Rgb::new(255, 239, 213)),
    ("peachpuff", Rgb::new(255, 218, 185)),
    ("mistyrose", Rgb::new(255, 228, 225)),
    ("lemonchiffon", Rgb::new(255, 250, 205)),
    ("lightyellow", Rgb::new(255, 255, 224)),
    ("honeydew", Rgb::new(240, 255, 240)),
    ("mintcream", Rgb::new(245, 255, 250)),
    ("azure", Rgb::new(240, 255, 255)),
    ("aliceblue", Rgb::new(240, 248, 255)),
    ("lavenderblush", Rgb::new(255, 240, 245)),
    ("cornsilk", Rgb::new(255, 248, 220)),
    ("oldlace", Rgb::new(253, 245, 230)),
    ("aquamarine", Rgb::new(127, 255, 212)),
    ("turquoise", Rgb::new(64, 224, 208)),
    ("mediumturquoise", Rgb::new(72, 209, 204)),
    ("darkturquoise", Rgb::new(0, 206, 209)),
    ("paleturquoise", Rgb::new(175, 238, 238)),
    ("powderblue", Rgb::new(176, 224, 230)),
    ("lightcyan", Rgb::new(224, 255, 255)),
    ("slateblue", Rgb::new(106, 90, 205)),
    ("darkslateblue", Rgb::new(72, 61, 139)),
    ("mediumslateblue", Rgb::new(123, 104, 238)),
    ("lightslateblue", Rgb::new(132, 112, 255)),
    ("slategray", Rgb::new(112, 128, 144)),
    ("lightslategray", Rgb::new(119, 136, 153)),
    ("darkslategray", Rgb::new(47, 79, 79)),
    ("deepskyblue", Rgb::new(0, 191, 255)),
    ("lightskyblue", Rgb::new(135, 206, 250)),
    ("greenyellow", Rgb::new(173, 255, 47)),
    ("lawngreen", Rgb::new(124, 252, 0)),
    ("chartreuse", Rgb::new(127, 255, 0)),
    ("mediumspringgreen", Rgb::new(0, 250, 154)),
    ("rosybrown", Rgb::new(188, 143, 143)),
];

/// Looks up a color by name or `#hex` specification.
///
/// Names are case- and space-insensitive (`MediumSeaGreen`, `medium sea
/// green`, and `mediumseagreen` all match), as in Xlib.
pub fn lookup_color(name: &str) -> Option<Rgb> {
    if let Some(hex) = name.strip_prefix('#') {
        return parse_hex(hex);
    }
    let key: String = name
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    // `gray37`-style names: any gray level 0-100.
    for prefix in ["gray", "grey"] {
        if let Some(level) = key.strip_prefix(prefix) {
            if !level.is_empty() {
                if let Ok(pct) = level.parse::<u32>() {
                    if pct <= 100 {
                        let v = (pct * 255 / 100) as u8;
                        return Some(Rgb::new(v, v, v));
                    }
                }
            }
        }
    }
    NAMED_COLORS
        .iter()
        .find(|(n, _)| *n == key)
        .map(|(_, rgb)| *rgb)
}

fn parse_hex(hex: &str) -> Option<Rgb> {
    let val = |s: &str| u8::from_str_radix(s, 16).ok();
    match hex.len() {
        3 => {
            let r = val(&hex[0..1])?;
            let g = val(&hex[1..2])?;
            let b = val(&hex[2..3])?;
            Some(Rgb::new(r * 17, g * 17, b * 17))
        }
        6 => Some(Rgb::new(
            val(&hex[0..2])?,
            val(&hex[2..4])?,
            val(&hex[4..6])?,
        )),
        12 => {
            // 16-bit-per-channel form; keep the high byte.
            Some(Rgb::new(
                val(&hex[0..2])?,
                val(&hex[4..6])?,
                val(&hex[8..10])?,
            ))
        }
        _ => None,
    }
}

/// A shared pseudo-color colormap: RGB triples map to reference-counted
/// pixel values. Allocating the same color twice returns the same pixel.
#[derive(Debug, Default)]
pub struct Colormap {
    by_rgb: HashMap<Rgb, Pixel>,
    cells: Vec<(Rgb, u32)>, // (color, refcount); index = pixel value
}

impl Colormap {
    /// Creates a colormap with black and white preallocated as pixels 0/1.
    pub fn new() -> Colormap {
        let mut cm = Colormap::default();
        cm.alloc(Rgb::new(0, 0, 0));
        cm.alloc(Rgb::new(255, 255, 255));
        cm
    }

    /// Allocates (or re-shares) a pixel for `rgb`.
    pub fn alloc(&mut self, rgb: Rgb) -> Pixel {
        if let Some(&p) = self.by_rgb.get(&rgb) {
            self.cells[p.0 as usize].1 += 1;
            return p;
        }
        let p = Pixel(self.cells.len() as u32);
        self.cells.push((rgb, 1));
        self.by_rgb.insert(rgb, p);
        p
    }

    /// Releases one reference to the pixel. Fully released cells keep their
    /// color (real servers would recycle them; we never run out).
    pub fn free(&mut self, pixel: Pixel) {
        if let Some(cell) = self.cells.get_mut(pixel.0 as usize) {
            cell.1 = cell.1.saturating_sub(1);
        }
    }

    /// The color stored in a pixel.
    pub fn rgb(&self, pixel: Pixel) -> Rgb {
        self.cells
            .get(pixel.0 as usize)
            .map(|(rgb, _)| *rgb)
            .unwrap_or(Rgb::new(0, 0, 0))
    }

    /// Number of distinct allocated cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Reference count of a pixel (for tests and cache ablation).
    pub fn refcount(&self, pixel: Pixel) -> u32 {
        self.cells
            .get(pixel.0 as usize)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_named_colors() {
        assert_eq!(lookup_color("red"), Some(Rgb::new(255, 0, 0)));
        assert_eq!(lookup_color("MediumSeaGreen"), Some(Rgb::new(60, 179, 113)));
        assert_eq!(
            lookup_color("medium sea green"),
            Some(Rgb::new(60, 179, 113))
        );
        assert_eq!(lookup_color("PalePink1"), Some(Rgb::new(255, 224, 229)));
        assert_eq!(lookup_color("NoSuchColor"), None);
    }

    #[test]
    fn lookup_hex_colors() {
        assert_eq!(lookup_color("#ff0000"), Some(Rgb::new(255, 0, 0)));
        assert_eq!(lookup_color("#f00"), Some(Rgb::new(255, 0, 0)));
        assert_eq!(lookup_color("#zzzzzz"), None);
    }

    #[test]
    fn gray_levels() {
        assert_eq!(lookup_color("gray0"), Some(Rgb::new(0, 0, 0)));
        assert_eq!(lookup_color("grey100"), Some(Rgb::new(255, 255, 255)));
        assert_eq!(lookup_color("gray40"), Some(Rgb::new(102, 102, 102)));
    }

    #[test]
    fn colormap_shares_pixels() {
        let mut cm = Colormap::new();
        let a = cm.alloc(Rgb::new(1, 2, 3));
        let b = cm.alloc(Rgb::new(1, 2, 3));
        assert_eq!(a, b);
        assert_eq!(cm.refcount(a), 2);
        cm.free(a);
        assert_eq!(cm.refcount(a), 1);
    }

    #[test]
    fn colormap_preallocates_black_white() {
        let cm = Colormap::new();
        assert_eq!(cm.rgb(Pixel(0)), Rgb::new(0, 0, 0));
        assert_eq!(cm.rgb(Pixel(1)), Rgb::new(255, 255, 255));
    }

    #[test]
    fn packed_round_trip() {
        let c = Rgb::new(10, 20, 30);
        assert_eq!(Rgb::from_packed(c.packed()), c);
    }
}
