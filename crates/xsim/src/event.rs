//! X events and event masks.
//!
//! Clients select interest in events per window with a mask (`SelectInput`);
//! the server delivers an event to every client whose mask matches. Device
//! events (keys, buttons, motion) propagate from the deepest window under
//! the pointer up through its ancestors until some window/client pair has
//! selected them, as in real X.

use crate::atom::Atom;
use crate::ids::WindowId;

/// Event-mask bits (a subset of X11's, same names).
pub mod mask {
    /// Exposure events.
    pub const EXPOSURE: u32 = 1 << 0;
    /// Button press events.
    pub const BUTTON_PRESS: u32 = 1 << 1;
    /// Button release events.
    pub const BUTTON_RELEASE: u32 = 1 << 2;
    /// Key press events.
    pub const KEY_PRESS: u32 = 1 << 3;
    /// Key release events.
    pub const KEY_RELEASE: u32 = 1 << 4;
    /// Pointer motion events.
    pub const POINTER_MOTION: u32 = 1 << 5;
    /// Pointer entering the window.
    pub const ENTER_WINDOW: u32 = 1 << 6;
    /// Pointer leaving the window.
    pub const LEAVE_WINDOW: u32 = 1 << 7;
    /// Changes to this window's structure (map/unmap/configure/destroy).
    pub const STRUCTURE_NOTIFY: u32 = 1 << 8;
    /// Changes to children's structure.
    pub const SUBSTRUCTURE_NOTIFY: u32 = 1 << 9;
    /// Property changes.
    pub const PROPERTY_CHANGE: u32 = 1 << 10;
    /// Focus changes.
    pub const FOCUS_CHANGE: u32 = 1 << 11;
}

/// Modifier-state bits carried in device events (X11 names).
pub mod state {
    /// Shift key.
    pub const SHIFT: u32 = 1 << 0;
    /// Caps lock.
    pub const LOCK: u32 = 1 << 1;
    /// Control key.
    pub const CONTROL: u32 = 1 << 2;
    /// Mod1 (usually Meta/Alt).
    pub const MOD1: u32 = 1 << 3;
    /// Mod2.
    pub const MOD2: u32 = 1 << 4;
    /// Button 1 held.
    pub const BUTTON1: u32 = 1 << 8;
    /// Button 2 held.
    pub const BUTTON2: u32 = 1 << 9;
    /// Button 3 held.
    pub const BUTTON3: u32 = 1 << 10;
}

/// A key symbol: a named key plus the character it generates, if any.
///
/// Real X maps hardware keycodes through a keyboard map to keysyms; the
/// simulation starts at the keysym level, which is also the level Tk's
/// `bind` command works at (`<Escape>`, `a`, `<space>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keysym {
    /// The keysym name (`"a"`, `"space"`, `"Escape"`, `"Return"`, ...).
    pub name: String,
    /// The character generated, if the key is a text key.
    pub ch: Option<char>,
}

impl Keysym {
    /// Builds the keysym for a character key, naming it per X conventions
    /// (letters and digits name themselves; some punctuation has names).
    pub fn from_char(c: char) -> Keysym {
        let name = match c {
            ' ' => "space".to_string(),
            '\n' | '\r' => {
                return Keysym {
                    name: "Return".into(),
                    ch: Some('\r'),
                }
            }
            '\t' => {
                return Keysym {
                    name: "Tab".into(),
                    ch: Some('\t'),
                }
            }
            '.' => "period".to_string(),
            ',' => "comma".to_string(),
            ';' => "semicolon".to_string(),
            ':' => "colon".to_string(),
            '!' => "exclam".to_string(),
            '?' => "question".to_string(),
            '/' => "slash".to_string(),
            '\\' => "backslash".to_string(),
            '-' => "minus".to_string(),
            '+' => "plus".to_string(),
            '=' => "equal".to_string(),
            '_' => "underscore".to_string(),
            '<' => "less".to_string(),
            '>' => "greater".to_string(),
            '#' => "numbersign".to_string(),
            '$' => "dollar".to_string(),
            '%' => "percent".to_string(),
            '&' => "ampersand".to_string(),
            '*' => "asterisk".to_string(),
            '(' => "parenleft".to_string(),
            ')' => "parenright".to_string(),
            '[' => "bracketleft".to_string(),
            ']' => "bracketright".to_string(),
            '\'' => "apostrophe".to_string(),
            '"' => "quotedbl".to_string(),
            '@' => "at".to_string(),
            other => other.to_string(),
        };
        Keysym { name, ch: Some(c) }
    }

    /// Builds the keysym for a named function key (no character).
    pub fn named(name: &str) -> Keysym {
        let ch = match name {
            "space" => Some(' '),
            "Return" => Some('\r'),
            "Tab" => Some('\t'),
            "BackSpace" => Some('\u{8}'),
            "Delete" => Some('\u{7f}'),
            "Escape" => Some('\u{1b}'),
            n if n.chars().count() == 1 => n.chars().next(),
            _ => None,
        };
        Keysym {
            name: name.to_string(),
            ch,
        }
    }
}

/// An X event as delivered to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Part of a window needs repainting.
    Expose {
        window: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        /// Number of Expose events still to come for this window (0 = last).
        count: u32,
    },
    /// The window's geometry changed.
    ConfigureNotify {
        window: WindowId,
        x: i32,
        y: i32,
        width: u32,
        height: u32,
        border_width: u32,
    },
    /// The window became viewable.
    MapNotify { window: WindowId },
    /// The window was unmapped.
    UnmapNotify { window: WindowId },
    /// The window was destroyed.
    DestroyNotify { window: WindowId },
    /// The pointer entered the window.
    EnterNotify {
        window: WindowId,
        x: i32,
        y: i32,
        state: u32,
        time: u64,
    },
    /// The pointer left the window.
    LeaveNotify {
        window: WindowId,
        x: i32,
        y: i32,
        state: u32,
        time: u64,
    },
    /// The pointer moved inside the window.
    MotionNotify {
        window: WindowId,
        x: i32,
        y: i32,
        x_root: i32,
        y_root: i32,
        state: u32,
        time: u64,
    },
    /// A mouse button was pressed.
    ButtonPress {
        window: WindowId,
        button: u8,
        x: i32,
        y: i32,
        x_root: i32,
        y_root: i32,
        state: u32,
        time: u64,
    },
    /// A mouse button was released.
    ButtonRelease {
        window: WindowId,
        button: u8,
        x: i32,
        y: i32,
        x_root: i32,
        y_root: i32,
        state: u32,
        time: u64,
    },
    /// A key was pressed.
    KeyPress {
        window: WindowId,
        keysym: Keysym,
        x: i32,
        y: i32,
        state: u32,
        time: u64,
    },
    /// A key was released.
    KeyRelease {
        window: WindowId,
        keysym: Keysym,
        x: i32,
        y: i32,
        state: u32,
        time: u64,
    },
    /// A property on the window changed or was deleted.
    PropertyNotify {
        window: WindowId,
        atom: Atom,
        deleted: bool,
        time: u64,
    },
    /// This window lost the selection.
    SelectionClear {
        window: WindowId,
        selection: Atom,
        time: u64,
    },
    /// Another client asks the selection owner to convert the selection.
    SelectionRequest {
        owner: WindowId,
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
        time: u64,
    },
    /// The selection conversion completed (or failed, `property == NONE`).
    SelectionNotify {
        requestor: WindowId,
        selection: Atom,
        target: Atom,
        property: Atom,
        time: u64,
    },
    /// The window gained the input focus.
    FocusIn { window: WindowId },
    /// The window lost the input focus.
    FocusOut { window: WindowId },
}

impl Event {
    /// The window this event is reported relative to.
    pub fn window(&self) -> WindowId {
        match self {
            Event::Expose { window, .. }
            | Event::ConfigureNotify { window, .. }
            | Event::MapNotify { window }
            | Event::UnmapNotify { window }
            | Event::DestroyNotify { window }
            | Event::EnterNotify { window, .. }
            | Event::LeaveNotify { window, .. }
            | Event::MotionNotify { window, .. }
            | Event::ButtonPress { window, .. }
            | Event::ButtonRelease { window, .. }
            | Event::KeyPress { window, .. }
            | Event::KeyRelease { window, .. }
            | Event::PropertyNotify { window, .. }
            | Event::SelectionClear { window, .. }
            | Event::FocusIn { window }
            | Event::FocusOut { window } => *window,
            Event::SelectionRequest { owner, .. } => *owner,
            Event::SelectionNotify { requestor, .. } => *requestor,
        }
    }

    /// The X protocol name of this event type (the string Tk bindings
    /// use, and the detail the span tracer records on event instants).
    pub fn name(&self) -> &'static str {
        match self {
            Event::Expose { .. } => "Expose",
            Event::ConfigureNotify { .. } => "ConfigureNotify",
            Event::MapNotify { .. } => "MapNotify",
            Event::UnmapNotify { .. } => "UnmapNotify",
            Event::DestroyNotify { .. } => "DestroyNotify",
            Event::EnterNotify { .. } => "EnterNotify",
            Event::LeaveNotify { .. } => "LeaveNotify",
            Event::MotionNotify { .. } => "MotionNotify",
            Event::ButtonPress { .. } => "ButtonPress",
            Event::ButtonRelease { .. } => "ButtonRelease",
            Event::KeyPress { .. } => "KeyPress",
            Event::KeyRelease { .. } => "KeyRelease",
            Event::PropertyNotify { .. } => "PropertyNotify",
            Event::SelectionClear { .. } => "SelectionClear",
            Event::SelectionRequest { .. } => "SelectionRequest",
            Event::SelectionNotify { .. } => "SelectionNotify",
            Event::FocusIn { .. } => "FocusIn",
            Event::FocusOut { .. } => "FocusOut",
        }
    }

    /// The mask bit that must be selected for this event to be delivered,
    /// or `None` for events that are always delivered (selection traffic).
    pub fn mask_bit(&self) -> Option<u32> {
        use mask::*;
        Some(match self {
            Event::Expose { .. } => EXPOSURE,
            Event::ConfigureNotify { .. }
            | Event::MapNotify { .. }
            | Event::UnmapNotify { .. }
            | Event::DestroyNotify { .. } => STRUCTURE_NOTIFY,
            Event::EnterNotify { .. } => ENTER_WINDOW,
            Event::LeaveNotify { .. } => LEAVE_WINDOW,
            Event::MotionNotify { .. } => POINTER_MOTION,
            Event::ButtonPress { .. } => BUTTON_PRESS,
            Event::ButtonRelease { .. } => BUTTON_RELEASE,
            Event::KeyPress { .. } => KEY_PRESS,
            Event::KeyRelease { .. } => KEY_RELEASE,
            Event::PropertyNotify { .. } => PROPERTY_CHANGE,
            Event::FocusIn { .. } | Event::FocusOut { .. } => FOCUS_CHANGE,
            Event::SelectionClear { .. }
            | Event::SelectionRequest { .. }
            | Event::SelectionNotify { .. } => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Xid;

    #[test]
    fn keysym_from_char_names() {
        assert_eq!(Keysym::from_char('a').name, "a");
        assert_eq!(Keysym::from_char(' ').name, "space");
        assert_eq!(Keysym::from_char('.').name, "period");
        assert_eq!(Keysym::from_char('a').ch, Some('a'));
    }

    #[test]
    fn keysym_named_sets_char_when_known() {
        assert_eq!(Keysym::named("Escape").ch, Some('\u{1b}'));
        assert_eq!(Keysym::named("F1").ch, None);
        assert_eq!(Keysym::named("q").ch, Some('q'));
    }

    #[test]
    fn mask_bits_match_event_kinds() {
        let e = Event::MapNotify { window: Xid(1) };
        assert_eq!(e.mask_bit(), Some(mask::STRUCTURE_NOTIFY));
        let e = Event::SelectionClear {
            window: Xid(1),
            selection: Atom(1),
            time: 0,
        };
        assert_eq!(e.mask_bit(), None);
    }

    #[test]
    fn event_window_accessor() {
        let e = Event::Expose {
            window: Xid(7),
            x: 0,
            y: 0,
            width: 1,
            height: 1,
            count: 0,
        };
        assert_eq!(e.window(), Xid(7));
    }
}
