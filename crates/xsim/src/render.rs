//! Rasterization: per-window backing surfaces and drawing primitives.
//!
//! Each viewable window owns a pixel surface the size of its interior.
//! Clients draw into surfaces with GC-driven primitives; the server
//! composites the window tree into a single screen image for screendumps
//! (the reproduction of the paper's Figure 10).

use crate::color::Rgb;
use crate::font::{glyph, FontMetrics};

/// A rectangular pixel buffer, `0x00RRGGBB` per pixel.
#[derive(Debug, Clone)]
pub struct Surface {
    width: u32,
    height: u32,
    pixels: Vec<u32>,
    /// Text drawn since the last clear, for legible ASCII dumps:
    /// `(x, baseline_y, text)`.
    pub texts: Vec<(i32, i32, String)>,
}

impl Surface {
    /// Creates a surface filled with `fill`.
    pub fn new(width: u32, height: u32, fill: Rgb) -> Surface {
        Surface {
            width,
            height,
            pixels: vec![fill.packed(); (width * height) as usize],
            texts: Vec::new(),
        }
    }

    /// Surface width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Surface height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Reads one pixel (black if out of bounds).
    pub fn pixel(&self, x: i32, y: i32) -> Rgb {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return Rgb::new(0, 0, 0);
        }
        Rgb::from_packed(self.pixels[(y as u32 * self.width + x as u32) as usize])
    }

    /// Writes one pixel, clipping silently.
    pub fn put_pixel(&mut self, x: i32, y: i32, color: Rgb) {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return;
        }
        self.pixels[(y as u32 * self.width + x as u32) as usize] = color.packed();
    }

    /// Fills a rectangle, clipping to the surface. A fill that covers the
    /// whole surface also forgets recorded text (it repainted everything).
    pub fn fill_rect(&mut self, x: i32, y: i32, w: u32, h: u32, color: Rgb) {
        if x <= 0
            && y <= 0
            && x + w as i32 >= self.width as i32
            && y + h as i32 >= self.height as i32
        {
            self.texts.clear();
        }
        let x0 = x.max(0);
        let y0 = y.max(0);
        let x1 = (x + w as i32).min(self.width as i32);
        let y1 = (y + h as i32).min(self.height as i32);
        let packed = color.packed();
        for yy in y0..y1 {
            let row = yy as u32 * self.width;
            for xx in x0..x1 {
                self.pixels[(row + xx as u32) as usize] = packed;
            }
        }
    }

    /// Fills the whole surface and forgets recorded text.
    pub fn clear(&mut self, color: Rgb) {
        let packed = color.packed();
        self.pixels.fill(packed);
        self.texts.clear();
    }

    /// Draws a 1-pixel (or wider) rectangle outline.
    pub fn draw_rect(&mut self, x: i32, y: i32, w: u32, h: u32, lw: u32, color: Rgb) {
        let lw = lw.max(1);
        self.fill_rect(x, y, w, lw, color); // top
        self.fill_rect(x, y + h as i32 - lw as i32, w, lw, color); // bottom
        self.fill_rect(x, y, lw, h, color); // left
        self.fill_rect(x + w as i32 - lw as i32, y, lw, h, color); // right
    }

    /// Draws a line with Bresenham's algorithm.
    pub fn draw_line(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, lw: u32, color: Rgb) {
        let lw = lw.max(1) as i32;
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            // A square pen of side `lw`.
            for oy in 0..lw {
                for ox in 0..lw {
                    self.put_pixel(x + ox - lw / 2, y + oy - lw / 2, color);
                }
            }
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Draws text with its baseline at `(x, y)` using the built-in 5x7
    /// face scaled into the font's cell, and records it for ASCII dumps.
    pub fn draw_text(&mut self, x: i32, y: i32, text: &str, metrics: FontMetrics, color: Rgb) {
        let mut cx = x;
        let top = y - metrics.ascent as i32;
        for c in text.chars() {
            let bits = glyph(c);
            // Center the 5x7 glyph horizontally in the advance cell and
            // sit it on the baseline.
            let gx = cx + (metrics.char_width as i32 - 5) / 2;
            let gy = top + metrics.ascent as i32 - 7;
            for (row, rowbits) in bits.iter().enumerate() {
                for col in 0..5 {
                    if rowbits & (0x10 >> col) != 0 {
                        self.put_pixel(gx + col, gy + row as i32, color);
                    }
                }
            }
            cx += metrics.char_width as i32;
        }
        self.texts.push((x, y, text.to_string()));
    }

    /// Copies `src` into this surface at `(x, y)`, clipping.
    pub fn blit(&mut self, src: &Surface, x: i32, y: i32) {
        for sy in 0..src.height as i32 {
            let dy = y + sy;
            if dy < 0 || dy >= self.height as i32 {
                continue;
            }
            for sx in 0..src.width as i32 {
                let dx = x + sx;
                if dx < 0 || dx >= self.width as i32 {
                    continue;
                }
                self.pixels[(dy as u32 * self.width + dx as u32) as usize] =
                    src.pixels[(sy as u32 * src.width + sx as u32) as usize];
            }
        }
    }

    /// Resizes the surface, preserving the overlapping region and filling
    /// new area with `fill`.
    pub fn resize(&mut self, width: u32, height: u32, fill: Rgb) {
        let mut next = Surface::new(width, height, fill);
        next.blit(self, 0, 0);
        next.texts = std::mem::take(&mut self.texts);
        *self = next;
    }

    /// Serializes as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for &p in &self.pixels {
            let c = Rgb::from_packed(p);
            out.extend_from_slice(&[c.r, c.g, c.b]);
        }
        out
    }

    /// Count of pixels exactly matching `color` (for tests).
    pub fn count_pixels(&self, color: Rgb) -> usize {
        let packed = color.packed();
        self.pixels.iter().filter(|&&p| p == packed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RED: Rgb = Rgb::new(255, 0, 0);
    const WHITE: Rgb = Rgb::new(255, 255, 255);

    #[test]
    fn fill_rect_clips() {
        let mut s = Surface::new(10, 10, WHITE);
        s.fill_rect(-5, -5, 8, 8, RED);
        assert_eq!(s.pixel(0, 0), RED);
        assert_eq!(s.pixel(2, 2), RED);
        assert_eq!(s.pixel(3, 3), WHITE);
        assert_eq!(s.count_pixels(RED), 9);
    }

    #[test]
    fn draw_rect_outline_only() {
        let mut s = Surface::new(10, 10, WHITE);
        s.draw_rect(1, 1, 8, 8, 1, RED);
        assert_eq!(s.pixel(1, 1), RED);
        assert_eq!(s.pixel(8, 8), RED);
        assert_eq!(s.pixel(4, 4), WHITE);
    }

    #[test]
    fn draw_line_endpoints() {
        let mut s = Surface::new(10, 10, WHITE);
        s.draw_line(0, 0, 9, 9, 1, RED);
        assert_eq!(s.pixel(0, 0), RED);
        assert_eq!(s.pixel(9, 9), RED);
        assert_eq!(s.pixel(5, 5), RED);
        assert_eq!(s.pixel(0, 9), WHITE);
    }

    #[test]
    fn text_marks_pixels_and_records() {
        let mut s = Surface::new(60, 20, WHITE);
        let m = FontMetrics {
            char_width: 6,
            ascent: 10,
            descent: 3,
        };
        s.draw_text(2, 12, "Hi", m, RED);
        assert!(s.count_pixels(RED) > 5);
        assert_eq!(s.texts.len(), 1);
        assert_eq!(s.texts[0].2, "Hi");
    }

    #[test]
    fn blit_and_resize() {
        let mut dst = Surface::new(10, 10, WHITE);
        let src = Surface::new(4, 4, RED);
        dst.blit(&src, 8, 8); // clipped to 2x2
        assert_eq!(dst.count_pixels(RED), 4);
        dst.resize(12, 12, WHITE);
        assert_eq!(dst.count_pixels(RED), 4);
        assert_eq!(dst.width(), 12);
    }

    #[test]
    fn ppm_header() {
        let s = Surface::new(2, 3, WHITE);
        let ppm = s.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 2 * 3 * 3);
    }
}
