//! Rasterization: per-window backing surfaces and drawing primitives.
//!
//! Each viewable window owns a pixel surface the size of its interior.
//! Clients draw into surfaces with GC-driven primitives; the server
//! composites the window tree into a single screen image for screendumps
//! (the reproduction of the paper's Figure 10).

use crate::color::Rgb;
use crate::damage::Rect;
use crate::font::{glyph, FontMetrics};

/// A rectangular pixel buffer, `0x00RRGGBB` per pixel.
///
/// A surface may carry a *clip region* (a disjoint rect list, normally a
/// window's pending damage): rasterizing primitives write — and count —
/// only pixels inside the clip, so drawing outside it costs nothing.
/// Compositing ([`blit`]) and scrolling ([`copy_within`]) ignore the
/// clip; they move pixels rather than rasterize them.
///
/// [`blit`]: Surface::blit
/// [`copy_within`]: Surface::copy_within
#[derive(Debug, Clone)]
pub struct Surface {
    width: u32,
    height: u32,
    pixels: Vec<u32>,
    /// Pairwise-disjoint clip rects; `None` = unclipped.
    clip: Option<Vec<Rect>>,
    /// Pixels written by rasterizing primitives since the last
    /// [`Surface::take_pixels_drawn`].
    pixels_drawn: u64,
    /// Text drawn since the last clear, for legible ASCII dumps:
    /// `(x, baseline_y, text)`.
    pub texts: Vec<(i32, i32, String)>,
}

impl Surface {
    /// Creates a surface filled with `fill`.
    pub fn new(width: u32, height: u32, fill: Rgb) -> Surface {
        Surface {
            width,
            height,
            pixels: vec![fill.packed(); (width * height) as usize],
            clip: None,
            pixels_drawn: 0,
            texts: Vec::new(),
        }
    }

    /// Installs a clip region. The rects should be pairwise disjoint
    /// (coalesce through a [`crate::damage::DamageList`] first); an empty
    /// list means *unclipped*, mirroring X11's "no clip mask".
    pub fn set_clip(&mut self, rects: Vec<Rect>) {
        self.clip = if rects.is_empty() { None } else { Some(rects) };
    }

    /// Removes the clip region.
    pub fn clear_clip(&mut self) {
        self.clip = None;
    }

    /// The current clip region, if any.
    pub fn clip(&self) -> Option<&[Rect]> {
        self.clip.as_deref()
    }

    /// Takes and resets the rasterized-pixel counter.
    pub fn take_pixels_drawn(&mut self) -> u64 {
        std::mem::take(&mut self.pixels_drawn)
    }

    /// Surface width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Surface height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The whole framebuffer as packed `0xRRGGBB` words, row-major.
    /// Equivalence suites hash and diff entire frames; going through
    /// [`Surface::pixel`] per pixel is far too slow for that.
    pub fn raw_pixels(&self) -> &[u32] {
        &self.pixels
    }

    /// Reads one pixel (black if out of bounds).
    pub fn pixel(&self, x: i32, y: i32) -> Rgb {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return Rgb::new(0, 0, 0);
        }
        Rgb::from_packed(self.pixels[(y as u32 * self.width + x as u32) as usize])
    }

    /// Writes one pixel, clipping silently (surface bounds and the clip
    /// region both apply).
    pub fn put_pixel(&mut self, x: i32, y: i32, color: Rgb) {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return;
        }
        if let Some(clip) = &self.clip {
            if !clip
                .iter()
                .any(|r| x >= r.x && x < r.right() && y >= r.y && y < r.bottom())
            {
                return;
            }
        }
        self.pixels[(y as u32 * self.width + x as u32) as usize] = color.packed();
        self.pixels_drawn += 1;
    }

    /// Fills a rectangle, clipping to the surface and the clip region. A
    /// fill whose *requested* rect covers the whole surface also forgets
    /// recorded text (the client repainted everything — with a clip
    /// installed only part of it rasterizes, but the re-drawn text
    /// records arrive either way, so the list stays consistent).
    pub fn fill_rect(&mut self, x: i32, y: i32, w: u32, h: u32, color: Rgb) {
        if x <= 0
            && y <= 0
            && x + w as i32 >= self.width as i32
            && y + h as i32 >= self.height as i32
        {
            self.texts.clear();
        }
        let x0 = x.max(0);
        let y0 = y.max(0);
        let x1 = (x + w as i32).min(self.width as i32);
        let y1 = (y + h as i32).min(self.height as i32);
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        let bounded = Rect::new(x0, y0, (x1 - x0) as u32, (y1 - y0) as u32);
        match self.clip.take() {
            None => self.fill_span(&bounded, color),
            Some(clip) => {
                // The clip rects are disjoint, so each pixel is written
                // (and counted) at most once.
                for r in &clip {
                    if let Some(part) = bounded.intersect(r) {
                        self.fill_span(&part, color);
                    }
                }
                self.clip = Some(clip);
            }
        }
    }

    /// Fills an in-bounds rect unconditionally, counting its pixels.
    fn fill_span(&mut self, r: &Rect, color: Rgb) {
        let packed = color.packed();
        for yy in r.y..r.bottom() {
            let row = yy as u32 * self.width;
            for xx in r.x..r.right() {
                self.pixels[(row + xx as u32) as usize] = packed;
            }
        }
        self.pixels_drawn += r.area();
    }

    /// Fills the whole surface and forgets recorded text. This is
    /// initialization, not drawing: it ignores the clip region and does
    /// not count toward `pixels_drawn` (clients clear through
    /// `ClearArea`, which rasterizes via [`Surface::fill_rect`]).
    pub fn clear(&mut self, color: Rgb) {
        let packed = color.packed();
        self.pixels.fill(packed);
        self.texts.clear();
    }

    /// Draws a 1-pixel (or wider) rectangle outline.
    pub fn draw_rect(&mut self, x: i32, y: i32, w: u32, h: u32, lw: u32, color: Rgb) {
        let lw = lw.max(1);
        self.fill_rect(x, y, w, lw, color); // top
        self.fill_rect(x, y + h as i32 - lw as i32, w, lw, color); // bottom
        self.fill_rect(x, y, lw, h, color); // left
        self.fill_rect(x + w as i32 - lw as i32, y, lw, h, color); // right
    }

    /// Draws a line with Bresenham's algorithm.
    pub fn draw_line(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, lw: u32, color: Rgb) {
        let lw = lw.max(1) as i32;
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            // A square pen of side `lw`.
            for oy in 0..lw {
                for ox in 0..lw {
                    self.put_pixel(x + ox - lw / 2, y + oy - lw / 2, color);
                }
            }
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Draws text with its baseline at `(x, y)` using the built-in 5x7
    /// face scaled into the font's cell, and records it for ASCII dumps.
    pub fn draw_text(&mut self, x: i32, y: i32, text: &str, metrics: FontMetrics, color: Rgb) {
        let mut cx = x;
        let top = y - metrics.ascent as i32;
        for c in text.chars() {
            let bits = glyph(c);
            // Center the 5x7 glyph horizontally in the advance cell and
            // sit it on the baseline.
            let gx = cx + (metrics.char_width as i32 - 5) / 2;
            let gy = top + metrics.ascent as i32 - 7;
            for (row, rowbits) in bits.iter().enumerate() {
                for col in 0..5 {
                    if rowbits & (0x10 >> col) != 0 {
                        self.put_pixel(gx + col, gy + row as i32, color);
                    }
                }
            }
            cx += metrics.char_width as i32;
        }
        self.texts.push((x, y, text.to_string()));
    }

    /// Copies `src` into this surface at `(x, y)`, clipping.
    pub fn blit(&mut self, src: &Surface, x: i32, y: i32) {
        for sy in 0..src.height as i32 {
            let dy = y + sy;
            if dy < 0 || dy >= self.height as i32 {
                continue;
            }
            for sx in 0..src.width as i32 {
                let dx = x + sx;
                if dx < 0 || dx >= self.width as i32 {
                    continue;
                }
                self.pixels[(dy as u32 * self.width + dx as u32) as usize] =
                    src.pixels[(sy as u32 * src.width + sx as u32) as usize];
            }
        }
    }

    /// Copies a rectangle of this surface onto itself (X11's `CopyArea`
    /// within one drawable — the scrolling primitive). Overlap-safe; out
    /// of bounds source or destination pixels are skipped. Moving pixels
    /// is not rasterization: the clip region and `pixels_drawn` are
    /// untouched.
    pub fn copy_within(&mut self, src_x: i32, src_y: i32, w: u32, h: u32, dst_x: i32, dst_y: i32) {
        if w == 0 || h == 0 || (src_x == dst_x && src_y == dst_y) {
            return;
        }
        let mut saved = vec![None; (w * h) as usize];
        for sy in 0..h as i32 {
            for sx in 0..w as i32 {
                let (x, y) = (src_x + sx, src_y + sy);
                if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
                    saved[(sy as u32 * w + sx as u32) as usize] =
                        Some(self.pixels[(y as u32 * self.width + x as u32) as usize]);
                }
            }
        }
        for sy in 0..h as i32 {
            for sx in 0..w as i32 {
                let Some(p) = saved[(sy as u32 * w + sx as u32) as usize] else {
                    continue;
                };
                let (x, y) = (dst_x + sx, dst_y + sy);
                if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
                    self.pixels[(y as u32 * self.width + x as u32) as usize] = p;
                }
            }
        }
    }

    /// Resizes the surface, preserving the overlapping region and filling
    /// new area with `fill`. The clip region is dropped; the pixel
    /// counter carries over.
    pub fn resize(&mut self, width: u32, height: u32, fill: Rgb) {
        let mut next = Surface::new(width, height, fill);
        next.blit(self, 0, 0);
        next.texts = std::mem::take(&mut self.texts);
        next.pixels_drawn = self.pixels_drawn;
        *self = next;
    }

    /// Serializes as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for &p in &self.pixels {
            let c = Rgb::from_packed(p);
            out.extend_from_slice(&[c.r, c.g, c.b]);
        }
        out
    }

    /// Count of pixels exactly matching `color` (for tests).
    pub fn count_pixels(&self, color: Rgb) -> usize {
        let packed = color.packed();
        self.pixels.iter().filter(|&&p| p == packed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RED: Rgb = Rgb::new(255, 0, 0);
    const WHITE: Rgb = Rgb::new(255, 255, 255);

    #[test]
    fn fill_rect_clips() {
        let mut s = Surface::new(10, 10, WHITE);
        s.fill_rect(-5, -5, 8, 8, RED);
        assert_eq!(s.pixel(0, 0), RED);
        assert_eq!(s.pixel(2, 2), RED);
        assert_eq!(s.pixel(3, 3), WHITE);
        assert_eq!(s.count_pixels(RED), 9);
    }

    #[test]
    fn draw_rect_outline_only() {
        let mut s = Surface::new(10, 10, WHITE);
        s.draw_rect(1, 1, 8, 8, 1, RED);
        assert_eq!(s.pixel(1, 1), RED);
        assert_eq!(s.pixel(8, 8), RED);
        assert_eq!(s.pixel(4, 4), WHITE);
    }

    #[test]
    fn draw_line_endpoints() {
        let mut s = Surface::new(10, 10, WHITE);
        s.draw_line(0, 0, 9, 9, 1, RED);
        assert_eq!(s.pixel(0, 0), RED);
        assert_eq!(s.pixel(9, 9), RED);
        assert_eq!(s.pixel(5, 5), RED);
        assert_eq!(s.pixel(0, 9), WHITE);
    }

    #[test]
    fn text_marks_pixels_and_records() {
        let mut s = Surface::new(60, 20, WHITE);
        let m = FontMetrics {
            char_width: 6,
            ascent: 10,
            descent: 3,
        };
        s.draw_text(2, 12, "Hi", m, RED);
        assert!(s.count_pixels(RED) > 5);
        assert_eq!(s.texts.len(), 1);
        assert_eq!(s.texts[0].2, "Hi");
    }

    #[test]
    fn blit_and_resize() {
        let mut dst = Surface::new(10, 10, WHITE);
        let src = Surface::new(4, 4, RED);
        dst.blit(&src, 8, 8); // clipped to 2x2
        assert_eq!(dst.count_pixels(RED), 4);
        dst.resize(12, 12, WHITE);
        assert_eq!(dst.count_pixels(RED), 4);
        assert_eq!(dst.width(), 12);
    }

    #[test]
    fn ppm_header() {
        let s = Surface::new(2, 3, WHITE);
        let ppm = s.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 2 * 3 * 3);
    }

    #[test]
    fn fill_counts_pixels_drawn() {
        let mut s = Surface::new(10, 10, WHITE);
        s.fill_rect(0, 0, 4, 4, RED);
        assert_eq!(s.take_pixels_drawn(), 16);
        // Surface clipping bounds the count too.
        s.fill_rect(-5, -5, 8, 8, RED);
        assert_eq!(s.take_pixels_drawn(), 9);
        assert_eq!(s.take_pixels_drawn(), 0, "take resets");
    }

    #[test]
    fn clip_limits_writes_and_counts() {
        let mut s = Surface::new(20, 20, WHITE);
        s.set_clip(vec![Rect::new(0, 0, 5, 5), Rect::new(10, 10, 5, 5)]);
        s.fill_rect(0, 0, 20, 20, RED);
        assert_eq!(s.take_pixels_drawn(), 50);
        assert_eq!(s.count_pixels(RED), 50);
        assert_eq!(s.pixel(2, 2), RED);
        assert_eq!(s.pixel(7, 7), WHITE, "outside the clip is untouched");
        assert_eq!(s.pixel(12, 12), RED);
        // put_pixel honors the clip as well (lines, glyphs).
        s.put_pixel(7, 7, RED);
        assert_eq!(s.pixel(7, 7), WHITE);
        assert_eq!(s.take_pixels_drawn(), 0);
        s.clear_clip();
        s.put_pixel(7, 7, RED);
        assert_eq!(s.pixel(7, 7), RED);
        assert_eq!(s.take_pixels_drawn(), 1);
    }

    #[test]
    fn empty_clip_list_means_unclipped() {
        let mut s = Surface::new(10, 10, WHITE);
        s.set_clip(Vec::new());
        assert!(s.clip().is_none());
        s.fill_rect(0, 0, 10, 10, RED);
        assert_eq!(s.count_pixels(RED), 100);
    }

    #[test]
    fn full_requested_fill_clears_texts_even_clipped() {
        let m = FontMetrics {
            char_width: 6,
            ascent: 10,
            descent: 3,
        };
        let mut s = Surface::new(30, 20, WHITE);
        s.draw_text(2, 12, "Hi", m, RED);
        assert_eq!(s.texts.len(), 1);
        s.set_clip(vec![Rect::new(0, 0, 3, 3)]);
        s.fill_rect(0, 0, 30, 20, WHITE);
        assert!(s.texts.is_empty(), "requested-full fill forgets text");
        s.draw_text(2, 12, "Hi", m, RED);
        assert_eq!(s.texts.len(), 1, "re-drawn text records under clip");
    }

    #[test]
    fn copy_within_scrolls_and_counts_nothing() {
        let mut s = Surface::new(4, 6, WHITE);
        s.fill_rect(0, 0, 4, 2, RED);
        s.take_pixels_drawn();
        // Scroll the top band down two rows (overlapping copy).
        s.copy_within(0, 0, 4, 4, 0, 2);
        assert_eq!(s.pixel(0, 2), RED);
        assert_eq!(s.pixel(3, 3), RED);
        assert_eq!(s.pixel(0, 0), RED, "source rows left in place");
        assert_eq!(s.take_pixels_drawn(), 0, "a blit is not rasterization");
        // Out-of-bounds parts are skipped, not wrapped.
        s.copy_within(0, 0, 4, 6, 2, -1);
        assert_eq!(s.pixel(2, 0), RED);
    }
}
