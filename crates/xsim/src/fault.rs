//! Deterministic fault injection for the simulated X transport.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s, each naming a client, an
//! index on that client's timeline, and a [`FaultAction`]. Request faults
//! key on the client's request *sequence number* (assigned at issue time,
//! identical whether the transport batches or not); event faults key on
//! the client's event *enqueue index* (events are generated in the same
//! order under both transports). This keying is what makes every plan
//! transport-independent: the batched and unbatched runs inject exactly
//! the same faults, so pixel-equivalence holds even under chaos.
//!
//! The four fault classes mirror what a real X connection can do to a
//! client:
//!
//! * **Error replies** (`BadWindow`, `BadAtom`, `BadValue`, `BadAlloc`)
//!   from reply-bearing requests — surfaced as [`XError`] from
//!   `Connection::wait` and the synchronous round-trip methods. On a
//!   one-way request the same action models an asynchronous protocol
//!   error: the request is not executed (and no reply exists to carry
//!   the error back).
//! * **Drop / duplicate** of queued one-way requests at flush time
//!   (a lossy or stuttering transport).
//! * **Delay / reorder** of event delivery, within ICCCM-legal bounds: a
//!   delayed event is never held past a later event for the *same*
//!   window, and a reorder only swaps adjacent events targeting
//!   *different* windows, so per-window event order is preserved.
//! * **Kill** — the connection dies mid-flush; the server performs
//!   close-down (destroys the client's windows, releases its selections)
//!   and every later request fails with `ConnectionDead`.
//!
//! Every fired fault is counted in the client's `rtk-obs` counters
//! (`faults_injected` plus a per-kind split), traced in the protocol
//! trace ring when enabled, and appended to the plan's fired-fault log so
//! a failing run can print exactly what was injected
//! ([`FaultPlan::describe`]).

use crate::ids::ClientId;
use crate::obs::RequestKind;
use crate::rng::XorShift;

/// X protocol error codes the fault layer can inject, plus the
/// out-of-band `ConnectionDead` that every request reports after a kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XErrorCode {
    BadWindow,
    BadAtom,
    BadValue,
    BadAlloc,
    /// Not a wire error: the connection itself is gone.
    ConnectionDead,
}

impl XErrorCode {
    /// Protocol-style name (`"BadWindow"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            XErrorCode::BadWindow => "BadWindow",
            XErrorCode::BadAtom => "BadAtom",
            XErrorCode::BadValue => "BadValue",
            XErrorCode::BadAlloc => "BadAlloc",
            XErrorCode::ConnectionDead => "ConnectionDead",
        }
    }
}

/// An X protocol error as seen by the client: the error code, the
/// sequence number of the request that failed, and (when known) its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XError {
    pub code: XErrorCode,
    pub seq: u64,
    pub kind: Option<RequestKind>,
}

impl XError {
    /// Builds the error every request on a dead connection reports.
    pub fn dead(seq: u64) -> XError {
        XError {
            code: XErrorCode::ConnectionDead,
            seq,
            kind: None,
        }
    }

    /// Is this one of the alloc-class errors a cache should retry once?
    pub fn retryable(&self) -> bool {
        matches!(self.code, XErrorCode::BadValue | XErrorCode::BadAlloc)
    }
}

impl std::fmt::Display for XError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            Some(k) => write!(
                f,
                "X error {} on request {} ({})",
                self.code.name(),
                self.seq,
                k.name()
            ),
            None => write!(f, "X error {} on request {}", self.code.name(), self.seq),
        }
    }
}

impl std::error::Error for XError {}

/// What a fault does when its index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the request at this sequence number with an X error. A
    /// reply-bearing request surfaces the error from `wait`/the
    /// synchronous call; a one-way request is silently not executed
    /// (X's asynchronous error semantics).
    Error(XErrorCode),
    /// Drop the one-way request at this sequence number at flush time.
    DropRequest,
    /// Execute the one-way request at this sequence number twice.
    DuplicateRequest,
    /// Hold the event at this enqueue index until `n` more events have
    /// been enqueued (or a same-window event / a blocking poll forces
    /// release).
    DelayEvent(u32),
    /// Swap the event at this enqueue index with the previously queued
    /// event, if they target different windows.
    ReorderEvent,
    /// Kill the connection when this sequence number is reached.
    KillConnection,
    /// Byte-layer, wire-only: XOR one byte of the encoded frame at this
    /// per-client frame index (`offset` wraps modulo the frame length).
    /// The v2 CRC maps the damage to `WireError::Checksum` server-side.
    CorruptByte { offset: u16, xor: u8 },
    /// Byte-layer, wire-only: keep only the first `keep` bytes (modulo
    /// the frame length) of the encoded frame — a write cut short.
    TruncateFrame { keep: u16 },
    /// Byte-layer, wire-only: append `bytes` seed-derived garbage bytes
    /// after the encoded frame — line noise between writes.
    InjectGarbage { bytes: u16 },
    /// Byte-layer, wire-only: emit the encoded frame as two writes split
    /// at `at` (modulo the frame length). Behavior-invisible by design:
    /// the frame reader reassembles across write boundaries.
    SplitWrite { at: u16 },
    /// Byte-layer, wire-only: stall the dispatcher thread for `ticks`
    /// ×10 ms of wall clock before it handles this client's next control
    /// frame. A long enough stall trips the client's sync watchdog
    /// (`RTK_WIRE_DEADLINE_MS`).
    StallDispatch { ticks: u32 },
}

/// Number of distinct fault-counter kinds (see [`FAULT_KIND_NAMES`]).
pub const FAULT_KIND_COUNT: usize = 14;

/// Counter names for the per-kind fault split, indexed by
/// [`FaultAction::kind_index`].
pub const FAULT_KIND_NAMES: [&str; FAULT_KIND_COUNT] = [
    "error.BadWindow",
    "error.BadAtom",
    "error.BadValue",
    "error.BadAlloc",
    "drop",
    "duplicate",
    "delay",
    "reorder",
    "kill",
    "byte.corrupt",
    "byte.truncate",
    "byte.garbage",
    "byte.split",
    "byte.stall",
];

impl FaultAction {
    /// Index into the per-kind fault counters.
    pub fn kind_index(self) -> usize {
        match self {
            FaultAction::Error(XErrorCode::BadWindow) => 0,
            FaultAction::Error(XErrorCode::BadAtom) => 1,
            FaultAction::Error(XErrorCode::BadValue) => 2,
            FaultAction::Error(XErrorCode::BadAlloc) => 3,
            // ConnectionDead is never planned; bucket it with kill.
            FaultAction::Error(XErrorCode::ConnectionDead) => 8,
            FaultAction::DropRequest => 4,
            FaultAction::DuplicateRequest => 5,
            FaultAction::DelayEvent(_) => 6,
            FaultAction::ReorderEvent => 7,
            FaultAction::KillConnection => 8,
            FaultAction::CorruptByte { .. } => 9,
            FaultAction::TruncateFrame { .. } => 10,
            FaultAction::InjectGarbage { .. } => 11,
            FaultAction::SplitWrite { .. } => 12,
            FaultAction::StallDispatch { .. } => 13,
        }
    }

    /// Counter name for this action.
    pub fn kind_name(self) -> &'static str {
        FAULT_KIND_NAMES[self.kind_index()]
    }

    /// Does this action trigger on a request sequence number (as opposed
    /// to an event enqueue index or an encoded-frame index)?
    pub fn is_request_fault(self) -> bool {
        matches!(
            self,
            FaultAction::Error(_)
                | FaultAction::DropRequest
                | FaultAction::DuplicateRequest
                | FaultAction::KillConnection
        )
    }

    /// Does this action attack encoded frame bytes (or the dispatcher
    /// clock) rather than protocol semantics? Byte faults key on the
    /// client's encoded-frame index and only the wire transport applies
    /// them — a byte-fault plan is a strict no-op under `RTK_NO_WIRE=1`.
    pub fn is_byte_fault(self) -> bool {
        matches!(
            self,
            FaultAction::CorruptByte { .. }
                | FaultAction::TruncateFrame { .. }
                | FaultAction::InjectGarbage { .. }
                | FaultAction::SplitWrite { .. }
                | FaultAction::StallDispatch { .. }
        )
    }

    fn describe(self) -> String {
        match self {
            FaultAction::Error(code) => format!("error {}", code.name()),
            FaultAction::DropRequest => "drop".into(),
            FaultAction::DuplicateRequest => "duplicate".into(),
            FaultAction::DelayEvent(n) => format!("delay {n}"),
            FaultAction::ReorderEvent => "reorder".into(),
            FaultAction::KillConnection => "kill".into(),
            FaultAction::CorruptByte { offset, xor } => {
                format!("corrupt byte at {offset} xor {xor:#04x}")
            }
            FaultAction::TruncateFrame { keep } => format!("truncate to {keep}"),
            FaultAction::InjectGarbage { bytes } => format!("garbage {bytes}"),
            FaultAction::SplitWrite { at } => format!("split at {at}"),
            FaultAction::StallDispatch { ticks } => format!("stall {ticks}"),
        }
    }
}

/// One planned fault: on `client` (the raw client id; 0 = any client), at
/// request sequence number / event enqueue index `at`, do `action`.
/// Each spec fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub client: u32,
    pub at: u64,
    pub action: FaultAction,
}

/// A record of a fault that actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    pub client: u32,
    pub at: u64,
    pub action: FaultAction,
}

/// A deterministic fault schedule, installed on the server with
/// `Server::install_fault_plan`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    fired: Vec<bool>,
    log: Vec<FiredFault>,
}

impl FaultPlan {
    /// A plan from an explicit spec list.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        let fired = vec![false; specs.len()];
        FaultPlan {
            specs,
            fired,
            log: Vec::new(),
        }
    }

    /// Generates a random plan: `faults` specs spread over `clients`
    /// clients (ids `1..=clients`) and indices `1..horizon`. The same
    /// `(seed, faults, clients, horizon)` always yields the same plan.
    pub fn from_seed(seed: u64, faults: usize, clients: u32, horizon: u64) -> FaultPlan {
        let mut rng = XorShift::new(seed);
        let mut specs = Vec::with_capacity(faults);
        for _ in 0..faults {
            let client = 1 + rng.below(clients.max(1) as u64) as u32;
            let at = rng.range(1, horizon.max(2));
            let action = match rng.below(10) {
                0 => FaultAction::Error(XErrorCode::BadWindow),
                1 => FaultAction::Error(XErrorCode::BadAtom),
                2 => FaultAction::Error(XErrorCode::BadValue),
                3 => FaultAction::Error(XErrorCode::BadAlloc),
                4 => FaultAction::DropRequest,
                5 => FaultAction::DuplicateRequest,
                6 | 7 => FaultAction::DelayEvent(1 + rng.below(4) as u32),
                8 => FaultAction::ReorderEvent,
                _ => FaultAction::KillConnection,
            };
            specs.push(FaultSpec { client, at, action });
        }
        FaultPlan::new(specs)
    }

    /// Generates a random byte-layer plan: `faults` specs over clients
    /// `1..=clients` and per-client encoded-frame indices `1..horizon`.
    /// Only byte-fault actions are drawn (seed space disjoint from
    /// [`FaultPlan::from_seed`]), so the plan is a strict no-op on the
    /// in-process oracle transport — the `chaos --bytes` harness relies
    /// on that to diff a faulted wire run against a fault-free one.
    pub fn bytes_from_seed(seed: u64, faults: usize, clients: u32, horizon: u64) -> FaultPlan {
        let mut rng = XorShift::new(seed ^ 0xB17E_C4A0_05EE_D000);
        let mut specs = Vec::with_capacity(faults);
        for _ in 0..faults {
            let client = 1 + rng.below(clients.max(1) as u64) as u32;
            let at = rng.range(1, horizon.max(2));
            let action = match rng.below(10) {
                0..=2 => FaultAction::CorruptByte {
                    offset: rng.below(64) as u16,
                    xor: 1 + rng.below(255) as u8,
                },
                3 | 4 => FaultAction::TruncateFrame {
                    keep: rng.below(40) as u16,
                },
                5 | 6 => FaultAction::InjectGarbage {
                    bytes: 1 + rng.below(96) as u16,
                },
                7 | 8 => FaultAction::SplitWrite {
                    at: 1 + rng.below(32) as u16,
                },
                _ => FaultAction::StallDispatch {
                    ticks: 1 + rng.below(40) as u32,
                },
            };
            specs.push(FaultSpec { client, at, action });
        }
        FaultPlan::new(specs)
    }

    // --- builder helpers (used by tests and the checked-in corpus) ---

    fn push(mut self, client: u32, at: u64, action: FaultAction) -> Self {
        self.specs.push(FaultSpec { client, at, action });
        self.fired.push(false);
        self
    }

    /// Plans an error reply on `client`'s request `seq`.
    pub fn error_at(self, client: u32, seq: u64, code: XErrorCode) -> Self {
        self.push(client, seq, FaultAction::Error(code))
    }

    /// Plans a dropped one-way request.
    pub fn drop_at(self, client: u32, seq: u64) -> Self {
        self.push(client, seq, FaultAction::DropRequest)
    }

    /// Plans a duplicated one-way request.
    pub fn duplicate_at(self, client: u32, seq: u64) -> Self {
        self.push(client, seq, FaultAction::DuplicateRequest)
    }

    /// Plans an event delay of `hold` enqueues at event index `idx`.
    pub fn delay_at(self, client: u32, idx: u64, hold: u32) -> Self {
        self.push(client, idx, FaultAction::DelayEvent(hold))
    }

    /// Plans an adjacent-event reorder at event index `idx`.
    pub fn reorder_at(self, client: u32, idx: u64) -> Self {
        self.push(client, idx, FaultAction::ReorderEvent)
    }

    /// Plans a connection kill at request `seq`.
    pub fn kill_at(self, client: u32, seq: u64) -> Self {
        self.push(client, seq, FaultAction::KillConnection)
    }

    /// The planned specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The faults that have fired so far, in firing order.
    pub fn fired_log(&self) -> &[FiredFault] {
        &self.log
    }

    /// Clears the fired-fault log (an `obs reset` epoch boundary). The
    /// per-spec fired flags are kept: a spec still fires at most once.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Clears log entries for one client only.
    pub fn clear_log_for(&mut self, client: u32) {
        self.log.retain(|f| f.client != client);
    }

    /// Finds, fires, and returns the first unfired spec matching
    /// `(client, at)` whose action satisfies `applicable`.
    pub(crate) fn fire(
        &mut self,
        client: ClientId,
        at: u64,
        applicable: impl Fn(FaultAction) -> bool,
    ) -> Option<FaultAction> {
        for (i, spec) in self.specs.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if spec.client != 0 && spec.client != client.0 {
                continue;
            }
            if spec.at != at || !applicable(spec.action) {
                continue;
            }
            self.fired[i] = true;
            self.log.push(FiredFault {
                client: client.0,
                at,
                action: spec.action,
            });
            return Some(spec.action);
        }
        None
    }

    /// Human-readable plan dump: every spec, with a `[fired]` marker on
    /// the ones that triggered, then the firing log. This is what a
    /// failing chaos run prints so the injected schedule is never a
    /// mystery.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fault plan ({} specs):\n", self.specs.len()));
        for (i, spec) in self.specs.iter().enumerate() {
            out.push_str(&format!(
                "  client {} at {:>5}: {}{}\n",
                spec.client,
                spec.at,
                spec.action.describe(),
                if self.fired[i] { "  [fired]" } else { "" }
            ));
        }
        out.push_str(&format!(
            "fired: {} of {}\n",
            self.log.len(),
            self.specs.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(99, 8, 2, 500);
        let b = FaultPlan::from_seed(99, 8, 2, 500);
        assert_eq!(a.specs(), b.specs());
        assert_eq!(a.specs().len(), 8);
        for s in a.specs() {
            assert!((1..=2).contains(&s.client));
            assert!((1..500).contains(&s.at));
        }
    }

    #[test]
    fn specs_fire_at_most_once_and_are_logged() {
        let mut p = FaultPlan::default().drop_at(1, 10).kill_at(1, 12);
        assert!(p
            .fire(ClientId(1), 10, |a| a == FaultAction::DropRequest)
            .is_some());
        assert!(p.fire(ClientId(1), 10, |_| true).is_none(), "single fire");
        // Client mismatch: no fire.
        assert!(p.fire(ClientId(2), 12, |_| true).is_none());
        assert_eq!(p.fired_log().len(), 1);
        assert_eq!(p.fired_log()[0].at, 10);
        p.clear_log();
        assert!(p.fired_log().is_empty());
    }

    #[test]
    fn describe_prints_every_spec_and_fired_markers() {
        let mut p = FaultPlan::default()
            .error_at(1, 3, XErrorCode::BadWindow)
            .reorder_at(2, 7);
        p.fire(ClientId(1), 3, |a| a.is_request_fault());
        let d = p.describe();
        assert!(d.contains("error BadWindow"), "{d}");
        assert!(d.contains("[fired]"), "{d}");
        assert!(d.contains("reorder"), "{d}");
        assert!(d.contains("fired: 1 of 2"), "{d}");
    }

    #[test]
    fn kind_indices_cover_all_names() {
        let actions = [
            FaultAction::Error(XErrorCode::BadWindow),
            FaultAction::Error(XErrorCode::BadAtom),
            FaultAction::Error(XErrorCode::BadValue),
            FaultAction::Error(XErrorCode::BadAlloc),
            FaultAction::DropRequest,
            FaultAction::DuplicateRequest,
            FaultAction::DelayEvent(2),
            FaultAction::ReorderEvent,
            FaultAction::KillConnection,
            FaultAction::CorruptByte {
                offset: 3,
                xor: 0x40,
            },
            FaultAction::TruncateFrame { keep: 5 },
            FaultAction::InjectGarbage { bytes: 9 },
            FaultAction::SplitWrite { at: 2 },
            FaultAction::StallDispatch { ticks: 7 },
        ];
        let mut seen = [false; FAULT_KIND_COUNT];
        for a in actions {
            seen[a.kind_index()] = true;
            assert_eq!(a.kind_name(), FAULT_KIND_NAMES[a.kind_index()]);
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn byte_plans_are_deterministic_and_byte_only() {
        let a = FaultPlan::bytes_from_seed(7, 12, 3, 200);
        let b = FaultPlan::bytes_from_seed(7, 12, 3, 200);
        assert_eq!(a.specs(), b.specs());
        assert_eq!(a.specs().len(), 12);
        for s in a.specs() {
            assert!((1..=3).contains(&s.client));
            assert!((1..200).contains(&s.at));
            assert!(s.action.is_byte_fault());
            assert!(!s.action.is_request_fault());
            if let FaultAction::CorruptByte { xor, .. } = s.action {
                assert_ne!(xor, 0, "a zero xor would be a silent no-op");
            }
        }
        // The seed space is distinct from the semantic generator's.
        assert_ne!(
            FaultPlan::bytes_from_seed(7, 12, 3, 200).specs(),
            FaultPlan::from_seed(7, 12, 3, 200).specs()
        );
    }

    #[test]
    fn xerror_display_names_code_and_request() {
        let e = XError {
            code: XErrorCode::BadAtom,
            seq: 42,
            kind: Some(RequestKind::InternAtom),
        };
        assert_eq!(e.to_string(), "X error BadAtom on request 42 (InternAtom)");
        assert!(XError::dead(7).to_string().contains("ConnectionDead"));
        assert!(!XError::dead(7).retryable());
        assert!(XError {
            code: XErrorCode::BadAlloc,
            seq: 1,
            kind: None
        }
        .retryable());
    }
}
