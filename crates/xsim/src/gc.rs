//! Graphics contexts.
//!
//! A GC bundles the drawing parameters (foreground/background pixel, line
//! width, font) that accompany every rendering request, exactly as in X.
//! Tk's GC cache shares these server objects between widgets.

use std::collections::HashMap;

use crate::ids::{FontId, GcId, IdAllocator, Pixel, Xid};

/// The mutable drawing parameters of a graphics context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcValues {
    /// Foreground pixel used by drawing primitives.
    pub foreground: Pixel,
    /// Background pixel.
    pub background: Pixel,
    /// Line width for `DrawLine`/`DrawRectangle` (0 = thin, as in X).
    pub line_width: u32,
    /// Font for `DrawString`.
    pub font: FontId,
}

impl Default for GcValues {
    fn default() -> Self {
        GcValues {
            foreground: Pixel(0),
            background: Pixel(1),
            line_width: 0,
            font: Xid::NONE,
        }
    }
}

/// The server-side GC table.
#[derive(Debug, Default)]
pub struct GcTable {
    ids: IdAllocator,
    gcs: HashMap<GcId, GcValues>,
}

impl GcTable {
    /// Creates a GC with the given values.
    pub fn create(&mut self, values: GcValues) -> GcId {
        let id = self.ids.alloc();
        self.gcs.insert(id, values);
        id
    }

    /// Hands out an id for a CreateGc still sitting in an output buffer
    /// (client-side XID allocation).
    pub fn reserve(&mut self) -> GcId {
        self.ids.alloc()
    }

    /// Creates a GC under a pre-reserved id (the buffered-transport path).
    pub fn create_with_id(&mut self, id: GcId, values: GcValues) {
        self.gcs.insert(id, values);
    }

    /// Updates an existing GC; returns false if the id is stale.
    pub fn change(&mut self, id: GcId, values: GcValues) -> bool {
        match self.gcs.get_mut(&id) {
            Some(v) => {
                *v = values;
                true
            }
            None => false,
        }
    }

    /// Reads a GC's values.
    pub fn get(&self, id: GcId) -> Option<GcValues> {
        self.gcs.get(&id).copied()
    }

    /// Frees a GC.
    pub fn free(&mut self, id: GcId) {
        self.gcs.remove(&id);
    }

    /// Number of live GCs (for cache ablation measurements).
    pub fn count(&self) -> usize {
        self.gcs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_change_free() {
        let mut t = GcTable::default();
        let gc = t.create(GcValues::default());
        assert_eq!(t.get(gc).unwrap().line_width, 0);
        let v = GcValues {
            line_width: 2,
            ..Default::default()
        };
        assert!(t.change(gc, v));
        assert_eq!(t.get(gc).unwrap().line_width, 2);
        t.free(gc);
        assert!(t.get(gc).is_none());
        assert!(!t.change(gc, v));
    }
}
