//! Atoms: interned strings, as in the X11 protocol.
//!
//! Properties, selections, and targets are all named by atoms. The server
//! owns the intern table; `InternAtom` is a round-trip request.

use std::collections::HashMap;

/// An interned string identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(pub u32);

impl Atom {
    /// The reserved "none" atom.
    pub const NONE: Atom = Atom(0);
}

/// The server-side atom table. Pre-interns the handful of atoms the ICCCM
/// and Tk rely on so their values are stable across servers.
#[derive(Debug)]
pub struct AtomTable {
    by_name: HashMap<String, Atom>,
    by_id: Vec<String>,
}

/// Atoms interned at server startup, in order; `Atom(1)` is `PRIMARY`.
pub const PREDEFINED: &[&str] = &[
    "PRIMARY",
    "SECONDARY",
    "STRING",
    "ATOM",
    "TARGETS",
    "WM_NAME",
    "WM_CLASS",
    "WM_COMMAND",
    "CLIPBOARD",
    "RESOURCE_MANAGER",
];

impl Default for AtomTable {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomTable {
    /// Creates a table with the predefined atoms interned.
    pub fn new() -> AtomTable {
        let mut t = AtomTable {
            by_name: HashMap::new(),
            by_id: vec![String::new()], // index 0 = NONE
        };
        for name in PREDEFINED {
            t.intern(name);
        }
        t
    }

    /// Interns `name`, returning its atom (existing or new).
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&a) = self.by_name.get(name) {
            return a;
        }
        let a = Atom(self.by_id.len() as u32);
        self.by_id.push(name.to_string());
        self.by_name.insert(name.to_string(), a);
        a
    }

    /// Looks up an atom without interning.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.by_name.get(name).copied()
    }

    /// The name of an atom, if valid.
    pub fn name(&self, atom: Atom) -> Option<&str> {
        self.by_id.get(atom.0 as usize).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = AtomTable::new();
        let a = t.intern("FOO");
        let b = t.intern("FOO");
        assert_eq!(a, b);
    }

    #[test]
    fn predefined_atoms_are_stable() {
        let t = AtomTable::new();
        assert_eq!(t.lookup("PRIMARY"), Some(Atom(1)));
        assert_eq!(t.name(Atom(1)), Some("PRIMARY"));
    }

    #[test]
    fn unknown_atom_has_no_name() {
        let t = AtomTable::new();
        assert_eq!(t.name(Atom(9999)), None);
        assert_eq!(t.lookup("NOSUCH"), None);
    }

    #[test]
    fn distinct_names_distinct_atoms() {
        let mut t = AtomTable::new();
        assert_ne!(t.intern("A"), t.intern("B"));
    }
}
