//! Criterion bench for Table II row 2: `send` between applications, plus
//! the DESIGN.md ablation separating transport cost from evaluation cost
//! (send-to-self short-circuits the property transport).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tk_bench::env_with_apps;

fn bench_send(c: &mut Criterion) {
    let (_env, apps) = env_with_apps(&["alpha", "beta"]);
    let sender = apps[0].clone();
    sender.eval("send beta {}").unwrap();

    let mut g = c.benchmark_group("send");
    g.bench_function("empty_command", |b| {
        b.iter(|| sender.eval(black_box("send beta {}")).unwrap())
    });
    g.bench_function("set_in_target", |b| {
        b.iter(|| sender.eval(black_box("send beta {set x 1}")).unwrap())
    });
    g.bench_function("to_self_direct_eval", |b| {
        // Ablation: same command, no property transport.
        b.iter(|| sender.eval(black_box("send alpha {set x 1}")).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_send);
criterion_main!(benches);
