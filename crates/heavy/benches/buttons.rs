//! Criterion bench for Table II row 3: create, display, and delete 50
//! buttons (plus smaller sizes, to expose the per-widget slope).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tk_bench::{create_display_delete_buttons, env_with_apps};

fn bench_buttons(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/buttons");
    g.sample_size(20);
    for n in [10usize, 50] {
        g.bench_with_input(BenchmarkId::new("create_display_delete", n), &n, |b, &n| {
            let (_env, apps) = env_with_apps(&["bench"]);
            let app = apps[0].clone();
            create_display_delete_buttons(&app, n); // warm caches
            b.iter(|| create_display_delete_buttons(&app, n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_buttons);
criterion_main!(benches);
