//! Criterion bench for event dispatch: how fast bound events flow from
//! the (simulated) server through binding match, `%` substitution, and
//! Tcl evaluation — the path every keystroke of Figure 7 takes.

use criterion::{criterion_group, criterion_main, Criterion};
use tk_bench::env_with_apps;

fn bench_bind(c: &mut Criterion) {
    let mut g = c.benchmark_group("bind");

    // Motion events bound to a Tcl command with % substitution — the
    // paint-with-the-mouse path of Section 7.
    {
        let (env, apps) = env_with_apps(&["bench"]);
        let app = apps[0].clone();
        app.eval("frame .c -geometry 300x300").unwrap();
        app.eval("pack append . .c {top}").unwrap();
        app.update();
        app.eval("set n 0; bind .c <Motion> {set pos %x,%y; incr n}")
            .unwrap();
        let d = env.display().clone();
        let mut x = 10;
        g.bench_function("motion_event_to_tcl", |b| {
            b.iter(|| {
                x = if x > 250 { 10 } else { x + 1 };
                d.move_pointer(x, 50);
                app.process_pending();
            })
        });
    }

    // Key events through the focus path.
    {
        let (env, apps) = env_with_apps(&["bench"]);
        let app = apps[0].clone();
        app.eval("frame .k -geometry 50x50").unwrap();
        app.eval("pack append . .k {top}").unwrap();
        app.eval("focus .k").unwrap();
        app.eval("set n 0; bind .k a {incr n}").unwrap();
        app.update();
        let d = env.display().clone();
        g.bench_function("keystroke_to_tcl", |b| {
            b.iter(|| {
                d.type_char('a');
                app.process_pending();
            })
        });
    }

    // Binding-table match cost with many bindings installed.
    {
        let (env, apps) = env_with_apps(&["bench"]);
        let app = apps[0].clone();
        app.eval("frame .m -geometry 50x50").unwrap();
        app.eval("pack append . .m {top}").unwrap();
        app.eval("focus .m").unwrap();
        for i in 0..50 {
            let key = char::from(b'a' + (i % 26) as u8);
            app.eval(&format!("bind .m <Control-{key}> {{set hit {i}}}"))
                .unwrap();
        }
        app.eval("bind .m z {set z 1}").unwrap();
        app.update();
        let d = env.display().clone();
        g.bench_function("match_among_50_bindings", |b| {
            b.iter(|| {
                d.type_char('z');
                app.process_pending();
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_bind);
criterion_main!(benches);
