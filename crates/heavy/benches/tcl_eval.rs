//! Criterion benches for the Tcl interpreter: Table II row 1 (`set a 1`)
//! plus a spread of interpreter operations, and the brace-vs-substitution
//! ablation called out in DESIGN.md (brace-quoted operands skip the
//! substitution pass; the expression evaluator re-scans them instead).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simple_command(c: &mut Criterion) {
    let interp = tcl::Interp::new();
    interp.eval("set a 0").unwrap();
    c.bench_function("table2/set_a_1", |b| {
        b.iter(|| interp.eval(black_box("set a 1")).unwrap())
    });
}

fn bench_interpreter_ops(c: &mut Criterion) {
    let interp = tcl::Interp::new();
    interp
        .eval("proc add {x y} {return [expr {$x + $y}]}")
        .unwrap();
    interp.eval("set list {a b c d e f g h}").unwrap();
    interp.eval("set s {hello world}").unwrap();

    let mut g = c.benchmark_group("tcl");
    g.bench_function("expr_braced", |b| {
        b.iter(|| interp.eval(black_box("expr {3*4 + 17 < 100}")).unwrap())
    });
    g.bench_function("expr_substituted", |b| {
        // The same expression arriving already substituted: the ablation
        // partner of expr_braced.
        b.iter(|| interp.eval(black_box("expr 3*4 + 17 < 100")).unwrap())
    });
    g.bench_function("proc_call", |b| {
        b.iter(|| interp.eval(black_box("add 3 4")).unwrap())
    });
    g.bench_function("foreach_8", |b| {
        b.iter(|| interp.eval(black_box("foreach i $list {set x $i}")).unwrap())
    });
    g.bench_function("lindex", |b| {
        b.iter(|| interp.eval(black_box("lindex $list 4")).unwrap())
    });
    g.bench_function("string_match", |b| {
        b.iter(|| interp.eval(black_box("string match *wor* $s")).unwrap())
    });
    g.bench_function("format", |b| {
        b.iter(|| interp.eval(black_box("format {%s is %d} x 42")).unwrap())
    });
    g.bench_function("command_substitution", |b| {
        b.iter(|| interp.eval(black_box("set y [set s]")).unwrap())
    });
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let script = r#"
        proc browse {dir file} {
            if {[string compare $dir "."] != 0} {set file $dir/$file}
            if [file $file isdirectory] {
                set cmd [list exec sh -c "browse $file &"]
                eval $cmd
            }
        }
    "#;
    c.bench_function("tcl/parse_figure9_proc", |b| {
        b.iter(|| {
            let mut pos = 0;
            while let Some(cmd) =
                tcl::parser::parse_command(black_box(script), &mut pos).unwrap()
            {
                black_box(cmd);
            }
            pos = 0;
        })
    });
}

/// A seeded random mix of the commands an interactive session issues —
/// the "many hundreds of Tcl commands within a human response time"
/// workload of Section 7, measured end to end.
fn bench_mixed_workload(c: &mut Criterion) {
    let mut rng = tk_bench::XorShift::new(1991);
    let mut script = String::new();
    script.push_str("set total 0\nset words {}\n");
    for i in 0..200 {
        match rng.below(5) {
            0 => script.push_str(&format!("set v{i} {}\n", rng.below(1000))),
            1 => script.push_str(&format!(
                "incr total [expr {{{} * {}}}]\n",
                rng.range(1, 50),
                rng.range(1, 50)
            )),
            2 => script.push_str(&format!("lappend words w{}\n", rng.below(100))),
            3 => script.push_str("if {$total > 100} {set big 1} else {set big 0}\n"),
            _ => script.push_str("set total [llength $words]\n"),
        }
    }
    let interp = tcl::Interp::new();
    c.bench_function("tcl/mixed_200_commands", |b| {
        b.iter(|| interp.eval(black_box(&script)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_simple_command,
    bench_interpreter_ops,
    bench_parser,
    bench_mixed_workload
);
criterion_main!(benches);
