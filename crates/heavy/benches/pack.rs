//! Criterion bench for the packer (Figure 8's algorithm): relayout cost
//! as the number of managed windows grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tk_bench::env_with_apps;

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack/relayout");
    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (_env, apps) = env_with_apps(&["bench"]);
            let app = apps[0].clone();
            for i in 0..n {
                app.eval(&format!("frame .f{i} -geometry 40x12")).unwrap();
                app.eval(&format!("pack append . .f{i} {{top fillx}}")).unwrap();
            }
            app.update();
            b.iter(|| tk::pack::relayout(&app, "."));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
