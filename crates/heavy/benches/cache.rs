//! Criterion bench for the Section 3.3 resource caches: the same color
//! lookup with the cache enabled and disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tk::ResourceCache;
use xsim::Display;

fn bench_cache(c: &mut Criterion) {
    let display = Display::new();
    let conn = display.connect();

    let mut g = c.benchmark_group("cache");
    let cache = ResourceCache::new();
    cache.color(&conn, "MediumSeaGreen").unwrap();
    g.bench_function("color_hit", |b| {
        b.iter(|| cache.color(&conn, black_box("MediumSeaGreen")).unwrap())
    });
    let uncached = ResourceCache::new();
    uncached.set_enabled(false);
    g.bench_function("color_uncached", |b| {
        b.iter(|| uncached.color(&conn, black_box("MediumSeaGreen")).unwrap())
    });
    let cache2 = ResourceCache::new();
    cache2.font(&conn, "fixed").unwrap();
    g.bench_function("font_metrics_hit", |b| {
        b.iter(|| cache2.font(&conn, black_box("fixed")).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
