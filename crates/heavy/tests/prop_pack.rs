//! Property-based tests on the packer and the window tree: layout
//! invariants that must hold for any combination of requested sizes and
//! packing options.

use proptest::prelude::*;
use tk::TkEnv;

/// A random pack side.
fn side_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("top"),
        Just("bottom"),
        Just("left"),
        Just("right"),
    ]
}

/// A random fill/expand option suffix.
fn fill_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just(""),
        Just(" fill"),
        Just(" fillx"),
        Just(" filly"),
        Just(" expand"),
        Just(" expand fill"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packed slave stays inside its master's bounds, whatever the
    /// requested sizes, sides, and fill options.
    #[test]
    fn slaves_stay_inside_master(
        sizes in proptest::collection::vec((5u32..150, 5u32..150), 1..6),
        sides in proptest::collection::vec(side_strategy(), 6),
        fills in proptest::collection::vec(fill_strategy(), 6),
    ) {
        let env = TkEnv::new();
        let app = env.app("prop");
        app.eval("frame .m -geometry 120x100").unwrap();
        app.eval("pack append . .m {top}").unwrap();
        let mut spec = String::new();
        for (i, (w, h)) in sizes.iter().enumerate() {
            app.eval(&format!("frame .m.s{i} -geometry {w}x{h}")).unwrap();
            spec.push_str(&format!(" .m.s{i} {{{}{}}}", sides[i], fills[i]));
        }
        app.eval(&format!("pack append .m{spec}")).unwrap();
        app.update();
        // Pin the master's size (it is not a toplevel).
        let m = app.window(".m").unwrap();
        app.conn().configure_window(m.xid, None, None, Some(120), Some(100), None);
        app.update();
        tk::pack::relayout(&app, ".m");
        app.update();
        for i in 0..sizes.len() {
            let s = app.window(&format!(".m.s{i}")).unwrap();
            prop_assert!(s.x.get() >= 0, "slave {i} x={}", s.x.get());
            prop_assert!(s.y.get() >= 0, "slave {i} y={}", s.y.get());
            // When the cavity is exhausted a slave still gets the minimum
            // 1-pixel size at the cavity edge (real X clips it away), so
            // edges may exceed the master by that single pixel.
            prop_assert!(
                s.x.get() + s.width.get() as i32 <= 121,
                "slave {i} right edge {} exceeds master", s.x.get() + s.width.get() as i32
            );
            prop_assert!(
                s.y.get() + s.height.get() as i32 <= 101,
                "slave {i} bottom edge {} exceeds master", s.y.get() + s.height.get() as i32
            );
        }
    }

    /// All-in-a-column slaves never overlap and appear in packing order.
    #[test]
    fn column_slaves_are_disjoint_and_ordered(
        heights in proptest::collection::vec(5u32..40, 2..6),
    ) {
        let env = TkEnv::new();
        let app = env.app("prop");
        let mut spec = String::new();
        for (i, h) in heights.iter().enumerate() {
            app.eval(&format!("frame .s{i} -geometry 50x{h}")).unwrap();
            spec.push_str(&format!(" .s{i} {{top}}"));
        }
        app.eval(&format!("pack append .{spec}")).unwrap();
        app.update();
        let mut last_bottom = 0i32;
        for i in 0..heights.len() {
            let s = app.window(&format!(".s{i}")).unwrap();
            prop_assert!(
                s.y.get() >= last_bottom,
                "slave {i} top {} above previous bottom {last_bottom}", s.y.get()
            );
            last_bottom = s.y.get() + s.height.get() as i32;
        }
    }

    /// Geometry propagation: a toplevel master's requested size equals the
    /// column's max width and summed height.
    #[test]
    fn propagation_matches_column_arithmetic(
        sizes in proptest::collection::vec((5u32..80, 5u32..40), 1..6),
    ) {
        let env = TkEnv::new();
        let app = env.app("prop");
        let mut spec = String::new();
        for (i, (w, h)) in sizes.iter().enumerate() {
            app.eval(&format!("frame .s{i} -geometry {w}x{h}")).unwrap();
            spec.push_str(&format!(" .s{i} {{top}}"));
        }
        app.eval(&format!("pack append .{spec}")).unwrap();
        app.update();
        let main = app.window(".").unwrap();
        let want_w = sizes.iter().map(|(w, _)| *w).max().unwrap();
        let want_h: u32 = sizes.iter().map(|(_, h)| *h).sum();
        prop_assert_eq!(main.req_width.get(), want_w);
        prop_assert_eq!(main.req_height.get(), want_h);
    }

    /// Unpacking every slave leaves the packer empty and the windows
    /// unmapped, in any unpack order.
    #[test]
    fn unpack_always_cleans_up(
        n in 1usize..5,
        seed in proptest::num::u64::ANY,
    ) {
        let env = TkEnv::new();
        let app = env.app("prop");
        let mut spec = String::new();
        for i in 0..n {
            app.eval(&format!("frame .s{i} -geometry 20x20")).unwrap();
            spec.push_str(&format!(" .s{i} {{top}}"));
        }
        app.eval(&format!("pack append .{spec}")).unwrap();
        app.update();
        // Deterministic pseudo-random unpack order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        for i in order {
            app.eval(&format!("pack unpack .s{i}")).unwrap();
        }
        app.update();
        for i in 0..n {
            let rec = app.window(&format!(".s{i}")).unwrap();
            prop_assert!(!rec.mapped.get());
        }
    }

    /// Window path utilities invert each other for arbitrary components.
    #[test]
    fn path_join_and_split(parts in proptest::collection::vec("[a-z][a-z0-9]{0,6}", 1..5)) {
        let mut path = String::from(".");
        path.push_str(&parts.join("."));
        prop_assert_eq!(tk::window::components(&path), parts.clone());
        prop_assert_eq!(tk::window::name_of(&path), parts.last().unwrap().as_str());
        let parent = tk::window::parent_path(&path).unwrap();
        let joined = tk::window::join(parent, parts.last().unwrap());
        prop_assert_eq!(joined, path);
    }
}
