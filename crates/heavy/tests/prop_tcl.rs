//! Property-based tests on the Tcl core: list round-trips, parser
//! robustness, expression-evaluator equivalence with Rust arithmetic, and
//! glob-match consistency.

use proptest::prelude::*;

proptest! {
    /// format_list / parse_list round-trip for arbitrary element content.
    #[test]
    fn list_round_trip(elems in proptest::collection::vec(".*", 0..8)) {
        let formatted = tcl::format_list(&elems);
        let parsed = tcl::parse_list(&formatted).unwrap();
        prop_assert_eq!(parsed, elems);
    }

    /// Nested lists round-trip: a list of lists survives two levels.
    #[test]
    fn nested_list_round_trip(outer in proptest::collection::vec(
        proptest::collection::vec("[a-zA-Z0-9 {}$\\[\\]\"\\\\]*", 0..4), 0..4))
    {
        let inner: Vec<String> = outer.iter().map(|v| tcl::format_list(v)).collect();
        let top = tcl::format_list(&inner);
        let back_outer = tcl::parse_list(&top).unwrap();
        prop_assert_eq!(back_outer.len(), outer.len());
        for (parsed, original) in back_outer.iter().zip(&outer) {
            prop_assert_eq!(&tcl::parse_list(parsed).unwrap(), original);
        }
    }

    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics(script in ".*") {
        let mut pos = 0;
        for _ in 0..1000 {
            match tcl::parser::parse_command(&script, &mut pos) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// The interpreter never panics evaluating arbitrary input (errors are
    /// fine; crashes are not).
    #[test]
    fn eval_never_panics(script in ".{0,80}") {
        let interp = tcl::Interp::new();
        let _ = interp.eval(&script);
    }

    /// Integer arithmetic in expr matches Rust's (wrapping) arithmetic.
    #[test]
    fn expr_matches_rust_arithmetic(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let interp = tcl::Interp::new();
        let sum = interp.eval(&format!("expr {{{a} + {b}}}")).unwrap();
        prop_assert_eq!(sum, (a + b).to_string());
        let prod = interp.eval(&format!("expr {{{a} * {b}}}")).unwrap();
        prop_assert_eq!(prod, (a.wrapping_mul(b)).to_string());
        if b != 0 {
            let quot = interp.eval(&format!("expr {{{a} / {b}}}")).unwrap();
            prop_assert_eq!(quot, a.div_euclid(b).to_string());
            let rem = interp.eval(&format!("expr {{{a} % {b}}}")).unwrap();
            prop_assert_eq!(rem, a.rem_euclid(b).to_string());
        }
    }

    /// Comparison operators agree with Rust's.
    #[test]
    fn expr_comparisons_match(a in -100i64..100, b in -100i64..100) {
        let interp = tcl::Interp::new();
        for (op, expect) in [
            ("<", a < b), ("<=", a <= b), (">", a > b),
            (">=", a >= b), ("==", a == b), ("!=", a != b),
        ] {
            let r = interp.eval(&format!("expr {{{a} {op} {b}}}")).unwrap();
            prop_assert_eq!(r, if expect { "1" } else { "0" }, "{} {} {}", a, op, b);
        }
    }

    /// A literal pattern (no metacharacters) glob-matches exactly itself.
    #[test]
    fn glob_literal_matches_self(s in "[a-zA-Z0-9_.]{0,20}") {
        prop_assert!(tcl::strutil::glob_match(&s, &s));
        let other = format!("{s}x");
        prop_assert!(!tcl::strutil::glob_match(&s, &other));
    }

    /// `*` prefix/suffix patterns behave like starts_with/ends_with.
    #[test]
    fn glob_star_prefix_suffix(s in "[a-z]{1,12}", pre in "[a-z]{0,4}") {
        let starts = tcl::strutil::glob_match(&format!("{pre}*"), &s);
        prop_assert_eq!(starts, s.starts_with(&pre));
        let ends = tcl::strutil::glob_match(&format!("*{pre}"), &s);
        prop_assert_eq!(ends, s.ends_with(&pre));
    }

    /// `set`/read round-trips arbitrary values through a variable.
    #[test]
    fn variables_store_arbitrary_strings(value in ".{0,60}") {
        let interp = tcl::Interp::new();
        interp.set_var("v", None, &value).unwrap();
        prop_assert_eq!(interp.get_var("v", None).unwrap(), value);
    }

    /// Quoting through `list` makes any single word safe to pass through
    /// evaluation as one argument (the property Tk's callbacks rely on).
    #[test]
    fn list_quoting_protects_arguments(word in ".{0,40}") {
        let interp = tcl::Interp::new();
        let script = format!("lindex [list {}] 0", tcl::format_list(&[word.clone()]));
        prop_assert_eq!(interp.eval(&script).unwrap(), word);
    }

    /// format %d agrees with Rust's Display for i64.
    #[test]
    fn format_d_matches_rust(v in proptest::num::i64::ANY) {
        let interp = tcl::Interp::new();
        let r = interp.eval(&format!("format %d {v}")).unwrap();
        prop_assert_eq!(r, v.to_string());
    }
}

proptest! {
    /// The regex compiler/matcher never panics on arbitrary patterns and
    /// inputs (errors are fine).
    #[test]
    fn regex_never_panics(pattern in ".{0,20}", text in ".{0,40}") {
        if let Ok(re) = tcl::regex::Regex::compile(&pattern, false) {
            let _ = re.find(&text);
        }
    }

    /// A literal pattern (alphanumerics only) behaves like `contains`.
    #[test]
    fn regex_literal_is_contains(needle in "[a-z0-9]{1,6}", hay in "[a-z0-9 ]{0,30}") {
        let re = tcl::regex::Regex::compile(&needle, false).unwrap();
        prop_assert_eq!(re.find(&hay).is_some(), hay.contains(&needle));
    }

    /// Anchored full matches agree with equality for literals.
    #[test]
    fn regex_anchored_literal_is_equality(a in "[a-z]{0,8}", b in "[a-z]{0,8}") {
        let re = tcl::regex::Regex::compile(&format!("^{a}$"), false).unwrap();
        prop_assert_eq!(re.find(&b).is_some(), a == b);
    }

    /// regsub with an empty-effect spec round-trips the input when the
    /// pattern never matches.
    #[test]
    fn regsub_no_match_is_identity(text in "[a-y ]{0,30}") {
        let interp = tcl::Interp::new();
        interp.set_var("t", None, &text).unwrap();
        interp.eval("regsub -all {zzz} $t {Q} out").unwrap();
        prop_assert_eq!(interp.get_var("out", None).unwrap(), text);
    }
}
