//! Corpus-anchoring maintenance tool. Fault plans key on sequence
//! numbers, so any change to the request stream (new round trips,
//! interest registration, registry sharding) silently shifts which
//! requests the corpus's fault specs land on. When that drifts a seed
//! pair off the behavior its regression test asserts, rerun this:
//!
//! * `audit` — replays `tests/chaos_storm_corpus.txt` and prints which
//!   fault kinds each entry actually fires now (and its dedup drops).
//! * `flagship` — searches for a 3-app storm fault seed that fires
//!   ONLY a duplicate, with the receiver dropping the copy (corpus
//!   entry 0's contract).
//! * `twoapp` — same for the two-app fuzz's dedup anchor (pair 142).
//! * `fleet [napps]` — mines N-app storm entries that each cover 3+
//!   fault kinds, for the corpus's fleet-sized rows.

use tk_bench::chaos::{run_case, run_storm_case};
use tk_bench::XorShift;
use xsim::fault::FAULT_KIND_NAMES;

fn show(tag: &str, counts: &[u64], dedup: u64) {
    let mut parts = Vec::new();
    for (name, n) in FAULT_KIND_NAMES.iter().zip(counts) {
        if *n > 0 {
            parts.push(format!("{name}={n}"));
        }
    }
    println!("{tag}: {} dedup={dedup}", parts.join(" "));
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "audit" => {
            let text = std::fs::read_to_string("tests/chaos_storm_corpus.txt").unwrap();
            for line in text.lines() {
                let line = line.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                let mut it = line.split_whitespace();
                let s: u64 = it.next().unwrap().parse().unwrap();
                let f: u64 = it.next().unwrap().parse().unwrap();
                let n: usize = it.next().map(|v| v.parse().unwrap()).unwrap_or(3);
                match run_storm_case(s, f, n) {
                    Ok(st) => show(
                        &format!("{s} {f} {n}"),
                        &st.fault_counts,
                        st.send_dedup_drops,
                    ),
                    Err(e) => println!("{s} {f} {n}: FAILED {e}"),
                }
            }
        }
        "flagship" => {
            // A storm pair whose plan fires ONLY duplicate faults, with
            // the receiver dropping at least one copy.
            let mut rng = XorShift::new(0xf1a9);
            for _ in 0..100_000 {
                let f = rng.next_u64();
                let Ok(st) = run_storm_case(0, f, 3) else {
                    continue;
                };
                let dup = st.fault_counts[FAULT_KIND_NAMES
                    .iter()
                    .position(|n| *n == "duplicate")
                    .unwrap()];
                let total: u64 = st.fault_counts.iter().sum();
                if dup >= 1 && total == dup && st.send_dedup_drops >= 1 {
                    show(
                        &format!("FLAGSHIP 0 {f} 3"),
                        &st.fault_counts,
                        st.send_dedup_drops,
                    );
                    return;
                }
            }
            println!("no flagship found");
        }
        "twoapp" => {
            let mut rng = XorShift::new(0x2a44);
            for _ in 0..100_000 {
                let f = rng.next_u64();
                let Ok(st) = run_case(142, f) else { continue };
                let dup = st.fault_counts[FAULT_KIND_NAMES
                    .iter()
                    .position(|n| *n == "duplicate")
                    .unwrap()];
                if dup >= 1 && st.send_dedup_drops >= 1 {
                    show(
                        &format!("TWOAPP 142 {f}"),
                        &st.fault_counts,
                        st.send_dedup_drops,
                    );
                    return;
                }
            }
            println!("no two-app pair found");
        }
        "fleet" => {
            // N-app storm entries (N > 3) that together cover every
            // fault kind, for the corpus's fleet rows.
            let napps: usize = std::env::args()
                .nth(2)
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let mut rng = XorShift::new(0xf1ee7 ^ napps as u64);
            let mut found = 0;
            for _ in 0..50_000 {
                let s = rng.below(200);
                let f = rng.next_u64();
                let Ok(st) = run_storm_case(s, f, napps) else {
                    println!("{s} {f} {napps}: INVARIANT FAILED");
                    continue;
                };
                if st.fault_counts.iter().filter(|n| **n > 0).count() >= 3 {
                    show(
                        &format!("{s} {f} {napps}"),
                        &st.fault_counts,
                        st.send_dedup_drops,
                    );
                    found += 1;
                    if found >= 8 {
                        return;
                    }
                }
            }
        }
        _ => println!("modes: audit | flagship | twoapp | fleet [napps]"),
    }
}
