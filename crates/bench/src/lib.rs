//! Shared helpers for the benchmark harness: workload builders used by
//! both the Criterion benches and the table-printing binaries that
//! regenerate the paper's Tables I and II and Figure 8.

use std::time::Instant;

use tk::{TkApp, TkEnv};

/// Creates an environment with `n` named applications.
pub fn env_with_apps(names: &[&str]) -> (TkEnv, Vec<TkApp>) {
    let env = TkEnv::new();
    let apps = names.iter().map(|n| env.app(n)).collect();
    (env, apps)
}

/// Like [`env_with_apps`], but forces the framed wire transport
/// regardless of `RTK_NO_WIRE`, so wire-counter budgets hold in both CI
/// transport runs (the default wire run and the oracle run).
pub fn env_with_apps_wire(names: &[&str]) -> (TkEnv, Vec<TkApp>) {
    let display = xsim::Display::new();
    display.set_wire(true);
    let env = TkEnv::with_display(display);
    let apps = names.iter().map(|n| env.app(n)).collect();
    (env, apps)
}

/// The deterministic xorshift64* PRNG now lives in `xsim::rng` (fault
/// plans are generated from the same stream); re-exported here so the
/// benches and the chaos harness share one implementation.
pub use xsim::XorShift;

pub mod chaos;
pub mod fleet;

/// The Table II row 3 workload: create `n` buttons, pack and display them,
/// then delete them all. Returns nothing; timing is the caller's job.
pub fn create_display_delete_buttons(app: &TkApp, n: usize) {
    for i in 0..n {
        app.eval(&format!("button .b{i} -text \"Button {i}\" -command {{}}"))
            .expect("create button");
        app.eval(&format!("pack append . .b{i} {{top fillx}}"))
            .expect("pack button");
    }
    app.update();
    for i in 0..n {
        app.eval(&format!("destroy .b{i}")).expect("destroy button");
    }
    app.update();
}

/// Builds the packed entry `.bench_e` the [`type_into_entry`] workload
/// types into.
pub fn setup_entry(app: &TkApp) {
    app.eval("entry .bench_e -width 40").expect("create entry");
    app.eval("pack append . .bench_e {top}")
        .expect("pack entry");
    app.update();
}

/// Incremental workload: type `n` characters one keystroke at a time
/// (each repaint touches ~2 character cells under damage), then clear.
pub fn type_into_entry(app: &TkApp, n: usize) {
    for i in 0..n {
        let ch = (b'a' + (i % 26) as u8) as char;
        app.eval(&format!(".bench_e insert end {ch}"))
            .expect("type char");
        app.update();
    }
    app.eval(".bench_e delete 0 end").expect("clear entry");
    app.update();
}

/// Builds the packed 100-item listbox `.bench_l` for [`scroll_listbox`].
pub fn setup_listbox(app: &TkApp) {
    app.eval("listbox .bench_l -geometry 20x20")
        .expect("create listbox");
    app.eval("pack append . .bench_l {top}")
        .expect("pack listbox");
    for i in 0..100 {
        app.eval(&format!(".bench_l insert end {{item number {i}}}"))
            .expect("fill listbox");
    }
    app.update();
}

/// Incremental workload: scroll down one line at a time (a CopyArea blit
/// plus a one-line repaint under damage), then back up the same way.
pub fn scroll_listbox(app: &TkApp, n: usize) {
    for i in 1..=n {
        app.eval(&format!(".bench_l view {i}")).expect("scroll");
        app.update();
    }
    for i in (0..n).rev() {
        app.eval(&format!(".bench_l view {i}"))
            .expect("scroll back");
        app.update();
    }
}

/// Builds the packed checkbutton `.bench_b` for [`blink_button`].
pub fn setup_blink(app: &TkApp) {
    app.eval("checkbutton .bench_b -text {Blink me} -variable bench_blink")
        .expect("create checkbutton");
    app.eval("pack append . .bench_b {top}")
        .expect("pack checkbutton");
    app.update();
}

/// Incremental workload: toggle the check variable `n` times (each
/// repaint touches only the indicator box under damage).
pub fn blink_button(app: &TkApp, n: usize) {
    for _ in 0..n {
        app.eval("set bench_blink 1").expect("blink on");
        app.update();
        app.eval("set bench_blink 0").expect("blink off");
        app.update();
    }
}

/// Builds the proc and accumulator variable the [`eval_hot`] workload
/// exercises.
pub fn setup_eval_hot(app: &TkApp) {
    app.eval(
        "proc bench_step {x} {\n\
         \tset y 0\n\
         \tfor {set i 0} {$i < 10} {set i [expr {$i + 1}]} {\n\
         \t\tset y [expr {$y + $x + $i}]\n\
         \t}\n\
         \treturn $y\n\
         }",
    )
    .expect("define bench_step");
    app.eval("set bench_total 0").expect("seed bench_total");
}

/// Hot-eval workload: the same handful of script strings evaluated over
/// and over — the shape of a Tk callback firing repeatedly. Every
/// iteration re-evals identical sources, so with the program cache on all
/// the parsing collapses into cache hits; with `RTK_NO_COMPILE=1` every
/// iteration re-parses from scratch.
pub fn eval_hot(app: &TkApp, iters: usize) {
    for _ in 0..iters {
        app.eval("set bench_total [expr {$bench_total + [bench_step 3]}]")
            .expect("eval_hot step");
        app.eval("if {$bench_total > 1000000} {set bench_total 0}")
            .expect("eval_hot wrap");
    }
}

/// Builds the bound button `.bench_t` the [`bind_dispatch`] workload
/// clicks on.
pub fn setup_bind_dispatch(app: &TkApp) {
    app.eval("button .bench_t -text Target")
        .expect("create target");
    app.eval("pack append . .bench_t {top}")
        .expect("pack target");
    app.eval("bind .bench_t <ButtonPress-1> {set bench_hits [expr {$bench_hits + 1}]}")
        .expect("bind target");
    app.eval("set bench_hits 0").expect("seed bench_hits");
    app.update();
}

/// Bind-dispatch workload: synthesize `n` pointer clicks on the bound
/// button. Each press routes through event dispatch into the interpreter,
/// so the binding script's parse cost shows up once per click unless the
/// program cache absorbs it.
pub fn bind_dispatch(env: &TkEnv, app: &TkApp, n: usize) {
    let rec = app.window(".bench_t").expect("bind_dispatch target");
    env.display().move_pointer(rec.x.get() + 5, rec.y.get() + 5);
    for _ in 0..n {
        env.display().click(1);
        env.dispatch_all();
    }
}

/// Times `f` over `iters` runs and returns mean seconds per run.
pub fn time_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Formats seconds with an adaptive unit, for table printing.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.0} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} \u{b5}s", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Counts the source lines of a Rust file: non-blank, non-`//`-comment
/// lines, split at the first `#[cfg(test)]` into (code, test) counts.
pub fn count_loc(path: &std::path::Path) -> (usize, usize) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (0, 0);
    };
    let mut code = 0;
    let mut test = 0;
    let mut in_tests = false;
    for line in text.lines() {
        let t = line.trim();
        if t.contains("#[cfg(test)]") {
            in_tests = true;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        if in_tests {
            test += 1;
        } else {
            code += 1;
        }
    }
    (code, test)
}

/// Sums [`count_loc`] over files: `(code, test)`.
pub fn count_loc_files(base: &std::path::Path, files: &[&str]) -> (usize, usize) {
    files
        .iter()
        .map(|f| count_loc(&base.join(f)))
        .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buttons_workload_leaves_app_clean() {
        let (_env, apps) = env_with_apps(&["bench"]);
        create_display_delete_buttons(&apps[0], 5);
        assert_eq!(apps[0].eval("winfo children .").unwrap(), "");
    }

    #[test]
    fn xorshift_is_deterministic_and_bounded() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift::new(7);
        for _ in 0..1000 {
            let v = c.range(3, 10);
            assert!((3..10).contains(&v), "{v}");
        }
        // Different seeds diverge.
        assert_ne!(XorShift::new(1).next_u64(), XorShift::new(2).next_u64());
    }

    #[test]
    fn eval_hot_memoizes_number_parsing() {
        let (_env, apps) = env_with_apps(&["evalhot"]);
        let app = &apps[0];
        app.interp().set_compile(true);
        setup_eval_hot(app);

        // Cold pass: every literal in the workload parses once, plus each
        // fresh accumulator value as it appears.
        tcl::reset_parse_number_calls();
        eval_hot(app, 5);
        let cold = tcl::parse_number_calls();

        // Warm pass: the literals are memoized in the value table, so only
        // the never-seen-before accumulator values still parse.
        tcl::reset_parse_number_calls();
        eval_hot(app, 5);
        let warm = tcl::parse_number_calls();

        assert!(
            warm < cold,
            "number memoization had no effect (cold {cold}, warm {warm})"
        );
        // The counts are exact and deterministic; a drift here means the
        // literal memo table stopped (or started) covering something.
        // 26 cold = the workload's literals plus five fresh totals; 5 warm
        // = one never-seen accumulator value per iteration, nothing else.
        assert_eq!((cold, warm), (26, 5), "parse_number call counts drifted");
    }

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-5).contains("\u{b5}s"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }

    #[test]
    fn count_loc_separates_tests() {
        let dir = std::env::temp_dir().join("rtk_loc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("x.rs");
        std::fs::write(
            &f,
            "fn a() {}\n\n// comment\nfn b() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\n",
        )
        .unwrap();
        let (code, test) = count_loc(&f);
        assert_eq!(code, 2);
        // The `#[cfg(test)]` attribute line itself counts on the test side.
        assert_eq!(test, 4);
    }
}
