//! Fleet-scale harnesses: N applications exchanging `send`s and redraws
//! against one shared server.
//!
//! Two complementary runners live here:
//!
//! * [`run_wire_mesh`] — the *threaded* stress harness. N `TkApp`s on N
//!   OS threads over the framed wire transport, each sending to `fanout`
//!   ring neighbours every round while repainting its own UI. It proves
//!   liveness (no deadlock — a watchdog aborts on a wedge), completion,
//!   and per-sender event ordering at every receiver. Wall-clock
//!   latencies are *report-only*: OS scheduling makes them
//!   nondeterministic, so nothing here is pinned.
//! * [`run_fleet`] — the *deterministic* fleet. The same N-app send
//!   ring in one single-threaded environment on the virtual clock, with
//!   one spinning client (app 0) flooding one-way requests under a
//!   per-client quota. Every latency is an exact virtual-ms delta, so
//!   the p50/p95/p99 `send_latency_ms` percentiles and the
//!   `backpressure_stalls` count are exact, reproducible numbers that
//!   BUDGETS.json pins in CI.
//!
//! The threaded tests in `tests/wire_stress.rs` reuse [`run_wire_mesh`]
//! and [`watchdog`] rather than keeping a private copy sized to a fixed
//! app count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use tk::{TkApp, TkEnv};
use xsim::Display;

/// Aborts the whole process if `done` is still false after `secs` —
/// turns a deadlock into a fast, attributable CI failure.
pub fn watchdog(label: &'static str, secs: u64, done: Arc<AtomicBool>) {
    thread::spawn(move || {
        for _ in 0..secs {
            thread::sleep(Duration::from_secs(1));
            if done.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: {label} wedged after {secs}s — aborting");
        std::process::abort();
    });
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Shape of a threaded wire-mesh run.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Worker threads (one app each).
    pub apps: usize,
    /// Send rounds per app.
    pub rounds: u64,
    /// Ring neighbours each app sends to per round (`1` = pure ring,
    /// `apps - 1` = all-to-all).
    pub fanout: usize,
    /// Virtual-time send deadline. Generous by default: the target runs
    /// on another OS thread and "slow" must not be misread as "dead".
    pub send_timeout_ms: u64,
    /// Application name prefix (`{prefix}{i}`).
    pub prefix: &'static str,
}

impl MeshConfig {
    /// A mesh of `apps` workers with ring fanout 1 and the default
    /// deadline.
    pub fn ring(apps: usize, rounds: u64) -> MeshConfig {
        MeshConfig {
            apps,
            rounds,
            fanout: 1,
            send_timeout_ms: 120_000,
            prefix: "worker",
        }
    }
}

/// What a completed mesh run measured. Latencies are wall-clock
/// nanoseconds and *report-only* — never pin them.
#[derive(Debug, Clone)]
pub struct MeshReport {
    /// Sends completed (== `apps * fanout * rounds`).
    pub sends: u64,
    /// Wall-clock time for the whole mesh (startup included).
    pub wall: Duration,
    /// Ascending per-send wall-clock latencies, nanoseconds.
    pub latencies_ns: Vec<u64>,
}

/// Runs the threaded send mesh against `env`'s display. Returns `None`
/// when the wire transport is disabled (`RTK_NO_WIRE=1` forces the
/// in-process oracle, which is single-threaded by design — nothing to
/// stress). Panics on any ordering or completion violation.
///
/// Every send appends `sender:round` to the receiver's `log`; because
/// `send` is synchronous, a sender's entries must land at each receiver
/// in round order — that is exactly the per-client (per-connection)
/// event-ordering guarantee, observed end-to-end through PropertyNotify
/// events over the wire.
pub fn run_wire_mesh(env: &TkEnv, cfg: &MeshConfig) -> Option<MeshReport> {
    assert!(cfg.apps >= 2, "a mesh needs at least two apps");
    assert!(
        cfg.fanout >= 1 && cfg.fanout < cfg.apps,
        "fanout must be in 1..apps"
    );
    let display = env.display();
    if !display.wire() {
        return None;
    }
    let handle = display.wire_handle().expect("wire transport has a handle");
    let start = Instant::now();

    let apps = cfg.apps;
    let registered = Arc::new(Barrier::new(apps));
    // Counts workers done sending; everyone keeps pumping until all
    // have finished (a receiver that exits early would strand its
    // senders mid-RPC). A plain barrier would convert one worker's
    // failure into a hang, so the wait also watches a failure flag.
    let finished = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicBool::new(false));
    // Registration rewrites a shared registry shard (read-modify-write),
    // which real Tk serializes with XGrabServer; app startup takes this
    // lock so announcements don't clobber each other. Everything after
    // the barrier runs fully concurrently.
    let startup = Arc::new(Mutex::new(()));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let mut workers = Vec::new();
    for i in 0..apps {
        let cfg = cfg.clone();
        let handle = handle.clone();
        let registered = registered.clone();
        let finished = finished.clone();
        let failed = failed.clone();
        let startup = startup.clone();
        let latencies = latencies.clone();
        workers.push(thread::spawn(move || {
            let prefix = cfg.prefix;
            let env = TkEnv::with_display(Display::from_wire(&handle));
            let app = {
                let _g = startup.lock().unwrap();
                env.app(&format!("{prefix}{i}"))
            };
            app.eval("label .l -text boot").unwrap();
            app.eval("pack append . .l {top}").unwrap();
            env.dispatch_all();
            registered.wait();

            let mut mine = Vec::new();
            let rounds = (|| -> Result<(), String> {
                for round in 1..=cfg.rounds {
                    for k in 1..=cfg.fanout {
                        let t = (i + k) % apps;
                        if failed.load(Ordering::SeqCst) {
                            return Err(format!("{prefix}{i}: aborting, a peer failed"));
                        }
                        let t0 = Instant::now();
                        app.eval(&format!(
                            "send -timeout {} {prefix}{t} \
                             {{lappend log {i}:{round}; llength $log}}",
                            cfg.send_timeout_ms
                        ))
                        .map_err(|e| {
                            format!("{prefix}{i} round {round} send to {prefix}{t}: {}", e.msg)
                        })?;
                        mine.push(t0.elapsed().as_nanos() as u64);
                    }
                    // A redraw between sends: reconfigure forces damage,
                    // dispatch repaints it — protocol traffic interleaved
                    // with the send RPCs on the same connection.
                    app.eval(&format!(".l configure -text round{round}"))
                        .map_err(|e| format!("{prefix}{i} redraw: {}", e.msg))?;
                    env.dispatch_all();
                }
                Ok(())
            })();
            if rounds.is_err() {
                failed.store(true, Ordering::SeqCst);
            }
            finished.fetch_add(1, Ordering::SeqCst);
            while finished.load(Ordering::SeqCst) < apps && !failed.load(Ordering::SeqCst) {
                env.dispatch_all();
                thread::yield_now();
            }
            rounds.unwrap();
            env.dispatch_all();

            let log = app.eval("set log").expect("every app received sends");
            let entries: Vec<(usize, u64)> = log
                .split_whitespace()
                .map(|e| {
                    let (s, r) = e.split_once(':').expect("log entry shape");
                    (s.parse().expect("sender"), r.parse().expect("round"))
                })
                .collect();
            // With ring fanout f, exactly f peers target this app.
            assert_eq!(
                entries.len(),
                cfg.fanout * cfg.rounds as usize,
                "{prefix}{i} log: {log}"
            );
            let mut last = vec![0u64; apps];
            for (sender, round) in entries {
                assert!(
                    round > last[sender],
                    "{prefix}{i}: sender {sender}'s round {round} arrived out of order \
                     (already saw {}) in log {log}",
                    last[sender]
                );
                last[sender] = round;
            }
            latencies.lock().unwrap().extend(mine);
        }));
    }
    for (i, w) in workers.into_iter().enumerate() {
        w.join()
            .unwrap_or_else(|_| panic!("{}{i} panicked", cfg.prefix));
    }

    let mut latencies_ns = Arc::try_unwrap(latencies)
        .expect("all workers joined")
        .into_inner()
        .unwrap();
    latencies_ns.sort_unstable();
    Some(MeshReport {
        sends: (apps * cfg.fanout) as u64 * cfg.rounds,
        wall: start.elapsed(),
        latencies_ns,
    })
}

// ---------------------------------------------------------------------------
// The deterministic fleet: exact virtual-clock percentiles under quota.
// ---------------------------------------------------------------------------

/// One-way requests the spinning client floods per round. Sized well
/// past [`FLEET_QUOTA`] so every round trips the quota and defers the
/// overflow.
pub const SPIN_BURST: usize = 64;
/// Per-client request quota installed for fleet runs.
pub const FLEET_QUOTA: usize = 8;
/// Send rounds per fleet run.
pub const FLEET_ROUNDS: u64 = 4;
/// Virtual-ms deadline each fleet send must beat. The fairness claim is
/// exactly this bound: a quota-throttled spinner cannot push any peer's
/// send past it.
pub const FLEET_DEADLINE_MS: u64 = 10_000;
/// Timeout for the faulted tail round: a send whose request is dropped
/// by the fault plan burns exactly this much virtual time before
/// erroring cleanly, which is what puts a nonzero, exact value in the
/// p99 column.
pub const FLEET_FAULT_TIMEOUT_MS: u64 = 250;
/// In the tail round, every `FLEET_FAULT_STRIDE`-th app (offset 3, so
/// the spinner is never picked) has its send's request dropped.
pub const FLEET_FAULT_STRIDE: usize = 16;

/// What a deterministic fleet run measured. Everything here is exact
/// and reproducible — BUDGETS.json pins it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Applications in the fleet.
    pub apps: usize,
    /// Send rounds.
    pub rounds: u64,
    /// Sends issued (`apps * rounds` clean sends plus the `apps`-send
    /// faulted tail round).
    pub sends: u64,
    /// Virtual-ms send-latency percentiles across every send.
    pub send_latency_p50_ms: u64,
    pub send_latency_p95_ms: u64,
    pub send_latency_p99_ms: u64,
    /// Worst single send, virtual ms.
    pub send_latency_max_ms: u64,
    /// Quota deferrals recorded across all clients
    /// (`wire.backpressure_stalls`).
    pub backpressure_stalls: u64,
    /// Clean-round sends that missed [`FLEET_DEADLINE_MS`]. The fairness
    /// invariant is that this is zero — the runner asserts it, and the
    /// budget pins it.
    pub deadline_misses: u64,
    /// Tail-round sends that errored cleanly after their dropped request
    /// timed out (== the number of planned drops).
    pub send_errors: u64,
}

/// Runs the deterministic N-app fleet: app 0 spins (floods one-way
/// requests against the per-client quota), every app sends to its ring
/// neighbour each round, and every send's latency is measured as an
/// exact virtual-clock delta. Panics if any clean-round send errors or
/// misses its deadline — a spinning client must never starve a peer.
/// A final faulted tail round (seeded drops, clean errors) supplies the
/// nonzero latency tail the percentile budgets pin.
pub fn run_fleet(napps: usize) -> FleetReport {
    assert!(napps >= 2, "a fleet needs at least two apps");
    // Force the framed wire transport regardless of RTK_NO_WIRE: flush
    // boundaries differ between the transports, so the quota trips a
    // different (but individually deterministic) number of times on
    // each. Pinning one transport keeps the budget exact in both CI
    // transport runs — the same precedent as the `wire_send` workload.
    let display = Display::new();
    display.set_wire(true);
    let env = TkEnv::with_display(display);
    let apps: Vec<TkApp> = (0..napps).map(|i| env.app(&format!("fleet{i}"))).collect();
    // The spinner's flood target: reconfiguring a label's text is a pure
    // one-way request (damage repaints lazily), so the burst buffers
    // instead of round-tripping — exactly the shape the quota exists for.
    apps[0]
        .eval("label .spin -text boot")
        .expect("spinner label");
    env.dispatch_all();
    env.display()
        .with_server(|s| s.set_client_quota(Some(FLEET_QUOTA)));

    let mut latencies: Vec<u64> = Vec::with_capacity(napps * FLEET_ROUNDS as usize);
    let mut deadline_misses = 0u64;
    for round in 0..FLEET_ROUNDS {
        // The spinner: a burst of one-way requests, no flush in between.
        // The quota splits the batch and defers the tail, so the spinner
        // pays for its own flood while everyone else stays responsive.
        for k in 0..SPIN_BURST {
            apps[0]
                .eval(&format!(".spin configure -text spin-{round}-{k}"))
                .expect("spinner one-way");
        }
        for (i, app) in apps.iter().enumerate() {
            let target = (i + 1) % napps;
            let t0 = env.now();
            let r = app.eval(&format!(
                "send -timeout {FLEET_DEADLINE_MS} fleet{target} {{set z {round}}}"
            ));
            let dt = env.now().saturating_sub(t0);
            if r.is_err() || dt > FLEET_DEADLINE_MS {
                deadline_misses += 1;
            }
            latencies.push(dt);
        }
    }
    env.dispatch_all();
    assert_eq!(
        deadline_misses, 0,
        "fairness violated: a send missed its {FLEET_DEADLINE_MS}ms deadline \
         with the spinner quota-throttled"
    );

    // The tail round: cooperative single-threaded dispatch services every
    // healthy send in zero virtual time, so the latency tail comes from
    // *faults* — every FLEET_FAULT_STRIDE-th app's send has its request
    // dropped and rides its timeout to a clean error. The drop targets
    // the AppendProperty two requests past the app's current sequence
    // (one registry GetProperty, then the append), installed immediately
    // before the send so receiver-side traffic cannot shift the anchor.
    let mut send_errors = 0u64;
    for (i, app) in apps.iter().enumerate() {
        let target = (i + 1) % napps;
        let faulted = i % FLEET_FAULT_STRIDE == 3;
        if faulted {
            let client = app.conn().client_id().0;
            let seq = app.conn().sequence();
            env.display().with_server(|s| {
                s.install_fault_plan(xsim::FaultPlan::default().drop_at(client, seq + 2))
            });
        }
        let t0 = env.now();
        let r = app.eval(&format!(
            "send -timeout {FLEET_FAULT_TIMEOUT_MS} fleet{target} {{set z tail}}"
        ));
        let dt = env.now().saturating_sub(t0);
        assert_eq!(
            r.is_err(),
            faulted,
            "fleet{i}: tail send outcome disagrees with the fault plan \
             (faulted={faulted}, dt={dt}ms)"
        );
        if r.is_err() {
            send_errors += 1;
        }
        latencies.push(dt);
    }
    env.display()
        .with_server(|s| s.install_fault_plan(xsim::FaultPlan::default()));
    env.dispatch_all();

    // Post-run resource reckoning: the tail-round faults killed nothing,
    // so the server must hold zero objects chargeable to dead clients
    // and every registry shard must point at live comm windows.
    let leaks = env.display().with_server(|s| s.audit());
    assert!(
        leaks.is_empty(),
        "fleet post-run resource audit: {}",
        leaks.join("; ")
    );

    let backpressure_stalls = apps
        .iter()
        .map(|a| {
            let client = a.conn().client_id();
            env.display().with_server(|s| s.backpressure_stalls(client))
        })
        .sum();

    latencies.sort_unstable();
    FleetReport {
        apps: napps,
        rounds: FLEET_ROUNDS,
        sends: latencies.len() as u64,
        send_latency_p50_ms: percentile(&latencies, 50.0),
        send_latency_p95_ms: percentile(&latencies, 95.0),
        send_latency_p99_ms: percentile(&latencies, 99.0),
        send_latency_max_ms: latencies.last().copied().unwrap_or(0),
        backpressure_stalls,
        deadline_misses,
        send_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = run_fleet(8);
        let b = run_fleet(8);
        assert_eq!(a, b, "two identical fleet runs disagreed");
        assert_eq!(a.sends, 8 * (FLEET_ROUNDS + 1));
        assert!(
            a.backpressure_stalls > 0,
            "the spinner must trip the quota at least once"
        );
        // At 8 apps exactly one app (index 3) rides the faulted tail.
        assert_eq!(a.send_errors, 1);
        assert_eq!(a.send_latency_max_ms, FLEET_FAULT_TIMEOUT_MS);
        assert_eq!(a.deadline_misses, 0);
    }

    #[test]
    fn mesh_smoke_runs_and_orders() {
        let env = TkEnv::new();
        if let Some(report) = run_wire_mesh(&env, &MeshConfig::ring(3, 2)) {
            assert_eq!(report.sends, 6);
            assert_eq!(report.latencies_ns.len(), 6);
        }
    }
}
