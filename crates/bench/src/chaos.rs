//! The seeded chaos-fuzz harness.
//!
//! A chaos case is a pair of seeds: `script_seed` generates a random but
//! deterministic sequence of Tcl/Tk operations across two applications
//! (widget creation and destruction, configuration, packing, bindings
//! plus synthetic input, selection traffic, `send` between the apps,
//! timer advancement), and `fault_seed` generates an [`xsim::FaultPlan`]
//! injected into the shared display. Running a case must never panic:
//! faults surface as Tcl errors, `tkerror` reports, or clean application
//! teardown. Any failing pair replays deterministically, and [`shrink`]
//! reduces both the operation list and the fault plan to a minimal
//! reproducer.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tk::{TkApp, TkEnv};
use xsim::fault::FAULT_KIND_COUNT;
use xsim::{FaultPlan, XorShift};

/// Number of fault specs a generated plan carries.
pub const PLAN_FAULTS: usize = 8;
/// Request/event horizon for generated plans. Covers the two-app setup
/// (which consumes the first ~50 sequence numbers per client) plus the
/// scripted operations; specs that land inside the setup window simply
/// never fire, which keeps plan generation independent of setup size.
pub const PLAN_HORIZON: u64 = 400;
/// Operations per generated script.
pub const SCRIPT_OPS: usize = 60;

/// One operation of a chaos script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Evaluate a Tcl script in app 0 or 1 (errors are expected and counted).
    Tcl(usize, String),
    /// Move the pointer and click button 1.
    Click(i32, i32),
    /// Type a character at the focus window.
    Key(char),
    /// Advance virtual time by `ms` (fires timers).
    Advance(u64),
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Tcl(app, s) => write!(f, "app{app}: {s}"),
            Op::Click(x, y) => write!(f, "click {x},{y}"),
            Op::Key(c) => write!(f, "key {c:?}"),
            Op::Advance(ms) => write!(f, "advance {ms}ms"),
        }
    }
}

/// Generates the deterministic operation list for a script seed.
pub fn generate_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = XorShift::new(seed);
    let mut ops = Vec::with_capacity(n + 2);
    // Both apps get a selection handler proc up front so `selection`
    // operations have something to talk to.
    for app in 0..2 {
        ops.push(Op::Tcl(
            app,
            "proc give {offset max} {return chaos-value}".into(),
        ));
    }
    for _ in 0..n {
        let app = rng.below(2) as usize;
        let other = 1 - app;
        let w = rng.below(6); // widget name pool .w0 .. .w5
        let op = match rng.below(100) {
            0..=17 => {
                let kind = ["button", "message", "frame", "entry"][rng.below(4) as usize];
                Op::Tcl(app, format!("{kind} .w{w} -borderwidth {}", rng.below(4)))
            }
            18..=27 => Op::Tcl(app, format!("pack append . .w{w} {{top fillx}}")),
            28..=37 => Op::Tcl(app, format!(".w{w} configure -text t{}", rng.below(100))),
            38..=45 => Op::Tcl(app, format!("destroy .w{w}")),
            46..=53 => Op::Tcl(app, format!("bind .w{w} <ButtonPress-1> {{set hit{w} 1}}")),
            54..=61 => Op::Click(rng.range(1, 200) as i32, rng.range(1, 200) as i32),
            62..=65 => Op::Key((b'a' + rng.below(26) as u8) as char),
            66..=71 => Op::Advance(rng.range(1, 150)),
            72..=77 => match rng.below(3) {
                0 => Op::Tcl(app, format!("selection handle .w{w} give")),
                1 => Op::Tcl(app, format!("selection own .w{w}")),
                _ => Op::Tcl(app, "selection get".into()),
            },
            78..=87 => Op::Tcl(
                app,
                format!("send chaos{other} {{set remote {}}}", rng.below(100)),
            ),
            88..=91 => Op::Tcl(app, format!("after {} {{set fired 1}}", rng.range(1, 100))),
            92..=94 => Op::Tcl(app, "update".into()),
            95..=96 => Op::Tcl(app, format!("wm title . t{}", rng.below(100))),
            97..=98 => Op::Tcl(app, format!("focus .w{w}")),
            _ => Op::Tcl(app, "winfo children .".into()),
        };
        ops.push(op);
    }
    ops
}

/// Generates the deterministic fault plan for a fault seed. Two clients,
/// [`PLAN_FAULTS`] specs, [`PLAN_HORIZON`] horizon.
pub fn generate_plan(seed: u64) -> FaultPlan {
    FaultPlan::from_seed(seed, PLAN_FAULTS, 2, PLAN_HORIZON)
}

/// What a successful run reports.
#[derive(Debug, Default, Clone)]
pub struct RunStats {
    /// Operations applied.
    pub ops: usize,
    /// Tcl-level errors observed (expected under faults).
    pub tcl_errors: u64,
    /// Faults injected, summed over both connections.
    pub faults_injected: u64,
    /// Per-kind fault splits, summed over both connections, indexed like
    /// `xsim::fault::FAULT_KIND_NAMES`.
    pub fault_counts: [u64; FAULT_KIND_COUNT],
}

/// A panic caught while running a case.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the operation that panicked (`None`: setup or teardown).
    pub op_index: Option<usize>,
    /// The panic payload, if it was a string.
    pub message: String,
    /// The server's fault report at the time of the panic (best effort —
    /// the environment died with the panic, so this is the plan as
    /// configured).
    pub plan: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op_index {
            Some(i) => write!(f, "panic at op {}: {}", i, self.message),
            None => write!(f, "panic outside ops: {}", self.message),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with the default panic hook silenced (the chaos loop catches
/// panics; spraying backtraces over the progress output helps nobody).
/// The previous hook is restored afterwards.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(prev);
    r
}

fn apply(env: &TkEnv, apps: &[TkApp; 2], op: &Op, stats: &mut RunStats) {
    match op {
        Op::Tcl(i, s) => {
            if apps[*i].eval(s).is_err() {
                stats.tcl_errors += 1;
            }
        }
        Op::Click(x, y) => {
            env.display().move_pointer(*x, *y);
            env.display().click(1);
            env.dispatch_all();
        }
        Op::Key(c) => {
            env.display().type_char(*c);
            env.dispatch_all();
        }
        Op::Advance(ms) => env.advance(*ms),
    }
}

/// Runs an explicit operation list against an explicit fault plan (the
/// shrinker's entry point). Returns the run's stats, or the caught panic.
pub fn run_ops(ops: &[Op], plan: &FaultPlan) -> Result<RunStats, Failure> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let env = TkEnv::new();
        let apps = [env.app("chaos0"), env.app("chaos1")];
        env.dispatch_all();
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));
        let mut stats = RunStats::default();
        for (i, op) in ops.iter().enumerate() {
            let r = catch_unwind(AssertUnwindSafe(|| apply(&env, &apps, op, &mut stats)));
            if let Err(payload) = r {
                return Err(Failure {
                    op_index: Some(i),
                    message: panic_message(payload),
                    plan: plan.describe(),
                });
            }
            stats.ops = i + 1;
        }
        env.dispatch_all();
        for app in &apps {
            if let Some((injected, counts)) =
                app.conn().with_obs(|o| (o.faults_injected, o.fault_counts))
            {
                stats.faults_injected += injected;
                for (slot, n) in stats.fault_counts.iter_mut().zip(counts) {
                    *slot += n;
                }
            }
        }
        Ok(stats)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(Failure {
            op_index: None,
            message: panic_message(payload),
            plan: plan.describe(),
        }),
    }
}

/// Runs one seed pair end to end.
pub fn run_case(script_seed: u64, fault_seed: u64) -> Result<RunStats, Failure> {
    let ops = generate_ops(script_seed, SCRIPT_OPS);
    let plan = generate_plan(fault_seed);
    run_ops(&ops, &plan)
}

/// Greedily shrinks a failing `(ops, plan)` to a minimal still-failing
/// reproducer: first delta-debugs the operation list (chunks halving down
/// to single ops), then drops fault specs one at a time. Deterministic,
/// so the same failing seed pair always shrinks to the same reproducer.
pub fn shrink(ops: &[Op], plan: &FaultPlan) -> (Vec<Op>, FaultPlan) {
    shrink_with(ops, plan, |ops, plan| run_ops(ops, plan).is_err())
}

/// [`shrink`] with an explicit failure predicate (separated for testing:
/// a synthetic predicate exercises the minimization logic without needing
/// a genuinely panicking toolkit).
pub fn shrink_with(
    ops: &[Op],
    plan: &FaultPlan,
    fails: impl Fn(&[Op], &FaultPlan) -> bool,
) -> (Vec<Op>, FaultPlan) {
    let mut ops = ops.to_vec();
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < ops.len() {
            let end = (start + chunk).min(ops.len());
            let mut candidate = ops.clone();
            candidate.drain(start..end);
            if fails(&candidate, plan) {
                ops = candidate;
                shrunk = true;
                // Re-test the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk {
            chunk = (chunk / 2).max(1);
        }
    }
    // Now minimize the plan against the minimized ops.
    let mut specs = plan.specs().to_vec();
    let mut i = 0;
    while i < specs.len() {
        let mut candidate = specs.clone();
        candidate.remove(i);
        if fails(&ops, &FaultPlan::new(candidate.clone())) {
            specs = candidate;
        } else {
            i += 1;
        }
    }
    (ops, FaultPlan::new(specs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_generation_is_deterministic() {
        assert_eq!(generate_ops(7, 40), generate_ops(7, 40));
        assert_ne!(generate_ops(7, 40), generate_ops(8, 40));
    }

    #[test]
    fn clean_case_runs_without_faults() {
        let stats = run_case(1, 0).expect("no panic");
        assert!(stats.ops > 0);
    }

    #[test]
    fn faulted_cases_do_not_panic() {
        for seed in 1..=5 {
            let r = run_case(seed, seed.wrapping_mul(0x9e37));
            assert!(r.is_ok(), "seed {seed}: {}", r.unwrap_err());
        }
    }

    #[test]
    fn shrink_minimizes_ops_and_plan_against_a_synthetic_failure() {
        let marker = Op::Tcl(0, "__chaos_marker__".into());
        let mut ops = generate_ops(3, 20);
        ops.insert(11, marker.clone());
        let plan = generate_plan(9);
        assert!(plan.specs().len() > 1);
        // "Fails" whenever the marker op is present; the plan is
        // irrelevant to the failure, so every spec should be dropped.
        let (min_ops, min_plan) = shrink_with(&ops, &plan, |ops, _| ops.contains(&marker));
        assert_eq!(min_ops, vec![marker]);
        assert!(min_plan.specs().is_empty());
    }

    #[test]
    fn plan_generation_is_deterministic() {
        assert_eq!(generate_plan(42).describe(), generate_plan(42).describe());
    }
}
